// Quickstart: build FStartBench, generate a workload, run the four baseline
// warm-start systems, train a small MLCR model, and compare.
//
//   ./examples/quickstart [invocations] [train_episodes]
//
// This is the 5-minute tour of the library's public API:
//   fstartbench::make_benchmark / make_overall_workload  — workloads
//   policies::make_*_system / run_system                 — baselines
//   core::make_default_mlcr_config / train_agent         — the DRL scheduler
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/mlcr.hpp"
#include "core/trainer.hpp"
#include "fstartbench/benchmark.hpp"
#include "fstartbench/workloads.hpp"
#include "policies/runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;

  const std::size_t invocations =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 400;
  const std::size_t episodes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 24;

  // 1. The benchmark: 13 functions with three-level package metadata.
  const fstartbench::Benchmark bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());

  // 2. A workload: all 13 functions arriving as Poisson processes.
  util::Rng rng(2024);
  const sim::Trace trace =
      fstartbench::make_overall_workload(bench, invocations, rng);
  const double loose_mb = fstartbench::estimate_loose_capacity_mb(bench, trace);
  const auto pools = fstartbench::paper_pool_sizes(loose_mb);
  std::cout << "workload: " << trace.size() << " invocations over "
            << util::Table::num(trace.span_s(), 1) << " s; Loose pool = "
            << util::Table::num(loose_mb, 0) << " MB\n\n";

  const double pool_mb = pools.moderate_mb;  // paper's "Moderate" setting
  constexpr std::size_t kSlots = 24;  // MLCR's visible action slots

  // 3. Baselines.
  util::Table table({"system", "total latency (s)", "avg latency (s)",
                     "cold starts", "warm L1/L2/L3"});
  auto add_row = [&](const policies::EpisodeSummary& s) {
    table.add_row({s.scheduler, util::Table::num(s.total_latency_s, 1),
                   util::Table::num(s.average_latency_s, 2),
                   util::Table::num(s.cold_starts),
                   std::to_string(s.warm_l1) + "/" + std::to_string(s.warm_l2) +
                       "/" + std::to_string(s.warm_l3)});
  };
  for (const auto& make :
       {policies::make_lru_system, policies::make_faascache_system,
        policies::make_greedy_match_system}) {
    const auto spec = make();
    add_row(policies::run_system(spec, bench.functions, bench.catalog, cost,
                                 pool_mb, trace));
  }
  {
    const auto spec = policies::make_keepalive_system();
    add_row(policies::run_system(spec, bench.functions, bench.catalog, cost,
                                 pool_mb, trace));
  }

  // 4. Train MLCR offline (paper Algorithm 1) on this workload family.
  const core::MlcrConfig mlcr_cfg = core::make_default_mlcr_config(kSlots);
  auto agent = std::make_shared<rl::DqnAgent>(mlcr_cfg.dqn, util::Rng(7));
  const core::StateEncoder encoder(mlcr_cfg.encoder);

  sim::EnvConfig env_cfg;
  env_cfg.pool_capacity_mb = pool_mb;
  env_cfg.max_pool_containers = 0;  // memory is the binding constraint
  sim::ClusterEnv train_env(
      bench.functions, bench.catalog, cost, env_cfg,
      [] { return std::make_unique<containers::LruEviction>(); });

  std::vector<sim::Trace> train_traces;
  for (int i = 0; i < 4; ++i)
    train_traces.push_back(
        fstartbench::make_overall_workload(bench, invocations, rng));
  std::vector<const sim::Trace*> trace_ptrs;
  for (const auto& t : train_traces) trace_ptrs.push_back(&t);

  core::TrainerConfig train_cfg;
  train_cfg.episodes = episodes;
  std::cout << "training MLCR for " << episodes << " episodes ..."
            << std::endl;
  const auto report =
      core::train_agent(*agent, encoder, mlcr_cfg.reward_scale_s, {&train_env},
                        trace_ptrs, train_cfg);
  std::cout << "  first episode total latency: "
            << util::Table::num(report.episode_total_latency_s.front(), 1)
            << " s, last: "
            << util::Table::num(report.episode_total_latency_s.back(), 1)
            << " s (" << report.train_steps << " gradient steps)\n\n";

  // 5. Evaluate the trained model on the held-out trace.
  const auto mlcr_spec = core::make_mlcr_system(agent, mlcr_cfg.encoder);
  add_row(policies::run_system(mlcr_spec, bench.functions, bench.catalog, cost,
                               pool_mb, trace));

  table.print(std::cout);
  return 0;
}
