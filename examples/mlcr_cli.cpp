// mlcr_cli: command-line driver for the simulator — compose a workload, pick
// systems, run replications, and emit a table or CSV. This is the "swiss
// army knife" example for scripting studies on top of the library.
//
//   mlcr_cli --workload overall --invocations 400 --pool 0.5 --reps 5
//   mlcr_cli --workload peak --systems lru,greedy,prewarm --csv out.csv
//   mlcr_cli --workload hi-sim --save-trace trace.csv
//   mlcr_cli --load-trace trace.csv --systems greedy
//
// Workloads: overall | hi-sim | lo-sim | hi-var | lo-var | uniform | peak |
//            random. Systems: lru, faascache, keepalive, greedy, prewarm,
//            random. (MLCR needs training; see examples/train_and_deploy.)
// --pool takes a fraction of the workload's Loose capacity.
#include <fstream>
#include <iostream>
#include <sstream>

#include "fstartbench/workloads.hpp"
#include "policies/prewarm.hpp"
#include "policies/runner.hpp"
#include "sim/trace_io.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace mlcr;

struct CliOptions {
  std::string workload = "overall";
  std::string systems = "lru,faascache,keepalive,greedy,prewarm";
  std::size_t invocations = 300;
  double pool_fraction = 0.5;
  std::size_t reps = 3;
  std::uint64_t seed = 42;
  std::string csv_path;
  std::string save_trace;
  std::string load_trace;
};

void usage() {
  std::cout <<
      "usage: mlcr_cli [--workload NAME] [--invocations N] [--pool FRAC]\n"
      "                [--systems a,b,c] [--reps N] [--seed S]\n"
      "                [--csv FILE] [--save-trace FILE] [--load-trace FILE]\n"
      "workloads: overall hi-sim lo-sim hi-var lo-var uniform peak random\n"
      "systems:   lru faascache keepalive greedy prewarm random\n";
}

[[nodiscard]] std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep))
    if (!item.empty()) out.push_back(item);
  return out;
}

[[nodiscard]] sim::Trace make_workload(const fstartbench::Benchmark& bench,
                                       const CliOptions& opt, util::Rng& rng) {
  using fstartbench::ArrivalPattern;
  const std::string& w = opt.workload;
  const std::size_t n = opt.invocations;
  // Similarity/variance/arrival workloads need totals divisible by 5.
  const std::size_t n5 = (n / 5) * 5;
  if (w == "overall")
    return fstartbench::make_overall_workload(bench, n, rng);
  if (w == "hi-sim")
    return fstartbench::make_similarity_workload(bench, true, n5, rng);
  if (w == "lo-sim")
    return fstartbench::make_similarity_workload(bench, false, n5, rng);
  if (w == "hi-var")
    return fstartbench::make_variance_workload(bench, true, n5, rng);
  if (w == "lo-var")
    return fstartbench::make_variance_workload(bench, false, n5, rng);
  if (w == "uniform")
    return fstartbench::make_arrival_workload(bench, ArrivalPattern::kUniform,
                                              n, rng);
  if (w == "peak")
    return fstartbench::make_arrival_workload(bench, ArrivalPattern::kPeak, n,
                                              rng);
  if (w == "random")
    return fstartbench::make_arrival_workload(bench, ArrivalPattern::kRandom,
                                              n, rng);
  std::cerr << "unknown workload '" << w << "'\n";
  std::exit(2);
}

[[nodiscard]] policies::SystemSpec make_system(const std::string& name) {
  if (name == "lru") return policies::make_lru_system();
  if (name == "faascache") return policies::make_faascache_system();
  if (name == "keepalive") return policies::make_keepalive_system();
  if (name == "greedy") return policies::make_greedy_match_system();
  if (name == "prewarm") return policies::make_prewarm_system();
  if (name == "random") return policies::make_random_system();
  std::cerr << "unknown system '" << name << "'\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload")
      opt.workload = value();
    else if (arg == "--systems")
      opt.systems = value();
    else if (arg == "--invocations")
      opt.invocations = static_cast<std::size_t>(std::stoull(value()));
    else if (arg == "--pool")
      opt.pool_fraction = std::stod(value());
    else if (arg == "--reps")
      opt.reps = static_cast<std::size_t>(std::stoull(value()));
    else if (arg == "--seed")
      opt.seed = std::stoull(value());
    else if (arg == "--csv")
      opt.csv_path = value();
    else if (arg == "--save-trace")
      opt.save_trace = value();
    else if (arg == "--load-trace")
      opt.load_trace = value();
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      usage();
      return 2;
    }
  }

  const fstartbench::Benchmark bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng rng(opt.seed);

  // Workload: generated or replayed from CSV.
  const sim::Trace trace = opt.load_trace.empty()
                               ? make_workload(bench, opt, rng)
                               : sim::read_trace_csv(opt.load_trace,
                                                     bench.functions);
  if (!opt.save_trace.empty()) {
    sim::write_trace_csv(trace, opt.save_trace);
    std::cout << "saved " << trace.size() << " invocations to "
              << opt.save_trace << "\n";
  }

  const double loose = fstartbench::estimate_loose_capacity_mb(bench, trace);
  const double pool_mb = loose * opt.pool_fraction;
  std::cout << "workload '" << opt.workload << "': " << trace.size()
            << " invocations over " << util::Table::num(trace.span_s(), 0)
            << " s; pool " << util::Table::num(pool_mb, 0) << " MB ("
            << util::Table::num(100.0 * opt.pool_fraction, 0)
            << "% of Loose), " << opt.reps << " reps\n\n";

  util::Table table({"system", "mean total (s)", "stddev", "mean cold",
                     "mean evictions", "peak pool (MB)"});
  std::ofstream csv_file;
  std::unique_ptr<util::CsvWriter> csv;
  if (!opt.csv_path.empty()) {
    csv_file.open(opt.csv_path);
    csv = std::make_unique<util::CsvWriter>(
        csv_file, std::vector<std::string>{"system", "rep", "total_latency_s",
                                           "cold_starts", "evictions",
                                           "peak_pool_mb"});
  }

  for (const std::string& name : split(opt.systems, ',')) {
    const auto spec = make_system(name);
    util::RunningStats total, cold, evict, peak;
    util::Rng rep_rng(opt.seed + 1);
    for (std::size_t r = 0; r < opt.reps; ++r) {
      const sim::Trace rep_trace =
          (r == 0 || !opt.load_trace.empty())
              ? trace
              : make_workload(bench, opt, rep_rng);
      const auto s = policies::run_system(spec, bench.functions, bench.catalog,
                                          cost, pool_mb, rep_trace);
      total.add(s.total_latency_s);
      cold.add(static_cast<double>(s.cold_starts));
      evict.add(static_cast<double>(s.evictions));
      peak.add(s.peak_pool_mb);
      if (csv)
        csv->add_row({spec.name, std::to_string(r),
                      util::Table::num(s.total_latency_s, 3),
                      std::to_string(s.cold_starts),
                      std::to_string(s.evictions),
                      util::Table::num(s.peak_pool_mb, 1)});
    }
    table.add_row({spec.name, util::Table::num(total.mean(), 1),
                   util::Table::num(total.stddev(), 1),
                   util::Table::num(cold.mean(), 1),
                   util::Table::num(evict.mean(), 1),
                   util::Table::num(peak.mean(), 0)});
  }
  table.print(std::cout);
  if (csv) std::cout << "per-rep rows written to " << opt.csv_path << "\n";
  return 0;
}
