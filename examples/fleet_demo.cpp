// Fleet demo: the same workload through a 4-node cluster under two routing
// policies. Shows why the placement step matters — random routing scatters
// invocations away from their warm containers, package-affinity and
// warm-aware routing preserve the multi-level reuse that MLCR's Table-I
// matching enables inside each node.
#include <iostream>

#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "fstartbench/workloads.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlcr;

  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng rng(42);
  const sim::Trace trace = fstartbench::make_overall_workload(bench, 400, rng);

  fleet::FleetConfig cfg;
  cfg.nodes = 4;
  cfg.node_env.pool_capacity_mb = 1024.0;  // per node
  cfg.seed = 1;

  util::Table table(
      {"router", "total latency (s)", "cold", "warm L1/L2/L3", "imbalance"});
  for (const auto& router_spec : fleet::standard_routers()) {
    fleet::FleetEnv env(bench.functions, bench.catalog, cost, cfg,
                        fleet::uniform_system(policies::make_greedy_match_system));
    const auto router = router_spec.make();
    const fleet::FleetSummary fs = env.run(trace, *router);
    table.add_row({router_spec.name,
                   util::Table::num(fs.total.total_latency_s, 1),
                   std::to_string(fs.total.cold_starts),
                   std::to_string(fs.total.warm_l1) + "/" +
                       std::to_string(fs.total.warm_l2) + "/" +
                       std::to_string(fs.total.warm_l3),
                   util::Table::num(fs.routing_imbalance, 2)});
  }
  std::cout << "=== 4-node fleet, Greedy-Match on every node, 400 "
               "invocations ===\n";
  table.print(std::cout);
  std::cout << "(warm-aware and hash-affinity routing preserve the reuse "
               "random routing destroys)\n";
  return 0;
}
