// Example: the offline-train / online-deploy lifecycle of the MLCR scheduler
// (paper Sec. VI-D — the model is trained once offline, saved, and loaded
// for millisecond-scale online decisions).
//
//   ./examples/train_and_deploy [model_path]
//
// Demonstrates:
//   * building training environments at several pool sizes so one model
//     generalizes across capacities,
//   * core::train_agent (paper Algorithm 1) with an episode callback,
//   * saving/loading model weights (core::load_or_train),
//   * per-decision introspection: Q-values and the action mask for one state.
#include <iostream>
#include <memory>

#include "core/mlcr.hpp"
#include "core/trainer.hpp"
#include "fstartbench/benchmark.hpp"
#include "fstartbench/workloads.hpp"
#include "policies/runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  const std::string model_path =
      argc > 1 ? argv[1] : "mlcr_train_and_deploy.model";

  const fstartbench::Benchmark bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());

  // Workload family: the arrival-pattern workload with Peak bursts — the
  // hardest of the Fig. 11c patterns.
  util::Rng rng(11);
  auto make_trace = [&](util::Rng& r) {
    return fstartbench::make_arrival_workload(
        bench, fstartbench::ArrivalPattern::kPeak, 300, r);
  };
  const sim::Trace eval_trace = make_trace(rng);
  const double loose = fstartbench::estimate_loose_capacity_mb(bench, eval_trace);

  const core::MlcrConfig cfg = core::make_default_mlcr_config();
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(1));
  const core::StateEncoder encoder(cfg.encoder);

  // ---- Offline training (cached on disk). ----
  const bool loaded = core::load_or_train(*agent, model_path, [&] {
    std::vector<sim::Trace> traces;
    for (int i = 0; i < 3; ++i) traces.push_back(make_trace(rng));
    std::vector<const sim::Trace*> trace_ptrs;
    for (const auto& t : traces) trace_ptrs.push_back(&t);

    std::vector<std::unique_ptr<sim::ClusterEnv>> envs;
    std::vector<sim::ClusterEnv*> env_ptrs;
    for (const double frac : {0.25, 0.5, 1.0}) {
      sim::EnvConfig env_cfg;
      env_cfg.pool_capacity_mb = loose * frac;
      envs.push_back(std::make_unique<sim::ClusterEnv>(
          bench.functions, bench.catalog, cost, env_cfg,
          [] { return std::make_unique<containers::LruEviction>(); }));
      env_ptrs.push_back(envs.back().get());
    }

    // Demo-scale budget: enough to show the lifecycle in ~2 minutes. The
    // bench binaries (bench/fig8_overall etc.) train with 30-40 episodes,
    // which is what the EXPERIMENTS.md numbers use.
    core::TrainerConfig tc;
    tc.episodes = 18;
    tc.on_episode_end = [](std::size_t ep, double total) {
      if (ep % 6 == 0)
        std::cout << "  episode " << ep << ": total startup latency "
                  << util::Table::num(total, 1) << " s\n";
    };
    std::cout << "training on Peak workloads...\n";
    (void)core::train_agent(*agent, encoder, cfg.reward_scale_s, env_ptrs,
                            trace_ptrs, tc);
  });
  std::cout << (loaded ? "loaded cached model from "
                       : "trained and saved model to ")
            << model_path << "\n\n";

  // ---- Online deployment. ----
  const auto mlcr_spec = core::make_mlcr_system(agent, cfg.encoder);
  const auto greedy_spec = policies::make_greedy_match_system();
  util::Table table({"system", "total latency (s)", "cold starts"});
  for (const auto* spec : {&mlcr_spec, &greedy_spec}) {
    const auto s = policies::run_system(*spec, bench.functions, bench.catalog,
                                        cost, loose * 0.5, eval_trace);
    table.add_row({s.scheduler, util::Table::num(s.total_latency_s, 1),
                   util::Table::num(s.cold_starts)});
  }
  table.print(std::cout);

  // ---- Decision introspection: what does the model see and score? ----
  sim::EnvConfig env_cfg;
  env_cfg.pool_capacity_mb = loose * 0.5;
  sim::ClusterEnv env(bench.functions, bench.catalog, cost, env_cfg,
                      [] { return std::make_unique<containers::LruEviction>(); });
  env.reset(eval_trace);
  policies::GreedyMatchScheduler warmup;
  for (int i = 0; i < 40 && !env.done(); ++i)
    (void)env.step(warmup.decide(env, env.current()));

  if (!env.done()) {
    const auto state = encoder.encode(env, env.current(), 0.0);
    const nn::Tensor q = agent->q_values(state.tokens);
    const auto& fn = bench.functions.get(env.current().function);
    std::cout << "\nnext invocation: " << fn.name << " — Q-values per action "
              << "(slots 0.." << cfg.encoder.num_slots - 1 << ", then cold):\n";
    util::Table qt({"action", "allowed", "Q"});
    for (std::size_t a = 0; a < state.mask.size(); ++a) {
      if (!state.mask[a] && a != cfg.encoder.num_slots) continue;
      qt.add_row({a == cfg.encoder.num_slots ? "cold start"
                                             : "slot " + std::to_string(a),
                  state.mask[a] ? "yes" : "no",
                  util::Table::num(q(a, 0), 3)});
    }
    qt.print(std::cout);
  }
  return 0;
}
