// Example: using FStartBench as a workload laboratory — compose workloads
// with controlled similarity / size-variance / arrival properties, inspect
// their metrics, and measure how much each property affects the baselines.
//
//   ./examples/workload_study
//
// This mirrors the methodology of the paper's Sec. V/VI-C at example scale.
#include <iostream>

#include "fstartbench/workloads.hpp"
#include "policies/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace mlcr;
  const fstartbench::Benchmark bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());

  struct Workload {
    std::string name;
    sim::Trace trace;
  };
  util::Rng rng(77);
  std::vector<Workload> workloads;
  workloads.push_back(
      {"HI-Sim", fstartbench::make_similarity_workload(bench, true, 200, rng)});
  workloads.push_back(
      {"LO-Sim", fstartbench::make_similarity_workload(bench, false, 200, rng)});
  workloads.push_back({"Uniform", fstartbench::make_arrival_workload(
                                      bench, fstartbench::ArrivalPattern::kUniform,
                                      200, rng)});
  workloads.push_back({"Peak", fstartbench::make_arrival_workload(
                                   bench, fstartbench::ArrivalPattern::kPeak,
                                   200, rng)});

  // Workload anatomy: span, mix, metric values.
  util::Table anatomy({"workload", "invocations", "span (s)",
                       "distinct types", "avg similarity"});
  for (const auto& w : workloads) {
    std::vector<sim::FunctionTypeId> types;
    for (const auto& inv : w.trace.invocations()) types.push_back(inv.function);
    std::sort(types.begin(), types.end());
    types.erase(std::unique(types.begin(), types.end()), types.end());
    anatomy.add_row(
        {w.name, util::Table::num(w.trace.size()),
         util::Table::num(w.trace.span_s(), 0), util::Table::num(types.size()),
         util::Table::num(
             fstartbench::average_pairwise_similarity(bench, types), 2)});
  }
  std::cout << "=== workload anatomy ===\n";
  anatomy.print(std::cout);

  // How each workload treats the baselines at a mid-size pool.
  std::cout << "\n=== baseline behaviour (pool = 50% of each workload's "
               "Loose) ===\n";
  util::Table results({"workload", "system", "total (s)", "avg (s)", "cold",
                       "warm L1/L2/L3", "evictions"});
  for (const auto& w : workloads) {
    const double loose = fstartbench::estimate_loose_capacity_mb(bench, w.trace);
    for (const auto& make :
         {policies::make_lru_system, policies::make_greedy_match_system}) {
      const auto spec = make();
      const auto s = policies::run_system(spec, bench.functions, bench.catalog,
                                          cost, loose * 0.5, w.trace);
      results.add_row({w.name, s.scheduler,
                       util::Table::num(s.total_latency_s, 1),
                       util::Table::num(s.average_latency_s, 2),
                       util::Table::num(s.cold_starts),
                       std::to_string(s.warm_l1) + "/" +
                           std::to_string(s.warm_l2) + "/" +
                           std::to_string(s.warm_l3),
                       util::Table::num(s.evictions)});
    }
  }
  results.print(std::cout);
  std::cout << "\nTakeaway: multi-level matching converts cold starts into "
               "L1/L2 warm starts where similarity is high — but greedily "
               "grabbing the best match can repack containers that upcoming "
               "invocations needed intact, and then greedy loses to plain "
               "LRU despite fewer cold starts. That tension (paper Fig. 2 / "
               "Fig. 9) is exactly what MLCR's learned scheduler resolves; "
               "see examples/train_and_deploy.cpp.\n";
  return 0;
}
