// Example: automatic level-wise package classification from a Dockerfile
// (the paper's Fig. 5 workflow and its stated future-work tool). Reads a
// Dockerfile, classifies every package into OS / language / runtime, and —
// when the packages are known to the FStartBench catalog — shows which
// warm containers of the 13 benchmark functions could serve it and at what
// Table-I match level.
//
//   ./examples/classify_dockerfile [path/to/Dockerfile]
//
// Without an argument it runs on the paper's Fig. 5 deep-learning example.
#include <fstream>
#include <iostream>
#include <sstream>

#include "containers/dockerfile.hpp"
#include "containers/matching.hpp"
#include "fstartbench/benchmark.hpp"
#include "util/table.hpp"

namespace {

constexpr const char* kFig5 = R"(FROM ubuntu:20.04
RUN apt update && \
    apt install -y wget build-essential
RUN cd /tmp && \
    wget https://www.python.org/ftp/python/3.9.17/Python-3.9.17.tgz && \
    tar -xvf Python-3.9.17.tgz && \
    cd Python-3.9.17 && \
    ./configure --enable-optimizations && \
    make && make install
RUN pip install torch==2.0.1+cpu torchvision==0.15.2+cpu
WORKDIR /workspace
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace mlcr;

  std::string dockerfile;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in.is_open()) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    dockerfile = ss.str();
    std::cout << "classifying " << argv[1] << "\n\n";
  } else {
    dockerfile = kFig5;
    std::cout << "classifying the paper's Fig. 5 example Dockerfile\n\n";
  }

  const containers::DockerfileClassifier classifier;
  const containers::DockerfileAnalysis analysis =
      classifier.classify(dockerfile);

  util::Table table({"level", "packages"});
  auto join = [](const std::vector<std::string>& names) {
    std::string out;
    for (const auto& n : names) out += (out.empty() ? "" : ", ") + n;
    return out.empty() ? std::string("-") : out;
  };
  table.add_row({"OS (L1)", join(analysis.os_packages)});
  table.add_row({"language (L2)", join(analysis.language_packages)});
  table.add_row({"runtime (L3)", join(analysis.runtime_packages)});
  table.print(std::cout);

  // Cross-reference against the FStartBench catalog: which of the 13
  // functions' containers could serve an image like this one?
  const fstartbench::Benchmark bench = fstartbench::make_benchmark();
  const auto res = analysis.resolve(bench.catalog);
  if (!res.unknown.empty()) {
    std::cout << "\nnot in the FStartBench catalog: ";
    for (std::size_t i = 0; i < res.unknown.size(); ++i)
      std::cout << (i ? ", " : "") << res.unknown[i];
    std::cout << "\n";
  }

  util::Table matches({"warm container of", "match level"});
  for (const auto& fn : bench.functions.all()) {
    const auto level = containers::match(res.image, fn.image);
    if (containers::reusable(level))
      matches.add_row({fn.name, std::string(containers::to_string(level))});
  }
  std::cout << "\nreusable FStartBench containers (Table I):\n";
  if (matches.rows() == 0)
    std::cout << "  none — this image shares no OS level with the suite\n";
  else
    matches.print(std::cout);
  return 0;
}
