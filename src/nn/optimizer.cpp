#include "nn/optimizer.hpp"

#include <cmath>

#include "util/check.hpp"

namespace mlcr::nn {

void Optimizer::clip_grad_norm(float max_norm) {
  MLCR_CHECK(max_norm > 0.0F);
  float total = 0.0F;
  for (Parameter* p : params_) total += p->grad.squared_norm();
  const float norm = std::sqrt(total);
  if (norm <= max_norm || norm == 0.0F) return;
  const float scale = max_norm / norm;
  for (Parameter* p : params_) p->grad.scale_(scale);
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  MLCR_CHECK(lr_ > 0.0F && momentum_ >= 0.0F && momentum_ < 1.0F);
  velocity_.reserve(params_.size());
  for (Parameter* p : params_)
    velocity_.push_back(Tensor::zeros(p->value.rows(), p->value.cols()));
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    if (momentum_ > 0.0F) {
      velocity_[i].scale_(momentum_);
      velocity_[i].axpy_(1.0F, p.grad);
      p.value.axpy_(-lr_, velocity_[i]);
    } else {
      p.value.axpy_(-lr_, p.grad);
    }
    p.grad.fill(0.0F);
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float epsilon)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  MLCR_CHECK(lr_ > 0.0F);
  MLCR_CHECK(beta1_ >= 0.0F && beta1_ < 1.0F);
  MLCR_CHECK(beta2_ >= 0.0F && beta2_ < 1.0F);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.push_back(Tensor::zeros(p->value.rows(), p->value.cols()));
    v_.push_back(Tensor::zeros(p->value.rows(), p->value.cols()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    float* m = m_[i].data();
    float* v = v_[i].data();
    float* w = p.value.data();
    const float* g = p.grad.data();
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0F - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0F - beta2_) * g[j] * g[j];
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      w[j] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
    p.grad.fill(0.0F);
  }
}

}  // namespace mlcr::nn
