// Multi-head self-attention and the pre-LN transformer block used by the
// MLCR policy network (paper Sec. IV-B/IV-C: two multi-head attention layers
// help the model capture temporal/workload relationships between the
// function, the cluster, and the warm containers).
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace mlcr::nn {

/// Self-attention over the rows (tokens) of the input matrix (T x d).
class MultiHeadAttention final : public Module {
 public:
  MultiHeadAttention(std::size_t dim, std::size_t heads, util::Rng& rng);

  [[nodiscard]] Tensor forward(const Tensor& input) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] std::string name() const override {
    return "MultiHeadAttention";
  }

  /// Inference-only batched forward over B stacked segments of
  /// `tokens_per_segment` rows each: attention is confined to each segment
  /// (token i of segment b attends only within segment b), so row block b
  /// of the result is bit-identical to forward() on that segment alone —
  /// the projections are row-wise and each segment's score matrix is
  /// computed by the exact same operations (asserted in tests/nn). Does not
  /// populate the backward caches or last_attention(); a backward() after
  /// this is invalid until the next forward().
  [[nodiscard]] Tensor forward_batched(const Tensor& input,
                                       std::size_t tokens_per_segment);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t heads() const noexcept { return heads_; }

  /// Attention weights of the last forward pass, one (T x T) matrix per
  /// head. Useful for interpretability tests and examples.
  [[nodiscard]] const std::vector<Tensor>& last_attention() const noexcept {
    return attn_;
  }

 private:
  std::size_t dim_;
  std::size_t heads_;
  std::size_t head_dim_;
  Linear q_proj_;
  Linear k_proj_;
  Linear v_proj_;
  Linear out_proj_;
  // Forward caches.
  Tensor q_, k_, v_;
  std::vector<Tensor> attn_;
};

/// Pre-LayerNorm transformer block:
///   h = x + MHA(LN1(x));  y = h + FFN(LN2(h)),  FFN = Linear-ReLU-Linear.
class TransformerBlock final : public Module {
 public:
  TransformerBlock(std::size_t dim, std::size_t heads, std::size_t ffn_dim,
                   util::Rng& rng);

  [[nodiscard]] Tensor forward(const Tensor& input) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] std::string name() const override {
    return "TransformerBlock";
  }

  /// Inference-only batched forward (see MultiHeadAttention::
  /// forward_batched): LayerNorm and the FFN are row-wise, so only the
  /// attention needs segment confinement.
  [[nodiscard]] Tensor forward_batched(const Tensor& input,
                                       std::size_t tokens_per_segment);

  [[nodiscard]] MultiHeadAttention& attention() noexcept { return mha_; }

 private:
  LayerNorm ln1_;
  MultiHeadAttention mha_;
  LayerNorm ln2_;
  Linear ffn1_;
  ReLU relu_;
  Linear ffn2_;
};

}  // namespace mlcr::nn
