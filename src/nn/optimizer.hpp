// Optimizers: plain SGD (with momentum) and Adam. Both operate on the
// Parameter list collected from a Module tree.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace mlcr::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Apply one update using the accumulated gradients, then clear them.
  virtual void step() = 0;

  /// Scale gradients so their global L2 norm is at most max_norm.
  void clip_grad_norm(float max_norm);

  [[nodiscard]] const std::vector<Parameter*>& params() const noexcept {
    return params_;
  }

 protected:
  std::vector<Parameter*> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0F);
  void step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr = 1e-3F, float beta1 = 0.9F,
       float beta2 = 0.999F, float epsilon = 1e-8F);
  void step() override;

  [[nodiscard]] float learning_rate() const noexcept { return lr_; }
  void set_learning_rate(float lr) noexcept { lr_ = lr; }

 private:
  float lr_, beta1_, beta2_, epsilon_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace mlcr::nn
