#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace mlcr::nn {

namespace {
constexpr char kMagic[] = "MLCRNN1\n";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;
/// Hard cap on serialized parameter-name length: a truncated or corrupt file
/// can yield an arbitrary 64-bit length, which would otherwise be fed
/// straight into a string allocation.
constexpr std::uint64_t kMaxNameLen = 1 << 16;

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  MLCR_CHECK_MSG(is.good(), "truncated parameter file");
  return v;
}
}  // namespace

void save_parameters(Module& module, std::ostream& os) {
  const auto params = module.parameters();
  os.write(kMagic, static_cast<std::streamsize>(kMagicLen));
  write_u64(os, params.size());
  for (const Parameter* p : params) {
    write_u64(os, p->name.size());
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u64(os, p->value.rows());
    write_u64(os, p->value.cols());
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  MLCR_CHECK_MSG(os.good(), "failed writing parameters");
}

void save_parameters(Module& module, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  MLCR_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  save_parameters(module, os);
}

void load_parameters(Module& module, std::istream& is) {
  char magic[kMagicLen] = {};
  is.read(magic, static_cast<std::streamsize>(kMagicLen));
  MLCR_CHECK_MSG(is.good() && std::string(magic, kMagicLen) == kMagic,
                 "not a MLCR parameter file");
  const auto params = module.parameters();
  const std::uint64_t count = read_u64(is);
  MLCR_CHECK_MSG(count == params.size(),
                 "parameter count mismatch: file has "
                     << count << ", module has " << params.size());
  for (Parameter* p : params) {
    const std::uint64_t name_len = read_u64(is);
    MLCR_CHECK_MSG(name_len <= kMaxNameLen,
                   "implausible parameter-name length "
                       << name_len << " — corrupt or truncated file");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    MLCR_CHECK_MSG(is.good(), "truncated parameter file reading name");
    MLCR_CHECK_MSG(name == p->name, "parameter name mismatch: file '"
                                        << name << "' vs module '" << p->name
                                        << "'");
    const std::uint64_t rows = read_u64(is);
    const std::uint64_t cols = read_u64(is);
    MLCR_CHECK_MSG(rows == p->value.rows() && cols == p->value.cols(),
                   "shape mismatch for " << name);
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    MLCR_CHECK_MSG(is.good(), "truncated parameter file at " << name);
  }
}

void load_parameters(Module& module, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  MLCR_CHECK_MSG(is.is_open(), "cannot open " << path << " for reading");
  load_parameters(module, is);
}

void copy_parameters(Module& src, Module& dst) {
  const auto s = src.parameters();
  const auto d = dst.parameters();
  MLCR_CHECK(s.size() == d.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    MLCR_CHECK(s[i]->value.same_shape(d[i]->value));
    d[i]->value = s[i]->value;
  }
}

void soft_update_parameters(Module& src, Module& dst, float tau) {
  MLCR_CHECK(tau >= 0.0F && tau <= 1.0F);
  const auto s = src.parameters();
  const auto d = dst.parameters();
  MLCR_CHECK(s.size() == d.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    MLCR_CHECK(s[i]->value.same_shape(d[i]->value));
    d[i]->value.scale_(1.0F - tau);
    d[i]->value.axpy_(tau, s[i]->value);
  }
}

}  // namespace mlcr::nn
