// Basic layers: Linear, LayerNorm, ReLU, Sequential.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace mlcr::nn {

/// y = x W + b, x is (T x in), W is (in x out), b is (1 x out).
class Linear final : public Module {
 public:
  Linear(std::size_t in, std::size_t out, util::Rng& rng, bool bias = true);

  [[nodiscard]] Tensor forward(const Tensor& input) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::size_t in_features() const noexcept {
    return weight_.value.rows();
  }
  [[nodiscard]] std::size_t out_features() const noexcept {
    return weight_.value.cols();
  }
  [[nodiscard]] Parameter& weight() noexcept { return weight_; }
  [[nodiscard]] Parameter* bias() noexcept {
    return has_bias_ ? &bias_ : nullptr;
  }

 private:
  Parameter weight_;
  Parameter bias_;
  bool has_bias_;
  Tensor cached_input_;
};

/// Per-row layer normalization with learned gain and bias.
class LayerNorm final : public Module {
 public:
  explicit LayerNorm(std::size_t dim, float epsilon = 1e-5F);

  [[nodiscard]] Tensor forward(const Tensor& input) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] std::string name() const override { return "LayerNorm"; }

 private:
  Parameter gain_;
  Parameter bias_;
  float epsilon_;
  Tensor cached_norm_;        // x_hat
  std::vector<float> cached_inv_std_;
};

class ReLU final : public Module {
 public:
  [[nodiscard]] Tensor forward(const Tensor& input) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// Runs children in order; backward in reverse.
class Sequential final : public Module {
 public:
  Sequential() = default;

  Sequential& add(std::unique_ptr<Module> module) {
    children_.push_back(std::move(module));
    return *this;
  }

  [[nodiscard]] Tensor forward(const Tensor& input) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }

  [[nodiscard]] std::size_t size() const noexcept { return children_.size(); }

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace mlcr::nn
