#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mlcr::nn {

namespace {

/// Weighted sum of elements: L = sum(output .* seed).
[[nodiscard]] float weighted_loss(const Tensor& output, const Tensor& seed) {
  MLCR_CHECK(output.same_shape(seed));
  float loss = 0.0F;
  for (std::size_t r = 0; r < output.rows(); ++r)
    for (std::size_t c = 0; c < output.cols(); ++c)
      loss += output(r, c) * seed(r, c);
  return loss;
}

void accumulate(GradCheckResult& res, float analytic, float numeric) {
  const float abs_err = std::abs(analytic - numeric);
  // The denominator floor of 1e-2 keeps near-zero gradients from tripping
  // the relative check on float round-off: central differences on a loss of
  // O(1) carry ~2^-24 / (2 eps) ≈ 6e-5 of absolute noise, which is real
  // noise, not a wrong gradient (e.g. the K-projection bias of softmax
  // attention has an exactly-zero analytic gradient).
  const float denom =
      std::max({std::abs(analytic), std::abs(numeric), 1e-2F});
  res.max_abs_error = std::max(res.max_abs_error, abs_err);
  res.max_rel_error = std::max(res.max_rel_error, abs_err / denom);
  ++res.checked;
}

}  // namespace

GradCheckResult check_input_gradient(Module& module, const Tensor& input,
                                     const Tensor& loss_seed, float eps) {
  module.zero_grad();
  const Tensor out = module.forward(input);
  const Tensor analytic = module.backward(loss_seed);

  GradCheckResult res;
  Tensor perturbed = input;
  for (std::size_t r = 0; r < input.rows(); ++r) {
    for (std::size_t c = 0; c < input.cols(); ++c) {
      const float orig = perturbed(r, c);
      perturbed(r, c) = orig + eps;
      const float up = weighted_loss(module.forward(perturbed), loss_seed);
      perturbed(r, c) = orig - eps;
      const float down = weighted_loss(module.forward(perturbed), loss_seed);
      perturbed(r, c) = orig;
      accumulate(res, analytic(r, c), (up - down) / (2.0F * eps));
    }
  }
  return res;
}

GradCheckResult check_parameter_gradients(Module& module, const Tensor& input,
                                          const Tensor& loss_seed, float eps) {
  module.zero_grad();
  (void)module.forward(input);
  (void)module.backward(loss_seed);

  // Snapshot analytic grads before the finite-difference forwards disturb
  // the module's caches.
  std::vector<Tensor> analytic;
  for (Parameter* p : module.parameters()) analytic.push_back(p->grad);

  GradCheckResult res;
  const auto params = module.parameters();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& value = params[pi]->value;
    for (std::size_t r = 0; r < value.rows(); ++r) {
      for (std::size_t c = 0; c < value.cols(); ++c) {
        const float orig = value(r, c);
        value(r, c) = orig + eps;
        const float up = weighted_loss(module.forward(input), loss_seed);
        value(r, c) = orig - eps;
        const float down = weighted_loss(module.forward(input), loss_seed);
        value(r, c) = orig;
        accumulate(res, analytic[pi](r, c), (up - down) / (2.0F * eps));
      }
    }
  }
  return res;
}

}  // namespace mlcr::nn
