#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/check.hpp"

namespace mlcr::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor::Tensor(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    MLCR_CHECK_MSG(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, 0.0F);
}

Tensor Tensor::he_uniform(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Tensor t(rows, cols);
  const float limit = std::sqrt(6.0F / static_cast<float>(rows));
  for (std::size_t i = 0; i < t.size(); ++i)
    t.data_[i] = static_cast<float>(rng.uniform(-limit, limit));
  return t;
}

Tensor Tensor::xavier_uniform(std::size_t rows, std::size_t cols,
                              util::Rng& rng) {
  Tensor t(rows, cols);
  const float limit = std::sqrt(6.0F / static_cast<float>(rows + cols));
  for (std::size_t i = 0; i < t.size(); ++i)
    t.data_[i] = static_cast<float>(rng.uniform(-limit, limit));
  return t;
}

float& Tensor::at(std::size_t r, std::size_t c) {
  MLCR_CHECK_MSG(r < rows_ && c < cols_, "index (" << r << "," << c
                                                   << ") out of " << rows_
                                                   << "x" << cols_);
  return (*this)(r, c);
}

float Tensor::at(std::size_t r, std::size_t c) const {
  MLCR_CHECK_MSG(r < rows_ && c < cols_, "index (" << r << "," << c
                                                   << ") out of " << rows_
                                                   << "x" << cols_);
  return (*this)(r, c);
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_(const Tensor& other) {
  MLCR_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::axpy_(float alpha, const Tensor& other) {
  MLCR_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

void Tensor::scale_(float alpha) noexcept {
  for (float& v : data_) v *= alpha;
}

void Tensor::add_row_broadcast_(const Tensor& bias) {
  MLCR_CHECK(bias.rows_ == 1 && bias.cols_ == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    float* out = row(r);
    for (std::size_t c = 0; c < cols_; ++c) out[c] += bias.data_[c];
  }
}

Tensor Tensor::transposed() const {
  Tensor t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

float Tensor::sum() const noexcept {
  float s = 0.0F;
  for (float v : data_) s += v;
  return s;
}

float Tensor::max_abs() const noexcept {
  float m = 0.0F;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

float Tensor::squared_norm() const noexcept {
  float s = 0.0F;
  for (float v : data_) s += v * v;
  return s;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  MLCR_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch: "
                                           << a.rows() << "x" << a.cols()
                                           << " . " << b.rows() << "x"
                                           << b.cols());
  Tensor out(a.rows(), b.cols());
  // i-k-j loop order: unit-stride access on b and out.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = arow[k];
      if (aik == 0.0F) continue;
      const float* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  MLCR_CHECK_MSG(a.rows() == b.rows(), "matmul_tn shape mismatch");
  Tensor out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0F) continue;
      float* orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aki * brow[j];
    }
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  MLCR_CHECK_MSG(a.cols() == b.cols(), "matmul_nt shape mismatch");
  Tensor out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j);
      float dot = 0.0F;
      for (std::size_t k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
      orow[j] = dot;
    }
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.row(r);
    float* o = out.row(r);
    float max_v = in[0];
    for (std::size_t c = 1; c < logits.cols(); ++c)
      max_v = std::max(max_v, in[c]);
    float denom = 0.0F;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      o[c] = std::exp(in[c] - max_v);
      denom += o[c];
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) o[c] /= denom;
  }
  return out;
}

Tensor softmax_rows_backward(const Tensor& y, const Tensor& grad_y) {
  MLCR_CHECK(y.same_shape(grad_y));
  Tensor grad_x(y.rows(), y.cols());
  for (std::size_t r = 0; r < y.rows(); ++r) {
    const float* yr = y.row(r);
    const float* gy = grad_y.row(r);
    float* gx = grad_x.row(r);
    float dot = 0.0F;
    for (std::size_t c = 0; c < y.cols(); ++c) dot += yr[c] * gy[c];
    for (std::size_t c = 0; c < y.cols(); ++c)
      gx[c] = yr[c] * (gy[c] - dot);
  }
  return grad_x;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor(" << t.rows() << "x" << t.cols() << ")[";
  for (std::size_t r = 0; r < t.rows(); ++r) {
    os << (r ? "; " : "");
    for (std::size_t c = 0; c < t.cols(); ++c)
      os << (c ? " " : "") << t(r, c);
  }
  return os << "]";
}

}  // namespace mlcr::nn
