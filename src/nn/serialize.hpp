// Weight (de)serialization: a simple self-describing binary format so a
// trained policy can be saved offline and loaded for online inference
// (paper Sec. VI-D: the model is trained once offline, then deployed).
//
// Format: magic "MLCRNN1\n", u64 parameter count, then per parameter:
// u64 name length + bytes, u64 rows, u64 cols, rows*cols f32 values.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace mlcr::nn {

/// Serialize all parameters of `module` (in collect order) to `os`.
void save_parameters(Module& module, std::ostream& os);
void save_parameters(Module& module, const std::string& path);

/// Load parameters into `module`. The module must have the same parameter
/// names/shapes in the same order; throws CheckError on any mismatch.
void load_parameters(Module& module, std::istream& is);
void load_parameters(Module& module, const std::string& path);

/// Copy parameter values from `src` to `dst` (same structure). Used to sync
/// the DQN target network.
void copy_parameters(Module& src, Module& dst);

/// Soft update: dst = (1 - tau) * dst + tau * src.
void soft_update_parameters(Module& src, Module& dst, float tau);

}  // namespace mlcr::nn
