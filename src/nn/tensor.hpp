// Minimal dense 2-D float tensor with the operations the policy network
// needs. Row-major, value semantics. This is deliberately small: the DQN in
// this repo processes one token matrix (tokens x features) at a time, and the
// matrices are tiny (tens of rows, ~64-128 columns), so a straightforward
// cache-friendly triple loop outperforms anything fancier at this size.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "util/rng.hpp"

namespace mlcr::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0F);
  /// 2-D initializer list, e.g. Tensor({{1, 2}, {3, 4}}).
  Tensor(std::initializer_list<std::initializer_list<float>> rows);

  [[nodiscard]] static Tensor zeros(std::size_t rows, std::size_t cols);
  /// He-uniform initialization: U(-limit, limit), limit = sqrt(6 / fan_in).
  [[nodiscard]] static Tensor he_uniform(std::size_t rows, std::size_t cols,
                                         util::Rng& rng);
  /// Xavier-uniform: limit = sqrt(6 / (fan_in + fan_out)).
  [[nodiscard]] static Tensor xavier_uniform(std::size_t rows,
                                             std::size_t cols, util::Rng& rng);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float& at(std::size_t r, std::size_t c);
  [[nodiscard]] float at(std::size_t r, std::size_t c) const;
  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] float* row(std::size_t r) noexcept {
    return data_.data() + r * cols_;
  }
  [[nodiscard]] const float* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  void fill(float value) noexcept;
  /// this += other (same shape).
  void add_(const Tensor& other);
  /// this += alpha * other (same shape).
  void axpy_(float alpha, const Tensor& other);
  /// this *= alpha.
  void scale_(float alpha) noexcept;
  /// Adds `bias` (1 x cols) to every row.
  void add_row_broadcast_(const Tensor& bias);

  [[nodiscard]] Tensor transposed() const;
  /// Sum of all elements.
  [[nodiscard]] float sum() const noexcept;
  /// Largest absolute element (0 for empty tensors).
  [[nodiscard]] float max_abs() const noexcept;
  /// Squared Frobenius norm.
  [[nodiscard]] float squared_norm() const noexcept;

  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }
  [[nodiscard]] bool operator==(const Tensor& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b; shapes (m x k) . (k x n) -> (m x n).
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);
/// out = a^T * b; shapes (k x m) . (k x n) -> (m x n).
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// out = a * b^T; shapes (m x k) . (n x k) -> (m x n).
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Row-wise numerically-stable softmax.
[[nodiscard]] Tensor softmax_rows(const Tensor& logits);
/// Backward of softmax_rows: given y = softmax(x) and dL/dy, return dL/dx.
[[nodiscard]] Tensor softmax_rows_backward(const Tensor& y,
                                           const Tensor& grad_y);

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace mlcr::nn
