#include "nn/layers.hpp"

#include <cmath>

#include "util/check.hpp"

namespace mlcr::nn {

Linear::Linear(std::size_t in, std::size_t out, util::Rng& rng, bool bias)
    : weight_("weight", Tensor::he_uniform(in, out, rng)),
      bias_("bias", Tensor::zeros(1, out)),
      has_bias_(bias) {
  MLCR_CHECK(in > 0 && out > 0);
}

Tensor Linear::forward(const Tensor& input) {
  MLCR_CHECK_MSG(input.cols() == in_features(),
                 "Linear expects " << in_features() << " features, got "
                                   << input.cols());
  cached_input_ = input;
  Tensor out = matmul(input, weight_.value);
  if (has_bias_) out.add_row_broadcast_(bias_.value);
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  MLCR_CHECK(grad_output.rows() == cached_input_.rows());
  MLCR_CHECK(grad_output.cols() == out_features());
  weight_.grad.add_(matmul_tn(cached_input_, grad_output));
  if (has_bias_) {
    for (std::size_t r = 0; r < grad_output.rows(); ++r)
      for (std::size_t c = 0; c < grad_output.cols(); ++c)
        bias_.grad(0, c) += grad_output(r, c);
  }
  return matmul_nt(grad_output, weight_.value);
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

LayerNorm::LayerNorm(std::size_t dim, float epsilon)
    : gain_("gain", Tensor(1, dim, 1.0F)),
      bias_("bias", Tensor::zeros(1, dim)),
      epsilon_(epsilon) {
  MLCR_CHECK(dim > 0);
}

Tensor LayerNorm::forward(const Tensor& input) {
  const std::size_t dim = gain_.value.cols();
  MLCR_CHECK(input.cols() == dim);
  cached_norm_ = Tensor(input.rows(), dim);
  cached_inv_std_.assign(input.rows(), 0.0F);
  Tensor out(input.rows(), dim);
  for (std::size_t r = 0; r < input.rows(); ++r) {
    const float* x = input.row(r);
    float mean = 0.0F;
    for (std::size_t c = 0; c < dim; ++c) mean += x[c];
    mean /= static_cast<float>(dim);
    float var = 0.0F;
    for (std::size_t c = 0; c < dim; ++c)
      var += (x[c] - mean) * (x[c] - mean);
    var /= static_cast<float>(dim);
    const float inv_std = 1.0F / std::sqrt(var + epsilon_);
    cached_inv_std_[r] = inv_std;
    float* xh = cached_norm_.row(r);
    float* o = out.row(r);
    for (std::size_t c = 0; c < dim; ++c) {
      xh[c] = (x[c] - mean) * inv_std;
      o[c] = xh[c] * gain_.value(0, c) + bias_.value(0, c);
    }
  }
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_output) {
  MLCR_CHECK(grad_output.same_shape(cached_norm_));
  const std::size_t dim = gain_.value.cols();
  Tensor grad_in(grad_output.rows(), dim);
  for (std::size_t r = 0; r < grad_output.rows(); ++r) {
    const float* gy = grad_output.row(r);
    const float* xh = cached_norm_.row(r);
    float* gx = grad_in.row(r);
    // dL/dx_hat = gy * gain; grads of gain/bias accumulate.
    float sum_g = 0.0F;
    float sum_gx = 0.0F;
    for (std::size_t c = 0; c < dim; ++c) {
      gain_.grad(0, c) += gy[c] * xh[c];
      bias_.grad(0, c) += gy[c];
      const float g = gy[c] * gain_.value(0, c);
      sum_g += g;
      sum_gx += g * xh[c];
    }
    const float n = static_cast<float>(dim);
    const float inv_std = cached_inv_std_[r];
    for (std::size_t c = 0; c < dim; ++c) {
      const float g = gy[c] * gain_.value(0, c);
      gx[c] = inv_std * (g - sum_g / n - xh[c] * sum_gx / n);
    }
  }
  return grad_in;
}

void LayerNorm::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gain_);
  out.push_back(&bias_);
}

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c)
      if (row[c] < 0.0F) row[c] = 0.0F;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  MLCR_CHECK(grad_output.same_shape(cached_input_));
  Tensor grad_in = grad_output;
  for (std::size_t r = 0; r < grad_in.rows(); ++r) {
    float* g = grad_in.row(r);
    const float* x = cached_input_.row(r);
    for (std::size_t c = 0; c < grad_in.cols(); ++c)
      if (x[c] <= 0.0F) g[c] = 0.0F;
  }
  return grad_in;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (const auto& child : children_) x = child->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (const auto& child : children_) child->collect_parameters(out);
}

}  // namespace mlcr::nn
