#include "nn/attention.hpp"

#include <cmath>

#include "util/check.hpp"

namespace mlcr::nn {

namespace {

/// Copy a column block [from, from + width) of `src` into a new tensor.
[[nodiscard]] Tensor col_block(const Tensor& src, std::size_t from,
                               std::size_t width) {
  Tensor out(src.rows(), width);
  for (std::size_t r = 0; r < src.rows(); ++r) {
    const float* in = src.row(r) + from;
    float* o = out.row(r);
    for (std::size_t c = 0; c < width; ++c) o[c] = in[c];
  }
  return out;
}

/// dst[:, from : from + block.cols()] += block.
void add_col_block(Tensor& dst, std::size_t from, const Tensor& block) {
  MLCR_CHECK(dst.rows() == block.rows());
  MLCR_CHECK(from + block.cols() <= dst.cols());
  for (std::size_t r = 0; r < dst.rows(); ++r) {
    float* out = dst.row(r) + from;
    const float* in = block.row(r);
    for (std::size_t c = 0; c < block.cols(); ++c) out[c] += in[c];
  }
}

/// Copy the (rows x cols) block of `src` starting at (row_from, col_from).
[[nodiscard]] Tensor block(const Tensor& src, std::size_t row_from,
                           std::size_t rows, std::size_t col_from,
                           std::size_t cols) {
  Tensor out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = src.row(row_from + r) + col_from;
    float* o = out.row(r);
    for (std::size_t c = 0; c < cols; ++c) o[c] = in[c];
  }
  return out;
}

/// dst[row_from + r, col_from + c] += b(r, c).
void add_block(Tensor& dst, std::size_t row_from, std::size_t col_from,
               const Tensor& b) {
  MLCR_CHECK(row_from + b.rows() <= dst.rows());
  MLCR_CHECK(col_from + b.cols() <= dst.cols());
  for (std::size_t r = 0; r < b.rows(); ++r) {
    float* out = dst.row(row_from + r) + col_from;
    const float* in = b.row(r);
    for (std::size_t c = 0; c < b.cols(); ++c) out[c] += in[c];
  }
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(std::size_t dim, std::size_t heads,
                                       util::Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      q_proj_(dim, dim, rng),
      k_proj_(dim, dim, rng),
      v_proj_(dim, dim, rng),
      out_proj_(dim, dim, rng) {
  MLCR_CHECK_MSG(heads > 0 && dim % heads == 0,
                 "dim " << dim << " must be divisible by heads " << heads);
}

Tensor MultiHeadAttention::forward(const Tensor& input) {
  MLCR_CHECK(input.cols() == dim_);
  q_ = q_proj_.forward(input);
  k_ = k_proj_.forward(input);
  v_ = v_proj_.forward(input);

  const float scale = 1.0F / std::sqrt(static_cast<float>(head_dim_));
  attn_.assign(heads_, Tensor());
  Tensor concat(input.rows(), dim_);
  for (std::size_t h = 0; h < heads_; ++h) {
    const std::size_t from = h * head_dim_;
    const Tensor qh = col_block(q_, from, head_dim_);
    const Tensor kh = col_block(k_, from, head_dim_);
    const Tensor vh = col_block(v_, from, head_dim_);
    Tensor scores = matmul_nt(qh, kh);
    scores.scale_(scale);
    attn_[h] = softmax_rows(scores);
    add_col_block(concat, from, matmul(attn_[h], vh));
  }
  return out_proj_.forward(concat);
}

Tensor MultiHeadAttention::forward_batched(const Tensor& input,
                                           std::size_t tokens_per_segment) {
  MLCR_CHECK(input.cols() == dim_);
  MLCR_CHECK_MSG(
      tokens_per_segment > 0 && input.rows() % tokens_per_segment == 0,
      "batched input of " << input.rows() << " rows is not a whole number of "
                          << tokens_per_segment << "-token segments");
  // The projections are row-wise, so one pass over the stack computes every
  // segment's q/k/v exactly as forward() would.
  const Tensor q = q_proj_.forward(input);
  const Tensor k = k_proj_.forward(input);
  const Tensor v = v_proj_.forward(input);

  const float scale = 1.0F / std::sqrt(static_cast<float>(head_dim_));
  const std::size_t segments = input.rows() / tokens_per_segment;
  Tensor concat(input.rows(), dim_);
  for (std::size_t s = 0; s < segments; ++s) {
    const std::size_t row_from = s * tokens_per_segment;
    for (std::size_t h = 0; h < heads_; ++h) {
      const std::size_t from = h * head_dim_;
      const Tensor qh = block(q, row_from, tokens_per_segment, from,
                              head_dim_);
      const Tensor kh = block(k, row_from, tokens_per_segment, from,
                              head_dim_);
      const Tensor vh = block(v, row_from, tokens_per_segment, from,
                              head_dim_);
      Tensor scores = matmul_nt(qh, kh);
      scores.scale_(scale);
      add_block(concat, row_from, from, matmul(softmax_rows(scores), vh));
    }
  }
  return out_proj_.forward(concat);
}

Tensor MultiHeadAttention::backward(const Tensor& grad_output) {
  const Tensor grad_concat = out_proj_.backward(grad_output);

  const float scale = 1.0F / std::sqrt(static_cast<float>(head_dim_));
  Tensor grad_q(q_.rows(), dim_);
  Tensor grad_k(k_.rows(), dim_);
  Tensor grad_v(v_.rows(), dim_);

  for (std::size_t h = 0; h < heads_; ++h) {
    const std::size_t from = h * head_dim_;
    const Tensor qh = col_block(q_, from, head_dim_);
    const Tensor kh = col_block(k_, from, head_dim_);
    const Tensor vh = col_block(v_, from, head_dim_);
    const Tensor grad_oh = col_block(grad_concat, from, head_dim_);

    const Tensor grad_attn = matmul_nt(grad_oh, vh);        // (T x T)
    const Tensor grad_vh = matmul_tn(attn_[h], grad_oh);    // (T x dh)
    Tensor grad_scores = softmax_rows_backward(attn_[h], grad_attn);
    grad_scores.scale_(scale);
    const Tensor grad_qh = matmul(grad_scores, kh);          // (T x dh)
    const Tensor grad_kh = matmul_tn(grad_scores, qh);       // (T x dh)

    add_col_block(grad_q, from, grad_qh);
    add_col_block(grad_k, from, grad_kh);
    add_col_block(grad_v, from, grad_vh);
  }

  Tensor grad_input = q_proj_.backward(grad_q);
  grad_input.add_(k_proj_.backward(grad_k));
  grad_input.add_(v_proj_.backward(grad_v));
  return grad_input;
}

void MultiHeadAttention::collect_parameters(std::vector<Parameter*>& out) {
  q_proj_.collect_parameters(out);
  k_proj_.collect_parameters(out);
  v_proj_.collect_parameters(out);
  out_proj_.collect_parameters(out);
}

TransformerBlock::TransformerBlock(std::size_t dim, std::size_t heads,
                                   std::size_t ffn_dim, util::Rng& rng)
    : ln1_(dim),
      mha_(dim, heads, rng),
      ln2_(dim),
      ffn1_(dim, ffn_dim, rng),
      ffn2_(ffn_dim, dim, rng) {}

Tensor TransformerBlock::forward(const Tensor& input) {
  Tensor h = input;
  h.add_(mha_.forward(ln1_.forward(input)));
  Tensor y = h;
  y.add_(ffn2_.forward(relu_.forward(ffn1_.forward(ln2_.forward(h)))));
  return y;
}

Tensor TransformerBlock::forward_batched(const Tensor& input,
                                         std::size_t tokens_per_segment) {
  Tensor h = input;
  h.add_(mha_.forward_batched(ln1_.forward(input), tokens_per_segment));
  Tensor y = h;
  y.add_(ffn2_.forward(relu_.forward(ffn1_.forward(ln2_.forward(h)))));
  return y;
}

Tensor TransformerBlock::backward(const Tensor& grad_output) {
  // y = h + FFN(LN2(h)): both summands receive grad_output.
  const Tensor grad_ffn_path = ln2_.backward(
      ffn1_.backward(relu_.backward(ffn2_.backward(grad_output))));
  Tensor grad_h = grad_output;
  grad_h.add_(grad_ffn_path);
  // h = x + MHA(LN1(x)).
  const Tensor grad_mha_path = ln1_.backward(mha_.backward(grad_h));
  Tensor grad_x = grad_h;
  grad_x.add_(grad_mha_path);
  return grad_x;
}

void TransformerBlock::collect_parameters(std::vector<Parameter*>& out) {
  ln1_.collect_parameters(out);
  mha_.collect_parameters(out);
  ln2_.collect_parameters(out);
  ffn1_.collect_parameters(out);
  ffn2_.collect_parameters(out);
}

}  // namespace mlcr::nn
