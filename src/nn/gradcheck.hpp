// Finite-difference gradient verification, used by the test suite to prove
// every layer's backward pass against its forward pass.
#pragma once

#include <functional>

#include "nn/module.hpp"

namespace mlcr::nn {

struct GradCheckResult {
  float max_abs_error = 0.0F;   ///< worst |analytic - numeric|
  float max_rel_error = 0.0F;   ///< worst relative error (guarded denominator)
  std::size_t checked = 0;      ///< number of scalars compared
};

/// Verifies d(sum of outputs * seed)/d(input) of `module` at `input` using
/// central differences with step `eps`. `loss_seed` weights each output
/// element (pass a tensor of the output shape; a fixed pseudo-random seed
/// catches errors that a uniform weighting can cancel out).
[[nodiscard]] GradCheckResult check_input_gradient(Module& module,
                                                   const Tensor& input,
                                                   const Tensor& loss_seed,
                                                   float eps = 1e-3F);

/// Verifies the parameter gradients of `module` the same way.
[[nodiscard]] GradCheckResult check_parameter_gradients(Module& module,
                                                        const Tensor& input,
                                                        const Tensor& loss_seed,
                                                        float eps = 1e-3F);

}  // namespace mlcr::nn
