// Module abstraction: Caffe-style explicit forward/backward with cached
// activations. Each module owns its parameters (value + gradient); gradients
// accumulate across backward calls until zero_grad(). The contract is one
// backward() per forward(); batching loops over samples and lets the
// gradients accumulate — at the policy network's sizes (tens of tokens,
// d=64..128) this is faster and far simpler than a general autograd tape.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace mlcr::nn {

/// A learnable tensor and its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)),
        value(std::move(v)),
        grad(Tensor::zeros(value.rows(), value.cols())) {}
};

class Module {
 public:
  virtual ~Module() = default;

  /// Compute the output and cache whatever backward() needs.
  [[nodiscard]] virtual Tensor forward(const Tensor& input) = 0;

  /// Propagate dL/d(output) to dL/d(input), accumulating parameter grads.
  /// Must be called exactly once after each forward().
  [[nodiscard]] virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Append pointers to all parameters (recursively for containers).
  virtual void collect_parameters(std::vector<Parameter*>& out) {
    (void)out;
  }

  [[nodiscard]] std::vector<Parameter*> parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
  }

  void zero_grad() {
    for (Parameter* p : parameters()) p->grad.fill(0.0F);
  }

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t parameter_count() {
    std::size_t n = 0;
    for (Parameter* p : parameters()) n += p->value.size();
    return n;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace mlcr::nn
