#include "containers/registry.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace mlcr::containers {

SyntheticRegistry::SyntheticRegistry(const PackageCatalog& catalog,
                                     RegistryConfig config, util::Rng rng)
    : catalog_(catalog) {
  MLCR_CHECK(config.num_images > 0);

  // Partition the catalog by level.
  std::vector<PackageId> os, lang, rt;
  for (PackageId id = 0; id < catalog.size(); ++id) {
    switch (catalog.info(id).level) {
      case Level::kOs:
        os.push_back(id);
        break;
      case Level::kLanguage:
        lang.push_back(id);
        break;
      case Level::kRuntime:
        rt.push_back(id);
        break;
    }
  }
  MLCR_CHECK_MSG(!os.empty() && !lang.empty(),
                 "registry needs OS and language packages in the catalog");

  const util::ZipfSampler os_zipf(os.size(), config.os_choice_exponent);
  const util::ZipfSampler lang_zipf(lang.size(),
                                    config.language_choice_exponent);
  const util::ZipfSampler image_zipf(config.num_images,
                                     config.image_popularity_exponent);

  images_.resize(config.num_images);
  for (std::size_t i = 0; i < config.num_images; ++i) {
    std::vector<PackageId> image_os = {os[os_zipf.sample(rng)]};
    std::vector<PackageId> image_lang = {lang[lang_zipf.sample(rng)]};
    std::vector<PackageId> image_rt;
    if (!rt.empty() && config.max_runtime_packages > 0) {
      const auto n = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(config.min_runtime_packages),
          static_cast<std::int64_t>(config.max_runtime_packages)));
      for (std::size_t j = 0; j < n; ++j)
        image_rt.push_back(rt[rng.uniform_index(rt.size())]);
    }
    images_[i].image = ImageSpec(std::move(image_os), std::move(image_lang),
                                 std::move(image_rt));
    // Expected pulls for this popularity rank; deterministic given the seed.
    images_[i].pull_count = static_cast<std::uint64_t>(
        image_zipf.probability(i) * static_cast<double>(config.total_pulls));
  }
}

std::vector<PackagePopularity> SyntheticRegistry::popularity(
    Level level) const {
  // Aggregated in deterministic key order (std::map): the rows feed the
  // Fig. 3 tables directly, so iteration order must not depend on hashing.
  std::map<PackageId, std::uint64_t> pulls;
  std::uint64_t total = 0;
  for (const auto& img : images_) {
    total += img.pull_count;
    for (PackageId p : img.image.level(level)) pulls[p] += img.pull_count;
  }
  std::vector<PackagePopularity> out;
  out.reserve(pulls.size());
  for (const auto& [pkg, count] : pulls) {
    PackagePopularity p;
    p.package = pkg;
    p.name = catalog_.info(pkg).name;
    p.pull_count = count;
    p.share = total ? static_cast<double>(count) / static_cast<double>(total)
                    : 0.0;
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(),
            [](const PackagePopularity& a, const PackagePopularity& b) {
              if (a.pull_count != b.pull_count)
                return a.pull_count > b.pull_count;
              return a.package < b.package;
            });
  return out;
}

double SyntheticRegistry::top_k_share(Level level, std::size_t k) const {
  const auto pop = popularity(level);
  double share = 0.0;
  for (std::size_t i = 0; i < std::min(k, pop.size()); ++i)
    share += pop[i].share;
  return share;
}

}  // namespace mlcr::containers
