// Level-wise package classification from Dockerfiles (paper Fig. 5 and the
// stated future-work item: "design automatic tool to facilitate the
// level-wise package classification"). Parses the subset of Dockerfile
// syntax that determines a function image's packages and assigns each to
// the OS / language / runtime level:
//
//   FROM ubuntu:20.04                      -> OS level
//   RUN apt install -y python3 curl        -> language (python3) + runtime
//   RUN wget .../Python-3.9.17.tgz && ...  -> language (source build)
//   RUN pip install torch==2.0.1 torchvision
//                                          -> runtime packages
//
// Unrecognized lines (ENV, WORKDIR, COPY, CMD, comments) are ignored, like
// the paper's example highlights only package-bearing lines.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "containers/image.hpp"

namespace mlcr::containers {

/// The classified contents of one Dockerfile.
struct DockerfileAnalysis {
  /// Base image from the FROM line (e.g. "ubuntu:20.04"); empty if absent.
  std::string base_image;
  /// Package names per level (normalized: version suffixes stripped for
  /// package-manager installs; source builds keep "name-major.minor").
  std::vector<std::string> os_packages;
  std::vector<std::string> language_packages;
  std::vector<std::string> runtime_packages;

  /// Resolve the analysis against a catalog: names found in the catalog are
  /// placed into the ImageSpec; the rest are reported in `unknown`.
  struct Resolution {
    ImageSpec image;
    std::vector<std::string> unknown;
  };
  [[nodiscard]] Resolution resolve(const PackageCatalog& catalog) const;
};

/// Classifier with a configurable language-package vocabulary.
class DockerfileClassifier {
 public:
  DockerfileClassifier();

  /// Register an additional package name (as installed via apt/apk/yum)
  /// that should be classified as a language-level package.
  void add_language_package(std::string name);

  /// Classify Dockerfile text. Handles line continuations (trailing
  /// backslash), comments, and multi-command RUN lines joined with "&&".
  [[nodiscard]] DockerfileAnalysis classify(std::string_view dockerfile) const;

 private:
  [[nodiscard]] bool is_language_package(std::string_view name) const;
  void classify_run_command(std::string_view command,
                            DockerfileAnalysis& out) const;

  std::vector<std::string> language_vocabulary_;
};

/// Strip version decorations from a package token:
/// "torch==2.0.1+cpu" -> "torch", "flask>=2" -> "flask", "pkg=1.2-r0" -> "pkg".
[[nodiscard]] std::string strip_version(std::string_view token);

}  // namespace mlcr::containers
