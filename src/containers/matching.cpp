#include "containers/matching.hpp"

namespace mlcr::containers {

std::string_view to_string(MatchLevel level) noexcept {
  switch (level) {
    case MatchLevel::kNoMatch:
      return "no-match";
    case MatchLevel::kL1:
      return "L1";
    case MatchLevel::kL2:
      return "L2";
    case MatchLevel::kL3:
      return "L3";
  }
  return "?";
}

MatchLevel match(const ImageSpec& function, const ImageSpec& container) noexcept {
  if (!function.level_equals(container, Level::kOs)) return MatchLevel::kNoMatch;
  if (!function.level_equals(container, Level::kLanguage)) return MatchLevel::kL1;
  if (!function.level_equals(container, Level::kRuntime)) return MatchLevel::kL2;
  return MatchLevel::kL3;
}

}  // namespace mlcr::containers
