// Container cleaner (paper Sec. III "Container cleaner"): when a warm
// container is reused by a different function, package volumes are swapped —
// private language/runtime volumes are unmounted and the required volumes are
// mounted from the function database. OS packages live on the container's
// writable layer, not on a volume, which is why an OS mismatch forces a cold
// start (Table I pruning).
#pragma once

#include "containers/container.hpp"
#include "containers/matching.hpp"

namespace mlcr::containers {

/// The volume operations a repack performs, and their latency.
struct RepackPlan {
  MatchLevel match = MatchLevel::kNoMatch;
  /// Volumes removed from the container (language / runtime / user-data).
  int unmounted_volumes = 0;
  /// Volumes attached from the function database.
  int mounted_volumes = 0;
  /// Pure volume-management latency, seconds (mount/unmount syscalls); the
  /// cost of pulling/installing packages that are *not* in the function
  /// database is accounted separately by sim::StartupCostModel.
  double volume_ops_s = 0.0;
};

/// Cost knobs for volume management; defaults follow podman-scale latencies.
struct CleanerConfig {
  double unmount_s = 0.003;  ///< per-volume unmount
  double mount_s = 0.005;    ///< per-volume mount
  /// The user-data volume is always swapped on reuse, even at a full match
  /// (isolation between tenants).
  bool swap_user_data_volume = true;
};

/// Applies the multi-level repack to a container so it can serve `function`.
class ContainerCleaner {
 public:
  explicit ContainerCleaner(CleanerConfig config = {}) : config_(config) {}

  /// Plans the volume operations needed to reuse `container` for an
  /// invocation with image `function`, given their match level.
  /// Requires reusable(level).
  [[nodiscard]] RepackPlan plan(const ImageSpec& function,
                                MatchLevel level) const;

  /// Executes the plan: rewrites the container's mismatched levels to the
  /// function's packages, refreshes the memory footprint, and bumps the
  /// repack counter when the image actually changed.
  void repack(Container& container, const ImageSpec& function,
              const PackageCatalog& catalog, MatchLevel level) const;

  [[nodiscard]] const CleanerConfig& config() const noexcept { return config_; }

 private:
  CleanerConfig config_;
};

}  // namespace mlcr::containers
