// Three-level image specification: the {L1, L2, L3} package lists of Sec. IV-A.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "containers/package.hpp"

namespace mlcr::containers {

/// A function/container image described by its packages grouped into the three
/// reuse levels. Lists are kept sorted & deduplicated so set equality is a
/// plain vector comparison.
class ImageSpec {
 public:
  ImageSpec() = default;
  ImageSpec(std::vector<PackageId> os, std::vector<PackageId> language,
            std::vector<PackageId> runtime);

  [[nodiscard]] const std::vector<PackageId>& level(Level l) const noexcept {
    return levels_[static_cast<std::size_t>(l)];
  }

  /// Replace one level's package list (used by the container cleaner when it
  /// swaps volumes during a repack). Keeps the list normalized.
  void set_level(Level l, std::vector<PackageId> packages);

  /// All packages across all levels (sorted by level then id).
  [[nodiscard]] std::vector<PackageId> all_packages() const;
  [[nodiscard]] std::size_t package_count() const noexcept;

  /// Memory footprint in MB of all packages, per the catalog.
  [[nodiscard]] double total_size_mb(const PackageCatalog& catalog) const;
  /// Memory footprint in MB of one level only.
  [[nodiscard]] double level_size_mb(const PackageCatalog& catalog,
                                     Level l) const;

  /// Set equality of one level (Table I compares levels as wholes).
  [[nodiscard]] bool level_equals(const ImageSpec& other,
                                  Level l) const noexcept {
    return level(l) == other.level(l);
  }

  /// True when this image's level is a superset of `required`'s level
  /// (zygote-style reuse: everything the function needs is present).
  [[nodiscard]] bool level_contains(const ImageSpec& required, Level l) const;

  /// Packages of `required`'s level that this image lacks (what a union
  /// reuse must pull and install).
  [[nodiscard]] std::vector<PackageId> level_missing(const ImageSpec& required,
                                                     Level l) const;

  /// Grow one level to the union with `other`'s level (union reuse).
  void merge_level(Level l, const ImageSpec& other);

  [[nodiscard]] bool operator==(const ImageSpec& other) const noexcept {
    return levels_ == other.levels_;
  }

  /// Jaccard similarity |P1 ∩ P2| / |P1 ∪ P2| over all packages of both
  /// images (the paper's function-similarity metric, Sec. V). Two empty
  /// images have similarity 1.
  [[nodiscard]] double jaccard(const ImageSpec& other) const;

 private:
  std::array<std::vector<PackageId>, kNumLevels> levels_;
};

}  // namespace mlcr::containers
