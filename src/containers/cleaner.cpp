#include "containers/cleaner.hpp"

#include "util/check.hpp"

namespace mlcr::containers {

RepackPlan ContainerCleaner::plan(const ImageSpec& function,
                                  MatchLevel level) const {
  MLCR_CHECK_MSG(reusable(level), "cannot repack a no-match container");
  RepackPlan p;
  p.match = level;

  // One volume per mismatched level below the match point: language and/or
  // runtime. The user-data volume always swaps when configured.
  int swapped_levels = 0;
  if (level <= MatchLevel::kL1 && !function.level(Level::kLanguage).empty())
    ++swapped_levels;
  if (level <= MatchLevel::kL2 && !function.level(Level::kRuntime).empty())
    ++swapped_levels;

  p.unmounted_volumes = swapped_levels;
  p.mounted_volumes = swapped_levels;
  if (config_.swap_user_data_volume) {
    ++p.unmounted_volumes;
    ++p.mounted_volumes;
  }
  p.volume_ops_s = p.unmounted_volumes * config_.unmount_s +
                   p.mounted_volumes * config_.mount_s;
  return p;
}

void ContainerCleaner::repack(Container& container, const ImageSpec& function,
                              const PackageCatalog& catalog,
                              MatchLevel level) const {
  MLCR_CHECK_MSG(reusable(level), "cannot repack a no-match container");
  const bool image_changes = !(container.image == function);
  if (level <= MatchLevel::kL1)
    container.image.set_level(Level::kLanguage,
                              function.level(Level::kLanguage));
  if (level <= MatchLevel::kL2)
    container.image.set_level(Level::kRuntime, function.level(Level::kRuntime));
  container.refresh_memory(catalog);
  if (image_changes) ++container.repack_count;
}

}  // namespace mlcr::containers
