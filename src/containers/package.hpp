// Package model: every piece of software inside a container image belongs to
// one of three levels — OS, language, runtime — which is the core abstraction
// of the paper's Multi-Level Container Reuse (Sec. III, Fig. 5).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mlcr::containers {

/// Package level per the paper's classification (Fig. 5):
/// OS (blue), language (orange), runtime (green).
enum class Level : std::uint8_t { kOs = 0, kLanguage = 1, kRuntime = 2 };

inline constexpr std::size_t kNumLevels = 3;
inline constexpr std::array<Level, kNumLevels> kAllLevels = {
    Level::kOs, Level::kLanguage, Level::kRuntime};

[[nodiscard]] std::string_view to_string(Level level) noexcept;

using PackageId = std::uint32_t;
inline constexpr PackageId kInvalidPackage = UINT32_MAX;

/// Static metadata for one package.
struct PackageInfo {
  std::string name;
  Level level = Level::kOs;
  /// On-disk / in-memory footprint contributed to a container, in MB.
  double size_mb = 0.0;
  /// Extra installation work after the bits arrive (configure/compile),
  /// in seconds. Pull time is derived from size by the cost model.
  double install_s = 0.0;
};

/// Append-only registry of package metadata; PackageIds are dense indices.
/// Names are unique (e.g. "ubuntu:20.04", "python-3.9", "torch-2.0.1").
class PackageCatalog {
 public:
  /// Registers a package; throws CheckError on duplicate name or bad size.
  PackageId add(std::string name, Level level, double size_mb,
                double install_s = 0.0);

  [[nodiscard]] const PackageInfo& info(PackageId id) const;
  [[nodiscard]] std::optional<PackageId> find(std::string_view name) const;
  /// find() that throws if absent; convenient in benchmark setup code.
  [[nodiscard]] PackageId require(std::string_view name) const;

  [[nodiscard]] std::size_t size() const noexcept { return packages_.size(); }

  /// Sum of sizes of the given packages, in MB.
  [[nodiscard]] double total_size_mb(const std::vector<PackageId>& ids) const;
  /// Sum of install times of the given packages, in seconds.
  [[nodiscard]] double total_install_s(const std::vector<PackageId>& ids) const;

 private:
  std::vector<PackageInfo> packages_;
  std::unordered_map<std::string, PackageId> by_name_;
};

}  // namespace mlcr::containers
