#include "containers/package.hpp"

#include "util/check.hpp"

namespace mlcr::containers {

std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::kOs:
      return "OS";
    case Level::kLanguage:
      return "language";
    case Level::kRuntime:
      return "runtime";
  }
  return "?";
}

PackageId PackageCatalog::add(std::string name, Level level, double size_mb,
                              double install_s) {
  MLCR_CHECK_MSG(!name.empty(), "package name must be non-empty");
  MLCR_CHECK_MSG(size_mb >= 0.0, "package size must be non-negative");
  MLCR_CHECK_MSG(install_s >= 0.0, "install time must be non-negative");
  MLCR_CHECK_MSG(by_name_.find(name) == by_name_.end(),
                 "duplicate package name: " << name);
  const auto id = static_cast<PackageId>(packages_.size());
  by_name_.emplace(name, id);
  packages_.push_back(PackageInfo{std::move(name), level, size_mb, install_s});
  return id;
}

const PackageInfo& PackageCatalog::info(PackageId id) const {
  MLCR_CHECK_MSG(id < packages_.size(), "unknown package id " << id);
  return packages_[id];
}

std::optional<PackageId> PackageCatalog::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

PackageId PackageCatalog::require(std::string_view name) const {
  const auto id = find(name);
  MLCR_CHECK_MSG(id.has_value(), "package not in catalog: " << name);
  return *id;
}

double PackageCatalog::total_size_mb(const std::vector<PackageId>& ids) const {
  double total = 0.0;
  for (PackageId id : ids) total += info(id).size_mb;
  return total;
}

double PackageCatalog::total_install_s(
    const std::vector<PackageId>& ids) const {
  double total = 0.0;
  for (PackageId id : ids) total += info(id).install_s;
  return total;
}

}  // namespace mlcr::containers
