#include "containers/image.hpp"

#include <algorithm>

namespace mlcr::containers {

namespace {
void normalize(std::vector<PackageId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}
}  // namespace

ImageSpec::ImageSpec(std::vector<PackageId> os, std::vector<PackageId> language,
                     std::vector<PackageId> runtime) {
  levels_[0] = std::move(os);
  levels_[1] = std::move(language);
  levels_[2] = std::move(runtime);
  for (auto& lvl : levels_) normalize(lvl);
}

void ImageSpec::set_level(Level l, std::vector<PackageId> packages) {
  normalize(packages);
  levels_[static_cast<std::size_t>(l)] = std::move(packages);
}

std::vector<PackageId> ImageSpec::all_packages() const {
  std::vector<PackageId> all;
  all.reserve(package_count());
  for (const auto& lvl : levels_) all.insert(all.end(), lvl.begin(), lvl.end());
  return all;
}

std::size_t ImageSpec::package_count() const noexcept {
  std::size_t n = 0;
  for (const auto& lvl : levels_) n += lvl.size();
  return n;
}

double ImageSpec::total_size_mb(const PackageCatalog& catalog) const {
  double total = 0.0;
  for (const auto& lvl : levels_) total += catalog.total_size_mb(lvl);
  return total;
}

double ImageSpec::level_size_mb(const PackageCatalog& catalog, Level l) const {
  return catalog.total_size_mb(level(l));
}

bool ImageSpec::level_contains(const ImageSpec& required, Level l) const {
  const auto& have = level(l);
  const auto& need = required.level(l);
  return std::includes(have.begin(), have.end(), need.begin(), need.end());
}

std::vector<PackageId> ImageSpec::level_missing(const ImageSpec& required,
                                                Level l) const {
  const auto& have = level(l);
  const auto& need = required.level(l);
  std::vector<PackageId> missing;
  std::set_difference(need.begin(), need.end(), have.begin(), have.end(),
                      std::back_inserter(missing));
  return missing;
}

void ImageSpec::merge_level(Level l, const ImageSpec& other) {
  auto merged = level(l);
  const auto& extra = other.level(l);
  merged.insert(merged.end(), extra.begin(), extra.end());
  set_level(l, std::move(merged));
}

double ImageSpec::jaccard(const ImageSpec& other) const {
  auto a = all_packages();
  auto b = other.all_packages();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<PackageId> inter;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  const std::size_t uni = a.size() + b.size() - inter.size();
  if (uni == 0) return 1.0;
  return static_cast<double>(inter.size()) / static_cast<double>(uni);
}

}  // namespace mlcr::containers
