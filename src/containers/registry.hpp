// Synthetic Docker-Hub-like registry used to reproduce the paper's Fig. 3
// analysis: among the top-1000 most popular images, a handful of base (OS)
// images and language packages dominate the pull counts (the four most popular
// base images account for 77% of pulls). We model image popularity and
// base-image choice with Zipf distributions and expose the same aggregate
// statistics the paper reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "containers/image.hpp"
#include "util/rng.hpp"

namespace mlcr::containers {

/// One registry image with its simulated popularity.
struct RegistryImage {
  ImageSpec image;
  std::uint64_t pull_count = 0;
};

/// Aggregated popularity of a package across all registry images.
struct PackagePopularity {
  PackageId package = kInvalidPackage;
  std::string name;
  std::uint64_t pull_count = 0;
  double share = 0.0;  ///< fraction of total pulls
};

struct RegistryConfig {
  std::size_t num_images = 1000;
  std::uint64_t total_pulls = 50'000'000;
  /// Zipf exponents: image popularity, base-image choice, language choice.
  double image_popularity_exponent = 1.1;
  double os_choice_exponent = 1.4;
  double language_choice_exponent = 1.2;
  /// Runtime packages per image, uniform in [min, max].
  std::size_t min_runtime_packages = 0;
  std::size_t max_runtime_packages = 4;
};

/// Builds the synthetic registry on top of a catalog whose packages are
/// grouped by level. The catalog must contain at least one OS and one
/// language package.
class SyntheticRegistry {
 public:
  SyntheticRegistry(const PackageCatalog& catalog, RegistryConfig config,
                    util::Rng rng);

  [[nodiscard]] const std::vector<RegistryImage>& images() const noexcept {
    return images_;
  }

  /// Popularity of packages at one level, sorted by pull count descending.
  [[nodiscard]] std::vector<PackagePopularity> popularity(Level level) const;

  /// Fraction of total pulls covered by the top-k packages at `level`
  /// (paper: top-4 base images cover 77%).
  [[nodiscard]] double top_k_share(Level level, std::size_t k) const;

 private:
  const PackageCatalog& catalog_;
  std::vector<RegistryImage> images_;
};

}  // namespace mlcr::containers
