// Level-by-level container matching (paper Table I) with L1 pruning.
#pragma once

#include <cstdint>
#include <string_view>

#include "containers/image.hpp"

namespace mlcr::containers {

/// Result of matching a function image F against a container image C.
/// Ordering is meaningful: a higher value means more reuse (kL3 = full match).
enum class MatchLevel : std::uint8_t {
  kNoMatch = 0,  ///< F.L1 != C.L1 — cold start, no benefit from this container
  kL1 = 1,       ///< OS matches; language + runtime must be re-provisioned
  kL2 = 2,       ///< OS and language match; runtime must be re-provisioned
  kL3 = 3,       ///< full match — classic warm start
};

[[nodiscard]] std::string_view to_string(MatchLevel level) noexcept;

/// Implements Table I. Comparison is level-by-level set equality with
/// pruning: if the OS level differs we return kNoMatch immediately without
/// examining L2/L3 (Sec. IV-A — reinstalling the OS invalidates everything
/// above it).
[[nodiscard]] MatchLevel match(const ImageSpec& function,
                               const ImageSpec& container) noexcept;

/// True when `level` permits any reuse of the container (i.e. not kNoMatch).
[[nodiscard]] constexpr bool reusable(MatchLevel level) noexcept {
  return level != MatchLevel::kNoMatch;
}

/// Number of levels that must be (re)provisioned when starting a function on
/// a container matched at `level`: kL3 -> 0, kL2 -> 1 (runtime),
/// kL1 -> 2 (language + runtime), kNoMatch -> 3 (everything, i.e. cold).
[[nodiscard]] constexpr int levels_to_provision(MatchLevel level) noexcept {
  return 3 - static_cast<int>(level);
}

}  // namespace mlcr::containers
