// Container instance model: a sandbox that holds a three-level image, executes
// one function at a time, and sits in the warm pool between executions.
#pragma once

#include <cstdint>

#include "containers/image.hpp"

namespace mlcr::containers {

using ContainerId = std::uint64_t;
inline constexpr ContainerId kInvalidContainer = UINT64_MAX;

/// Identifier of a function *type* (an entry of the FStartBench function
/// table); invocations reference a type.
using FunctionTypeId = std::uint32_t;
inline constexpr FunctionTypeId kInvalidFunctionType = UINT32_MAX;

enum class ContainerState : std::uint8_t {
  kBusy,  ///< executing a function on a worker
  kIdle,  ///< warm, parked in the pool
};

/// One container. Plain data record; lifecycle transitions are driven by the
/// simulator (sim::ClusterEnv) and the warm pool.
struct Container {
  ContainerId id = kInvalidContainer;
  ImageSpec image;
  ContainerState state = ContainerState::kBusy;

  /// Simulation timestamps, seconds.
  double created_at = 0.0;
  double last_idle_at = 0.0;  ///< when it last entered the pool
  double last_used_at = 0.0;  ///< when it last started executing

  /// How many function executions this container has served.
  std::uint32_t use_count = 0;
  /// How many times the cleaner repacked it for a different image.
  std::uint32_t repack_count = 0;

  /// Cached footprint: base sandbox overhead + image size, MB. Must be
  /// refreshed (refresh_memory) whenever the image changes.
  double memory_mb = 0.0;

  /// Function type of the most recent execution, and the startup cost that
  /// execution paid. Consumed by the FaasCache eviction policy (its
  /// greedy-dual priority weighs frequency, cost and size).
  FunctionTypeId last_function = kInvalidFunctionType;
  double last_startup_cost_s = 0.0;

  /// Greedy-dual priority slot, maintained by FaasCacheEviction.
  double priority = 0.0;

  /// Fixed per-sandbox memory overhead (runtime, writable layer), MB.
  static constexpr double kBaseOverheadMb = 16.0;

  void refresh_memory(const PackageCatalog& catalog) {
    memory_mb = kBaseOverheadMb + image.total_size_mb(catalog);
  }
};

}  // namespace mlcr::containers
