// Fix-sized warm resource pool (paper Sec. III): idle containers are parked
// here between executions; admission may evict (LRU / FaasCache greedy-dual)
// or be rejected (KeepAlive) when capacity is exceeded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "containers/container.hpp"

namespace mlcr::obs {
class Tracer;
}

namespace mlcr::containers {

class WarmPool;

/// Strategy invoked when an admission would exceed the pool's memory budget.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// Pick the container to evict; nullopt means "evict nothing" which forces
  /// the admission to be rejected. `idle` is never empty.
  [[nodiscard]] virtual ContainerId choose_victim(
      const std::vector<const Container*>& idle, double now) = 0;

  /// If true the pool rejects admissions that do not fit instead of evicting
  /// (the paper's KeepAlive baseline rejects keep-warm requests when full).
  [[nodiscard]] virtual bool reject_when_full() const { return false; }

  /// Hook called after a container is admitted (FaasCache refreshes its
  /// greedy-dual priority here).
  virtual void on_admit(Container& container, double now) {
    (void)container;
    (void)now;
  }

  /// Hook called when a container leaves the pool for reuse.
  virtual void on_take(const Container& container, double now) {
    (void)container;
    (void)now;
  }

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Evicts the least recently used idle container (paper default, Sec. III).
class LruEviction final : public EvictionPolicy {
 public:
  [[nodiscard]] ContainerId choose_victim(
      const std::vector<const Container*>& idle, double now) override;
  [[nodiscard]] const char* name() const override { return "LRU"; }
};

/// FaasCache (Fuerst & Sharma, ASPLOS'21) greedy-dual keep-alive: each
/// container carries priority = clock + frequency * cost / size; the minimum
/// priority is evicted and its priority becomes the new clock.
class FaasCacheEviction final : public EvictionPolicy {
 public:
  [[nodiscard]] ContainerId choose_victim(
      const std::vector<const Container*>& idle, double now) override;
  void on_admit(Container& container, double now) override;
  [[nodiscard]] const char* name() const override { return "FaasCache"; }

  [[nodiscard]] double clock() const noexcept { return clock_; }

 private:
  [[nodiscard]] double frequency(FunctionTypeId fn) const;

  double clock_ = 0.0;
  std::unordered_map<FunctionTypeId, std::uint64_t> admit_counts_;
};

/// KeepAlive baseline: never evicts on admission (rejects instead); idle
/// containers expire after a fixed TTL via WarmPool::expire_older_than.
class RejectWhenFull final : public EvictionPolicy {
 public:
  [[nodiscard]] ContainerId choose_victim(
      const std::vector<const Container*>& idle, double now) override;
  [[nodiscard]] bool reject_when_full() const override { return true; }
  [[nodiscard]] const char* name() const override { return "KeepAlive"; }
};

/// The pool itself. Owns idle containers; containers executing on workers
/// live outside (the simulator moves them in/out). Tracks peak usage and
/// eviction counts for the Fig. 10 experiment.
class WarmPool {
 public:
  /// `max_count` additionally caps how many containers the pool may hold
  /// (this is the scheduler's slot count n, paper Sec. IV-B); 0 = unlimited.
  WarmPool(double capacity_mb, std::unique_ptr<EvictionPolicy> eviction,
           std::size_t max_count = 0);

  enum class AdmitOutcome : std::uint8_t {
    kAdmitted,  ///< now idle in the pool (possibly after evictions)
    kRejected,  ///< did not fit and the policy declined to evict
  };

  /// Park an idle container. The container's state must be kIdle and
  /// last_idle_at set to `now` by the caller's environment; the pool asserts
  /// the former. A container larger than the whole pool is always rejected.
  AdmitOutcome admit(Container container, double now);

  /// Remove a container for reuse. Returns nullopt if absent.
  [[nodiscard]] std::optional<Container> take(ContainerId id, double now);

  [[nodiscard]] const Container* find(ContainerId id) const;

  /// Idle containers in ascending last_idle_at (LRU first). Pointers are
  /// invalidated by any mutation of the pool.
  [[nodiscard]] std::vector<const Container*> idle_containers() const;

  /// Evict every container idle since before now - ttl (KeepAlive TTL).
  /// Returns the number evicted.
  std::size_t expire_older_than(double now, double ttl_s);

  /// last_idle_at of the longest-idle container, or nullopt when empty.
  /// The earliest time any TTL expiry can fire — the event-driven fleet
  /// derives per-node expiry deadlines from it (DESIGN.md §10).
  [[nodiscard]] std::optional<double> oldest_idle_at() const;

  /// Crash support (DESIGN.md §9): drop every idle container at once — the
  /// node's warm memory is gone. Not counted as evictions (the caller
  /// records the crash itself); peak statistics are preserved. Returns the
  /// number of containers dropped.
  std::size_t invalidate_all(double now);

  [[nodiscard]] std::size_t size() const noexcept { return by_id_.size(); }
  [[nodiscard]] bool empty() const noexcept { return by_id_.empty(); }
  [[nodiscard]] double capacity_mb() const noexcept { return capacity_mb_; }
  /// Container-count cap; 0 means unlimited.
  [[nodiscard]] std::size_t max_count() const noexcept { return max_count_; }
  [[nodiscard]] double used_mb() const noexcept { return used_mb_; }
  [[nodiscard]] double free_mb() const noexcept {
    return capacity_mb_ - used_mb_;
  }

  [[nodiscard]] std::size_t eviction_count() const noexcept {
    return evictions_;
  }
  [[nodiscard]] std::size_t rejection_count() const noexcept {
    return rejections_;
  }
  [[nodiscard]] double peak_used_mb() const noexcept { return peak_used_mb_; }

  [[nodiscard]] const EvictionPolicy& eviction_policy() const {
    return *eviction_;
  }

  /// Attach a tracer: admissions/rejections/evictions/expiries become
  /// instants and occupancy becomes counters on (obs::Tracer::kSimPid,
  /// `track`), timestamped with the caller-supplied simulated `now`. The
  /// pool does not own the tracer; nullptr detaches.
  void set_tracer(obs::Tracer* tracer, std::uint32_t track = 0) noexcept {
    tracer_ = tracer;
    track_ = track;
  }

  /// Invariant auditor: byte accounting matches the summed container sizes,
  /// every pooled container is idle with a consistent id, and capacity /
  /// count caps hold. Throws util::CheckError on violation. Called after
  /// every mutation in audit-enabled builds (see util/audit.hpp); tests call
  /// it directly on corrupted state.
  void audit() const;

 private:
  friend struct PoolTestPeer;  ///< test-only corruption hook (tests/sim)

  void erase(ContainerId id);
  [[nodiscard]] bool traced() const noexcept;
  void trace_instant(double now, const char* name, const Container& c) const;
  void trace_occupancy(double now) const;

  double capacity_mb_ = 0.0;
  std::size_t max_count_ = 0;
  std::unique_ptr<EvictionPolicy> eviction_;
  /// Ordered by id: every scan over the pool (idle listing, TTL expiry,
  /// audit) is deterministic by construction. simlint bans iterating
  /// unordered containers into metrics/eviction decisions.
  std::map<ContainerId, Container> by_id_;
  double used_mb_ = 0.0;
  double peak_used_mb_ = 0.0;
  std::size_t evictions_ = 0;
  std::size_t rejections_ = 0;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
};

}  // namespace mlcr::containers
