#include "containers/pool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/tracer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace mlcr::containers {

ContainerId LruEviction::choose_victim(
    const std::vector<const Container*>& idle, double now) {
  (void)now;
  MLCR_CHECK(!idle.empty());
  const Container* victim = idle.front();
  for (const Container* c : idle)
    if (c->last_idle_at < victim->last_idle_at) victim = c;
  return victim->id;
}

ContainerId FaasCacheEviction::choose_victim(
    const std::vector<const Container*>& idle, double now) {
  (void)now;
  MLCR_CHECK(!idle.empty());
  const Container* victim = idle.front();
  for (const Container* c : idle)
    if (c->priority < victim->priority) victim = c;
  clock_ = victim->priority;  // greedy-dual aging
  return victim->id;
}

double FaasCacheEviction::frequency(FunctionTypeId fn) const {
  const auto it = admit_counts_.find(fn);
  return it == admit_counts_.end() ? 1.0 : static_cast<double>(it->second);
}

void FaasCacheEviction::on_admit(Container& container, double now) {
  (void)now;
  ++admit_counts_[container.last_function];
  const double size = std::max(container.memory_mb, 1.0);
  const double cost = std::max(container.last_startup_cost_s, 1e-3);
  container.priority =
      clock_ + frequency(container.last_function) * cost / size;
}

ContainerId RejectWhenFull::choose_victim(
    const std::vector<const Container*>& idle, double now) {
  (void)idle;
  (void)now;
  // The pool consults reject_when_full() first; reaching here is a bug.
  MLCR_CHECK_MSG(false, "RejectWhenFull must never be asked for a victim");
  return kInvalidContainer;
}

WarmPool::WarmPool(double capacity_mb, std::unique_ptr<EvictionPolicy> eviction,
                   std::size_t max_count)
    : capacity_mb_(capacity_mb),
      max_count_(max_count),
      eviction_(std::move(eviction)) {
  MLCR_CHECK_MSG(capacity_mb_ > 0.0, "pool capacity must be positive");
  MLCR_CHECK(eviction_ != nullptr);
}

WarmPool::AdmitOutcome WarmPool::admit(Container container, double now) {
  MLCR_CHECK(container.state == ContainerState::kIdle);
  MLCR_CHECK(container.id != kInvalidContainer);
  MLCR_CHECK_MSG(by_id_.find(container.id) == by_id_.end(),
                 "container " << container.id << " already in pool");

  if (container.memory_mb > capacity_mb_) {
    ++rejections_;
    if (traced()) trace_instant(now, "pool_reject", container);
    MLCR_AUDIT_POINT(audit());
    return AdmitOutcome::kRejected;
  }
  auto over_budget = [&] {
    return used_mb_ + container.memory_mb > capacity_mb_ ||
           (max_count_ != 0 && by_id_.size() >= max_count_);
  };
  if (over_budget() && eviction_->reject_when_full()) {
    ++rejections_;
    if (traced()) trace_instant(now, "pool_reject", container);
    MLCR_AUDIT_POINT(audit());
    return AdmitOutcome::kRejected;
  }
  while (over_budget()) {
    MLCR_CHECK(!by_id_.empty());
    const ContainerId victim = eviction_->choose_victim(idle_containers(), now);
    const auto it = by_id_.find(victim);
    MLCR_CHECK_MSG(it != by_id_.end(),
                   "eviction policy returned unknown container " << victim);
    if (traced()) trace_instant(now, "pool_evict", it->second);
    erase(victim);
    ++evictions_;
  }

  eviction_->on_admit(container, now);
  used_mb_ += container.memory_mb;
  peak_used_mb_ = std::max(peak_used_mb_, used_mb_);
  const ContainerId id = container.id;
  const auto& admitted = by_id_.emplace(id, std::move(container)).first->second;
  if (traced()) {
    trace_instant(now, "pool_admit", admitted);
    trace_occupancy(now);
  }
  MLCR_AUDIT_POINT(audit());
  return AdmitOutcome::kAdmitted;
}

std::optional<Container> WarmPool::take(ContainerId id, double now) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  Container c = std::move(it->second);
  used_mb_ -= c.memory_mb;
  by_id_.erase(it);
  eviction_->on_take(c, now);
  if (traced()) {
    trace_instant(now, "pool_take", c);
    trace_occupancy(now);
  }
  MLCR_AUDIT_POINT(audit());
  return c;
}

const Container* WarmPool::find(ContainerId id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

std::vector<const Container*> WarmPool::idle_containers() const {
  std::vector<const Container*> out;
  out.reserve(by_id_.size());
  for (const auto& [id, c] : by_id_) out.push_back(&c);
  std::sort(out.begin(), out.end(), [](const Container* a, const Container* b) {
    if (a->last_idle_at != b->last_idle_at)
      return a->last_idle_at < b->last_idle_at;
    return a->id < b->id;  // total order for determinism
  });
  return out;
}

std::size_t WarmPool::expire_older_than(double now, double ttl_s) {
  // by_id_ is id-ordered, so `expired` is already deterministic.
  std::vector<ContainerId> expired;
  for (const auto& [id, c] : by_id_)
    if (now - c.last_idle_at > ttl_s) expired.push_back(id);
  for (ContainerId id : expired) {
    if (traced()) trace_instant(now, "pool_expire", by_id_.at(id));
    erase(id);
    ++evictions_;
  }
  if (!expired.empty() && traced()) trace_occupancy(now);
  MLCR_AUDIT_POINT(audit());
  return expired.size();
}

std::optional<double> WarmPool::oldest_idle_at() const {
  std::optional<double> oldest;
  for (const auto& [id, c] : by_id_)
    if (!oldest || c.last_idle_at < *oldest) oldest = c.last_idle_at;
  return oldest;
}

std::size_t WarmPool::invalidate_all(double now) {
  const std::size_t dropped = by_id_.size();
  if (traced())
    for (const auto& [id, c] : by_id_) trace_instant(now, "pool_invalidate", c);
  by_id_.clear();
  used_mb_ = 0.0;
  if (dropped > 0 && traced()) trace_occupancy(now);
  MLCR_AUDIT_POINT(audit());
  return dropped;
}

bool WarmPool::traced() const noexcept {
  return tracer_ != nullptr && tracer_->enabled();
}

void WarmPool::trace_instant(double now, const char* name,
                             const Container& c) const {
  tracer_->instant(obs::Tracer::kSimPid, track_, obs::to_micros(now), name,
                   "pool",
                   {obs::narg("container", static_cast<std::int64_t>(c.id)),
                    obs::narg("memory_mb", c.memory_mb)});
}

void WarmPool::trace_occupancy(double now) const {
  const obs::Micros ts = obs::to_micros(now);
  tracer_->counter(obs::Tracer::kSimPid, track_, ts, "pool_used_mb", used_mb_);
  tracer_->counter(obs::Tracer::kSimPid, track_, ts, "pool_containers",
                   static_cast<double>(by_id_.size()));
}

void WarmPool::erase(ContainerId id) {
  const auto it = by_id_.find(id);
  MLCR_CHECK(it != by_id_.end());
  used_mb_ -= it->second.memory_mb;
  by_id_.erase(it);
}

void WarmPool::audit() const {
  double summed_mb = 0.0;
  for (const auto& [id, c] : by_id_) {
    MLCR_CHECK_MSG(id == c.id, "pool key " << id << " maps to container "
                                           << c.id);
    MLCR_CHECK_MSG(c.id != kInvalidContainer, "invalid container id in pool");
    MLCR_CHECK_MSG(c.state == ContainerState::kIdle,
                   "container " << c.id << " is busy while pooled");
    MLCR_CHECK_MSG(c.memory_mb > 0.0,
                   "container " << c.id << " has non-positive footprint");
    summed_mb += c.memory_mb;
  }
  // used_mb_ is maintained incrementally; allow float-accumulation slack.
  MLCR_CHECK_MSG(
      std::abs(summed_mb - used_mb_) <= 1e-6 * std::max(1.0, summed_mb),
      "pool byte accounting drifted: tracked " << used_mb_ << " MB, summed "
                                               << summed_mb << " MB");
  MLCR_CHECK_MSG(used_mb_ <= capacity_mb_ + 1e-6,
                 "pool over capacity: " << used_mb_ << " of " << capacity_mb_
                                        << " MB");
  MLCR_CHECK_MSG(max_count_ == 0 || by_id_.size() <= max_count_,
                 "pool over container cap: " << by_id_.size() << " of "
                                             << max_count_);
  MLCR_CHECK_MSG(peak_used_mb_ + 1e-6 >= used_mb_,
                 "peak usage below current usage");
}

}  // namespace mlcr::containers
