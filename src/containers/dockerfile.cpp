#include "containers/dockerfile.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/check.hpp"

namespace mlcr::containers {

namespace {

[[nodiscard]] std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

[[nodiscard]] std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::stringstream ss{std::string(line)};
  std::string tok;
  while (ss >> tok) tokens.push_back(tok);
  return tokens;
}

/// Join backslash-continued lines and drop comments/empties.
[[nodiscard]] std::vector<std::string> logical_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::string pending;
  std::stringstream ss{std::string(text)};
  std::string raw;
  while (std::getline(ss, raw)) {
    // Strip trailing CR and whitespace.
    while (!raw.empty() &&
           (raw.back() == '\r' || std::isspace(static_cast<unsigned char>(
                                      raw.back()))))
      raw.pop_back();
    std::size_t start = 0;
    while (start < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[start])))
      ++start;
    raw = raw.substr(start);
    if (raw.empty() || raw[0] == '#') {
      if (!pending.empty()) continue;  // comment inside continuation
      continue;
    }
    const bool continued = raw.back() == '\\';
    if (continued) raw.pop_back();
    pending += raw;
    pending += ' ';
    if (!continued) {
      lines.push_back(pending);
      pending.clear();
    }
  }
  if (!pending.empty()) lines.push_back(pending);
  return lines;
}

/// Extract "python-3.9" style name from a source-build URL like
/// ".../Python-3.9.17.tgz".
[[nodiscard]] std::string source_build_name(std::string_view url) {
  const std::string lower = to_lower(url);
  const std::size_t slash = lower.find_last_of('/');
  std::string file =
      slash == std::string::npos ? lower : lower.substr(slash + 1);
  for (const std::string_view suffix :
       {".tar.gz", ".tgz", ".tar.xz", ".zip", ".tar"}) {
    if (file.size() > suffix.size() &&
        file.compare(file.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      file.resize(file.size() - suffix.size());
      break;
    }
  }
  // "python-3.9.17" -> keep name + major.minor.
  const std::size_t dash = file.find('-');
  if (dash == std::string::npos) return file;
  const std::string name = file.substr(0, dash);
  const std::string version = file.substr(dash + 1);
  const std::size_t first_dot = version.find('.');
  const std::size_t second_dot =
      first_dot == std::string::npos ? std::string::npos
                                     : version.find('.', first_dot + 1);
  return name + "-" +
         (second_dot == std::string::npos ? version
                                          : version.substr(0, second_dot));
}

[[nodiscard]] bool is_flag(std::string_view tok) {
  return !tok.empty() && tok.front() == '-';
}

}  // namespace

std::string strip_version(std::string_view token) {
  std::string out(token);
  for (const std::string_view sep : {"==", ">=", "<=", "~=", "=", "@"}) {
    const std::size_t pos = out.find(sep);
    if (pos != std::string::npos) {
      out.resize(pos);
      break;
    }
  }
  return out;
}

DockerfileClassifier::DockerfileClassifier()
    : language_vocabulary_({"python", "python3", "python2", "openjdk",
                            "default-jdk", "jdk", "jre", "golang", "go",
                            "nodejs", "node", "npm", "ruby", "php", "rust",
                            "gcc", "g++", "dotnet", "erlang", "perl"}) {}

void DockerfileClassifier::add_language_package(std::string name) {
  language_vocabulary_.push_back(to_lower(name));
}

bool DockerfileClassifier::is_language_package(std::string_view name) const {
  const std::string lower = to_lower(strip_version(name));
  for (const std::string& lang : language_vocabulary_) {
    if (lower == lang) return true;
    // "python3.9", "openjdk-17-jdk" style variants.
    if (lower.size() > lang.size() && lower.compare(0, lang.size(), lang) == 0
        && !std::isalpha(static_cast<unsigned char>(lower[lang.size()])))
      return true;
    if (lower.rfind(lang + "-", 0) == 0) return true;
  }
  return false;
}

void DockerfileClassifier::classify_run_command(
    std::string_view command, DockerfileAnalysis& out) const {
  const auto tokens = tokenize(command);
  if (tokens.empty()) return;
  const std::string head = to_lower(tokens[0]);

  // wget/curl of a source tarball -> language-level source build.
  if (head == "wget" || head == "curl") {
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (is_flag(tokens[i])) continue;
      const std::string lower = to_lower(tokens[i]);
      if (lower.find("://") == std::string::npos) continue;
      const std::string name = source_build_name(lower);
      if (!name.empty() && is_language_package(name.substr(0, name.find('-'))))
        out.language_packages.push_back(name);
    }
    return;
  }

  // Package managers.
  //   apt/apt-get/apk/yum/dnf <install|add> pkgs -> language or runtime
  //   pip/pip3/npm/gem/cargo install pkgs        -> runtime
  std::size_t first_pkg = 0;
  bool system_manager = false;
  if ((head == "apt" || head == "apt-get" || head == "yum" || head == "dnf" ||
       head == "microdnf") &&
      tokens.size() > 1) {
    std::size_t verb = 1;
    while (verb < tokens.size() && is_flag(tokens[verb])) ++verb;
    if (verb >= tokens.size()) return;
    const std::string v = to_lower(tokens[verb]);
    if (v != "install") return;  // update/upgrade/clean carry no packages
    first_pkg = verb + 1;
    system_manager = true;
  } else if (head == "apk" && tokens.size() > 1 &&
             to_lower(tokens[1]) == "add") {
    first_pkg = 2;
    system_manager = true;
  } else if ((head == "pip" || head == "pip3" || head == "npm" ||
              head == "gem" || head == "cargo") &&
             tokens.size() > 1 && to_lower(tokens[1]) == "install") {
    first_pkg = 2;
  } else {
    return;  // make, cd, ./configure, tar, ... carry no package names
  }

  for (std::size_t i = first_pkg; i < tokens.size(); ++i) {
    if (is_flag(tokens[i])) continue;
    const std::string name = strip_version(tokens[i]);
    if (name.empty()) continue;
    if (system_manager && is_language_package(name))
      out.language_packages.push_back(name);
    else
      out.runtime_packages.push_back(name);
  }
}

DockerfileAnalysis DockerfileClassifier::classify(
    std::string_view dockerfile) const {
  DockerfileAnalysis out;
  for (const std::string& line : logical_lines(dockerfile)) {
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string directive = to_lower(tokens[0]);
    if (directive == "from" && tokens.size() > 1) {
      out.base_image = tokens[1];
      out.os_packages.push_back(tokens[1]);
    } else if (directive == "run") {
      // Split the remainder on "&&" into individual commands.
      std::string rest = line.substr(line.find(tokens[1], 3));
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t next = rest.find("&&", pos);
        const std::string command =
            rest.substr(pos, next == std::string::npos ? std::string::npos
                                                       : next - pos);
        classify_run_command(command, out);
        pos = next == std::string::npos ? next : next + 2;
      }
    }
    // ENV / WORKDIR / COPY / CMD / EXPOSE ... are not package-bearing.
  }
  // Deduplicate while keeping first-seen order.
  for (auto* level : {&out.os_packages, &out.language_packages,
                      &out.runtime_packages}) {
    std::vector<std::string> unique;
    for (const std::string& name : *level)
      if (std::find(unique.begin(), unique.end(), name) == unique.end())
        unique.push_back(name);
    *level = std::move(unique);
  }
  return out;
}

DockerfileAnalysis::Resolution DockerfileAnalysis::resolve(
    const PackageCatalog& catalog) const {
  Resolution res;
  std::vector<PackageId> os, lang, rt;
  auto place = [&](const std::vector<std::string>& names,
                   std::vector<PackageId>& target) {
    for (const std::string& name : names) {
      if (const auto id = catalog.find(name))
        target.push_back(*id);
      else
        res.unknown.push_back(name);
    }
  };
  place(os_packages, os);
  place(language_packages, lang);
  place(runtime_packages, rt);
  res.image = ImageSpec(std::move(os), std::move(lang), std::move(rt));
  return res;
}

}  // namespace mlcr::containers
