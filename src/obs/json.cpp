#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mlcr::obs {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parse one complete JSON document; returns false (with error_) on any
  /// syntax problem, including trailing garbage.
  bool parse(JsonValue& out) {
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after JSON");
    return true;
  }

  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  bool fail(const std::string& what) {
    if (error_.empty())
      error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool value(JsonValue& out) {
    if (++depth_ > kMaxDepth) return fail("JSON nested too deeply");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (text_[pos_]) {
      case '{':
        ok = object(out);
        break;
      case '[':
        ok = array(out);
        break;
      case '"':
        out.type = JsonValue::Type::kString;
        ok = string(out.string);
        break;
      case 't':
      case 'f':
        ok = boolean(out);
        break;
      case 'n':
        ok = literal("null");
        out.type = JsonValue::Type::kNull;
        break;
      default:
        ok = number(out);
    }
    --depth_;
    return ok;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool boolean(JsonValue& out) {
    out.type = JsonValue::Type::kBool;
    if (text_[pos_] == 't') {
      out.boolean = true;
      return literal("true");
    }
    out.boolean = false;
    return literal("false");
  }

  bool number(JsonValue& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return fail("bad number");
    out.type = JsonValue::Type::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Validated but not decoded — strings in this repo are ASCII.
            for (int i = 0; i < 4; ++i, ++pos_)
              if (pos_ >= text_.size() ||
                  std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0)
                return fail("bad \\u escape");
            out += '?';
            break;
          default:
            return fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!consume('{')) return fail("expected object");
    if (consume('}')) return true;
    while (true) {
      std::string key;
      skip_ws();
      if (!string(key)) return false;
      if (!consume(':')) return fail("expected ':' in object");
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!consume('[')) return fail("expected array");
    if (consume(']')) return true;
    while (true) {
      JsonValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  static constexpr int kMaxDepth = 64;
  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool parse_json(const std::string& text, JsonValue& out, std::string& error) {
  Parser parser(text);
  if (parser.parse(out)) return true;
  error = parser.error();
  return false;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace mlcr::obs
