#include "obs/slo.hpp"

#include <algorithm>

#include "obs/metrics_registry.hpp"
#include "obs/trace_event.hpp"
#include "util/check.hpp"

namespace mlcr::obs {

SlidingWindow::SlidingWindow(double window_s) : window_s_(window_s) {
  MLCR_CHECK_MSG(window_s_ > 0.0, "sliding window length must be positive");
}

void SlidingWindow::record(double t, double value) {
  samples_.emplace_back(t, value);
}

void SlidingWindow::advance(double now_s) {
  const double horizon = now_s - window_s_;
  while (!samples_.empty() && samples_.front().first < horizon)
    samples_.pop_front();
}

double SlidingWindow::max() const {
  double best = 0.0;
  for (const auto& [t, v] : samples_) best = std::max(best, v);
  return best;
}

double SlidingWindow::sum() const {
  double total = 0.0;
  for (const auto& [t, v] : samples_) total += v;
  return total;
}

namespace {

[[nodiscard]] std::vector<double> window_values(
    const std::deque<std::pair<double, double>>& samples) {
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& [t, v] : samples) values.push_back(v);
  return values;
}

}  // namespace

double SlidingWindow::percentile(double p) const {
  return exact_rank_percentile(window_values(samples_), p);
}

std::vector<double> SlidingWindow::percentiles(
    const std::vector<double>& ps) const {
  return exact_rank_percentiles(window_values(samples_), ps);
}

namespace {

void check_upper(double value, double bound, const char* what,
                 std::vector<std::string>& out) {
  if (value > bound)
    out.push_back(std::string(what) + " " + format_number(value) + " > max " +
                  format_number(bound));
}

}  // namespace

std::vector<std::string> slo_breaches(const SloConfig& config,
                                      const SloReport& report) {
  std::vector<std::string> out;
  check_upper(report.route_p95_s, config.max_route_p95_s, "route_p95_s", out);
  check_upper(report.e2e_p99_s, config.max_e2e_p99_s, "e2e_p99_s", out);
  if (report.goodput < config.min_goodput)
    out.push_back("goodput " + format_number(report.goodput) + " < min " +
                  format_number(config.min_goodput));
  check_upper(report.rejection_rate, config.max_rejection_rate,
              "rejection_rate", out);
  check_upper(report.queue_depth_max, config.max_queue_depth, "queue_depth",
              out);
  check_upper(report.loss_rate, config.max_loss_rate, "loss_rate", out);
  check_upper(report.retry_pressure, config.max_retry_pressure,
              "retry_pressure", out);
  return out;
}

}  // namespace mlcr::obs
