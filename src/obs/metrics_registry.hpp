// Metrics registry: named counters, gauges, and log-bucketed latency
// histograms, dumped as a compact CSV. The histogram's percentile query uses
// exact-rank (nearest-rank) selection over the bucket counts: the *rank* is
// exact; the returned value is the bucket's upper bound, so the relative
// value error is bounded by the bucket growth factor (~9% at the default).
// For exact values over raw samples, use exact_rank_percentile.
//
// All storage is std::map so every dump iterates in deterministic name order
// (simlint bans unordered iteration into metric output).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace mlcr::obs {

/// Nearest-rank percentile over raw samples: the smallest value whose rank
/// is >= ceil(p/100 * n). Exact — no interpolation, the result is always an
/// observed sample. p in [0, 100]; 0 picks the minimum. Empty input -> 0.
[[nodiscard]] double exact_rank_percentile(std::vector<double> values,
                                           double p);

/// Several nearest-rank percentiles from one copy of the samples: selects
/// each rank with std::nth_element over progressively narrowed ranges, so
/// the whole batch costs one O(n) copy + k selections instead of k copies
/// and k full sorts. Results are returned in the order of `ps`; each matches
/// exact_rank_percentile(values, p) exactly. Empty input -> all zeros.
[[nodiscard]] std::vector<double> exact_rank_percentiles(
    std::vector<double> values, const std::vector<double>& ps);

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins sampled value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed histogram of non-negative values. Bucket i covers
/// (min_value * growth^(i-1), min_value * growth^i]; bucket 0 is
/// [0, min_value]. The default growth 2^(1/8) bounds the relative error of
/// percentile() by ~9% while keeping ~8 buckets per octave.
class Histogram {
 public:
  static constexpr double kDefaultGrowth = 1.0905077326652577;  // 2^(1/8)

  explicit Histogram(double min_value = 1e-6,
                     double growth = kDefaultGrowth);

  /// Record one sample. Requires value >= 0.
  void add(double value);
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Nearest-rank percentile over the bucketed counts; returns the upper
  /// bound of the bucket holding the element of rank ceil(p/100 * n),
  /// clamped to the observed [min, max]. p in [0, 100]; 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }
  [[nodiscard]] double p999() const { return percentile(99.9); }

  [[nodiscard]] double min_value() const noexcept { return min_value_; }
  [[nodiscard]] double growth() const noexcept { return growth_; }

  /// Upper bound of the bucket a value falls into (exposed for tests).
  [[nodiscard]] double bucket_upper_bound(double value) const;

 private:
  [[nodiscard]] std::int32_t bucket_index(double value) const;

  double min_value_;
  double growth_;
  double log_growth_;
  std::map<std::int32_t, std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

/// Named metric store. Accessors create-on-first-use; references stay valid
/// for the registry's lifetime (std::map nodes are stable).
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     double min_value = 1e-6,
                                     double growth = Histogram::kDefaultGrowth);

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  void clear();

  /// Read-only iteration in deterministic name order (snapshot exporters).
  [[nodiscard]] const std::map<std::string, Counter>& counters() const
      noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const
      noexcept {
    return histograms_;
  }

  /// Compact CSV: `kind,name,field,value` rows, sorted by (kind, name);
  /// histograms expand to count/sum/min/max/mean/p50/p95/p99/p999.
  void write_csv(std::ostream& os) const;
  void write_csv(const std::string& path) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace mlcr::obs
