// Structured trace events in the Chrome trace_event model (loadable in
// Perfetto / chrome://tracing): complete spans ("X"), instants ("i"),
// counters ("C") and track metadata ("M"), each stamped on a (pid, tid)
// track with a microsecond timestamp.
//
// The obs layer never reads a clock itself: timestamps are supplied by the
// caller. Simulator layers pass *simulated* time (so traces are bit-identical
// across runs — the DESIGN.md §6 determinism contract extends to traces);
// only the bench self-profiling layer passes wall time, obtained through the
// src/util allowed zone. simlint enforces both halves of this rule.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace mlcr::obs {

/// Microseconds, the trace_event "ts"/"dur" unit.
using Micros = std::int64_t;

/// Convert (simulated or wall) seconds to a microsecond timestamp.
[[nodiscard]] inline Micros to_micros(double seconds) noexcept {
  return static_cast<Micros>(std::llround(seconds * 1e6));
}

/// trace_event phase. The enum value is the "ph" character.
enum class Phase : char {
  kComplete = 'X',   ///< span with an explicit duration
  kInstant = 'i',    ///< zero-width moment
  kCounter = 'C',    ///< named time series sample
  kMetadata = 'M',   ///< process/thread naming
  kFlowStart = 's',  ///< start of a cross-thread flow (requires an id)
  kFlowStep = 't',   ///< intermediate flow point (requires an id)
  kFlowEnd = 'f',    ///< end of a cross-thread flow (requires an id)
};

/// True for the flow phases (s/t/f), which carry a binding "id".
[[nodiscard]] constexpr bool is_flow_phase(Phase p) noexcept {
  return p == Phase::kFlowStart || p == Phase::kFlowStep ||
         p == Phase::kFlowEnd;
}

/// One event argument, pre-rendered. `quoted` selects JSON string vs bare
/// numeric/boolean emission.
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted = true;
};

/// String argument.
[[nodiscard]] inline TraceArg sarg(std::string key, std::string value) {
  return {std::move(key), std::move(value), true};
}

/// Render a double compactly and deterministically (same-platform).
[[nodiscard]] std::string format_number(double value);

/// Numeric argument (emitted bare in JSON).
[[nodiscard]] inline TraceArg narg(std::string key, double value) {
  return {std::move(key), format_number(value), false};
}
[[nodiscard]] inline TraceArg narg(std::string key, std::int64_t value) {
  return {std::move(key), std::to_string(value), false};
}
[[nodiscard]] inline TraceArg narg(std::string key, std::uint64_t value) {
  return {std::move(key), std::to_string(value), false};
}

struct TraceEvent {
  Phase phase = Phase::kInstant;
  std::uint32_t pid = 0;  ///< track group (see Tracer::kSimPid & friends)
  std::uint32_t tid = 0;  ///< track within the group (e.g. fleet node index)
  Micros ts = 0;
  Micros dur = 0;                ///< kComplete only
  std::uint64_t flow_id = 0;     ///< flow phases only: the binding "id"
  std::string name;
  std::string category;
  std::vector<TraceArg> args;
};

}  // namespace mlcr::obs
