// Sliding-window SLO monitors for the serving plane: time-windowed latency
// percentiles, goodput, rejection rate and queue-depth watermarks, plus the
// breach-evaluation rule shared by serve::Telemetry (online) and
// tools/obsreport (offline, over recorded snapshots).
//
// Windows are advanced with caller-supplied time from the injected
// serve::Clock — this layer never reads a clock, so under SimClock the whole
// SLO stream is a pure function of the episode (DESIGN.md §6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace mlcr::obs {

/// Time-windowed sample buffer: record(t, v) appends, advance(now) evicts
/// samples older than `window_s`. Timestamps are expected to be
/// non-decreasing (the serving clock is monotone); eviction pops from the
/// front only, so a slightly stale front sample is evicted at the next
/// advance.
class SlidingWindow {
 public:
  explicit SlidingWindow(double window_s);

  void record(double t, double value);

  /// Evict every sample with t < now_s - window_s.
  void advance(double now_s);

  void clear() { samples_.clear(); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double window_s() const noexcept { return window_s_; }

  /// Max over the window; 0 when empty (watermark semantics).
  [[nodiscard]] double max() const;

  /// Sum of the window's values; 0 when empty.
  [[nodiscard]] double sum() const;

  /// Nearest-rank percentile over the window's raw values (exact, via
  /// exact_rank_percentile). 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  /// Batch percentiles from one copy of the window (see
  /// exact_rank_percentiles).
  [[nodiscard]] std::vector<double> percentiles(
      const std::vector<double>& ps) const;

 private:
  double window_s_;
  std::deque<std::pair<double, double>> samples_;
};

/// SLO thresholds. Defaults are fully permissive (nothing breaches), so a
/// telemetry plane with a default config is pure observation.
struct SloConfig {
  static constexpr double kUnbounded = 1e300;

  double window_s = 60.0;           ///< monitor window length
  double max_route_p95_s = kUnbounded;  ///< routing latency tail bound
  double max_e2e_p99_s = kUnbounded;    ///< end-to-end latency tail bound
  double min_goodput = 0.0;             ///< min fraction of submits routed
  double max_rejection_rate = 1.0;      ///< max fraction of submits rejected
  double max_queue_depth = kUnbounded;  ///< queue-depth watermark bound
  /// Max fraction of submits lost (crash-induced, DESIGN.md §14): goodput
  /// gate for chaos runs — obsreport's --max-loss-rate.
  double max_loss_rate = 1.0;
  /// Max mean retries per routed request in the window (the retry-pressure
  /// gauge: high values mean the fleet is burning capacity on re-attempts).
  double max_retry_pressure = kUnbounded;
};

/// One windowed SLO evaluation (also the "slo" block of every
/// flight-recorder snapshot line).
struct SloReport {
  double window_s = 0.0;
  std::uint64_t submitted = 0;  ///< submits observed in the window
  std::uint64_t routed = 0;     ///< dispatched to a node
  std::uint64_t rejected = 0;   ///< backpressure-rejected at submit
  std::uint64_t lost = 0;       ///< accepted but undeliverable
  double route_p50_s = 0.0;
  double route_p95_s = 0.0;
  double route_p99_s = 0.0;
  double e2e_p50_s = 0.0;
  double e2e_p95_s = 0.0;
  double e2e_p99_s = 0.0;
  double goodput = 1.0;          ///< routed / submitted (1 when no submits)
  double rejection_rate = 0.0;   ///< rejected / submitted (0 when no submits)
  double queue_depth_max = 0.0;  ///< queue-depth watermark over the window
  double loss_rate = 0.0;        ///< lost / submitted (0 when no submits)
  double retry_pressure = 0.0;   ///< mean retries per routed request
  std::vector<std::string> breaches;  ///< filled by slo_breaches
};

/// Evaluate `report` against `config`: one human-readable entry per violated
/// threshold ("e2e_p99_s 0.52 > max 0.1"), deterministic order. Empty means
/// every SLO holds.
[[nodiscard]] std::vector<std::string> slo_breaches(const SloConfig& config,
                                                    const SloReport& report);

}  // namespace mlcr::obs
