// Minimal in-repo Chrome trace_event schema checker: parses a JSON trace
// (self-contained recursive-descent parser, no third-party dependency) and
// validates the subset of the trace_event format this repo emits — the
// contract CI's trace-smoke job and the round-trip tests pin.
//
// Accepted schema:
//   root        := {"traceEvents": [event*], ...} | [event*]
//   event       := object with required fields
//                    "name" non-empty string
//                    "ph"   1-char string in {X, B, E, i, I, C, M, s, t, f}
//                    "ts"   finite number >= 0
//                    "pid"  number, "tid" number
//                  and conditionally
//                    ph X -> "dur" finite number >= 0
//                    ph C -> "args" non-empty object of numeric values
//                    ph M -> "name" in {process_name, thread_name,
//                            process_labels} and "args" object with "name"
//                    ph s/t/f -> "id" finite number >= 0 or non-empty string
//                  "args" (when present) must be an object; "cat" a string.
//
// Flow pairing (ph s/t/f) is validated separately into `flow_errors`: every
// started flow id must end (on any thread), every end/step must have a start.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mlcr::obs {

struct TraceCheckReport {
  /// Empty means the trace is schema-valid. Each entry is one human-readable
  /// problem ("event 12: ..."); collection stops after kMaxErrors.
  std::vector<std::string> errors;
  std::size_t event_count = 0;
  /// Complete-span ("X") occurrences by event name.
  std::map<std::string, std::size_t> span_counts;
  /// Counter ("C") series names.
  std::map<std::string, std::size_t> counter_counts;
  /// Instant ("i"/"I") occurrences by event name.
  std::map<std::string, std::size_t> instant_counts;
  /// Flow-start ("s") occurrences by event name.
  std::map<std::string, std::size_t> flow_start_counts;
  /// Flow-end ("f") occurrences by event name.
  std::map<std::string, std::size_t> flow_end_counts;
  /// Cross-thread flow pairing problems, kept separate from `errors` so a
  /// schema-valid trace with unpaired flows still passes plain validation;
  /// tracecheck --flows gates on this list being empty.
  std::vector<std::string> flow_errors;

  static constexpr std::size_t kMaxErrors = 50;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
  [[nodiscard]] bool flows_ok() const noexcept { return flow_errors.empty(); }
};

/// Parse and validate `json_text` as a Chrome trace. Never throws on bad
/// input — parse failures are reported in `errors`.
[[nodiscard]] TraceCheckReport check_trace_json(const std::string& json_text);

/// Validate `json_text` against the bench result schema every bench's
/// --json flag emits (and tools/benchdiff consumes):
///   root := {"bench":   non-empty string,
///            "config":  object of scalar values (string/number/bool),
///            "wall_ms": finite number >= 0,
///            "events_per_sec": finite number >= 0,
///            "metrics": object of finite numbers}
/// Unknown extra keys are allowed (the schema is append-only). Returns the
/// problems found; empty means valid. Never throws on bad input.
[[nodiscard]] std::vector<std::string> check_bench_json(
    const std::string& json_text);

/// Validate `json_text` against the report schema simlint --json emits (and
/// CI's lint-strict job uploads):
///   root := {"tool": "simlint",
///            "count": number == len(violations),
///            "violations": [{"file":    non-empty string,
///                            "line":    finite number >= 1,
///                            "rule":    non-empty string,
///                            "message": non-empty string}*]}
/// Unknown extra keys are allowed (append-only schema). Returns the problems
/// found; empty means valid. Never throws on bad input.
[[nodiscard]] std::vector<std::string> check_simlint_json(
    const std::string& json_text);

/// Validate `jsonl_text` against the flight-recorder snapshot schema the
/// serve telemetry plane exports (one JSON object per line):
///   line := {"t":   finite number >= 0,
///            "seq": finite number >= 0 (strictly increasing across lines),
///            "counters":   object of finite numbers,
///            "gauges":     object of finite numbers,
///            "histograms": object of {"count","sum","min","max","mean",
///                                     "p50","p95","p99"} finite numbers,
///            "slo": object with finite-number stats and
///                   "breaches" array of non-empty strings}
/// Unknown extra keys are allowed (append-only schema). Returns the problems
/// found; empty means valid. Never throws on bad input.
[[nodiscard]] std::vector<std::string> check_snapshot_jsonl(
    const std::string& jsonl_text);

}  // namespace mlcr::obs
