// Minimal self-contained JSON value + recursive-descent parser (no
// third-party dependency). Grown out of the trace schema checker so the
// bench JSON schema checker and tools/benchdiff can share one parser; the
// subset is full JSON except that \u escapes are validated but not decoded
// (everything this repo emits is ASCII).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace mlcr::obs {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  /// First value of `key` in an object, or nullptr. Insertion order is
  /// preserved, so duplicate keys resolve to the first occurrence.
  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parse one complete JSON document (trailing garbage is an error). Returns
/// false and sets `error` (message + offset) on any syntax problem; never
/// throws on bad input.
[[nodiscard]] bool parse_json(const std::string& text, JsonValue& out,
                              std::string& error);

/// Serialize `s` as a quoted JSON string (escapes quotes, backslashes and
/// control characters).
[[nodiscard]] std::string json_quote(const std::string& s);

}  // namespace mlcr::obs
