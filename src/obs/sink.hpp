// Trace sinks: where finalized TraceEvents go. ChromeTraceSink streams the
// Chrome trace_event JSON object ({"traceEvents":[...]}); CsvTraceSink writes
// one compact CSV row per event. Both preserve emission order — events are
// not re-sorted by timestamp, and Perfetto does not require them to be.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "obs/trace_event.hpp"

namespace mlcr::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void write(const TraceEvent& event) = 0;

  /// Finalize the output (write JSON tail, flush). Idempotent; called by
  /// Tracer::close() and the destructor of concrete sinks.
  virtual void close() {}
};

/// Streams `{"traceEvents":[...]}` to an ostream (or a file it owns).
class ChromeTraceSink final : public TraceSink {
 public:
  /// Write to a caller-owned stream (must outlive the sink).
  explicit ChromeTraceSink(std::ostream& os);
  /// Write to `path`; throws util::CheckError if the file cannot be opened.
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  void write(const TraceEvent& event) override;
  void close() override;

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* os_ = nullptr;
  bool first_ = true;
  bool closed_ = false;
};

/// One CSV row per event: ph,pid,tid,ts_us,dur_us,cat,name,args with args
/// rendered as `k=v|k=v` (commas and pipes in values are replaced by ';').
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(std::ostream& os);
  explicit CsvTraceSink(const std::string& path);
  ~CsvTraceSink() override;

  void write(const TraceEvent& event) override;
  void close() override;

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* os_ = nullptr;
  bool closed_ = false;
};

/// Escape a string for a JSON string literal (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace mlcr::obs
