#include "obs/tracer.hpp"

#include "util/check.hpp"

namespace mlcr::obs {

void Tracer::add_sink(std::shared_ptr<TraceSink> sink) {
  MLCR_CHECK(sink != nullptr);
  MLCR_CHECK_MSG(!closed_, "add_sink after close()");
  sinks_.push_back(std::move(sink));
}

void Tracer::close() {
  if (closed_) return;
  closed_ = true;
  for (const auto& sink : sinks_) sink->close();
  sinks_.clear();
}

void Tracer::emit(TraceEvent event) {
  if (!enabled()) return;
  ++events_;
  for (const auto& sink : sinks_) sink->write(event);
}

void Tracer::span(std::uint32_t pid, std::uint32_t tid, Micros ts, Micros dur,
                  std::string name, std::string category,
                  std::vector<TraceArg> args) {
  TraceEvent e;
  e.phase = Phase::kComplete;
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  e.dur = dur;
  e.name = std::move(name);
  e.category = std::move(category);
  e.args = std::move(args);
  emit(std::move(e));
}

void Tracer::instant(std::uint32_t pid, std::uint32_t tid, Micros ts,
                     std::string name, std::string category,
                     std::vector<TraceArg> args) {
  TraceEvent e;
  e.phase = Phase::kInstant;
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  e.name = std::move(name);
  e.category = std::move(category);
  e.args = std::move(args);
  emit(std::move(e));
}

void Tracer::counter(std::uint32_t pid, std::uint32_t tid, Micros ts,
                     std::string name, double value) {
  TraceEvent e;
  e.phase = Phase::kCounter;
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  e.name = std::move(name);
  e.args.push_back(narg("value", value));
  emit(std::move(e));
}

namespace {

[[nodiscard]] TraceEvent make_flow_event(Phase phase, std::uint32_t pid,
                                         std::uint32_t tid, Micros ts,
                                         std::uint64_t id, std::string name,
                                         std::string category,
                                         std::vector<TraceArg> args) {
  TraceEvent e;
  e.phase = phase;
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  e.flow_id = id;
  e.name = std::move(name);
  e.category = std::move(category);
  e.args = std::move(args);
  return e;
}

}  // namespace

void Tracer::flow_start(std::uint32_t pid, std::uint32_t tid, Micros ts,
                        std::uint64_t id, std::string name,
                        std::string category, std::vector<TraceArg> args) {
  emit(make_flow_event(Phase::kFlowStart, pid, tid, ts, id, std::move(name),
                       std::move(category), std::move(args)));
}

void Tracer::flow_step(std::uint32_t pid, std::uint32_t tid, Micros ts,
                       std::uint64_t id, std::string name,
                       std::string category, std::vector<TraceArg> args) {
  emit(make_flow_event(Phase::kFlowStep, pid, tid, ts, id, std::move(name),
                       std::move(category), std::move(args)));
}

void Tracer::flow_end(std::uint32_t pid, std::uint32_t tid, Micros ts,
                      std::uint64_t id, std::string name,
                      std::string category, std::vector<TraceArg> args) {
  emit(make_flow_event(Phase::kFlowEnd, pid, tid, ts, id, std::move(name),
                       std::move(category), std::move(args)));
}

void Tracer::process_name(std::uint32_t pid, std::string name) {
  TraceEvent e;
  e.phase = Phase::kMetadata;
  e.pid = pid;
  e.name = "process_name";
  e.args.push_back(sarg("name", std::move(name)));
  emit(std::move(e));
}

void Tracer::thread_name(std::uint32_t pid, std::uint32_t tid,
                         std::string name) {
  TraceEvent e;
  e.phase = Phase::kMetadata;
  e.pid = pid;
  e.tid = tid;
  e.name = "thread_name";
  e.args.push_back(sarg("name", std::move(name)));
  emit(std::move(e));
}

}  // namespace mlcr::obs
