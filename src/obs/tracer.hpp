// Tracer: the emission front-end every instrumented layer talks to. A Tracer
// with no sinks is the null-sink fast path — instrumentation sites check a
// single pointer/flag and skip all argument construction, so an untraced run
// pays (at most) one predicted branch per site (bench/overhead_inference
// measures this).
//
// Track model (Chrome trace_event pid/tid):
//   pid kSimPid   — simulated time; tid = fleet node index (0 single-node).
//   pid kTrainPid — training telemetry; ts is a step index (1 step = 1 "us"):
//                   tid 0 counts environment steps, tid 1 gradient steps.
//   pid kBenchPid — bench self-profiling; ts is wall time from src/util.
//   pid kServePid — serving front-end; tid = ingest slot for flow starts,
//                   worker-count + node index for flow ends (see
//                   serve::Telemetry). Flow events ("s"/"t"/"f") bind by a
//                   caller-minted id so one request is followable across
//                   threads in the viewer.
//
// Determinism: everything emitted on kSimPid/kTrainPid is a pure function of
// the episode, so two identical runs produce byte-identical sink output
// (pinned in tests/obs). Only kBenchPid events carry wall time.
#pragma once

#include <memory>
#include <vector>

#include "obs/sink.hpp"
#include "obs/trace_event.hpp"

namespace mlcr::obs {

class Tracer {
 public:
  static constexpr std::uint32_t kSimPid = 0;
  static constexpr std::uint32_t kTrainPid = 1;
  static constexpr std::uint32_t kBenchPid = 2;
  static constexpr std::uint32_t kServePid = 3;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer() { close(); }

  void add_sink(std::shared_ptr<TraceSink> sink);

  /// False means every emit is a no-op: the guard instrumentation sites use.
  [[nodiscard]] bool enabled() const noexcept { return !sinks_.empty(); }

  /// Events emitted so far (metadata included).
  [[nodiscard]] std::uint64_t event_count() const noexcept { return events_; }

  /// Finalize all sinks (write the JSON tail). Further emits are dropped.
  void close();

  void span(std::uint32_t pid, std::uint32_t tid, Micros ts, Micros dur,
            std::string name, std::string category,
            std::vector<TraceArg> args = {});
  void instant(std::uint32_t pid, std::uint32_t tid, Micros ts,
               std::string name, std::string category,
               std::vector<TraceArg> args = {});
  void counter(std::uint32_t pid, std::uint32_t tid, Micros ts,
               std::string name, double value);

  /// Cross-thread flow events: start/step/end share a caller-minted `id`
  /// (e.g. the invocation sequence number) so the viewer draws an arrow from
  /// the thread that accepted a request to the thread that dispatched it.
  /// tools/tracecheck --flows validates that every started id also ends.
  void flow_start(std::uint32_t pid, std::uint32_t tid, Micros ts,
                  std::uint64_t id, std::string name, std::string category,
                  std::vector<TraceArg> args = {});
  void flow_step(std::uint32_t pid, std::uint32_t tid, Micros ts,
                 std::uint64_t id, std::string name, std::string category,
                 std::vector<TraceArg> args = {});
  void flow_end(std::uint32_t pid, std::uint32_t tid, Micros ts,
                std::uint64_t id, std::string name, std::string category,
                std::vector<TraceArg> args = {});

  /// Track naming (Perfetto group / row labels).
  void process_name(std::uint32_t pid, std::string name);
  void thread_name(std::uint32_t pid, std::uint32_t tid, std::string name);

 private:
  void emit(TraceEvent event);

  std::vector<std::shared_ptr<TraceSink>> sinks_;
  std::uint64_t events_ = 0;
  bool closed_ = false;
};

}  // namespace mlcr::obs
