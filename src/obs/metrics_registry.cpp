#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>

#include "obs/trace_event.hpp"
#include "util/check.hpp"

namespace mlcr::obs {

double exact_rank_percentile(std::vector<double> values, double p) {
  MLCR_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p out of [0, 100]");
  if (values.empty()) return 0.0;
  const auto n = values.size();
  const auto rank = static_cast<std::size_t>(std::max(
      1.0, std::ceil(p / 100.0 * static_cast<double>(n))));
  const std::size_t index = std::min(rank, n) - 1;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(index),
                   values.end());
  return values[index];
}

std::vector<double> exact_rank_percentiles(std::vector<double> values,
                                           const std::vector<double>& ps) {
  std::vector<double> out(ps.size(), 0.0);
  if (values.empty() || ps.empty()) {
    for (const double p : ps)
      MLCR_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p out of [0, 100]");
    return out;
  }
  const auto n = values.size();
  std::vector<std::pair<std::size_t, std::size_t>> order;  // (index, ps slot)
  order.reserve(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double p = ps[i];
    MLCR_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p out of [0, 100]");
    const auto rank = static_cast<std::size_t>(std::max(
        1.0, std::ceil(p / 100.0 * static_cast<double>(n))));
    order.emplace_back(std::min(rank, n) - 1, i);
  }
  std::sort(order.begin(), order.end());
  // Ascending ranks let each nth_element start where the previous one ended:
  // everything left of a selected index is already <= that element.
  std::size_t lo = 0;
  for (const auto& [index, slot] : order) {
    std::nth_element(values.begin() + static_cast<std::ptrdiff_t>(lo),
                     values.begin() + static_cast<std::ptrdiff_t>(index),
                     values.end());
    out[slot] = values[index];
    lo = index;
  }
  return out;
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(double min_value, double growth)
    : min_value_(min_value), growth_(growth), log_growth_(std::log(growth)) {
  MLCR_CHECK_MSG(min_value_ > 0.0, "histogram min_value must be positive");
  MLCR_CHECK_MSG(growth_ > 1.0, "histogram growth must exceed 1");
}

std::int32_t Histogram::bucket_index(double value) const {
  if (value <= min_value_) return 0;
  // +1 because bucket 0 is [0, min_value]; floor keeps the bucket's upper
  // bound strictly above the value.
  return 1 + static_cast<std::int32_t>(
                 std::floor(std::log(value / min_value_) / log_growth_));
}

double Histogram::bucket_upper_bound(double value) const {
  return min_value_ * std::pow(growth_, bucket_index(value));
}

void Histogram::add(double value) {
  MLCR_CHECK_MSG(value >= 0.0 && std::isfinite(value),
                 "histogram values must be finite and non-negative");
  if (count_ == 0) {
    min_seen_ = value;
    max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++buckets_[bucket_index(value)];
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  MLCR_CHECK_MSG(min_value_ == other.min_value_ && growth_ == other.growth_,
                 "merging histograms with different bucket layouts");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_seen_ = other.min_seen_;
    max_seen_ = other.max_seen_;
  } else {
    min_seen_ = std::min(min_seen_, other.min_seen_);
    max_seen_ = std::max(max_seen_, other.max_seen_);
  }
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::min() const noexcept { return count_ ? min_seen_ : 0.0; }
double Histogram::max() const noexcept { return count_ ? max_seen_ : 0.0; }

double Histogram::mean() const noexcept {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::percentile(double p) const {
  MLCR_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p out of [0, 100]");
  if (count_ == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (const auto& [index, n] : buckets_) {
    seen += n;
    if (seen >= rank) {
      const double upper = min_value_ * std::pow(growth_, index);
      return std::clamp(upper, min_seen_, max_seen_);
    }
  }
  return max_seen_;  // unreachable: rank <= count_
}

// --- MetricsRegistry --------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      double min_value, double growth) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(min_value, growth))
      .first->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "kind,name,field,value\n";
  for (const auto& [name, c] : counters_)
    os << "counter," << name << ",value," << c.value() << '\n';
  for (const auto& [name, g] : gauges_)
    os << "gauge," << name << ",value," << format_number(g.value()) << '\n';
  for (const auto& [name, h] : histograms_) {
    const std::pair<const char*, double> fields[] = {
        {"count", static_cast<double>(h.count())},
        {"sum", h.sum()},         {"min", h.min()},
        {"max", h.max()},         {"mean", h.mean()},
        {"p50", h.p50()},         {"p95", h.p95()},
        {"p99", h.p99()},         {"p999", h.p999()},
    };
    for (const auto& [field, value] : fields)
      os << "histogram," << name << ',' << field << ','
         << format_number(value) << '\n';
  }
  MLCR_CHECK_MSG(os.good(), "failed writing metrics CSV");
}

void MetricsRegistry::write_csv(const std::string& path) const {
  std::ofstream os(path);
  MLCR_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  write_csv(os);
}

}  // namespace mlcr::obs
