#include "obs/flight_recorder.hpp"

#include <fstream>
#include <ostream>

#include "obs/sink.hpp"
#include "obs/trace_event.hpp"
#include "util/check.hpp"

namespace mlcr::obs {

FlightRecorder::FlightRecorder(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(owned_.get()) {
  MLCR_CHECK_MSG(owned_->is_open(), "cannot open " << path << " for writing");
}

FlightRecorder::FlightRecorder(std::ostream& os) : os_(&os) {}

FlightRecorder::~FlightRecorder() { close(); }

void FlightRecorder::close() {
  if (closed_) return;
  closed_ = true;
  os_->flush();
}

namespace {

void write_histogram(std::ostream& os, const Histogram& h) {
  os << "{\"count\":" << h.count() << ",\"sum\":" << format_number(h.sum())
     << ",\"min\":" << format_number(h.min())
     << ",\"max\":" << format_number(h.max())
     << ",\"mean\":" << format_number(h.mean())
     << ",\"p50\":" << format_number(h.p50())
     << ",\"p95\":" << format_number(h.p95())
     << ",\"p99\":" << format_number(h.p99()) << "}";
}

void write_slo(std::ostream& os, const SloReport& slo) {
  os << "{\"window_s\":" << format_number(slo.window_s)
     << ",\"submitted\":" << slo.submitted << ",\"routed\":" << slo.routed
     << ",\"rejected\":" << slo.rejected << ",\"lost\":" << slo.lost
     << ",\"route_p50_s\":" << format_number(slo.route_p50_s)
     << ",\"route_p95_s\":" << format_number(slo.route_p95_s)
     << ",\"route_p99_s\":" << format_number(slo.route_p99_s)
     << ",\"e2e_p50_s\":" << format_number(slo.e2e_p50_s)
     << ",\"e2e_p95_s\":" << format_number(slo.e2e_p95_s)
     << ",\"e2e_p99_s\":" << format_number(slo.e2e_p99_s)
     << ",\"goodput\":" << format_number(slo.goodput)
     << ",\"rejection_rate\":" << format_number(slo.rejection_rate)
     << ",\"queue_depth_max\":" << format_number(slo.queue_depth_max)
     << ",\"loss_rate\":" << format_number(slo.loss_rate)
     << ",\"retry_pressure\":" << format_number(slo.retry_pressure)
     << ",\"breaches\":[";
  for (std::size_t i = 0; i < slo.breaches.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << json_escape(slo.breaches[i]) << "\"";
  }
  os << "]}";
}

}  // namespace

void FlightRecorder::write(double t_s, const MetricsRegistry& metrics,
                           const SloReport& slo) {
  MLCR_CHECK_MSG(!closed_, "write to a closed flight recorder");
  std::ostream& os = *os_;
  os << "{\"t\":" << format_number(t_s) << ",\"seq\":" << seq_++
     << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : metrics.counters()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : metrics.gauges()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << format_number(g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : metrics.histograms()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":";
    write_histogram(os, h);
  }
  os << "},\"slo\":";
  write_slo(os, slo);
  os << "}\n";
  MLCR_CHECK_MSG(os.good(), "failed writing flight-recorder snapshot");
}

}  // namespace mlcr::obs
