#include "obs/concurrent.hpp"

#include <functional>
#include <thread>

#include "util/check.hpp"
#include "util/lock_audit.hpp"

namespace mlcr::obs {

ConcurrentMetricsRegistry::ConcurrentMetricsRegistry(std::size_t slots) {
  MLCR_CHECK_MSG(slots > 0, "registry needs at least one slot");
  slots_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i)
    slots_.push_back(std::make_unique<Slot>());
}

std::size_t ConcurrentMetricsRegistry::local_slot_index() const {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
         slots_.size();
}

void ConcurrentMetricsRegistry::add(const std::string& name,
                                    std::uint64_t n) {
  const std::size_t i = local_slot_index();
  Slot& slot = *slots_[i];
  std::lock_guard<std::mutex> guard(slot.slot_mutex_);
  util::LockRankScope rank(util::lock_ranks::registry_slot(i), "slot_mutex_");
  slot.counters[name] += n;
}

void ConcurrentMetricsRegistry::set_gauge(const std::string& name,
                                          double value) {
  const std::uint64_t stamp =
      1 + gauge_stamp_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t i = local_slot_index();
  Slot& slot = *slots_[i];
  std::lock_guard<std::mutex> guard(slot.slot_mutex_);
  util::LockRankScope rank(util::lock_ranks::registry_slot(i), "slot_mutex_");
  GaugeSample& sample = slot.gauges[name];
  if (stamp > sample.stamp) {
    sample.stamp = stamp;
    sample.value = value;
  }
}

void ConcurrentMetricsRegistry::record(const std::string& name,
                                       double value) {
  const std::size_t i = local_slot_index();
  Slot& slot = *slots_[i];
  std::lock_guard<std::mutex> guard(slot.slot_mutex_);
  util::LockRankScope rank(util::lock_ranks::registry_slot(i), "slot_mutex_");
  const auto it = slot.histograms.find(name);
  if (it != slot.histograms.end()) {
    it->second.add(value);
  } else {
    slot.histograms.emplace(name, Histogram()).first->second.add(value);
  }
}

MetricsRegistry ConcurrentMetricsRegistry::snapshot() const {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSample> gauges;
  std::map<std::string, Histogram> histograms;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = *slots_[i];
    std::lock_guard<std::mutex> guard(slot.slot_mutex_);
    util::LockRankScope rank(util::lock_ranks::registry_slot(i),
                             "slot_mutex_");
    for (const auto& [name, n] : slot.counters) counters[name] += n;
    for (const auto& [name, sample] : slot.gauges) {
      GaugeSample& best = gauges[name];
      if (sample.stamp > best.stamp) best = sample;
    }
    for (const auto& [name, hist] : slot.histograms) {
      const auto it = histograms.find(name);
      if (it != histograms.end())
        it->second.merge(hist);
      else
        histograms.emplace(name, hist);
    }
  }

  MetricsRegistry merged;
  for (const auto& [name, n] : counters) merged.counter(name).add(n);
  for (const auto& [name, sample] : gauges)
    merged.gauge(name).set(sample.value);
  for (const auto& [name, hist] : histograms)
    merged.histogram(name).merge(hist);
  return merged;
}

void ConcurrentMetricsRegistry::clear() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    std::lock_guard<std::mutex> guard(slot.slot_mutex_);
    util::LockRankScope rank(util::lock_ranks::registry_slot(i),
                             "slot_mutex_");
    slot.counters.clear();
    slot.gauges.clear();
    slot.histograms.clear();
  }
}

}  // namespace mlcr::obs
