#include "obs/sink.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace mlcr::obs {

std::string format_number(double value) {
  // %.12g round-trips every latency/counter value this codebase produces and
  // renders integers without a trailing ".0" — compact and deterministic on
  // a given platform.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

[[nodiscard]] std::unique_ptr<std::ofstream> open_for_write(
    const std::string& path) {
  auto os = std::make_unique<std::ofstream>(path);
  MLCR_CHECK_MSG(os->is_open(), "cannot open " << path << " for writing");
  return os;
}

}  // namespace

// --- ChromeTraceSink --------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::ostream& os) : os_(&os) {
  *os_ << "{\"traceEvents\":[";
}

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : owned_(open_for_write(path)), os_(owned_.get()) {
  *os_ << "{\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::write(const TraceEvent& e) {
  MLCR_CHECK_MSG(!closed_, "write to a closed trace sink");
  std::ostream& os = *os_;
  os << (first_ ? "\n" : ",\n");
  first_ = false;
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\""
     << static_cast<char>(e.phase) << "\",\"ts\":" << e.ts;
  if (e.phase == Phase::kComplete) os << ",\"dur\":" << e.dur;
  if (is_flow_phase(e.phase)) {
    os << ",\"id\":" << e.flow_id;
    // Bind the flow end to the enclosing slice rather than the next one, per
    // the trace_event flow-event spec.
    if (e.phase == Phase::kFlowEnd) os << ",\"bp\":\"e\"";
  }
  os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
  if (!e.category.empty())
    os << ",\"cat\":\"" << json_escape(e.category) << "\"";
  if (!e.args.empty()) {
    os << ",\"args\":{";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      const TraceArg& a = e.args[i];
      if (i != 0) os << ",";
      os << "\"" << json_escape(a.key) << "\":";
      if (a.quoted)
        os << "\"" << json_escape(a.value) << "\"";
      else
        os << a.value;
    }
    os << "}";
  }
  os << "}";
}

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  *os_ << "\n],\"displayTimeUnit\":\"ms\"}\n";
  os_->flush();
}

// --- CsvTraceSink -----------------------------------------------------------

namespace {

constexpr char kCsvHeader[] = "ph,pid,tid,ts_us,dur_us,cat,name,args";

[[nodiscard]] std::string csv_safe(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    if (c == ',' || c == '|' || c == '\n') c = ';';
  return out;
}

}  // namespace

CsvTraceSink::CsvTraceSink(std::ostream& os) : os_(&os) {
  *os_ << kCsvHeader << '\n';
}

CsvTraceSink::CsvTraceSink(const std::string& path)
    : owned_(open_for_write(path)), os_(owned_.get()) {
  *os_ << kCsvHeader << '\n';
}

CsvTraceSink::~CsvTraceSink() { close(); }

void CsvTraceSink::write(const TraceEvent& e) {
  MLCR_CHECK_MSG(!closed_, "write to a closed trace sink");
  std::ostream& os = *os_;
  os << static_cast<char>(e.phase) << ',' << e.pid << ',' << e.tid << ','
     << e.ts << ',' << (e.phase == Phase::kComplete ? e.dur : 0) << ','
     << csv_safe(e.category) << ',' << csv_safe(e.name) << ',';
  bool first_arg = true;
  // The CSV header is frozen (append-only schema): the flow id rides in the
  // args column instead of adding a new one.
  if (is_flow_phase(e.phase)) {
    os << "flow_id=" << e.flow_id;
    first_arg = false;
  }
  for (const TraceArg& arg : e.args) {
    if (!first_arg) os << '|';
    first_arg = false;
    os << csv_safe(arg.key) << '=' << csv_safe(arg.value);
  }
  os << '\n';
}

void CsvTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  os_->flush();
}

}  // namespace mlcr::obs
