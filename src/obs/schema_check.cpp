#include "obs/schema_check.hpp"

#include "obs/json.hpp"
#include "obs/trace_event.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>

namespace mlcr::obs {

namespace {

// --- Event validation -------------------------------------------------------

void add_error(TraceCheckReport& report, std::size_t index,
               const std::string& what) {
  if (report.errors.size() >= TraceCheckReport::kMaxErrors) return;
  report.errors.push_back("event " + std::to_string(index) + ": " + what);
}

[[nodiscard]] bool is_finite_number(const JsonValue* v) {
  return v != nullptr && v->type == JsonValue::Type::kNumber &&
         std::isfinite(v->number);
}

// Per-flow tally, keyed by cat|name|id (the trace_event flow binding key).
struct FlowTally {
  std::size_t starts = 0;
  std::size_t steps = 0;
  std::size_t ends = 0;
};

void add_flow_error(TraceCheckReport& report, const std::string& what) {
  if (report.flow_errors.size() >= TraceCheckReport::kMaxErrors) return;
  report.flow_errors.push_back(what);
}

void check_event(const JsonValue& e, std::size_t index,
                 TraceCheckReport& report,
                 std::map<std::string, FlowTally>& flows) {
  if (e.type != JsonValue::Type::kObject) {
    add_error(report, index, "not an object");
    return;
  }

  const JsonValue* name = e.find("name");
  if (name == nullptr || name->type != JsonValue::Type::kString ||
      name->string.empty()) {
    add_error(report, index, "missing or empty \"name\" string");
    return;
  }

  const JsonValue* ph = e.find("ph");
  if (ph == nullptr || ph->type != JsonValue::Type::kString ||
      ph->string.size() != 1 ||
      std::string("XBEiICMstf").find(ph->string[0]) == std::string::npos) {
    add_error(report, index, "\"ph\" must be one of X B E i I C M s t f");
    return;
  }
  const char phase = ph->string[0];

  const JsonValue* ts = e.find("ts");
  if (!is_finite_number(ts) || ts->number < 0.0)
    add_error(report, index, "\"ts\" must be a finite number >= 0");
  if (!is_finite_number(e.find("pid")))
    add_error(report, index, "\"pid\" must be a number");
  if (!is_finite_number(e.find("tid")))
    add_error(report, index, "\"tid\" must be a number");

  const JsonValue* cat_field = e.find("cat");
  if (cat_field != nullptr && cat_field->type != JsonValue::Type::kString)
    add_error(report, index, "\"cat\" must be a string");

  const JsonValue* args = e.find("args");
  if (args != nullptr && args->type != JsonValue::Type::kObject)
    add_error(report, index, "\"args\" must be an object");

  switch (phase) {
    case 'X': {
      const JsonValue* dur = e.find("dur");
      if (!is_finite_number(dur) || dur->number < 0.0)
        add_error(report, index,
                  "complete span needs \"dur\" finite number >= 0");
      ++report.span_counts[name->string];
      break;
    }
    case 'C': {
      if (args == nullptr || args->object.empty()) {
        add_error(report, index, "counter needs a non-empty \"args\" object");
      } else {
        for (const auto& [key, v] : args->object)
          if (!is_finite_number(&v))
            add_error(report, index,
                      "counter arg \"" + key + "\" must be numeric");
      }
      ++report.counter_counts[name->string];
      break;
    }
    case 'M': {
      if (name->string != "process_name" && name->string != "thread_name" &&
          name->string != "process_labels")
        add_error(report, index,
                  "unknown metadata record \"" + name->string + "\"");
      if (args == nullptr || args->find("name") == nullptr)
        add_error(report, index, "metadata needs args.name");
      break;
    }
    case 'i':
    case 'I':
      ++report.instant_counts[name->string];
      break;
    case 's':
    case 't':
    case 'f': {
      const JsonValue* id = e.find("id");
      std::string id_key;
      if (id != nullptr && id->type == JsonValue::Type::kNumber &&
          std::isfinite(id->number) && id->number >= 0.0) {
        id_key = format_number(id->number);
      } else if (id != nullptr && id->type == JsonValue::Type::kString &&
                 !id->string.empty()) {
        id_key = id->string;
      } else {
        add_error(report, index,
                  "flow event needs \"id\" finite number >= 0 or "
                  "non-empty string");
        break;
      }
      const std::string cat =
          (cat_field != nullptr && cat_field->type == JsonValue::Type::kString)
              ? cat_field->string
              : std::string();
      FlowTally& tally = flows[cat + "|" + name->string + "|" + id_key];
      if (phase == 's') {
        ++tally.starts;
        ++report.flow_start_counts[name->string];
      } else if (phase == 't') {
        ++tally.steps;
      } else {
        ++tally.ends;
        ++report.flow_end_counts[name->string];
      }
      break;
    }
    default:
      break;  // B/E accepted without extra requirements
  }
}

void check_flow_pairing(const std::map<std::string, FlowTally>& flows,
                        TraceCheckReport& report) {
  for (const auto& [key, tally] : flows) {
    if (tally.starts == 0)
      add_flow_error(report, "flow " + key + ": " +
                                 (tally.ends > 0 ? "end" : "step") +
                                 " without a flow-start");
    else if (tally.ends == 0)
      add_flow_error(report, "flow " + key + ": started but never ended");
    else if (tally.starts != tally.ends)
      add_flow_error(report,
                     "flow " + key + ": " + std::to_string(tally.starts) +
                         " starts vs " + std::to_string(tally.ends) + " ends");
  }
}

}  // namespace

TraceCheckReport check_trace_json(const std::string& json_text) {
  TraceCheckReport report;
  JsonValue root;
  std::string parse_error;
  if (!parse_json(json_text, root, parse_error)) {
    report.errors.push_back("JSON parse error: " + parse_error);
    return report;
  }

  const JsonValue* events = nullptr;
  if (root.type == JsonValue::Type::kArray) {
    events = &root;
  } else if (root.type == JsonValue::Type::kObject) {
    events = root.find("traceEvents");
    if (events == nullptr || events->type != JsonValue::Type::kArray) {
      report.errors.push_back(
          "root object has no \"traceEvents\" array");
      return report;
    }
  } else {
    report.errors.push_back("root must be an object or an array");
    return report;
  }

  report.event_count = events->array.size();
  std::map<std::string, FlowTally> flows;
  for (std::size_t i = 0; i < events->array.size(); ++i)
    check_event(events->array[i], i, report, flows);
  check_flow_pairing(flows, report);
  return report;
}

std::vector<std::string> check_bench_json(const std::string& json_text) {
  std::vector<std::string> errors;
  JsonValue root;
  std::string parse_error;
  if (!parse_json(json_text, root, parse_error)) {
    errors.push_back("JSON parse error: " + parse_error);
    return errors;
  }
  if (root.type != JsonValue::Type::kObject) {
    errors.push_back("root must be an object");
    return errors;
  }

  const JsonValue* bench = root.find("bench");
  if (bench == nullptr || bench->type != JsonValue::Type::kString ||
      bench->string.empty())
    errors.push_back("\"bench\" must be a non-empty string");

  const JsonValue* config = root.find("config");
  if (config == nullptr || config->type != JsonValue::Type::kObject) {
    errors.push_back("\"config\" must be an object");
  } else {
    for (const auto& [key, v] : config->object)
      if (v.type != JsonValue::Type::kString &&
          v.type != JsonValue::Type::kBool &&
          !(v.type == JsonValue::Type::kNumber && std::isfinite(v.number)))
        errors.push_back("config." + key +
                         " must be a string, bool, or finite number");
  }

  for (const char* key : {"wall_ms", "events_per_sec"}) {
    const JsonValue* v = root.find(key);
    if (!is_finite_number(v) || v->number < 0.0)
      errors.push_back("\"" + std::string(key) +
                       "\" must be a finite number >= 0");
  }

  const JsonValue* metrics = root.find("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::kObject) {
    errors.push_back("\"metrics\" must be an object");
  } else {
    for (const auto& [key, v] : metrics->object)
      if (!is_finite_number(&v))
        errors.push_back("metrics." + key + " must be a finite number");
  }
  return errors;
}

std::vector<std::string> check_simlint_json(const std::string& json_text) {
  std::vector<std::string> errors;
  JsonValue root;
  std::string parse_error;
  if (!parse_json(json_text, root, parse_error)) {
    errors.push_back("JSON parse error: " + parse_error);
    return errors;
  }
  if (root.type != JsonValue::Type::kObject) {
    errors.push_back("root must be an object");
    return errors;
  }

  const JsonValue* tool = root.find("tool");
  if (tool == nullptr || tool->type != JsonValue::Type::kString ||
      tool->string != "simlint")
    errors.push_back("\"tool\" must be the string \"simlint\"");

  const JsonValue* violations = root.find("violations");
  if (violations == nullptr ||
      violations->type != JsonValue::Type::kArray) {
    errors.push_back("\"violations\" must be an array");
    return errors;
  }

  const JsonValue* count = root.find("count");
  if (!is_finite_number(count) ||
      count->number != static_cast<double>(violations->array.size()))
    errors.push_back(
        "\"count\" must be a number equal to the violations array length");

  for (std::size_t i = 0; i < violations->array.size(); ++i) {
    const JsonValue& v = violations->array[i];
    const std::string at = "violation " + std::to_string(i) + ": ";
    if (v.type != JsonValue::Type::kObject) {
      errors.push_back(at + "not an object");
      continue;
    }
    for (const char* key : {"file", "rule", "message"}) {
      const JsonValue* field = v.find(key);
      if (field == nullptr || field->type != JsonValue::Type::kString ||
          field->string.empty())
        errors.push_back(at + "\"" + key + "\" must be a non-empty string");
    }
    const JsonValue* line = v.find("line");
    if (!is_finite_number(line) || line->number < 1.0)
      errors.push_back(at + "\"line\" must be a finite number >= 1");
  }
  return errors;
}

namespace {

void check_numeric_object(const JsonValue* v, const std::string& at,
                          const char* key, std::vector<std::string>& errors) {
  if (v == nullptr || v->type != JsonValue::Type::kObject) {
    errors.push_back(at + "\"" + key + "\" must be an object");
    return;
  }
  for (const auto& [name, value] : v->object)
    if (!is_finite_number(&value))
      errors.push_back(at + key + "." + name + " must be a finite number");
}

void check_snapshot_line(const JsonValue& root, const std::string& at,
                         double& last_seq, std::vector<std::string>& errors) {
  if (root.type != JsonValue::Type::kObject) {
    errors.push_back(at + "line must be a JSON object");
    return;
  }

  const JsonValue* t = root.find("t");
  if (!is_finite_number(t) || t->number < 0.0)
    errors.push_back(at + "\"t\" must be a finite number >= 0");

  const JsonValue* seq = root.find("seq");
  if (!is_finite_number(seq) || seq->number < 0.0) {
    errors.push_back(at + "\"seq\" must be a finite number >= 0");
  } else {
    if (last_seq >= 0.0 && seq->number <= last_seq)
      errors.push_back(at + "\"seq\" must increase across lines");
    last_seq = seq->number;
  }

  check_numeric_object(root.find("counters"), at, "counters", errors);
  check_numeric_object(root.find("gauges"), at, "gauges", errors);

  const JsonValue* histograms = root.find("histograms");
  if (histograms == nullptr ||
      histograms->type != JsonValue::Type::kObject) {
    errors.push_back(at + "\"histograms\" must be an object");
  } else {
    for (const auto& [name, hist] : histograms->object) {
      if (hist.type != JsonValue::Type::kObject) {
        errors.push_back(at + "histograms." + name + " must be an object");
        continue;
      }
      for (const char* field :
           {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"})
        if (!is_finite_number(hist.find(field)))
          errors.push_back(at + "histograms." + name + "." + field +
                           " must be a finite number");
    }
  }

  const JsonValue* slo = root.find("slo");
  if (slo == nullptr || slo->type != JsonValue::Type::kObject) {
    errors.push_back(at + "\"slo\" must be an object");
    return;
  }
  const JsonValue* breaches = slo->find("breaches");
  if (breaches == nullptr || breaches->type != JsonValue::Type::kArray) {
    errors.push_back(at + "slo.breaches must be an array");
  } else {
    for (const JsonValue& b : breaches->array)
      if (b.type != JsonValue::Type::kString || b.string.empty())
        errors.push_back(at + "slo.breaches entries must be non-empty strings");
  }
  for (const auto& [name, value] : slo->object) {
    if (name == "breaches") continue;
    if (!is_finite_number(&value))
      errors.push_back(at + "slo." + name + " must be a finite number");
  }
}

}  // namespace

std::vector<std::string> check_snapshot_jsonl(const std::string& jsonl_text) {
  std::vector<std::string> errors;
  std::size_t line_no = 0;
  std::size_t begin = 0;
  double last_seq = -1.0;
  while (begin <= jsonl_text.size()) {
    std::size_t end = jsonl_text.find('\n', begin);
    if (end == std::string::npos) end = jsonl_text.size();
    const std::string line = jsonl_text.substr(begin, end - begin);
    begin = end + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    const std::string at = "line " + std::to_string(line_no) + ": ";
    JsonValue root;
    std::string parse_error;
    if (!parse_json(line, root, parse_error)) {
      errors.push_back(at + "JSON parse error: " + parse_error);
      continue;
    }
    check_snapshot_line(root, at, last_seq, errors);
  }
  return errors;
}

}  // namespace mlcr::obs
