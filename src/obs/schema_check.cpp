#include "obs/schema_check.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>

namespace mlcr::obs {

namespace {

// --- Minimal JSON value + recursive-descent parser --------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parse one complete JSON document; returns false (with error_) on any
  /// syntax problem, including trailing garbage.
  bool parse(JsonValue& out) {
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after JSON");
    return true;
  }

  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  bool fail(const std::string& what) {
    if (error_.empty())
      error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool value(JsonValue& out) {
    if (++depth_ > kMaxDepth) return fail("JSON nested too deeply");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (text_[pos_]) {
      case '{':
        ok = object(out);
        break;
      case '[':
        ok = array(out);
        break;
      case '"':
        out.type = JsonValue::Type::kString;
        ok = string(out.string);
        break;
      case 't':
      case 'f':
        ok = boolean(out);
        break;
      case 'n':
        ok = literal("null");
        out.type = JsonValue::Type::kNull;
        break;
      default:
        ok = number(out);
    }
    --depth_;
    return ok;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool boolean(JsonValue& out) {
    out.type = JsonValue::Type::kBool;
    if (text_[pos_] == 't') {
      out.boolean = true;
      return literal("true");
    }
    out.boolean = false;
    return literal("false");
  }

  bool number(JsonValue& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return fail("bad number");
    out.type = JsonValue::Type::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Validated but not decoded — event names in this repo are ASCII.
            for (int i = 0; i < 4; ++i, ++pos_)
              if (pos_ >= text_.size() ||
                  std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0)
                return fail("bad \\u escape");
            out += '?';
            break;
          default:
            return fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!consume('{')) return fail("expected object");
    if (consume('}')) return true;
    while (true) {
      std::string key;
      skip_ws();
      if (!string(key)) return false;
      if (!consume(':')) return fail("expected ':' in object");
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!consume('[')) return fail("expected array");
    if (consume(']')) return true;
    while (true) {
      JsonValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  static constexpr int kMaxDepth = 64;
  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

// --- Event validation -------------------------------------------------------

void add_error(TraceCheckReport& report, std::size_t index,
               const std::string& what) {
  if (report.errors.size() >= TraceCheckReport::kMaxErrors) return;
  report.errors.push_back("event " + std::to_string(index) + ": " + what);
}

[[nodiscard]] bool is_finite_number(const JsonValue* v) {
  return v != nullptr && v->type == JsonValue::Type::kNumber &&
         std::isfinite(v->number);
}

void check_event(const JsonValue& e, std::size_t index,
                 TraceCheckReport& report) {
  if (e.type != JsonValue::Type::kObject) {
    add_error(report, index, "not an object");
    return;
  }

  const JsonValue* name = e.find("name");
  if (name == nullptr || name->type != JsonValue::Type::kString ||
      name->string.empty()) {
    add_error(report, index, "missing or empty \"name\" string");
    return;
  }

  const JsonValue* ph = e.find("ph");
  if (ph == nullptr || ph->type != JsonValue::Type::kString ||
      ph->string.size() != 1 ||
      std::string("XBEiICM").find(ph->string[0]) == std::string::npos) {
    add_error(report, index, "\"ph\" must be one of X B E i I C M");
    return;
  }
  const char phase = ph->string[0];

  const JsonValue* ts = e.find("ts");
  if (!is_finite_number(ts) || ts->number < 0.0)
    add_error(report, index, "\"ts\" must be a finite number >= 0");
  if (!is_finite_number(e.find("pid")))
    add_error(report, index, "\"pid\" must be a number");
  if (!is_finite_number(e.find("tid")))
    add_error(report, index, "\"tid\" must be a number");

  const JsonValue* cat = e.find("cat");
  if (cat != nullptr && cat->type != JsonValue::Type::kString)
    add_error(report, index, "\"cat\" must be a string");

  const JsonValue* args = e.find("args");
  if (args != nullptr && args->type != JsonValue::Type::kObject)
    add_error(report, index, "\"args\" must be an object");

  switch (phase) {
    case 'X': {
      const JsonValue* dur = e.find("dur");
      if (!is_finite_number(dur) || dur->number < 0.0)
        add_error(report, index,
                  "complete span needs \"dur\" finite number >= 0");
      ++report.span_counts[name->string];
      break;
    }
    case 'C': {
      if (args == nullptr || args->object.empty()) {
        add_error(report, index, "counter needs a non-empty \"args\" object");
      } else {
        for (const auto& [key, v] : args->object)
          if (!is_finite_number(&v))
            add_error(report, index,
                      "counter arg \"" + key + "\" must be numeric");
      }
      ++report.counter_counts[name->string];
      break;
    }
    case 'M': {
      if (name->string != "process_name" && name->string != "thread_name" &&
          name->string != "process_labels")
        add_error(report, index,
                  "unknown metadata record \"" + name->string + "\"");
      if (args == nullptr || args->find("name") == nullptr)
        add_error(report, index, "metadata needs args.name");
      break;
    }
    case 'i':
    case 'I':
      ++report.instant_counts[name->string];
      break;
    default:
      break;  // B/E accepted without extra requirements
  }
}

}  // namespace

TraceCheckReport check_trace_json(const std::string& json_text) {
  TraceCheckReport report;
  JsonValue root;
  Parser parser(json_text);
  if (!parser.parse(root)) {
    report.errors.push_back("JSON parse error: " + parser.error());
    return report;
  }

  const JsonValue* events = nullptr;
  if (root.type == JsonValue::Type::kArray) {
    events = &root;
  } else if (root.type == JsonValue::Type::kObject) {
    events = root.find("traceEvents");
    if (events == nullptr || events->type != JsonValue::Type::kArray) {
      report.errors.push_back(
          "root object has no \"traceEvents\" array");
      return report;
    }
  } else {
    report.errors.push_back("root must be an object or an array");
    return report;
  }

  report.event_count = events->array.size();
  for (std::size_t i = 0; i < events->array.size(); ++i)
    check_event(events->array[i], i, report);
  return report;
}

}  // namespace mlcr::obs
