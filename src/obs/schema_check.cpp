#include "obs/schema_check.hpp"

#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>

namespace mlcr::obs {

namespace {

// --- Event validation -------------------------------------------------------

void add_error(TraceCheckReport& report, std::size_t index,
               const std::string& what) {
  if (report.errors.size() >= TraceCheckReport::kMaxErrors) return;
  report.errors.push_back("event " + std::to_string(index) + ": " + what);
}

[[nodiscard]] bool is_finite_number(const JsonValue* v) {
  return v != nullptr && v->type == JsonValue::Type::kNumber &&
         std::isfinite(v->number);
}

void check_event(const JsonValue& e, std::size_t index,
                 TraceCheckReport& report) {
  if (e.type != JsonValue::Type::kObject) {
    add_error(report, index, "not an object");
    return;
  }

  const JsonValue* name = e.find("name");
  if (name == nullptr || name->type != JsonValue::Type::kString ||
      name->string.empty()) {
    add_error(report, index, "missing or empty \"name\" string");
    return;
  }

  const JsonValue* ph = e.find("ph");
  if (ph == nullptr || ph->type != JsonValue::Type::kString ||
      ph->string.size() != 1 ||
      std::string("XBEiICM").find(ph->string[0]) == std::string::npos) {
    add_error(report, index, "\"ph\" must be one of X B E i I C M");
    return;
  }
  const char phase = ph->string[0];

  const JsonValue* ts = e.find("ts");
  if (!is_finite_number(ts) || ts->number < 0.0)
    add_error(report, index, "\"ts\" must be a finite number >= 0");
  if (!is_finite_number(e.find("pid")))
    add_error(report, index, "\"pid\" must be a number");
  if (!is_finite_number(e.find("tid")))
    add_error(report, index, "\"tid\" must be a number");

  const JsonValue* cat = e.find("cat");
  if (cat != nullptr && cat->type != JsonValue::Type::kString)
    add_error(report, index, "\"cat\" must be a string");

  const JsonValue* args = e.find("args");
  if (args != nullptr && args->type != JsonValue::Type::kObject)
    add_error(report, index, "\"args\" must be an object");

  switch (phase) {
    case 'X': {
      const JsonValue* dur = e.find("dur");
      if (!is_finite_number(dur) || dur->number < 0.0)
        add_error(report, index,
                  "complete span needs \"dur\" finite number >= 0");
      ++report.span_counts[name->string];
      break;
    }
    case 'C': {
      if (args == nullptr || args->object.empty()) {
        add_error(report, index, "counter needs a non-empty \"args\" object");
      } else {
        for (const auto& [key, v] : args->object)
          if (!is_finite_number(&v))
            add_error(report, index,
                      "counter arg \"" + key + "\" must be numeric");
      }
      ++report.counter_counts[name->string];
      break;
    }
    case 'M': {
      if (name->string != "process_name" && name->string != "thread_name" &&
          name->string != "process_labels")
        add_error(report, index,
                  "unknown metadata record \"" + name->string + "\"");
      if (args == nullptr || args->find("name") == nullptr)
        add_error(report, index, "metadata needs args.name");
      break;
    }
    case 'i':
    case 'I':
      ++report.instant_counts[name->string];
      break;
    default:
      break;  // B/E accepted without extra requirements
  }
}

}  // namespace

TraceCheckReport check_trace_json(const std::string& json_text) {
  TraceCheckReport report;
  JsonValue root;
  std::string parse_error;
  if (!parse_json(json_text, root, parse_error)) {
    report.errors.push_back("JSON parse error: " + parse_error);
    return report;
  }

  const JsonValue* events = nullptr;
  if (root.type == JsonValue::Type::kArray) {
    events = &root;
  } else if (root.type == JsonValue::Type::kObject) {
    events = root.find("traceEvents");
    if (events == nullptr || events->type != JsonValue::Type::kArray) {
      report.errors.push_back(
          "root object has no \"traceEvents\" array");
      return report;
    }
  } else {
    report.errors.push_back("root must be an object or an array");
    return report;
  }

  report.event_count = events->array.size();
  for (std::size_t i = 0; i < events->array.size(); ++i)
    check_event(events->array[i], i, report);
  return report;
}

std::vector<std::string> check_bench_json(const std::string& json_text) {
  std::vector<std::string> errors;
  JsonValue root;
  std::string parse_error;
  if (!parse_json(json_text, root, parse_error)) {
    errors.push_back("JSON parse error: " + parse_error);
    return errors;
  }
  if (root.type != JsonValue::Type::kObject) {
    errors.push_back("root must be an object");
    return errors;
  }

  const JsonValue* bench = root.find("bench");
  if (bench == nullptr || bench->type != JsonValue::Type::kString ||
      bench->string.empty())
    errors.push_back("\"bench\" must be a non-empty string");

  const JsonValue* config = root.find("config");
  if (config == nullptr || config->type != JsonValue::Type::kObject) {
    errors.push_back("\"config\" must be an object");
  } else {
    for (const auto& [key, v] : config->object)
      if (v.type != JsonValue::Type::kString &&
          v.type != JsonValue::Type::kBool &&
          !(v.type == JsonValue::Type::kNumber && std::isfinite(v.number)))
        errors.push_back("config." + key +
                         " must be a string, bool, or finite number");
  }

  for (const char* key : {"wall_ms", "events_per_sec"}) {
    const JsonValue* v = root.find(key);
    if (!is_finite_number(v) || v->number < 0.0)
      errors.push_back("\"" + std::string(key) +
                       "\" must be a finite number >= 0");
  }

  const JsonValue* metrics = root.find("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::kObject) {
    errors.push_back("\"metrics\" must be an object");
  } else {
    for (const auto& [key, v] : metrics->object)
      if (!is_finite_number(&v))
        errors.push_back("metrics." + key + " must be a finite number");
  }
  return errors;
}

std::vector<std::string> check_simlint_json(const std::string& json_text) {
  std::vector<std::string> errors;
  JsonValue root;
  std::string parse_error;
  if (!parse_json(json_text, root, parse_error)) {
    errors.push_back("JSON parse error: " + parse_error);
    return errors;
  }
  if (root.type != JsonValue::Type::kObject) {
    errors.push_back("root must be an object");
    return errors;
  }

  const JsonValue* tool = root.find("tool");
  if (tool == nullptr || tool->type != JsonValue::Type::kString ||
      tool->string != "simlint")
    errors.push_back("\"tool\" must be the string \"simlint\"");

  const JsonValue* violations = root.find("violations");
  if (violations == nullptr ||
      violations->type != JsonValue::Type::kArray) {
    errors.push_back("\"violations\" must be an array");
    return errors;
  }

  const JsonValue* count = root.find("count");
  if (!is_finite_number(count) ||
      count->number != static_cast<double>(violations->array.size()))
    errors.push_back(
        "\"count\" must be a number equal to the violations array length");

  for (std::size_t i = 0; i < violations->array.size(); ++i) {
    const JsonValue& v = violations->array[i];
    const std::string at = "violation " + std::to_string(i) + ": ";
    if (v.type != JsonValue::Type::kObject) {
      errors.push_back(at + "not an object");
      continue;
    }
    for (const char* key : {"file", "rule", "message"}) {
      const JsonValue* field = v.find(key);
      if (field == nullptr || field->type != JsonValue::Type::kString ||
          field->string.empty())
        errors.push_back(at + "\"" + key + "\" must be a non-empty string");
    }
    const JsonValue* line = v.find("line");
    if (!is_finite_number(line) || line->number < 1.0)
      errors.push_back(at + "\"line\" must be a finite number >= 1");
  }
  return errors;
}

}  // namespace mlcr::obs
