// Flight recorder: periodic JSONL snapshots of the telemetry plane. Each
// write() emits one self-contained JSON line — merged metrics plus the
// current SLO report — so a crashed or live-debugged serving process leaves
// an append-only record of its recent state.
//
// The line format is validated by obs::check_snapshot_jsonl and rendered by
// tools/obsreport. All maps iterate in name order and numbers render through
// format_number, so under SimClock two identical runs produce byte-identical
// files (DESIGN.md §6 extends to telemetry).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "obs/metrics_registry.hpp"
#include "obs/slo.hpp"

namespace mlcr::obs {

class FlightRecorder {
 public:
  /// Stream to `path` (truncating). Throws CheckError if it cannot open.
  explicit FlightRecorder(const std::string& path);
  /// Stream to a caller-owned ostream (tests).
  explicit FlightRecorder(std::ostream& os);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// Append one snapshot line at (simulated or wall) time `t_s`.
  void write(double t_s, const MetricsRegistry& metrics,
             const SloReport& slo);

  [[nodiscard]] std::uint64_t snapshot_count() const noexcept { return seq_; }

  /// Flush and stop accepting writes.
  void close();

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* os_ = nullptr;
  std::uint64_t seq_ = 0;
  bool closed_ = false;
};

}  // namespace mlcr::obs
