// ConcurrentMetricsRegistry: the thread-safe front-end of the telemetry
// plane. Worker threads record counters/gauges/histogram samples into one of
// a small number of slots (picked by thread id), each guarded by its own
// mutex — so the serving hot path never contends on a global lock. Reads
// merge every slot into a plain single-threaded MetricsRegistry
// (Histogram::merge for histograms, sums for counters, a global stamp for
// last-write-wins gauges), in deterministic name order.
//
// Determinism: a single-threaded writer (SchedulerService::run_replay under
// SimClock) lands every sample in one slot, and snapshot() merges slots in a
// fixed order with commutative/associative operations — so snapshots are a
// pure function of the recorded samples, per the DESIGN.md §6 contract.
//
// Locking: slot mutexes are the leaves of the declared lock order
// (util::lock_ranks::registry_slot); nothing is ever acquired while one is
// held, and the snapshot path takes them one at a time.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace mlcr::obs {

class ConcurrentMetricsRegistry {
 public:
  /// `slots` bounds writer contention: ~one slot per expected worker thread
  /// is plenty. Slot count is fixed for the registry's lifetime.
  explicit ConcurrentMetricsRegistry(std::size_t slots = 8);

  ConcurrentMetricsRegistry(const ConcurrentMetricsRegistry&) = delete;
  ConcurrentMetricsRegistry& operator=(const ConcurrentMetricsRegistry&) =
      delete;

  /// Add `n` to the named counter (create-on-first-use, like
  /// MetricsRegistry::counter).
  void add(const std::string& name, std::uint64_t n = 1);

  /// Set the named gauge. Across slots the write with the newest global
  /// stamp wins, so concurrent setters merge to a well-defined value.
  void set_gauge(const std::string& name, double value);

  /// Record one histogram sample (all histograms share the default
  /// Histogram layout so cross-slot merges are always layout-compatible).
  void record(const std::string& name, double value);

  /// Merge every slot into a plain registry: counter sums, newest-stamp
  /// gauges, Histogram::merge. Safe to call while writers are recording;
  /// the result is a consistent per-slot (not global) cut.
  [[nodiscard]] MetricsRegistry snapshot() const;

  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }

  /// Drop all recorded values (episode boundaries).
  void clear();

 private:
  struct GaugeSample {
    std::uint64_t stamp = 0;
    double value = 0.0;
  };

  struct Slot {
    mutable std::mutex slot_mutex_;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, GaugeSample> gauges;
    std::map<std::string, Histogram> histograms;
  };

  /// Slot index for the calling thread (stable per thread per registry).
  [[nodiscard]] std::size_t local_slot_index() const;

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> gauge_stamp_{0};
};

}  // namespace mlcr::obs
