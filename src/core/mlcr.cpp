#include "core/mlcr.hpp"

#include "obs/tracer.hpp"
#include "util/check.hpp"

namespace mlcr::core {

MlcrConfig make_default_mlcr_config(std::size_t num_slots,
                                    std::size_t embed_dim) {
  MlcrConfig c;
  c.encoder.num_slots = num_slots;
  c.dqn.network.feature_dim = c.encoder.feature_dim;
  c.dqn.network.num_slots = num_slots;
  c.dqn.network.embed_dim = embed_dim;
  c.dqn.network.heads = 2;
  c.dqn.network.blocks = 2;
  c.dqn.network.ffn_dim = embed_dim * 2;
  c.dqn.batch_size = 16;
  return c;
}

MlcrScheduler::MlcrScheduler(std::shared_ptr<rl::DqnAgent> agent,
                             StateEncoder encoder)
    : agent_(std::move(agent)), encoder_(std::move(encoder)) {
  MLCR_CHECK(agent_ != nullptr);
  MLCR_CHECK_MSG(
      agent_->config().network.num_slots == encoder_.config().num_slots &&
          agent_->config().network.feature_dim ==
              encoder_.config().feature_dim,
      "agent network dimensions must match the state encoder");
}

void MlcrScheduler::on_episode_start(const sim::ClusterEnv& env) {
  (void)env;
  has_prev_ = false;
}

sim::Action MlcrScheduler::decide(const sim::ClusterEnv& env,
                                  const sim::Invocation& inv) {
  const double prev = has_prev_ ? prev_arrival_s_ : inv.arrival_s;
  const EncodedState state = encoder_.encode(env, inv, prev);
  prev_arrival_s_ = inv.arrival_s;
  has_prev_ = true;
  const std::size_t action = agent_->greedy_action(state.tokens, state.mask);
  obs::Tracer* tracer = env.tracer();
  if (tracer != nullptr && tracer->enabled()) {
    // Deterministic marker of each forward pass, in simulated time; the
    // bench layer separately wraps decide() in a wall-time span to measure
    // the real inference cost.
    tracer->instant(
        obs::Tracer::kSimPid, env.trace_track(), obs::to_micros(inv.arrival_s),
        "dqn_inference", "rl",
        {obs::narg("action", static_cast<std::int64_t>(action)),
         obs::narg("seq", static_cast<std::int64_t>(inv.seq))});
  }
  return encoder_.to_sim_action(state, action);
}

std::vector<sim::Action> MlcrScheduler::decide_batch(
    const std::vector<MlcrScheduler*>& schedulers,
    const std::vector<const sim::ClusterEnv*>& envs,
    const std::vector<const sim::Invocation*>& invs) {
  const std::size_t batch = schedulers.size();
  MLCR_CHECK(envs.size() == batch && invs.size() == batch);
  if (batch == 0) return {};
  // One shared model per batch: the batched forward is a single matrix pass
  // over the stacked states, which only makes sense (and is only
  // bit-identical per entry) when every scheduler queries the same weights.
  for (const MlcrScheduler* s : schedulers) {
    MLCR_CHECK(s != nullptr);
    MLCR_CHECK_MSG(s->agent_ == schedulers.front()->agent_,
                   "decide_batch() requires one shared agent");
  }

  // Phase 1: encode each entry exactly as its scheduler's decide() would,
  // including the per-scheduler prev-arrival update.
  std::vector<EncodedState> states;
  states.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    MlcrScheduler& sched = *schedulers[i];
    const sim::Invocation& inv = *invs[i];
    const double prev = sched.has_prev_ ? sched.prev_arrival_s_ : inv.arrival_s;
    states.push_back(sched.encoder_.encode(*envs[i], inv, prev));
    sched.prev_arrival_s_ = inv.arrival_s;
    sched.has_prev_ = true;
  }

  // Phase 2: one forward_batch pass for the whole wave.
  std::vector<const nn::Tensor*> tokens(batch);
  std::vector<const rl::ActionMask*> masks(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    tokens[i] = &states[i].tokens;
    masks[i] = &states[i].mask;
  }
  const std::vector<std::size_t> actions =
      schedulers.front()->agent_->greedy_actions(tokens, masks);
  MLCR_CHECK(actions.size() == batch);

  // Phase 3: per-entry tracer marker + action decode, as in decide().
  std::vector<sim::Action> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const sim::ClusterEnv& env = *envs[i];
    const sim::Invocation& inv = *invs[i];
    obs::Tracer* tracer = env.tracer();
    if (tracer != nullptr && tracer->enabled()) {
      tracer->instant(obs::Tracer::kSimPid, env.trace_track(),
                      obs::to_micros(inv.arrival_s), "dqn_inference", "rl",
                      {obs::narg("action", static_cast<std::int64_t>(
                                               actions[i])),
                       obs::narg("seq", static_cast<std::int64_t>(inv.seq))});
    }
    out.push_back(schedulers[i]->encoder_.to_sim_action(states[i], actions[i]));
  }
  return out;
}

policies::SystemSpec make_mlcr_system(std::shared_ptr<rl::DqnAgent> agent,
                                      const StateEncoderConfig& encoder) {
  return policies::SystemSpec{
      "MLCR",
      std::make_unique<MlcrScheduler>(std::move(agent), StateEncoder(encoder)),
      [] { return std::make_unique<containers::LruEviction>(); },
      std::nullopt};
}

}  // namespace mlcr::core
