#include "core/mlcr.hpp"

#include "obs/tracer.hpp"
#include "util/check.hpp"

namespace mlcr::core {

MlcrConfig make_default_mlcr_config(std::size_t num_slots,
                                    std::size_t embed_dim) {
  MlcrConfig c;
  c.encoder.num_slots = num_slots;
  c.dqn.network.feature_dim = c.encoder.feature_dim;
  c.dqn.network.num_slots = num_slots;
  c.dqn.network.embed_dim = embed_dim;
  c.dqn.network.heads = 2;
  c.dqn.network.blocks = 2;
  c.dqn.network.ffn_dim = embed_dim * 2;
  c.dqn.batch_size = 16;
  return c;
}

MlcrScheduler::MlcrScheduler(std::shared_ptr<rl::DqnAgent> agent,
                             StateEncoder encoder)
    : agent_(std::move(agent)), encoder_(std::move(encoder)) {
  MLCR_CHECK(agent_ != nullptr);
  MLCR_CHECK_MSG(
      agent_->config().network.num_slots == encoder_.config().num_slots &&
          agent_->config().network.feature_dim ==
              encoder_.config().feature_dim,
      "agent network dimensions must match the state encoder");
}

void MlcrScheduler::on_episode_start(const sim::ClusterEnv& env) {
  (void)env;
  has_prev_ = false;
}

sim::Action MlcrScheduler::decide(const sim::ClusterEnv& env,
                                  const sim::Invocation& inv) {
  const double prev = has_prev_ ? prev_arrival_s_ : inv.arrival_s;
  const EncodedState state = encoder_.encode(env, inv, prev);
  prev_arrival_s_ = inv.arrival_s;
  has_prev_ = true;
  const std::size_t action = agent_->greedy_action(state.tokens, state.mask);
  obs::Tracer* tracer = env.tracer();
  if (tracer != nullptr && tracer->enabled()) {
    // Deterministic marker of each forward pass, in simulated time; the
    // bench layer separately wraps decide() in a wall-time span to measure
    // the real inference cost.
    tracer->instant(
        obs::Tracer::kSimPid, env.trace_track(), obs::to_micros(inv.arrival_s),
        "dqn_inference", "rl",
        {obs::narg("action", static_cast<std::int64_t>(action)),
         obs::narg("seq", static_cast<std::int64_t>(inv.seq))});
  }
  return encoder_.to_sim_action(state, action);
}

policies::SystemSpec make_mlcr_system(std::shared_ptr<rl::DqnAgent> agent,
                                      const StateEncoderConfig& encoder) {
  return policies::SystemSpec{
      "MLCR",
      std::make_unique<MlcrScheduler>(std::move(agent), StateEncoder(encoder)),
      [] { return std::make_unique<containers::LruEviction>(); },
      std::nullopt};
}

}  // namespace mlcr::core
