#include "core/trainer.hpp"

#include <filesystem>
#include <limits>

#include "obs/tracer.hpp"
#include "util/check.hpp"

namespace mlcr::core {

namespace {

/// The multi-level greedy policy expressed in action-index space: the state
/// encoder orders slots by (match level desc, recency desc), so greedy is
/// "slot 0 if it is reusable, else cold".
[[nodiscard]] std::size_t greedy_action_index(const EncodedState& state,
                                              const StateEncoder& encoder) {
  if (!state.mask.empty() && state.mask[0]) return 0;
  return encoder.config().num_slots;  // cold
}

/// Run greedy episodes, feeding transitions into the agent's replay buffer.
void seed_replay_with_greedy(rl::DqnAgent& agent, const StateEncoder& encoder,
                             float reward_scale_s, sim::ClusterEnv& env,
                             const sim::Trace& trace) {
  env.reset(trace);
  double prev_arrival = 0.0;
  bool has_prev = false;
  while (!env.done()) {
    const sim::Invocation inv = env.current();
    const double prev = has_prev ? prev_arrival : inv.arrival_s;
    EncodedState state = encoder.encode(env, inv, prev);
    prev_arrival = inv.arrival_s;
    has_prev = true;
    const std::size_t action = greedy_action_index(state, encoder);
    const sim::StepResult result =
        env.step(encoder.to_sim_action(state, action));

    rl::Transition t;
    t.state = std::move(state.tokens);
    t.action = action;
    t.reward = static_cast<float>(-result.latency_s) / reward_scale_s;
    if (env.done()) {
      t.terminal = true;
      t.next_state =
          nn::Tensor(encoder.num_tokens(), encoder.config().feature_dim);
      t.next_mask.assign(encoder.num_actions(), 0);
    } else {
      EncodedState next = encoder.encode(env, env.current(), prev_arrival);
      t.next_state = std::move(next.tokens);
      t.next_mask = std::move(next.mask);
    }
    agent.observe(std::move(t));
  }
}

/// Total latency of one multi-level-greedy episode (baseline for
/// normalizing validation scores across environments).
[[nodiscard]] double greedy_episode_latency(const StateEncoder& encoder,
                                            sim::ClusterEnv& env,
                                            const sim::Trace& trace) {
  env.reset(trace);
  while (!env.done()) {
    const EncodedState state = encoder.encode(env, env.current(), 0.0);
    (void)env.step(
        encoder.to_sim_action(state, greedy_action_index(state, encoder)));
  }
  return env.metrics().total_latency_s();
}

/// Greedy-policy evaluation of the current network: per-environment total
/// startup latency normalized by that environment's multi-level-greedy
/// baseline, summed. Normalization keeps tight pools (whose absolute
/// latencies are several times larger) from dominating checkpoint selection.
[[nodiscard]] double validate(rl::DqnAgent& agent, const StateEncoder& encoder,
                              const std::vector<sim::ClusterEnv*>& envs,
                              const sim::Trace& trace,
                              const std::vector<double>& baselines) {
  double total = 0.0;
  for (std::size_t e = 0; e < envs.size(); ++e) {
    sim::ClusterEnv& env = *envs[e];
    env.reset(trace);
    double prev_arrival = 0.0;
    bool has_prev = false;
    while (!env.done()) {
      const sim::Invocation inv = env.current();
      const double prev = has_prev ? prev_arrival : inv.arrival_s;
      const EncodedState state = encoder.encode(env, inv, prev);
      prev_arrival = inv.arrival_s;
      has_prev = true;
      const std::size_t action =
          agent.greedy_action(state.tokens, state.mask);
      (void)env.step(encoder.to_sim_action(state, action));
    }
    total += env.metrics().total_latency_s() / baselines[e];
  }
  return total;
}

}  // namespace

TrainerReport train_agent(rl::DqnAgent& agent, const StateEncoder& encoder,
                          float reward_scale_s,
                          const std::vector<sim::ClusterEnv*>& envs,
                          const std::vector<const sim::Trace*>& traces,
                          const TrainerConfig& config) {
  MLCR_CHECK(!envs.empty() && !traces.empty());
  MLCR_CHECK(reward_scale_s > 0.0F);
  MLCR_CHECK(config.train_every > 0);

  util::Rng rng(config.seed);

  std::size_t planned_steps = 0;
  for (std::size_t ep = 0; ep < config.episodes; ++ep)
    planned_steps += traces[ep % traces.size()]->size();
  const std::size_t decay = config.epsilon_decay_steps != 0
                                ? config.epsilon_decay_steps
                                : planned_steps * 3 / 5;
  const rl::LinearEpsilon epsilon(config.epsilon_start, config.epsilon_end,
                                  decay);

  TrainerReport report;
  double loss_sum = 0.0;
  std::size_t loss_count = 0;
  const std::size_t late_start = planned_steps * 3 / 4;

  obs::Tracer* tracer = config.tracer;
  const bool traced = tracer != nullptr && tracer->enabled();
  agent.set_tracer(tracer);
  if (traced) {
    tracer->thread_name(obs::Tracer::kTrainPid, 0, "env-steps");
    tracer->thread_name(obs::Tracer::kTrainPid, 1, "gradient-steps");
  }

  // Demonstration seeding: greedy episodes across envs/traces.
  for (std::size_t ep = 0; ep < config.greedy_warmup_episodes; ++ep)
    seed_replay_with_greedy(agent, encoder, reward_scale_s,
                            *envs[ep % envs.size()],
                            *traces[ep % traces.size()]);

  std::vector<nn::Tensor> best_weights;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<double> validation_baselines;
  if (config.validate_every != 0)
    for (sim::ClusterEnv* env : envs)
      validation_baselines.push_back(std::max(
          1e-9, greedy_episode_latency(encoder, *env, *traces[0])));

  for (std::size_t ep = 0; ep < config.episodes; ++ep) {
    sim::ClusterEnv& env = *envs[ep % envs.size()];
    const sim::Trace& trace = *traces[ep % traces.size()];
    env.reset(trace);
    const std::size_t episode_start = report.env_steps;

    double prev_arrival = 0.0;
    bool has_prev = false;
    while (!env.done()) {
      const sim::Invocation inv = env.current();
      const double prev = has_prev ? prev_arrival : inv.arrival_s;
      EncodedState state = encoder.encode(env, inv, prev);
      prev_arrival = inv.arrival_s;
      has_prev = true;

      const float eps = epsilon.value(report.env_steps);
      if (traced && report.env_steps % config.train_every == 0)
        tracer->counter(obs::Tracer::kTrainPid, 0,
                        static_cast<obs::Micros>(report.env_steps), "epsilon",
                        static_cast<double>(eps));
      const std::size_t action =
          agent.select_action(state.tokens, state.mask, eps, rng);
      const sim::StepResult result =
          env.step(encoder.to_sim_action(state, action));

      rl::Transition t;
      t.state = std::move(state.tokens);
      t.action = action;
      t.reward = static_cast<float>(-result.latency_s) / reward_scale_s;
      if (env.done()) {
        t.terminal = true;
        t.next_state = nn::Tensor(encoder.num_tokens(),
                                  encoder.config().feature_dim);
        t.next_mask.assign(encoder.num_actions(), 0);
      } else {
        EncodedState next =
            encoder.encode(env, env.current(), prev_arrival);
        t.next_state = std::move(next.tokens);
        t.next_mask = std::move(next.mask);
      }
      agent.observe(std::move(t));

      ++report.env_steps;
      if (report.env_steps % config.train_every == 0) {
        if (const auto loss = agent.train_step(rng)) {
          ++report.train_steps;
          if (report.env_steps >= late_start) {
            loss_sum += *loss;
            ++loss_count;
          }
        }
      }
    }
    report.episode_total_latency_s.push_back(env.metrics().total_latency_s());
    if (traced)
      tracer->span(obs::Tracer::kTrainPid, 0,
                   static_cast<obs::Micros>(episode_start),
                   static_cast<obs::Micros>(report.env_steps - episode_start),
                   "episode", "train",
                   {obs::narg("episode", static_cast<std::int64_t>(ep)),
                    obs::narg("total_latency_s",
                              env.metrics().total_latency_s())});
    if (config.on_episode_end)
      config.on_episode_end(ep, env.metrics().total_latency_s());

    if (config.validate_every != 0 &&
        (ep + 1) % config.validate_every == 0) {
      const double score =
          validate(agent, encoder, envs, *traces[0], validation_baselines);
      const bool improved = score < best_score;
      if (improved) {
        best_score = score;
        best_weights = agent.snapshot_weights();
        report.best_validation = report.validation_latency_s.size();
      }
      report.validation_latency_s.push_back(score);
      if (traced)
        tracer->instant(
            obs::Tracer::kTrainPid, 0,
            static_cast<obs::Micros>(report.env_steps), "validation", "train",
            {obs::narg("score", score),
             obs::narg("best", static_cast<std::int64_t>(improved ? 1 : 0))});
    }
  }

  agent.set_tracer(nullptr);
  if (!best_weights.empty()) agent.restore_weights(best_weights);
  if (loss_count > 0) report.late_loss = loss_sum / static_cast<double>(loss_count);
  return report;
}

bool load_or_train(rl::DqnAgent& agent, const std::string& path,
                   const std::function<void()>& train) {
  if (std::filesystem::exists(path)) {
    try {
      agent.load(path);
      return true;
    } catch (const util::CheckError&) {
      // Incompatible cache (e.g. config changed): retrain below.
    }
  }
  train();
  agent.save(path);
  return false;
}

}  // namespace mlcr::core
