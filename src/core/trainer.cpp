#include "core/trainer.hpp"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "nn/serialize.hpp"
#include "obs/tracer.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace mlcr::core {

namespace {

/// The multi-level greedy policy expressed in action-index space: the state
/// encoder orders slots by (match level desc, recency desc), so greedy is
/// "slot 0 if it is reusable, else cold".
[[nodiscard]] std::size_t greedy_action_index(const EncodedState& state,
                                              const StateEncoder& encoder) {
  if (!state.mask.empty() && state.mask[0]) return 0;
  return encoder.config().num_slots;  // cold
}

/// Run greedy episodes, feeding transitions into the agent's replay buffer.
void seed_replay_with_greedy(rl::DqnAgent& agent, const StateEncoder& encoder,
                             float reward_scale_s, sim::ClusterEnv& env,
                             const sim::Trace& trace) {
  env.reset(trace);
  double prev_arrival = 0.0;
  bool has_prev = false;
  while (!env.done()) {
    const sim::Invocation inv = env.current();
    const double prev = has_prev ? prev_arrival : inv.arrival_s;
    EncodedState state = encoder.encode(env, inv, prev);
    prev_arrival = inv.arrival_s;
    has_prev = true;
    const std::size_t action = greedy_action_index(state, encoder);
    const sim::StepResult result =
        env.step(encoder.to_sim_action(state, action));

    rl::Transition t;
    t.state = std::move(state.tokens);
    t.action = action;
    t.reward = static_cast<float>(-result.latency_s) / reward_scale_s;
    if (env.done()) {
      t.terminal = true;
      t.next_state =
          nn::Tensor(encoder.num_tokens(), encoder.config().feature_dim);
      t.next_mask.assign(encoder.num_actions(), 0);
    } else {
      EncodedState next = encoder.encode(env, env.current(), prev_arrival);
      t.next_state = std::move(next.tokens);
      t.next_mask = std::move(next.mask);
    }
    agent.observe(std::move(t));
  }
}

/// Total latency of one multi-level-greedy episode (baseline for
/// normalizing validation scores across environments).
[[nodiscard]] double greedy_episode_latency(const StateEncoder& encoder,
                                            sim::ClusterEnv& env,
                                            const sim::Trace& trace) {
  env.reset(trace);
  while (!env.done()) {
    const EncodedState state = encoder.encode(env, env.current(), 0.0);
    (void)env.step(
        encoder.to_sim_action(state, greedy_action_index(state, encoder)));
  }
  return env.metrics().total_latency_s();
}

/// Greedy-policy evaluation of the current network: per-environment total
/// startup latency normalized by that environment's multi-level-greedy
/// baseline, summed. Normalization keeps tight pools (whose absolute
/// latencies are several times larger) from dominating checkpoint selection.
[[nodiscard]] double validate(rl::DqnAgent& agent, const StateEncoder& encoder,
                              const std::vector<sim::ClusterEnv*>& envs,
                              const sim::Trace& trace,
                              const std::vector<double>& baselines) {
  double total = 0.0;
  for (std::size_t e = 0; e < envs.size(); ++e) {
    sim::ClusterEnv& env = *envs[e];
    env.reset(trace);
    double prev_arrival = 0.0;
    bool has_prev = false;
    while (!env.done()) {
      const sim::Invocation inv = env.current();
      const double prev = has_prev ? prev_arrival : inv.arrival_s;
      const EncodedState state = encoder.encode(env, inv, prev);
      prev_arrival = inv.arrival_s;
      has_prev = true;
      const std::size_t action =
          agent.greedy_action(state.tokens, state.mask);
      (void)env.step(encoder.to_sim_action(state, action));
    }
    total += env.metrics().total_latency_s() / baselines[e];
  }
  return total;
}

/// Fresh environment configured identically to `src`. Round collection rolls
/// episodes out on clones so parallel workers never share mutable state (and
/// the serial round path uses the same clones, keeping worker count a pure
/// throughput knob).
[[nodiscard]] std::unique_ptr<sim::ClusterEnv> clone_env(
    const sim::ClusterEnv& src) {
  return std::make_unique<sim::ClusterEnv>(src.functions(), src.catalog(),
                                           src.cost_model(), src.config(),
                                           src.eviction_factory());
}

/// One whole rolled-out episode, ready for the sequential merge.
struct CollectedEpisode {
  std::vector<rl::Transition> transitions;
  double total_latency_s = 0.0;
};

/// Roll one episode against a frozen policy network. Epsilon anneals by the
/// planned serial step index (`planned_start + s`), not by a live global
/// counter, so the schedule each step sees is independent of how episodes
/// are batched into rounds or scheduled onto workers. Action selection
/// mirrors DqnAgent::select_action on `rng`, a stream owned by this episode.
[[nodiscard]] CollectedEpisode collect_episode(
    rl::QNetwork& policy, const StateEncoder& encoder, float reward_scale_s,
    sim::ClusterEnv& env, const sim::Trace& trace,
    const rl::LinearEpsilon& epsilon, std::size_t planned_start,
    util::Rng rng) {
  CollectedEpisode out;
  out.transitions.reserve(trace.size());
  env.reset(trace);
  double prev_arrival = 0.0;
  bool has_prev = false;
  std::size_t s = 0;
  while (!env.done()) {
    const sim::Invocation inv = env.current();
    const double prev = has_prev ? prev_arrival : inv.arrival_s;
    EncodedState state = encoder.encode(env, inv, prev);
    prev_arrival = inv.arrival_s;
    has_prev = true;

    const float eps = epsilon.value(planned_start + s);
    std::size_t action;
    if (rng.uniform() < eps) {
      // Uniform over allowed actions only, as in DqnAgent::select_action.
      std::vector<std::size_t> allowed;
      for (std::size_t i = 0; i < state.mask.size(); ++i)
        if (state.mask[i]) allowed.push_back(i);
      MLCR_CHECK_MSG(!allowed.empty(), "no allowed action in mask");
      action = allowed[rng.uniform_index(allowed.size())];
    } else {
      const auto best =
          rl::masked_argmax(policy.forward(state.tokens), state.mask);
      MLCR_CHECK_MSG(best.has_value(), "no allowed action in mask");
      action = *best;
    }
    const sim::StepResult result =
        env.step(encoder.to_sim_action(state, action));

    rl::Transition t;
    t.state = std::move(state.tokens);
    t.action = action;
    t.reward = static_cast<float>(-result.latency_s) / reward_scale_s;
    if (env.done()) {
      t.terminal = true;
      t.next_state =
          nn::Tensor(encoder.num_tokens(), encoder.config().feature_dim);
      t.next_mask.assign(encoder.num_actions(), 0);
    } else {
      EncodedState next = encoder.encode(env, env.current(), prev_arrival);
      t.next_state = std::move(next.tokens);
      t.next_mask = std::move(next.mask);
    }
    out.transitions.push_back(std::move(t));
    ++s;
  }
  out.total_latency_s = env.metrics().total_latency_s();
  return out;
}

/// Shared per-run bookkeeping of both training paths.
struct TrainRun {
  rl::LinearEpsilon epsilon{1.0F, 0.0F, 1};
  TrainerReport report;
  double loss_sum = 0.0;
  std::size_t loss_count = 0;
  std::size_t late_start = 0;
  bool traced = false;
  std::vector<nn::Tensor> best_weights;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<double> validation_baselines;
};

/// Setup common to both paths: epsilon schedule from the planned step total,
/// tracer tracks, greedy replay seeding and validation baselines.
[[nodiscard]] TrainRun start_run(rl::DqnAgent& agent,
                                 const StateEncoder& encoder,
                                 float reward_scale_s,
                                 const std::vector<sim::ClusterEnv*>& envs,
                                 const std::vector<const sim::Trace*>& traces,
                                 const TrainerConfig& config) {
  TrainRun run;
  std::size_t planned_steps = 0;
  for (std::size_t ep = 0; ep < config.episodes; ++ep)
    planned_steps += traces[ep % traces.size()]->size();
  const std::size_t decay = config.epsilon_decay_steps != 0
                                ? config.epsilon_decay_steps
                                : planned_steps * 3 / 5;
  run.epsilon =
      rl::LinearEpsilon(config.epsilon_start, config.epsilon_end, decay);
  run.late_start = planned_steps * 3 / 4;

  obs::Tracer* tracer = config.tracer;
  run.traced = tracer != nullptr && tracer->enabled();
  agent.set_tracer(tracer);
  if (run.traced) {
    tracer->thread_name(obs::Tracer::kTrainPid, 0, "env-steps");
    tracer->thread_name(obs::Tracer::kTrainPid, 1, "gradient-steps");
  }

  // Demonstration seeding: greedy episodes across envs/traces.
  for (std::size_t ep = 0; ep < config.greedy_warmup_episodes; ++ep)
    seed_replay_with_greedy(agent, encoder, reward_scale_s,
                            *envs[ep % envs.size()],
                            *traces[ep % traces.size()]);

  if (config.validate_every != 0)
    for (sim::ClusterEnv* env : envs)
      run.validation_baselines.push_back(std::max(
          1e-9, greedy_episode_latency(encoder, *env, *traces[0])));
  return run;
}

/// Validation + checkpoint selection after episode `ep` (both paths).
void maybe_validate(TrainRun& run, rl::DqnAgent& agent,
                    const StateEncoder& encoder,
                    const std::vector<sim::ClusterEnv*>& envs,
                    const std::vector<const sim::Trace*>& traces,
                    const TrainerConfig& config, std::size_t ep) {
  if (config.validate_every == 0 || (ep + 1) % config.validate_every != 0)
    return;
  const double score =
      validate(agent, encoder, envs, *traces[0], run.validation_baselines);
  const bool improved = score < run.best_score;
  if (improved) {
    run.best_score = score;
    run.best_weights = agent.snapshot_weights();
    run.report.best_validation = run.report.validation_latency_s.size();
  }
  run.report.validation_latency_s.push_back(score);
  if (run.traced)
    config.tracer->instant(
        obs::Tracer::kTrainPid, 0,
        static_cast<obs::Micros>(run.report.env_steps), "validation", "train",
        {obs::narg("score", score),
         obs::narg("best", static_cast<std::int64_t>(improved ? 1 : 0))});
}

/// Restore the best checkpoint and finalize the report (both paths).
[[nodiscard]] TrainerReport finish_run(TrainRun& run, rl::DqnAgent& agent) {
  agent.set_tracer(nullptr);
  if (!run.best_weights.empty()) agent.restore_weights(run.best_weights);
  if (run.loss_count > 0)
    run.report.late_loss =
        run.loss_sum / static_cast<double>(run.loss_count);
  return std::move(run.report);
}

/// The original loop: one shared RNG stream, gradient steps interleaved with
/// collection. Bit-identical to every release before round collection.
[[nodiscard]] TrainerReport train_agent_interleaved(
    rl::DqnAgent& agent, const StateEncoder& encoder, float reward_scale_s,
    const std::vector<sim::ClusterEnv*>& envs,
    const std::vector<const sim::Trace*>& traces,
    const TrainerConfig& config) {
  util::Rng rng(config.seed);
  TrainRun run = start_run(agent, encoder, reward_scale_s, envs, traces,
                           config);
  obs::Tracer* tracer = config.tracer;

  for (std::size_t ep = 0; ep < config.episodes; ++ep) {
    sim::ClusterEnv& env = *envs[ep % envs.size()];
    const sim::Trace& trace = *traces[ep % traces.size()];
    env.reset(trace);
    const std::size_t episode_start = run.report.env_steps;

    double prev_arrival = 0.0;
    bool has_prev = false;
    while (!env.done()) {
      const sim::Invocation inv = env.current();
      const double prev = has_prev ? prev_arrival : inv.arrival_s;
      EncodedState state = encoder.encode(env, inv, prev);
      prev_arrival = inv.arrival_s;
      has_prev = true;

      const float eps = run.epsilon.value(run.report.env_steps);
      if (run.traced && run.report.env_steps % config.train_every == 0)
        tracer->counter(obs::Tracer::kTrainPid, 0,
                        static_cast<obs::Micros>(run.report.env_steps),
                        "epsilon", static_cast<double>(eps));
      const std::size_t action =
          agent.select_action(state.tokens, state.mask, eps, rng);
      const sim::StepResult result =
          env.step(encoder.to_sim_action(state, action));

      rl::Transition t;
      t.state = std::move(state.tokens);
      t.action = action;
      t.reward = static_cast<float>(-result.latency_s) / reward_scale_s;
      if (env.done()) {
        t.terminal = true;
        t.next_state = nn::Tensor(encoder.num_tokens(),
                                  encoder.config().feature_dim);
        t.next_mask.assign(encoder.num_actions(), 0);
      } else {
        EncodedState next =
            encoder.encode(env, env.current(), prev_arrival);
        t.next_state = std::move(next.tokens);
        t.next_mask = std::move(next.mask);
      }
      agent.observe(std::move(t));

      ++run.report.env_steps;
      if (run.report.env_steps % config.train_every == 0) {
        if (const auto loss = agent.train_step(rng)) {
          ++run.report.train_steps;
          if (run.report.env_steps >= run.late_start) {
            run.loss_sum += *loss;
            ++run.loss_count;
          }
        }
      }
    }
    run.report.episode_total_latency_s.push_back(
        env.metrics().total_latency_s());
    if (run.traced)
      tracer->span(
          obs::Tracer::kTrainPid, 0,
          static_cast<obs::Micros>(episode_start),
          static_cast<obs::Micros>(run.report.env_steps - episode_start),
          "episode", "train",
          {obs::narg("episode", static_cast<std::int64_t>(ep)),
           obs::narg("total_latency_s", env.metrics().total_latency_s())});
    if (config.on_episode_end)
      config.on_episode_end(ep, env.metrics().total_latency_s());

    maybe_validate(run, agent, encoder, envs, traces, config, ep);
  }
  return finish_run(run, agent);
}

/// Round-based collection: freeze the online weights, roll collect_round
/// whole episodes against the frozen policy across a thread pool, then merge
/// the transitions into the replay buffer in episode order with the same
/// gradient cadence the interleaved loop uses. Determinism: per-episode RNG
/// streams are split off the root in global episode order before the
/// fan-out, every episode runs on a cloned environment and its own copy of
/// the frozen network, epsilon depends only on the planned serial step
/// index, and the merge is sequential — so the worker count never touches
/// any result (asserted in tests/trainer).
[[nodiscard]] TrainerReport train_agent_rounds(
    rl::DqnAgent& agent, const StateEncoder& encoder, float reward_scale_s,
    const std::vector<sim::ClusterEnv*>& envs,
    const std::vector<const sim::Trace*>& traces,
    const TrainerConfig& config) {
  util::Rng root(config.seed);
  util::Rng train_rng = root.split();
  TrainRun run = start_run(agent, encoder, reward_scale_s, envs, traces,
                           config);
  obs::Tracer* tracer = config.tracer;

  // Planned serial step index of each episode's first transition (what the
  // interleaved loop's global counter would read when the episode starts).
  std::vector<std::size_t> planned_start(config.episodes, 0);
  for (std::size_t ep = 1; ep < config.episodes; ++ep)
    planned_start[ep] =
        planned_start[ep - 1] + traces[(ep - 1) % traces.size()]->size();

  util::ThreadPool pool(config.collect_workers);

  for (std::size_t round = 0; round < config.episodes;
       round += config.collect_round) {
    const std::size_t round_end =
        std::min(round + config.collect_round, config.episodes);
    const std::size_t n = round_end - round;

    // Per-episode action streams, split in global episode order so neither
    // round boundaries nor scheduling can shift them.
    std::vector<util::Rng> streams;
    streams.reserve(n);
    for (std::size_t i = 0; i < n; ++i) streams.push_back(root.split());

    // One frozen copy of the online network per episode, built serially
    // before the fan-out (workers must not share forward caches).
    std::vector<std::unique_ptr<rl::QNetwork>> policies;
    policies.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      util::Rng init(1);
      policies.push_back(
          std::make_unique<rl::QNetwork>(agent.config().network, init));
      nn::copy_parameters(agent.online_network(), *policies[i]);
    }

    std::vector<CollectedEpisode> collected(n);
    pool.parallel_for(n, [&](std::size_t i) {
      const std::size_t ep = round + i;
      const auto env = clone_env(*envs[ep % envs.size()]);
      collected[i] = collect_episode(
          *policies[i], encoder, reward_scale_s, *env,
          *traces[ep % traces.size()], run.epsilon, planned_start[ep],
          streams[i]);
    });

    // Sequential merge in episode order. Because every episode contributes
    // exactly its trace's step count, the live counter here equals the
    // planned index the rollout annealed epsilon by.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t ep = round + i;
      const std::size_t episode_start = run.report.env_steps;
      for (rl::Transition& t : collected[i].transitions) {
        if (run.traced && run.report.env_steps % config.train_every == 0)
          tracer->counter(
              obs::Tracer::kTrainPid, 0,
              static_cast<obs::Micros>(run.report.env_steps), "epsilon",
              static_cast<double>(run.epsilon.value(run.report.env_steps)));
        agent.observe(std::move(t));
        ++run.report.env_steps;
        if (run.report.env_steps % config.train_every == 0) {
          if (const auto loss = agent.train_step(train_rng)) {
            ++run.report.train_steps;
            if (run.report.env_steps >= run.late_start) {
              run.loss_sum += *loss;
              ++run.loss_count;
            }
          }
        }
      }
      run.report.episode_total_latency_s.push_back(
          collected[i].total_latency_s);
      if (run.traced)
        tracer->span(
            obs::Tracer::kTrainPid, 0,
            static_cast<obs::Micros>(episode_start),
            static_cast<obs::Micros>(run.report.env_steps - episode_start),
            "episode", "train",
            {obs::narg("episode", static_cast<std::int64_t>(ep)),
             obs::narg("total_latency_s", collected[i].total_latency_s)});
      if (config.on_episode_end)
        config.on_episode_end(ep, collected[i].total_latency_s);

      maybe_validate(run, agent, encoder, envs, traces, config, ep);
    }
  }
  return finish_run(run, agent);
}

}  // namespace

TrainerReport train_agent(rl::DqnAgent& agent, const StateEncoder& encoder,
                          float reward_scale_s,
                          const std::vector<sim::ClusterEnv*>& envs,
                          const std::vector<const sim::Trace*>& traces,
                          const TrainerConfig& config) {
  MLCR_CHECK(!envs.empty() && !traces.empty());
  MLCR_CHECK(reward_scale_s > 0.0F);
  MLCR_CHECK(config.train_every > 0);
  if (config.collect_round <= 1)
    return train_agent_interleaved(agent, encoder, reward_scale_s, envs,
                                   traces, config);
  return train_agent_rounds(agent, encoder, reward_scale_s, envs, traces,
                            config);
}

bool load_or_train(rl::DqnAgent& agent, const std::string& path,
                   const std::function<void()>& train) {
  if (std::filesystem::exists(path)) {
    try {
      agent.load(path);
      return true;
    } catch (const util::CheckError&) {
      // Incompatible cache (e.g. config changed): retrain below.
    }
  }
  train();
  agent.save(path);
  return false;
}

}  // namespace mlcr::core
