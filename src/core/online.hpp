// Online fine-tuning (paper Sec. VI-C/D): in addition to offline training,
// the deployed MLCR scheduler can keep adjusting its parameters from live
// feedback. This scheduler behaves like MlcrScheduler but runs a small
// epsilon of exploration, records transitions as episodes unfold, and takes
// a gradient step every few decisions — lightweight enough not to disturb
// the serving path (see bench/overhead_inference).
#pragma once

#include <memory>
#include <optional>

#include "core/mlcr.hpp"

namespace mlcr::core {

struct OnlineConfig {
  /// Exploration rate while deployed (small: serving quality matters).
  float epsilon = 0.02F;
  /// Gradient step every `train_every` scheduling decisions; 0 disables
  /// learning (pure inference, equivalent to MlcrScheduler).
  std::size_t train_every = 8;
  std::uint64_t seed = 1234;
};

class OnlineMlcrScheduler final : public policies::Scheduler {
 public:
  OnlineMlcrScheduler(std::shared_ptr<rl::DqnAgent> agent,
                      StateEncoder encoder, float reward_scale_s,
                      OnlineConfig config = {});

  void on_episode_start(const sim::ClusterEnv& env) override;
  [[nodiscard]] sim::Action decide(const sim::ClusterEnv& env,
                                   const sim::Invocation& inv) override;
  void on_step_result(const sim::ClusterEnv& env,
                      const sim::StepResult& result) override;
  [[nodiscard]] std::string name() const override { return "MLCR-online"; }

  [[nodiscard]] rl::DqnAgent& agent() noexcept { return *agent_; }
  [[nodiscard]] std::size_t online_train_steps() const noexcept {
    return online_train_steps_;
  }

 private:
  /// Complete the pending transition (if any) with `next`; a null next means
  /// the episode ended (terminal transition).
  void flush_pending(const EncodedState* next);

  std::shared_ptr<rl::DqnAgent> agent_;
  StateEncoder encoder_;
  float reward_scale_s_;
  OnlineConfig config_;
  util::Rng rng_;

  struct Pending {
    nn::Tensor state;
    std::size_t action = 0;
    float reward = 0.0F;
    bool rewarded = false;
  };
  std::optional<Pending> pending_;
  double prev_arrival_s_ = 0.0;
  bool has_prev_ = false;
  std::size_t decisions_ = 0;
  std::size_t online_train_steps_ = 0;
};

/// SystemSpec for online-fine-tuned MLCR.
[[nodiscard]] policies::SystemSpec make_online_mlcr_system(
    std::shared_ptr<rl::DqnAgent> agent, const StateEncoderConfig& encoder,
    float reward_scale_s, OnlineConfig config = {});

/// Graceful degradation (DESIGN.md §9): build the MLCR system from the
/// model at `model_path`; when the file is missing or fails to load
/// (corrupt, wrong dimensions), log to stderr, bump `*fallbacks` if given,
/// and return the strongest model-free baseline instead — Greedy-Match,
/// renamed "Greedy-Match(MLCR-fallback)" so results can't be mistaken for
/// the learned policy. Deterministic: the same path and config always
/// produce the same system.
[[nodiscard]] policies::SystemSpec make_mlcr_system_or_fallback(
    const std::string& model_path, const MlcrConfig& config,
    std::size_t* fallbacks = nullptr);

}  // namespace mlcr::core
