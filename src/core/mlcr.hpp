// MLCR: the paper's DRL-based multi-level container reuse scheduler
// (Sec. IV). Wraps a trained DqnAgent behind the generic Scheduler interface
// so it can be evaluated side by side with the baselines.
#pragma once

#include <memory>
#include <vector>

#include "core/state_encoder.hpp"
#include "policies/baselines.hpp"
#include "rl/dqn.hpp"

namespace mlcr::core {

struct MlcrConfig {
  StateEncoderConfig encoder;
  rl::DqnConfig dqn;
  /// Rewards are -latency / reward_scale (keeps TD targets O(1)).
  float reward_scale_s = 10.0F;
};

/// Default configuration with the network dimensions wired to the encoder.
/// The paper's 512-wide network is scaled to `embed_dim` (default 64) so
/// training converges in seconds on a CPU; see DESIGN.md.
[[nodiscard]] MlcrConfig make_default_mlcr_config(std::size_t num_slots = 24,
                                                  std::size_t embed_dim = 48);

/// Inference-mode MLCR scheduler: encodes the state, asks the DQN for the
/// greedy masked action, and converts it to a sim::Action.
class MlcrScheduler final : public policies::Scheduler {
 public:
  MlcrScheduler(std::shared_ptr<rl::DqnAgent> agent, StateEncoder encoder);

  void on_episode_start(const sim::ClusterEnv& env) override;
  [[nodiscard]] sim::Action decide(const sim::ClusterEnv& env,
                                   const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return "MLCR"; }

  /// Batched serving path: decide one invocation on each of B *distinct*
  /// environments through a single QNetwork::forward_batch pass. Entry i is
  /// bit-identical to schedulers[i]->decide(*envs[i], *invs[i]) — encoding
  /// reads only that entry's env, the batched forward is per-state
  /// bit-identical (DqnAgent::greedy_actions), and each scheduler's
  /// prev-arrival state advances exactly as its own decide() would — which
  /// is what lets the scheduler service drain a whole wave of requests per
  /// inference call without changing any routing decision. All schedulers
  /// must share one agent (the service batches per shared model).
  [[nodiscard]] static std::vector<sim::Action> decide_batch(
      const std::vector<MlcrScheduler*>& schedulers,
      const std::vector<const sim::ClusterEnv*>& envs,
      const std::vector<const sim::Invocation*>& invs);

  [[nodiscard]] rl::DqnAgent& agent() noexcept { return *agent_; }
  [[nodiscard]] const StateEncoder& encoder() const noexcept {
    return encoder_;
  }

 private:
  std::shared_ptr<rl::DqnAgent> agent_;
  StateEncoder encoder_;
  double prev_arrival_s_ = 0.0;
  bool has_prev_ = false;
};

/// SystemSpec for MLCR (DQN scheduler + LRU eviction, per the paper).
/// `agent` is shared so a single trained model can back many episodes.
[[nodiscard]] policies::SystemSpec make_mlcr_system(
    std::shared_ptr<rl::DqnAgent> agent, const StateEncoderConfig& encoder);

}  // namespace mlcr::core
