// Offline training loop for the MLCR DQN (paper Algorithm 1): invocations
// are repeatedly scheduled with epsilon-greedy actions, experiences go to the
// replay pool, and the network is updated by sampled batches. Supports
// cycling over multiple traces and multiple environments (e.g. different
// pool capacities) so one model generalizes across configurations.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/mlcr.hpp"
#include "rl/schedule.hpp"

namespace mlcr::obs {
class Tracer;
}

namespace mlcr::core {

struct TrainerConfig {
  std::size_t episodes = 30;
  float epsilon_start = 1.0F;
  float epsilon_end = 0.02F;
  /// Steps over which epsilon anneals; 0 = 60% of the planned total steps.
  std::size_t epsilon_decay_steps = 0;
  /// Run a gradient step every `train_every` environment steps.
  std::size_t train_every = 4;
  std::uint64_t seed = 42;
  /// Seed the replay buffer with this many episodes of the multi-level
  /// greedy policy before learning starts — the same "prior knowledge"
  /// rationale as the paper's action mask (Sec. IV-C): it anchors early
  /// Q-targets to a sane policy instead of uniform exploration.
  std::size_t greedy_warmup_episodes = 2;
  /// Episodes collected per round. 1 (the default) keeps the original
  /// interleaved loop — one shared RNG stream, gradient steps woven into
  /// episode collection — bit-identical to every prior release. Values > 1
  /// switch to round-based collection: the online weights are frozen, that
  /// many whole episodes are rolled out against the frozen policy (in
  /// parallel across collect_workers), and the collected transitions are
  /// then replayed into the buffer in episode order with the same gradient
  /// cadence. The two modes are different (both valid) DQN variants; within
  /// round mode, results are bit-identical for any collect_workers value
  /// (asserted in tests/trainer).
  std::size_t collect_round = 1;
  /// Worker threads for round collection; 0 = one per hardware core. Purely
  /// a throughput knob — never affects results (each episode rolls out on a
  /// cloned environment with its own RNG stream split in episode order, and
  /// the merge is sequential).
  std::size_t collect_workers = 0;
  /// Every `validate_every` episodes, evaluate the current greedy policy on
  /// each environment's first trace (normalized per environment by the
  /// multi-level-greedy baseline so large tight-pool latencies do not
  /// dominate) and snapshot the best weights; the best checkpoint is
  /// restored when training ends. 0 disables selection.
  std::size_t validate_every = 3;
  /// Optional per-episode callback(episode, total_startup_latency_s).
  std::function<void(std::size_t, double)> on_episode_end;
  /// Optional tracer (not owned): training telemetry goes to the
  /// obs::Tracer::kTrainPid tracks — episode spans, epsilon and validation
  /// on the environment-step track (tid 0, ts = env-step index) and, via
  /// the agent, loss/replay/staleness on the gradient-step track (tid 1,
  /// ts = train-step index). Purely step-indexed, so traces stay
  /// deterministic.
  obs::Tracer* tracer = nullptr;
};

struct TrainerReport {
  std::vector<double> episode_total_latency_s;
  std::size_t env_steps = 0;
  std::size_t train_steps = 0;
  /// Mean loss over the last quarter of training (0 if no training ran).
  double late_loss = 0.0;
  /// Validation scores (summed latency across envs), one per validation.
  std::vector<double> validation_latency_s;
  /// Which validation produced the restored checkpoint (npos if selection
  /// was disabled or never ran).
  std::size_t best_validation = SIZE_MAX;
};

/// Train `agent` in-place. `envs` and `traces` are cycled per episode
/// (episode i uses envs[i % envs.size()] and traces[i % traces.size()]).
TrainerReport train_agent(rl::DqnAgent& agent, const StateEncoder& encoder,
                          float reward_scale_s,
                          const std::vector<sim::ClusterEnv*>& envs,
                          const std::vector<const sim::Trace*>& traces,
                          const TrainerConfig& config);

/// Load the agent from `path` if a compatible file exists; otherwise run
/// `train` (which must train the agent) and save to `path`. Returns true if
/// the model was loaded from cache.
bool load_or_train(rl::DqnAgent& agent, const std::string& path,
                   const std::function<void()>& train);

}  // namespace mlcr::core
