#include "core/state_encoder.hpp"

#include <algorithm>

#include "containers/matching.hpp"
#include "faults/injector.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace mlcr::core {

namespace {

// Fixed feature layout (see header). Indices into each token row.
constexpr std::size_t kIsCluster = 0;
constexpr std::size_t kIsFunction = 1;
constexpr std::size_t kIsSlot = 2;
// Cluster token.
constexpr std::size_t kIdleFrac = 3;
constexpr std::size_t kFreeFrac = 4;
constexpr std::size_t kUsedFrac = 5;
constexpr std::size_t kBusyFrac = 6;
constexpr std::size_t kCapacity = 7;
// Cluster-token health block (columns past the load block are unused by the
// other cluster features), written only under config.encode_health.
constexpr std::size_t kNodeDown = 8;  // 1 fully down, 0.5 partial, 0 up
constexpr std::size_t kFailedFrac = 9;
constexpr std::size_t kRetryPressure = 10;
constexpr std::size_t kCrashes = 11;
// Function and slot tokens share the package-identity block.
constexpr std::size_t kOsId = 3;
constexpr std::size_t kLangId = 4;
constexpr std::size_t kRuntimeSize = 5;
constexpr std::size_t kRuntimeCount = 6;
constexpr std::size_t kTotalSize = 7;
constexpr std::size_t kStartCost = 8;  // cold cost (function) / warm (slot)
// Function token only.
constexpr std::size_t kExecMean = 9;
constexpr std::size_t kRuntimeInit = 10;
constexpr std::size_t kInterval = 11;
// Slot token only.
constexpr std::size_t kIdleAge = 9;
constexpr std::size_t kMatchLevel = 10;
constexpr std::size_t kUseCount = 11;
constexpr std::size_t kMemFrac = 12;
constexpr std::size_t kPreserveInit = 13;  // runtime init of last function
constexpr std::size_t kPreserveCold = 14;  // cold cost of last function
constexpr std::size_t kMinFeatureDim = 16;

[[nodiscard]] float id_norm(const containers::ImageSpec& image,
                            containers::Level level,
                            const containers::PackageCatalog& catalog) {
  const auto& pkgs = image.level(level);
  if (pkgs.empty()) return 0.0F;
  return static_cast<float>(pkgs.front() + 1) /
         static_cast<float>(catalog.size() + 1);
}

}  // namespace

StateEncoder::StateEncoder(StateEncoderConfig config) : config_(config) {
  MLCR_CHECK(config_.num_slots > 0);
  MLCR_CHECK_MSG(config_.feature_dim >= kMinFeatureDim,
                 "feature_dim must be >= " << kMinFeatureDim);
}

EncodedState StateEncoder::encode(const sim::ClusterEnv& env,
                                  const sim::Invocation& inv,
                                  double prev_arrival_s) const {
  const auto& catalog = env.catalog();
  const auto& pool = env.pool();
  const sim::FunctionType& fn = env.functions().get(inv.function);
  const float lat_scale = static_cast<float>(config_.latency_scale_s);
  const float size_scale = static_cast<float>(config_.size_scale_mb);

  EncodedState state;
  state.tokens = nn::Tensor(num_tokens(), config_.feature_dim);
  state.mask.assign(num_actions(),
                    config_.mask_invalid_actions ? 0 : 1);
  state.slot_ids.assign(config_.num_slots, containers::kInvalidContainer);
  state.mask.back() = 1;  // cold start is always allowed

  // --- Cluster token.
  {
    auto row = [&](std::size_t c) -> float& { return state.tokens(0, c); };
    row(kIsCluster) = 1.0F;
    const auto idle = pool.idle_containers();
    row(kIdleFrac) = static_cast<float>(idle.size()) /
                     static_cast<float>(config_.num_slots);
    row(kFreeFrac) =
        static_cast<float>(pool.free_mb() / pool.capacity_mb());
    row(kUsedFrac) =
        static_cast<float>(pool.used_mb() / pool.capacity_mb());
    row(kBusyFrac) = static_cast<float>(env.busy_count()) /
                     static_cast<float>(config_.num_slots);
    row(kCapacity) = static_cast<float>(pool.capacity_mb()) / size_scale;
    if (config_.encode_health) {
      row(kNodeDown) = env.down() ? (env.partial_down() ? 0.5F : 1.0F) : 0.0F;
      const std::size_t invocations = env.metrics().invocation_count();
      if (invocations > 0)
        row(kFailedFrac) = static_cast<float>(env.metrics().failed_count()) /
                           static_cast<float>(invocations);
      if (const faults::FaultInjector* inj = env.fault_injector()) {
        if (invocations > 0)
          row(kRetryPressure) = static_cast<float>(inj->counters().retries) /
                                static_cast<float>(invocations);
        row(kCrashes) = static_cast<float>(inj->counters().crashes) / 4.0F;
      }
    }
  }

  // --- Function token.
  {
    auto row = [&](std::size_t c) -> float& { return state.tokens(1, c); };
    row(kIsFunction) = 1.0F;
    row(kOsId) = id_norm(fn.image, containers::Level::kOs, catalog);
    row(kLangId) = id_norm(fn.image, containers::Level::kLanguage, catalog);
    row(kRuntimeSize) = static_cast<float>(
        fn.image.level_size_mb(catalog, containers::Level::kRuntime) /
        config_.size_scale_mb);
    row(kRuntimeCount) = static_cast<float>(
        fn.image.level(containers::Level::kRuntime).size()) / 8.0F;
    row(kTotalSize) =
        static_cast<float>(fn.image.total_size_mb(catalog)) / size_scale;
    row(kStartCost) =
        static_cast<float>(env.cost_model().cold_start(fn).total()) /
        lat_scale;
    row(kExecMean) = static_cast<float>(fn.mean_exec_s) / lat_scale;
    row(kRuntimeInit) = static_cast<float>(fn.runtime_init_s) / lat_scale;
    row(kInterval) = static_cast<float>(
        (inv.arrival_s - prev_arrival_s) / config_.interval_scale_s);
  }

  // --- Slot tokens. The pool may hold more idle containers than we have
  // slots; candidates are ordered by (match level desc, recency desc) so the
  // agent always sees every reusable container first, then the most recent
  // context. Ordering is deterministic (container id breaks ties).
  auto idle = pool.idle_containers();
  std::stable_sort(
      idle.begin(), idle.end(),
      [&](const containers::Container* a, const containers::Container* b) {
        const auto ma = containers::match(fn.image, a->image);
        const auto mb = containers::match(fn.image, b->image);
        if (ma != mb) return ma > mb;
        if (a->last_idle_at != b->last_idle_at)
          return a->last_idle_at > b->last_idle_at;
        return a->id < b->id;
      });
  const std::size_t visible = std::min(idle.size(), config_.num_slots);
  for (std::size_t s = 0; s < visible; ++s) {
    const containers::Container& c = *idle[s];
    const std::size_t r = rl::kFirstSlotTokenRow + s;
    auto row = [&](std::size_t col) -> float& { return state.tokens(r, col); };
    row(kIsSlot) = 1.0F;
    row(kOsId) = id_norm(c.image, containers::Level::kOs, catalog);
    row(kLangId) = id_norm(c.image, containers::Level::kLanguage, catalog);
    row(kRuntimeSize) = static_cast<float>(
        c.image.level_size_mb(catalog, containers::Level::kRuntime) /
        config_.size_scale_mb);
    row(kRuntimeCount) = static_cast<float>(
        c.image.level(containers::Level::kRuntime).size()) / 8.0F;
    row(kTotalSize) =
        static_cast<float>(c.image.total_size_mb(catalog)) / size_scale;

    const auto level = containers::match(fn.image, c.image);
    row(kMatchLevel) = static_cast<float>(level) / 3.0F;
    if (containers::reusable(level)) {
      row(kStartCost) =
          static_cast<float>(env.cost_model().warm_start(fn, level).total()) /
          lat_scale;
      state.mask[s] = 1;
    } else {
      row(kStartCost) =
          static_cast<float>(env.cost_model().cold_start(fn).total()) /
          lat_scale;
    }
    row(kIdleAge) = static_cast<float>(
        (env.now() - c.last_idle_at) / config_.interval_scale_s);
    row(kUseCount) = static_cast<float>(c.use_count) / 10.0F;
    row(kMemFrac) = static_cast<float>(c.memory_mb / pool.capacity_mb());
    if (c.last_function != containers::kInvalidFunctionType) {
      const sim::FunctionType& last = env.functions().get(c.last_function);
      row(kPreserveInit) = static_cast<float>(last.runtime_init_s) / lat_scale;
      row(kPreserveCold) =
          static_cast<float>(env.cost_model().cold_start(last).total()) /
          lat_scale;
    }
    state.slot_ids[s] = c.id;
  }

  MLCR_AUDIT_POINT(audit(env, inv, state));
  return state;
}

void StateEncoder::audit(const sim::ClusterEnv& env, const sim::Invocation& inv,
                         const EncodedState& state) const {
  MLCR_CHECK_MSG(state.mask.size() == num_actions(), "mask size mismatch");
  MLCR_CHECK_MSG(state.slot_ids.size() == config_.num_slots,
                 "slot mapping size mismatch");
  MLCR_CHECK_MSG(state.mask.back() == 1, "cold start must always be allowed");
  const sim::FunctionType& fn = env.functions().get(inv.function);
  for (std::size_t s = 0; s < config_.num_slots; ++s) {
    const containers::ContainerId id = state.slot_ids[s];
    if (!config_.mask_invalid_actions) {
      // Masking ablated: every action allowed, invalid ones degrade to cold.
      MLCR_CHECK_MSG(state.mask[s] == 1, "ablated mask must allow everything");
      continue;
    }
    const containers::Container* c =
        id == containers::kInvalidContainer ? nullptr : env.pool().find(id);
    const bool reusable =
        c != nullptr && containers::reusable(containers::match(fn.image,
                                                               c->image));
    if (state.mask[s] != 0) {
      MLCR_CHECK_MSG(id != containers::kInvalidContainer,
                     "mask exposes an empty slot " << s);
      MLCR_CHECK_MSG(c != nullptr, "mask exposes absent/busy container "
                                       << id << " in slot " << s);
      MLCR_CHECK_MSG(reusable, "mask exposes no-match container "
                                   << id << " in slot " << s);
    } else {
      MLCR_CHECK_MSG(!reusable, "reusable container " << id
                                                      << " masked out in slot "
                                                      << s);
    }
  }
}

sim::Action StateEncoder::to_sim_action(const EncodedState& state,
                                        std::size_t action) const {
  MLCR_CHECK(action < num_actions());
  if (action == config_.num_slots) return sim::Action::cold();
  const containers::ContainerId id = state.slot_ids[action];
  if (id == containers::kInvalidContainer) return sim::Action::cold();
  return sim::Action::reuse(id);
}

}  // namespace mlcr::core
