// State encoding for the DRL scheduler (paper Sec. IV-B "State"): workload
// state (function packages, arrival interval), container-wide state (package
// info, status, ages) and cluster-wide state (warm count, remaining pool
// capacity) are embedded into one token matrix:
//
//   row 0              — cluster token
//   row 1              — function (invocation) token; also the cold action
//   rows 2 .. 2+n-1    — one token per warm-pool slot
//
// plus the action mask of Sec. IV-C (slots whose container is absent or
// no-match are filtered out; cold start is always allowed).
#pragma once

#include <vector>

#include "rl/qnetwork.hpp"
#include "sim/env.hpp"

namespace mlcr::core {

struct StateEncoderConfig {
  std::size_t num_slots = 24;    ///< n: actionable warm containers
  std::size_t feature_dim = 16;  ///< per-token features (fixed layout)
  /// Normalization scales.
  double latency_scale_s = 20.0;
  double interval_scale_s = 5.0;
  double size_scale_mb = 2048.0;
  /// When false, the Sec. IV-C action mask is disabled (ablation): every
  /// action is allowed and invalid ones degrade to cold starts at runtime.
  bool mask_invalid_actions = true;
  /// Write the cluster token's node-health block (DESIGN.md §14): down
  /// state, failed-invocation fraction, retry pressure and crash count from
  /// the node's fault injector. All-zero on a healthy faultless node, so
  /// the encoding is unchanged wherever faults never fire; off by default
  /// to keep existing trained policies' inputs bit-identical.
  bool encode_health = false;
};

/// The encoded state: tokens, action mask, and the slot -> container mapping
/// needed to turn an action index back into a sim::Action.
struct EncodedState {
  nn::Tensor tokens;  ///< (2 + num_slots) x feature_dim
  rl::ActionMask mask;
  std::vector<containers::ContainerId> slot_ids;  ///< size num_slots
};

class StateEncoder {
 public:
  explicit StateEncoder(StateEncoderConfig config = {});

  /// Encode the environment as seen by the scheduler for `inv`.
  /// `prev_arrival_s` is the previous invocation's arrival (for the
  /// arrival-interval feature); pass inv.arrival_s for the first one.
  [[nodiscard]] EncodedState encode(const sim::ClusterEnv& env,
                                    const sim::Invocation& inv,
                                    double prev_arrival_s) const;

  /// Convert a DQN action index (0..n = slots, n = cold) to a sim::Action.
  [[nodiscard]] sim::Action to_sim_action(const EncodedState& state,
                                          std::size_t action) const;

  /// Invariant auditor for the Sec. IV-C action mask: cold start is always
  /// allowed, and no enabled slot action may point at an absent (busy /
  /// evicted) or no-match container — the DQN must never be shown an action
  /// that cannot be executed as encoded. Throws util::CheckError on
  /// violation. Runs after every encode() in audit-enabled builds (see
  /// util/audit.hpp); tests call it directly on corrupted states.
  void audit(const sim::ClusterEnv& env, const sim::Invocation& inv,
             const EncodedState& state) const;

  [[nodiscard]] const StateEncoderConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t num_actions() const noexcept {
    return config_.num_slots + 1;
  }
  [[nodiscard]] std::size_t num_tokens() const noexcept {
    return rl::kFirstSlotTokenRow + config_.num_slots;
  }

 private:
  StateEncoderConfig config_;
};

}  // namespace mlcr::core
