#include "core/online.hpp"

#include <filesystem>
#include <iostream>

#include "util/check.hpp"

namespace mlcr::core {

OnlineMlcrScheduler::OnlineMlcrScheduler(std::shared_ptr<rl::DqnAgent> agent,
                                         StateEncoder encoder,
                                         float reward_scale_s,
                                         OnlineConfig config)
    : agent_(std::move(agent)),
      encoder_(std::move(encoder)),
      reward_scale_s_(reward_scale_s),
      config_(config),
      rng_(config.seed) {
  MLCR_CHECK(agent_ != nullptr);
  MLCR_CHECK(reward_scale_s_ > 0.0F);
  MLCR_CHECK(config_.epsilon >= 0.0F && config_.epsilon <= 1.0F);
  MLCR_CHECK_MSG(
      agent_->config().network.num_slots == encoder_.config().num_slots,
      "agent network dimensions must match the state encoder");
}

void OnlineMlcrScheduler::flush_pending(const EncodedState* next) {
  if (!pending_ || !pending_->rewarded) {
    pending_.reset();
    return;
  }
  rl::Transition t;
  t.state = std::move(pending_->state);
  t.action = pending_->action;
  t.reward = pending_->reward;
  if (next != nullptr) {
    t.next_state = next->tokens;
    t.next_mask = next->mask;
    t.terminal = false;
  } else {
    t.next_state = nn::Tensor(encoder_.num_tokens(),
                              encoder_.config().feature_dim);
    t.next_mask.assign(encoder_.num_actions(), 0);
    t.terminal = true;
  }
  agent_->observe(std::move(t));
  pending_.reset();

  if (config_.train_every != 0 && decisions_ % config_.train_every == 0)
    if (agent_->train_step(rng_).has_value()) ++online_train_steps_;
}

void OnlineMlcrScheduler::on_episode_start(const sim::ClusterEnv& env) {
  (void)env;
  // The previous episode's final transition has no successor state.
  flush_pending(nullptr);
  has_prev_ = false;
}

sim::Action OnlineMlcrScheduler::decide(const sim::ClusterEnv& env,
                                        const sim::Invocation& inv) {
  const double prev = has_prev_ ? prev_arrival_s_ : inv.arrival_s;
  EncodedState state = encoder_.encode(env, inv, prev);
  prev_arrival_s_ = inv.arrival_s;
  has_prev_ = true;

  flush_pending(&state);

  ++decisions_;
  const std::size_t action = agent_->select_action(
      state.tokens, state.mask, config_.epsilon, rng_);
  const sim::Action sim_action = encoder_.to_sim_action(state, action);
  pending_ = Pending{std::move(state.tokens), action, 0.0F, false};
  return sim_action;
}

void OnlineMlcrScheduler::on_step_result(const sim::ClusterEnv& env,
                                         const sim::StepResult& result) {
  (void)env;
  if (!pending_) return;
  pending_->reward = static_cast<float>(-result.latency_s) / reward_scale_s_;
  pending_->rewarded = true;
}

policies::SystemSpec make_online_mlcr_system(
    std::shared_ptr<rl::DqnAgent> agent, const StateEncoderConfig& encoder,
    float reward_scale_s, OnlineConfig config) {
  return policies::SystemSpec{
      "MLCR-online",
      std::make_unique<OnlineMlcrScheduler>(std::move(agent),
                                            StateEncoder(encoder),
                                            reward_scale_s, config),
      [] { return std::make_unique<containers::LruEviction>(); },
      std::nullopt};
}

policies::SystemSpec make_mlcr_system_or_fallback(
    const std::string& model_path, const MlcrConfig& config,
    std::size_t* fallbacks) {
  const auto fall_back = [&](const std::string& why) {
    std::cerr << "[mlcr] model '" << model_path << "' unusable (" << why
              << "); degrading to Greedy-Match\n";
    if (fallbacks != nullptr) ++*fallbacks;
    policies::SystemSpec spec = policies::make_greedy_match_system();
    spec.name = "Greedy-Match(MLCR-fallback)";
    return spec;
  };
  if (!std::filesystem::exists(model_path)) return fall_back("missing file");
  // The load overwrites every weight, so the init seed is irrelevant; it is
  // fixed to keep the returned system a pure function of (path, config).
  auto agent = std::make_shared<rl::DqnAgent>(config.dqn, util::Rng(1));
  try {
    agent->load(model_path);
  } catch (const util::CheckError& e) {
    return fall_back(e.what());
  }
  return make_mlcr_system(std::move(agent), config.encoder);
}

}  // namespace mlcr::core
