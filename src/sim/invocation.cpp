#include "sim/invocation.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mlcr::sim {

Trace::Trace(std::vector<Invocation> invocations)
    : invocations_(std::move(invocations)) {
  std::stable_sort(invocations_.begin(), invocations_.end(),
                   [](const Invocation& a, const Invocation& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  for (std::size_t i = 0; i < invocations_.size(); ++i) {
    invocations_[i].seq = i;
    MLCR_CHECK(invocations_[i].arrival_s >= 0.0);
    MLCR_CHECK(invocations_[i].exec_s > 0.0);
  }
}

const Invocation& Trace::at(std::size_t i) const {
  MLCR_CHECK(i < invocations_.size());
  return invocations_[i];
}

double Trace::span_s() const noexcept {
  if (invocations_.size() < 2) return 0.0;
  return invocations_.back().arrival_s - invocations_.front().arrival_s;
}

}  // namespace mlcr::sim
