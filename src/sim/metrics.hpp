// Per-invocation measurements and aggregate statistics. This is the source of
// every number the benchmark harness reports (total/average startup latency,
// cold-start counts, warm starts by match level, cumulative series).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "containers/container.hpp"
#include "containers/matching.hpp"
#include "sim/cost_model.hpp"
#include "sim/invocation.hpp"

namespace mlcr::sim {

/// What happened when one invocation was scheduled.
struct InvocationRecord {
  std::uint64_t seq = 0;
  FunctionTypeId function = containers::kInvalidFunctionType;
  double arrival_s = 0.0;
  containers::ContainerId container = containers::kInvalidContainer;
  containers::MatchLevel match = containers::MatchLevel::kNoMatch;
  bool cold = true;
  StartupBreakdown breakdown;
  double latency_s = 0.0;
  /// The invocation was never served: its start attempts were exhausted
  /// (faults) or its node crashed mid-execution. latency_s then holds the
  /// time the platform *spent* on it (attempts + backoffs), not a startup.
  bool failed = false;
  /// Start attempts made (>= 1); attempts - 1 of them were retried.
  std::size_t attempts = 1;
};

class MetricsCollector {
 public:
  void record(InvocationRecord rec);
  void clear();

  /// Restore canonical trace-sequence order (stable sort on seq). Streaming
  /// ingestion (the serving front-end) records completions in dispatch
  /// order, not arrival order; sorting at episode end makes the cumulative
  /// series and the seq-order audit meaningful again.
  void sort_records_by_seq();

  /// Fold another collector into this one (fleet-wide aggregation across
  /// nodes). Records are re-ordered by trace sequence number so cumulative
  /// series stay in global arrival order.
  void merge(const MetricsCollector& other);

  /// Fold many collectors at once: one concatenation + one stable sort,
  /// O(total log total), instead of the O(parts * total) growth of folding
  /// them one merge() at a time. Produces exactly the record order the
  /// sequential fold would (stable sort on seq, parts in argument order).
  /// Null entries are skipped. This is what fleet aggregation uses — a
  /// 1000-node fleet fold must not swamp the event core it is summarizing.
  void merge_many(const std::vector<const MetricsCollector*>& parts);

  [[nodiscard]] const std::vector<InvocationRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t invocation_count() const noexcept {
    return records_.size();
  }

  [[nodiscard]] double total_latency_s() const noexcept {
    return total_latency_s_;
  }
  [[nodiscard]] double average_latency_s() const noexcept;
  [[nodiscard]] std::size_t cold_start_count() const noexcept {
    return cold_starts_;
  }
  /// Warm starts served at a given match level (kL1..kL3).
  [[nodiscard]] std::size_t warm_starts_at(
      containers::MatchLevel level) const noexcept;

  /// Invocations that were never served (fault retries exhausted or node
  /// crashed mid-execution). Disjoint from cold/warm counts: a failed
  /// record contributes to neither.
  [[nodiscard]] std::size_t failed_count() const noexcept { return failed_; }
  /// Retried start attempts across all records (sum of attempts - 1).
  [[nodiscard]] std::size_t retry_count() const noexcept { return retries_; }
  /// Fraction of recorded invocations that were served. Contract: 1.0 on an
  /// empty collector (nothing was lost), 0.0 when every record failed.
  [[nodiscard]] double goodput() const noexcept;

  /// Retroactively fail the record with trace sequence `seq` (node crash
  /// killed its in-flight execution). Its latency stays in the totals (the
  /// time was spent) but it leaves the cold/warm counts. Requires the
  /// record to exist; a second call on the same record is a no-op.
  void mark_failed(std::uint64_t seq);

  /// Startup latencies of *served* invocations, in arrival order (for
  /// percentiles / box stats). Failed invocations are excluded: they have
  /// no startup to report. May be empty.
  [[nodiscard]] std::vector<double> latencies() const;
  /// Exact nearest-rank startup-latency percentile over served invocations
  /// (obs::exact_rank semantics: the sample of rank ceil(p/100 * n); always
  /// an observed value, no interpolation). p in [0, 100]. Contract: 0.0
  /// when no invocation was served (empty or all-failed episode) — never
  /// UB. Works on fleet-merged collectors unchanged — merge() keeps every
  /// record.
  [[nodiscard]] double latency_percentile(double p) const;
  [[nodiscard]] double latency_p50() const { return latency_percentile(50.0); }
  [[nodiscard]] double latency_p95() const { return latency_percentile(95.0); }
  [[nodiscard]] double latency_p99() const { return latency_percentile(99.0); }
  /// Cumulative total latency after each invocation (paper Fig. 9 series).
  [[nodiscard]] std::vector<double> cumulative_latency() const;
  /// Cumulative cold-start count after each invocation (Fig. 9 series).
  [[nodiscard]] std::vector<std::size_t> cumulative_cold_starts() const;

  /// Invariant auditor: the incremental aggregates (total latency, cold
  /// count, per-level warm counts) match a recomputation from the records,
  /// and (when `require_seq_order`) records are in trace-sequence order.
  /// Streaming episodes pass false mid-flight — concurrent producers hand a
  /// node invocations in dispatch order — and sort_records_by_seq() at
  /// episode end restores the strict contract. Throws util::CheckError on
  /// violation; see util/audit.hpp for when it runs automatically.
  void audit(bool require_seq_order = true) const;

 private:
  friend struct MetricsTestPeer;  ///< test-only corruption hook (tests/sim)

  std::vector<InvocationRecord> records_;
  double total_latency_s_ = 0.0;
  std::size_t cold_starts_ = 0;
  std::array<std::size_t, 4> by_level_{};  // indexed by MatchLevel value
  std::size_t failed_ = 0;
  std::size_t retries_ = 0;
};

}  // namespace mlcr::sim
