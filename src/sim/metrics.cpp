#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics_registry.hpp"
#include "util/check.hpp"

namespace mlcr::sim {

void MetricsCollector::record(InvocationRecord rec) {
  total_latency_s_ += rec.latency_s;
  if (rec.failed)
    ++failed_;
  else if (rec.cold)
    ++cold_starts_;
  else
    ++by_level_[static_cast<std::size_t>(rec.match)];
  retries_ += rec.attempts - 1;
  records_.push_back(std::move(rec));
}

namespace {

bool seq_less(const InvocationRecord& a, const InvocationRecord& b) {
  return a.seq < b.seq;
}

}  // namespace

void MetricsCollector::sort_records_by_seq() {
  std::stable_sort(records_.begin(), records_.end(), seq_less);
}

void MetricsCollector::merge(const MetricsCollector& other) {
  // Both halves are in seq order in every current use (record() appends in
  // arrival order, merge()/merge_many() restore seq order), so a linear
  // stable inplace_merge gives the same result as re-sorting the whole
  // vector — stability puts this collector's records before the other's on
  // equal seq, exactly as the stable sort over the concatenation did.
  const auto mid =
      static_cast<std::vector<InvocationRecord>::difference_type>(
          records_.size());
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
  total_latency_s_ += other.total_latency_s_;
  cold_starts_ += other.cold_starts_;
  for (std::size_t i = 0; i < by_level_.size(); ++i)
    by_level_[i] += other.by_level_[i];
  failed_ += other.failed_;
  retries_ += other.retries_;
  if (std::is_sorted(records_.begin(), records_.begin() + mid, seq_less) &&
      std::is_sorted(records_.begin() + mid, records_.end(), seq_less))
    std::inplace_merge(records_.begin(), records_.begin() + mid,
                       records_.end(), seq_less);
  else
    std::stable_sort(records_.begin(), records_.end(), seq_less);
}

void MetricsCollector::merge_many(
    const std::vector<const MetricsCollector*>& parts) {
  std::size_t extra = 0;
  for (const MetricsCollector* part : parts)
    if (part != nullptr) extra += part->records_.size();
  records_.reserve(records_.size() + extra);
  for (const MetricsCollector* part : parts) {
    if (part == nullptr) continue;
    records_.insert(records_.end(), part->records_.begin(),
                    part->records_.end());
    total_latency_s_ += part->total_latency_s_;
    cold_starts_ += part->cold_starts_;
    for (std::size_t i = 0; i < by_level_.size(); ++i)
      by_level_[i] += part->by_level_[i];
    failed_ += part->failed_;
    retries_ += part->retries_;
  }
  std::stable_sort(records_.begin(), records_.end(), seq_less);
}

void MetricsCollector::clear() {
  records_.clear();
  total_latency_s_ = 0.0;
  cold_starts_ = 0;
  by_level_.fill(0);
  failed_ = 0;
  retries_ = 0;
}

double MetricsCollector::goodput() const noexcept {
  if (records_.empty()) return 1.0;
  return static_cast<double>(records_.size() - failed_) /
         static_cast<double>(records_.size());
}

void MetricsCollector::mark_failed(std::uint64_t seq) {
  auto it = std::lower_bound(
      records_.begin(), records_.end(), seq,
      [](const InvocationRecord& r, std::uint64_t s) { return r.seq < s; });
  if (it == records_.end() || it->seq != seq) {
    // Streaming episodes append in dispatch order, so the binary search may
    // miss until sort_records_by_seq() runs; fall back to a linear scan.
    it = std::find_if(
        records_.begin(), records_.end(),
        [seq](const InvocationRecord& r) { return r.seq == seq; });
  }
  MLCR_CHECK_MSG(it != records_.end() && it->seq == seq,
                 "mark_failed: no record with trace seq " << seq);
  if (it->failed) return;
  if (it->cold)
    --cold_starts_;
  else
    --by_level_[static_cast<std::size_t>(it->match)];
  it->failed = true;
  ++failed_;
}

double MetricsCollector::average_latency_s() const noexcept {
  return records_.empty()
             ? 0.0
             : total_latency_s_ / static_cast<double>(records_.size());
}

std::size_t MetricsCollector::warm_starts_at(
    containers::MatchLevel level) const noexcept {
  return by_level_[static_cast<std::size_t>(level)];
}

std::vector<double> MetricsCollector::latencies() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_)
    if (!r.failed) out.push_back(r.latency_s);
  return out;
}

double MetricsCollector::latency_percentile(double p) const {
  return obs::exact_rank_percentile(latencies(), p);
}

std::vector<double> MetricsCollector::cumulative_latency() const {
  std::vector<double> out;
  out.reserve(records_.size());
  double total = 0.0;
  for (const auto& r : records_) {
    total += r.latency_s;
    out.push_back(total);
  }
  return out;
}

void MetricsCollector::audit(bool require_seq_order) const {
  double total = 0.0;
  std::size_t cold = 0;
  std::size_t failed = 0;
  std::size_t retries = 0;
  std::array<std::size_t, 4> by_level{};
  std::uint64_t prev_seq = 0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const InvocationRecord& r = records_[i];
    MLCR_CHECK_MSG(r.latency_s >= 0.0, "negative startup latency recorded");
    MLCR_CHECK_MSG(r.attempts >= 1, "record with zero start attempts");
    total += r.latency_s;
    if (r.failed)
      ++failed;
    else if (r.cold)
      ++cold;
    else
      ++by_level[static_cast<std::size_t>(r.match)];
    retries += r.attempts - 1;
    MLCR_CHECK_MSG(!require_seq_order || i == 0 || r.seq >= prev_seq,
                   "records out of trace-sequence order at seq " << r.seq);
    prev_seq = r.seq;
  }
  MLCR_CHECK_MSG(cold == cold_starts_, "cold-start count drifted: tracked "
                                           << cold_starts_ << ", recomputed "
                                           << cold);
  MLCR_CHECK_MSG(by_level == by_level_, "per-level warm counts drifted");
  MLCR_CHECK_MSG(failed == failed_,
                 "failed-invocation count drifted: tracked "
                     << failed_ << ", recomputed " << failed);
  MLCR_CHECK_MSG(retries == retries_, "retry count drifted: tracked "
                                          << retries_ << ", recomputed "
                                          << retries);
  MLCR_CHECK_MSG(failed_ + cold_starts_ + by_level_[1] + by_level_[2] +
                         by_level_[3] + by_level_[0] ==
                     records_.size(),
                 "failed + cold + warm does not sum to the record count");
  // merge() re-sorts records, so recomputation may fold in a different
  // order; allow relative float slack.
  MLCR_CHECK_MSG(
      std::abs(total - total_latency_s_) <=
          1e-9 * std::max(1.0, std::abs(total)),
      "total latency drifted: tracked " << total_latency_s_
                                        << ", recomputed " << total);
}

std::vector<std::size_t> MetricsCollector::cumulative_cold_starts() const {
  std::vector<std::size_t> out;
  out.reserve(records_.size());
  std::size_t total = 0;
  for (const auto& r : records_) {
    total += r.cold ? 1 : 0;
    out.push_back(total);
  }
  return out;
}

}  // namespace mlcr::sim
