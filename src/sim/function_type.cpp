#include "sim/function_type.hpp"

#include "util/check.hpp"

namespace mlcr::sim {

FunctionTypeId FunctionTable::add(FunctionType type) {
  MLCR_CHECK_MSG(!type.name.empty(), "function type needs a name");
  MLCR_CHECK(type.runtime_init_s >= 0.0 && type.function_init_s >= 0.0);
  MLCR_CHECK(type.mean_exec_s > 0.0 && type.exec_cv >= 0.0);
  type.id = static_cast<FunctionTypeId>(types_.size());
  types_.push_back(std::move(type));
  return types_.back().id;
}

const FunctionType& FunctionTable::get(FunctionTypeId id) const {
  MLCR_CHECK_MSG(id < types_.size(), "unknown function type " << id);
  return types_[id];
}

}  // namespace mlcr::sim
