// Function type registry: the static description of each serverless function
// (its three-level image plus initialization/execution characteristics).
// FStartBench (src/fstartbench) instantiates the paper's 13 concrete types.
#pragma once

#include <string>
#include <vector>

#include "containers/container.hpp"
#include "containers/image.hpp"

namespace mlcr::sim {

using containers::FunctionTypeId;

/// Language implementation style; drives runtime-initialization cost (paper
/// Sec. II: init is ~6% of cold start for interpreted languages but up to
/// ~45% for compiled ones like Java/.NET).
enum class LanguageKind : std::uint8_t { kInterpreted, kCompiled };

struct FunctionType {
  FunctionTypeId id = containers::kInvalidFunctionType;
  std::string name;
  std::string description;
  containers::ImageSpec image;
  LanguageKind language_kind = LanguageKind::kInterpreted;

  /// Runtime (framework/VM) initialization, paid on cold start and whenever
  /// the runtime level is re-provisioned; seconds.
  double runtime_init_s = 0.1;
  /// Function (user-code) initialization, paid on every start; seconds.
  double function_init_s = 0.05;

  /// Execution-time distribution parameters used by workload generators
  /// (lognormal-style: mean with coefficient of variation).
  double mean_exec_s = 0.5;
  double exec_cv = 0.25;
};

/// Append-only table of function types; ids are dense indices.
class FunctionTable {
 public:
  FunctionTypeId add(FunctionType type);
  [[nodiscard]] const FunctionType& get(FunctionTypeId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return types_.size(); }

  [[nodiscard]] const std::vector<FunctionType>& all() const noexcept {
    return types_;
  }

 private:
  std::vector<FunctionType> types_;
};

}  // namespace mlcr::sim
