// Startup cost model. Decomposes a function start into the components the
// paper measures (Fig. 1): sandbox creation, code pulling, package
// installation, runtime initialization, function initialization, plus the
// container-cleaner volume operations on warm reuse.
//
// Calibration targets from the paper (Sec. II, measured on Tencent SCF):
//   * cold-start latency is 1.3x-166x of function runtime,
//   * code pulling is 47%-89% of the cold-start latency,
//   * init is ~6% for interpreted languages, up to ~45% for compiled ones.
#pragma once

#include "containers/cleaner.hpp"
#include "containers/matching.hpp"
#include "sim/function_type.hpp"

namespace mlcr::sim {

/// Per-component startup latency, seconds.
struct StartupBreakdown {
  double sandbox_s = 0.0;        ///< create + launch the sandbox (cold only)
  double pull_s = 0.0;           ///< fetch missing package bits
  double install_s = 0.0;        ///< install/configure fetched packages
  double runtime_init_s = 0.0;   ///< language runtime / framework boot
  double function_init_s = 0.0;  ///< user code initialization
  double cleaner_s = 0.0;        ///< volume mount/unmount on warm reuse

  [[nodiscard]] double total() const noexcept {
    return sandbox_s + pull_s + install_s + runtime_init_s + function_init_s +
           cleaner_s;
  }
};

struct CostModelConfig {
  /// Creating + launching a container sandbox, seconds.
  double sandbox_create_s = 0.6;
  /// Registry bandwidth for code pulling, MB/s. 30 MB/s makes code pulling
  /// 47%-89% of cold-start latency across the FStartBench functions,
  /// matching the paper's Sec. II measurements.
  double pull_bandwidth_mb_s = 30.0;
  /// Fixed per-package pull round-trip, seconds.
  double pull_rtt_s = 0.04;
  containers::CleanerConfig cleaner;
};

/// Computes startup breakdowns from a function type, a match level and the
/// package catalog. Pure and stateless apart from configuration.
class StartupCostModel {
 public:
  StartupCostModel(const containers::PackageCatalog& catalog,
                   CostModelConfig config = {});

  /// Full cold start: sandbox + pull/install of all three levels + inits.
  [[nodiscard]] StartupBreakdown cold_start(const FunctionType& fn) const;

  /// Warm start on a container matched at `level` (must be reusable):
  ///   L3 -> function init + cleaner only;
  ///   L2 -> + pull/install runtime packages + runtime init;
  ///   L1 -> + pull/install language packages as well.
  [[nodiscard]] StartupBreakdown warm_start(
      const FunctionType& fn, containers::MatchLevel level) const;

  /// Breakdown for an arbitrary level; kNoMatch degrades to cold_start().
  /// This is what schedulers use to estimate candidate costs.
  [[nodiscard]] StartupBreakdown start_cost(
      const FunctionType& fn, containers::MatchLevel level) const;

  /// Union (zygote-style / paper Fig. 1 "W") warm start on `container`:
  /// only the packages the container lacks are pulled and installed, and
  /// nothing is removed. Requires the OS level to match (the paper's
  /// pruning rule: an OS reinstall invalidates everything above it).
  /// Runtime init is paid only if runtime packages were missing.
  [[nodiscard]] StartupBreakdown union_warm_start(
      const FunctionType& fn, const containers::ImageSpec& container) const;

  /// Latency of pulling `size_mb` across `package_count` packages.
  [[nodiscard]] double pull_time_s(double size_mb,
                                   std::size_t package_count) const noexcept;

  [[nodiscard]] const CostModelConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const containers::ContainerCleaner& cleaner() const noexcept {
    return cleaner_;
  }

 private:
  void add_level_provisioning(const FunctionType& fn, containers::Level level,
                              StartupBreakdown& b) const;

  const containers::PackageCatalog& catalog_;
  CostModelConfig config_;
  containers::ContainerCleaner cleaner_;
};

}  // namespace mlcr::sim
