// Trace (de)serialization: CSV with a header, so workloads can be exported,
// inspected, or replayed from external tools.
//
//   function_id,arrival_s,exec_s
//   3,0.125,0.48
//
// Function ids refer to a FunctionTable the reader must already hold (the
// format intentionally carries no package metadata — traces are workload
// descriptions, not environment descriptions).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/invocation.hpp"

namespace mlcr::sim {

/// Write `trace` as CSV. Columns: function_id, arrival_s, exec_s.
void write_trace_csv(const Trace& trace, std::ostream& os);
void write_trace_csv(const Trace& trace, const std::string& path);

/// Parse a CSV trace. Validates against `functions` (unknown ids throw).
/// Rows may be in any order; the resulting trace is arrival-sorted.
[[nodiscard]] Trace read_trace_csv(std::istream& is,
                                   const FunctionTable& functions);
[[nodiscard]] Trace read_trace_csv(const std::string& path,
                                   const FunctionTable& functions);

}  // namespace mlcr::sim
