// ClusterEnv: the discrete-event serverless platform (paper Fig. 4) that the
// schedulers — and the DRL agent — interact with. It advances simulated time
// along a trace of invocations, moves containers between "busy on a worker"
// and the warm pool, applies eviction / TTL expiry, and records metrics.
//
// The interaction protocol is gym-like and identical for heuristic and
// learned schedulers:
//
//   env.reset(trace);
//   while (!env.done()) {
//     const Invocation& inv = env.current();
//     Action a = scheduler.decide(env, inv);
//     StepResult r = env.step(a);        // startup latency, match level, ...
//   }
//   env.metrics() / env.pool_stats()
//
// Invalid reuse actions (absent container, no-match image) degrade to a cold
// start, mirroring the paper's action semantics (Sec. IV-B: "if i is larger
// than the actual number of warm containers ... it also means cold start").
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "containers/pool.hpp"
#include "sim/cost_model.hpp"
#include "sim/invocation.hpp"
#include "sim/metrics.hpp"

namespace mlcr::faults {
class FaultInjector;
}

namespace mlcr::obs {
class Tracer;
}

namespace mlcr::sim {

/// Scheduling decision for one invocation.
struct Action {
  enum class Kind : std::uint8_t { kColdStart, kReuse };
  Kind kind = Kind::kColdStart;
  containers::ContainerId container = containers::kInvalidContainer;

  [[nodiscard]] static Action cold() noexcept { return {}; }
  [[nodiscard]] static Action reuse(containers::ContainerId id) noexcept {
    return {Kind::kReuse, id};
  }
};

/// Outcome of scheduling one invocation.
struct StepResult {
  StartupBreakdown breakdown;
  double latency_s = 0.0;
  containers::MatchLevel match = containers::MatchLevel::kNoMatch;
  bool cold = true;
  containers::ContainerId container = containers::kInvalidContainer;
  /// Every start attempt failed (fault injection, DESIGN.md §9): no
  /// container runs the invocation and latency_s holds the time spent on
  /// the failed attempts and backoffs. Always false without an injector.
  bool failed = false;
  /// Start attempts made (1 without faults; retries add more).
  std::size_t attempts = 1;
};

using EvictionPolicyFactory =
    std::function<std::unique_ptr<containers::EvictionPolicy>()>;

/// How a reused container is adapted to the arriving function.
enum class ReuseSemantics : std::uint8_t {
  /// MLCR repacking (Sec. III): mismatched level volumes are swapped out,
  /// the container's image *becomes* the function's image.
  kRepack,
  /// Union / zygote-style (paper Fig. 1 "W"; Li et al. ATC'22): missing
  /// packages are pulled and added, nothing is removed — the container
  /// grows and can serve every function it has absorbed, at the price of a
  /// growing memory footprint.
  kUnion,
};

struct EnvConfig {
  /// Warm pool memory budget, MB.
  double pool_capacity_mb = 4096.0;
  /// Warm pool container-count cap == DQN slot count n; 0 = unlimited.
  std::size_t max_pool_containers = 0;
  /// If set, idle containers expire after this many seconds (KeepAlive).
  std::optional<double> keep_alive_ttl_s;
  ReuseSemantics reuse_semantics = ReuseSemantics::kRepack;
};

class ClusterEnv {
 public:
  ClusterEnv(const FunctionTable& functions,
             const containers::PackageCatalog& catalog,
             StartupCostModel cost_model, EnvConfig config,
             EvictionPolicyFactory eviction_factory);

  /// Start a new episode over `trace` (kept by reference; must outlive the
  /// episode). Rebuilds the pool with a fresh eviction policy.
  void reset(const Trace& trace);

  /// Start an open-ended streaming episode: the trace is not known up front
  /// and invocations are appended one at a time via offer(). Used by the
  /// fleet layer, where a front-end router decides online which node sees
  /// each invocation. The event sequence of offer()+step() is identical to
  /// the traced protocol, so a streaming episode fed the whole trace
  /// reproduces reset(trace)+step() bit-for-bit.
  void reset_streaming();

  /// Append the next invocation of a streaming episode and advance simulated
  /// time to its arrival (so schedulers observe the same pool state as in
  /// the traced protocol). Requires done() — the previous invocation must
  /// have been stepped — and a non-decreasing arrival time.
  void offer(Invocation inv);

  /// Advance simulated time with no work arriving (completions are admitted
  /// to the pool, TTL expiry applies). Lets the fleet keep idle nodes'
  /// clocks in lockstep with the global clock. Requires done().
  void advance_idle(double time);

  /// Streaming event API (DESIGN.md §10): advance to `time`, processing
  /// every completion and TTL expiry due on the way. Composable —
  /// advance_to(a); advance_to(b) with a <= b is state-identical to
  /// advance_to(b) — which is what lets the event-driven fleet advance a
  /// node only as far as its next event instead of to every global arrival.
  /// Requires done(); times <= now() are no-ops.
  void advance_to(double time);

  /// Earliest future time at which this node's observable state changes on
  /// its own (the next completion or the earliest possible TTL expiry), or
  /// nullopt when neither is pending. The TTL deadline is the smallest
  /// double t with t - oldest_idle > ttl under floating-point arithmetic,
  /// so advancing to it performs a real expiry (never a spurious wake-up)
  /// and never fires one early. A crashed node has no events.
  [[nodiscard]] std::optional<double> next_event_time() const;

  /// End a streaming episode: drain outstanding executions so pool
  /// peak/eviction statistics are complete (the traced protocol does this
  /// automatically after the last invocation).
  void finish_streaming();

  [[nodiscard]] bool done() const noexcept;
  /// Next invocation to schedule. Requires !done().
  [[nodiscard]] const Invocation& current() const;
  /// Current simulated time (== current().arrival_s during an episode).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Apply a scheduling decision to the current invocation. Requires !done().
  StepResult step(const Action& action);

  [[nodiscard]] const containers::WarmPool& pool() const;
  [[nodiscard]] std::size_t busy_count() const noexcept {
    return busy_.size();
  }
  [[nodiscard]] const MetricsCollector& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const FunctionTable& functions() const noexcept {
    return functions_;
  }
  [[nodiscard]] const containers::PackageCatalog& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] const StartupCostModel& cost_model() const noexcept {
    return cost_model_;
  }
  [[nodiscard]] const EnvConfig& config() const noexcept { return config_; }
  [[nodiscard]] const EvictionPolicyFactory& eviction_factory() const noexcept {
    return eviction_factory_;
  }
  [[nodiscard]] const Trace* trace() const noexcept { return trace_; }

  /// Table-I match between the current pool container and a function type.
  /// Returns kNoMatch for unknown containers.
  [[nodiscard]] containers::MatchLevel match_for(
      containers::ContainerId id, FunctionTypeId function) const;

  /// Attach a tracer: every step() emits match/startup/exec lifecycle spans
  /// (with per-component startup children) in *simulated* time on
  /// (obs::Tracer::kSimPid, `track`), and the warm pool emits its
  /// admission/eviction instants on the same track. `track` is the fleet
  /// node index (0 single-node). The env does not own the tracer; nullptr
  /// detaches. Survives reset().
  void set_tracer(obs::Tracer* tracer, std::uint32_t track = 0) noexcept;
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }
  [[nodiscard]] std::uint32_t trace_track() const noexcept { return track_; }

  /// Attach a fault injector (DESIGN.md §9): step() then draws startup /
  /// repack failures and applies timeouts and retries from the injector's
  /// stream. The env does not own the injector; nullptr detaches (the
  /// default — without an injector every path is bit-identical to the
  /// pre-fault simulator). Survives reset().
  void set_fault_injector(faults::FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  [[nodiscard]] faults::FaultInjector* fault_injector() const noexcept {
    return injector_;
  }

  /// Crash the node at `time` (>= now): in-flight executions are killed and
  /// their invocations retroactively failed, and offer()/step() reject work
  /// until recover(). A full crash (`partial` false) also drops the warm
  /// pool; a *partial* crash loses only compute — the pool survives the
  /// window, so the node rejoins warm instead of cold (DESIGN.md §14).
  /// Requires done() (the fleet crashes nodes between invocations) and a
  /// healthy node.
  void crash(double time, bool partial = false);
  /// Bring a crashed node back at `time`: it serves again with an empty
  /// pool after a full crash (the recovery cold-start storm the chaos bench
  /// measures) or with its surviving — TTL-expired as usual — pool after a
  /// partial one.
  void recover(double time);
  /// True while crashed (between crash() and recover()).
  [[nodiscard]] bool down() const noexcept { return down_; }
  /// True while inside a *partial* crash window (down() is also true).
  [[nodiscard]] bool partial_down() const noexcept { return partial_down_; }

  /// Cross-structure invariant auditor: pool byte accounting, busy/pooled
  /// disjointness (no container simultaneously busy and reusable), metrics
  /// aggregate consistency, and clock/index sanity. Throws util::CheckError
  /// on violation. Runs after every event in audit-enabled builds (see
  /// util/audit.hpp); tests call it directly on corrupted state.
  void audit() const;

 private:
  friend struct EnvTestPeer;  ///< test-only corruption hook (tests/sim)

  struct Completion {
    double time = 0.0;
    containers::Container container;
    std::uint64_t seq = 0;  ///< trace seq, to fail the record on a crash
  };
  struct CompletionOrder {
    bool operator()(const Completion& a, const Completion& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;  // min-heap on time
      return a.container.id > b.container.id;        // deterministic ties
    }
  };

  /// Process completions up to `time` (inclusive) and TTL expiry.
  void drain_to(double time);
  void finish_episode();
  void reset_common();
  [[nodiscard]] const Invocation& at(std::size_t i) const;
  /// Emit the lifecycle events for one scheduled invocation (tracer attached
  /// and enabled; all timestamps are simulated time).
  void trace_step(const Invocation& inv, const FunctionType& fn,
                  const StepResult& result) const;

  const FunctionTable& functions_;
  const containers::PackageCatalog& catalog_;
  StartupCostModel cost_model_;
  EnvConfig config_;
  EvictionPolicyFactory eviction_factory_;

  const Trace* trace_ = nullptr;
  bool streaming_ = false;
  std::vector<Invocation> stream_;  ///< offered invocations (streaming mode)
  std::size_t next_index_ = 0;
  double now_ = 0.0;
  std::unique_ptr<containers::WarmPool> pool_;
  std::priority_queue<Completion, std::vector<Completion>, CompletionOrder>
      busy_;
  containers::ContainerId next_container_id_ = 0;
  MetricsCollector metrics_;
  bool episode_finished_ = false;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  faults::FaultInjector* injector_ = nullptr;
  bool down_ = false;
  bool partial_down_ = false;  ///< of down_: warm pool kept (partial crash)
};

}  // namespace mlcr::sim
