#include "sim/trace_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace mlcr::sim {

namespace {
constexpr char kHeader[] = "function_id,arrival_s,exec_s";

[[nodiscard]] double parse_double(std::string_view field, std::size_t line) {
  // std::from_chars<double> is not universally available; strtod suffices.
  const std::string buf(field);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  MLCR_CHECK_MSG(end != nullptr && *end == '\0' && !buf.empty(),
                 "trace CSV line " << line << ": bad number '" << buf << "'");
  // strtod happily parses "nan"/"inf"; neither is a valid trace quantity.
  MLCR_CHECK_MSG(std::isfinite(v), "trace CSV line "
                                       << line << ": non-finite number '"
                                       << buf << "'");
  return v;
}
}  // namespace

void write_trace_csv(const Trace& trace, std::ostream& os) {
  os << kHeader << '\n';
  for (const Invocation& inv : trace.invocations())
    os << inv.function << ',' << inv.arrival_s << ',' << inv.exec_s << '\n';
  MLCR_CHECK_MSG(os.good(), "failed writing trace CSV");
}

void write_trace_csv(const Trace& trace, const std::string& path) {
  std::ofstream os(path);
  MLCR_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  write_trace_csv(trace, os);
}

Trace read_trace_csv(std::istream& is, const FunctionTable& functions) {
  std::string line;
  MLCR_CHECK_MSG(std::getline(is, line) && line == kHeader,
                 "trace CSV: missing or wrong header (expected '" << kHeader
                                                                  << "')");
  std::vector<Invocation> invocations;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream row(line);
    std::string fn_field, arrival_field, exec_field, extra;
    MLCR_CHECK_MSG(std::getline(row, fn_field, ',') &&
                       std::getline(row, arrival_field, ',') &&
                       std::getline(row, exec_field, ','),
                   "trace CSV line " << line_no << ": expected 3 columns");
    MLCR_CHECK_MSG(!std::getline(row, extra, ','),
                   "trace CSV line " << line_no
                                     << ": expected 3 columns, found more");
    Invocation inv;
    const double fn = parse_double(fn_field, line_no);
    MLCR_CHECK_MSG(fn >= 0 && fn == static_cast<double>(
                                        static_cast<FunctionTypeId>(fn)),
                   "trace CSV line " << line_no << ": bad function id");
    inv.function = static_cast<FunctionTypeId>(fn);
    MLCR_CHECK_MSG(inv.function < functions.size(),
                   "trace CSV line " << line_no << ": unknown function id "
                                     << inv.function);
    inv.arrival_s = parse_double(arrival_field, line_no);
    MLCR_CHECK_MSG(inv.arrival_s >= 0.0, "trace CSV line "
                                             << line_no
                                             << ": negative arrival time");
    inv.exec_s = parse_double(exec_field, line_no);
    MLCR_CHECK_MSG(inv.exec_s >= 0.0, "trace CSV line "
                                          << line_no
                                          << ": negative execution time");
    invocations.push_back(inv);
  }
  return Trace(std::move(invocations));
}

Trace read_trace_csv(const std::string& path, const FunctionTable& functions) {
  std::ifstream is(path);
  MLCR_CHECK_MSG(is.is_open(), "cannot open " << path << " for reading");
  return read_trace_csv(is, functions);
}

}  // namespace mlcr::sim
