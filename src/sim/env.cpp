#include "sim/env.hpp"

#include <set>

#include "containers/matching.hpp"
#include "obs/tracer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace mlcr::sim {

using containers::Container;
using containers::ContainerState;
using containers::MatchLevel;

ClusterEnv::ClusterEnv(const FunctionTable& functions,
                       const containers::PackageCatalog& catalog,
                       StartupCostModel cost_model, EnvConfig config,
                       EvictionPolicyFactory eviction_factory)
    : functions_(functions),
      catalog_(catalog),
      cost_model_(std::move(cost_model)),
      config_(config),
      eviction_factory_(std::move(eviction_factory)) {
  MLCR_CHECK(eviction_factory_ != nullptr);
  MLCR_CHECK(config_.pool_capacity_mb > 0.0);
}

void ClusterEnv::reset_common() {
  next_index_ = 0;
  pool_ = std::make_unique<containers::WarmPool>(config_.pool_capacity_mb,
                                                 eviction_factory_(),
                                                 config_.max_pool_containers);
  pool_->set_tracer(tracer_, track_);
  busy_ = {};
  next_container_id_ = 0;
  metrics_.clear();
}

void ClusterEnv::set_tracer(obs::Tracer* tracer, std::uint32_t track) noexcept {
  tracer_ = tracer;
  track_ = track;
  if (pool_ != nullptr) pool_->set_tracer(tracer, track);
}

void ClusterEnv::reset(const Trace& trace) {
  trace_ = &trace;
  streaming_ = false;
  stream_.clear();
  now_ = trace.empty() ? 0.0 : trace.at(0).arrival_s;
  reset_common();
  episode_finished_ = trace.empty();
}

void ClusterEnv::reset_streaming() {
  trace_ = nullptr;
  streaming_ = true;
  stream_.clear();
  now_ = 0.0;
  reset_common();
  episode_finished_ = false;
}

void ClusterEnv::offer(Invocation inv) {
  MLCR_CHECK_MSG(streaming_, "offer() requires reset_streaming()");
  MLCR_CHECK_MSG(done(), "previous invocation has not been stepped yet");
  MLCR_CHECK_MSG(inv.arrival_s >= now_,
                 "streaming invocations must arrive in time order");
  stream_.push_back(inv);
  advance_to(inv.arrival_s);
  MLCR_AUDIT_POINT(audit());
}

void ClusterEnv::advance_idle(double time) {
  MLCR_CHECK_MSG(done(), "advance_idle() with a pending invocation");
  if (time > now_) advance_to(time);
  MLCR_AUDIT_POINT(audit());
}

void ClusterEnv::finish_streaming() {
  MLCR_CHECK_MSG(streaming_, "finish_streaming() requires reset_streaming()");
  MLCR_CHECK_MSG(done(), "finish_streaming() with a pending invocation");
  finish_episode();
  MLCR_AUDIT_POINT(audit());
}

bool ClusterEnv::done() const noexcept {
  if (streaming_) return next_index_ >= stream_.size();
  return trace_ == nullptr || next_index_ >= trace_->size();
}

const Invocation& ClusterEnv::at(std::size_t i) const {
  return streaming_ ? stream_[i] : trace_->at(i);
}

const Invocation& ClusterEnv::current() const {
  MLCR_CHECK_MSG(!done(), "no current invocation: episode is done");
  return at(next_index_);
}

const containers::WarmPool& ClusterEnv::pool() const {
  MLCR_CHECK_MSG(pool_ != nullptr, "call reset() first");
  return *pool_;
}

MatchLevel ClusterEnv::match_for(containers::ContainerId id,
                                 FunctionTypeId function) const {
  const Container* c = pool().find(id);
  if (c == nullptr) return MatchLevel::kNoMatch;
  return containers::match(functions_.get(function).image, c->image);
}

void ClusterEnv::advance_to(double time) {
  while (!busy_.empty() && busy_.top().time <= time) {
    Completion done_c = busy_.top();
    busy_.pop();
    if (config_.keep_alive_ttl_s)
      pool_->expire_older_than(done_c.time, *config_.keep_alive_ttl_s);
    Container& c = done_c.container;
    c.state = ContainerState::kIdle;
    c.last_idle_at = done_c.time;
    // Rejected containers are destroyed (their worker memory is released).
    (void)pool_->admit(std::move(c), done_c.time);
  }
  if (config_.keep_alive_ttl_s)
    pool_->expire_older_than(time, *config_.keep_alive_ttl_s);
  now_ = time;
}

void ClusterEnv::finish_episode() {
  if (episode_finished_) return;
  // Drain outstanding executions so pool peak/eviction stats are complete.
  while (!busy_.empty()) advance_to(busy_.top().time);
  episode_finished_ = true;
}

StepResult ClusterEnv::step(const Action& action) {
  const Invocation inv = current();
  advance_to(inv.arrival_s);
  const FunctionType& fn = functions_.get(inv.function);

  StepResult result;
  Container container;

  MatchLevel level = MatchLevel::kNoMatch;
  if (action.kind == Action::Kind::kReuse) {
    if (config_.reuse_semantics == ReuseSemantics::kUnion) {
      // Union reuse only needs a matching OS; report the Table-I-style
      // level implied by what is (not) missing.
      const Container* c = pool().find(action.container);
      if (c != nullptr && c->image.level_equals(fn.image,
                                                containers::Level::kOs)) {
        if (!c->image.level_contains(fn.image, containers::Level::kLanguage))
          level = MatchLevel::kL1;
        else if (!c->image.level_contains(fn.image,
                                          containers::Level::kRuntime))
          level = MatchLevel::kL2;
        else
          level = MatchLevel::kL3;
      }
    } else {
      level = match_for(action.container, inv.function);
    }
  }

  if (containers::reusable(level)) {
    auto taken = pool_->take(action.container, now_);
    MLCR_CHECK(taken.has_value());
    container = std::move(*taken);
    if (config_.reuse_semantics == ReuseSemantics::kUnion) {
      result.breakdown = cost_model_.union_warm_start(fn, container.image);
      const bool grew =
          !container.image.level_contains(fn.image,
                                          containers::Level::kLanguage) ||
          !container.image.level_contains(fn.image,
                                          containers::Level::kRuntime);
      container.image.merge_level(containers::Level::kLanguage, fn.image);
      container.image.merge_level(containers::Level::kRuntime, fn.image);
      container.refresh_memory(catalog_);
      if (grew) ++container.repack_count;
    } else {
      result.breakdown = cost_model_.warm_start(fn, level);
      cost_model_.cleaner().repack(container, fn.image, catalog_, level);
    }
    result.cold = false;
  } else {
    container.id = next_container_id_++;
    container.image = fn.image;
    container.created_at = now_;
    container.refresh_memory(catalog_);
    result.breakdown = cost_model_.cold_start(fn);
    result.cold = true;
    level = MatchLevel::kNoMatch;
  }

  result.match = level;
  result.latency_s = result.breakdown.total();
  result.container = container.id;

  container.state = ContainerState::kBusy;
  container.last_used_at = now_;
  ++container.use_count;
  container.last_function = inv.function;
  container.last_startup_cost_s = result.latency_s;

  busy_.push(Completion{now_ + result.latency_s + inv.exec_s,
                        std::move(container)});

  InvocationRecord rec;
  rec.seq = inv.seq;
  rec.function = inv.function;
  rec.arrival_s = inv.arrival_s;
  rec.container = result.container;
  rec.match = result.match;
  rec.cold = result.cold;
  rec.breakdown = result.breakdown;
  rec.latency_s = result.latency_s;
  metrics_.record(std::move(rec));

  if (tracer_ != nullptr && tracer_->enabled()) trace_step(inv, fn, result);

  ++next_index_;
  if (done()) {
    // A streaming episode never knows whether more invocations will arrive;
    // finish_streaming() drains it explicitly.
    if (!streaming_) finish_episode();
  } else {
    advance_to(at(next_index_).arrival_s);
  }

  MLCR_AUDIT_POINT(audit());
  return result;
}

void ClusterEnv::trace_step(const Invocation& inv, const FunctionType& fn,
                            const StepResult& result) const {
  namespace o = mlcr::obs;
  o::Tracer& t = *tracer_;
  const std::uint32_t pid = o::Tracer::kSimPid;
  const o::Micros arrival = o::to_micros(inv.arrival_s);
  const auto cid = static_cast<std::int64_t>(result.container);

  t.instant(pid, track_, arrival, "match", "sim",
            {o::sarg("function", fn.name),
             o::sarg("level", std::string(containers::to_string(result.match))),
             o::narg("cold", static_cast<std::int64_t>(result.cold ? 1 : 0)),
             o::narg("container", cid)});

  const StartupBreakdown& b = result.breakdown;
  t.span(pid, track_, arrival, o::to_micros(result.latency_s), "startup",
         "sim",
         {o::sarg("function", fn.name),
          o::sarg("level", std::string(containers::to_string(result.match))),
          o::narg("cold", static_cast<std::int64_t>(result.cold ? 1 : 0)),
          o::narg("container", cid)});

  // Child segments, laid out sequentially in the order the platform performs
  // them; zero-cost components are omitted except the repack, which carries
  // the cleaner's volume plan whenever a repack actually happened.
  double cursor_s = inv.arrival_s;
  auto child = [&](const char* name, double dur_s,
                   std::vector<o::TraceArg> args = {}) {
    t.span(pid, track_, o::to_micros(cursor_s), o::to_micros(dur_s), name,
           "sim", std::move(args));
    cursor_s += dur_s;
  };
  if (b.sandbox_s > 0.0) child("sandbox", b.sandbox_s);
  if (!result.cold && config_.reuse_semantics == ReuseSemantics::kRepack) {
    const containers::RepackPlan plan =
        cost_model_.cleaner().plan(fn.image, result.match);
    child("repack", b.cleaner_s,
          {o::narg("unmounted_volumes",
                   static_cast<std::int64_t>(plan.unmounted_volumes)),
           o::narg("mounted_volumes",
                   static_cast<std::int64_t>(plan.mounted_volumes)),
           o::narg("volume_ops_s", plan.volume_ops_s)});
  } else if (b.cleaner_s > 0.0) {
    child("repack", b.cleaner_s);
  }
  if (b.pull_s > 0.0) child("pull", b.pull_s);
  if (b.install_s > 0.0) child("install", b.install_s);
  if (b.runtime_init_s > 0.0) child("runtime_init", b.runtime_init_s);
  if (b.function_init_s > 0.0) child("function_init", b.function_init_s);

  t.span(pid, track_, o::to_micros(inv.arrival_s + result.latency_s),
         o::to_micros(inv.exec_s), "exec", "sim",
         {o::sarg("function", fn.name), o::narg("container", cid)});
}

void ClusterEnv::audit() const {
  if (pool_ == nullptr) return;  // before the first reset there is no state
  pool_->audit();

  // Busy containers: unique ids, disjoint from the pool ("no container
  // simultaneously busy and reusable"), kBusy state, completion not in the
  // simulated past, ids actually issued.
  auto heap = busy_;
  std::set<containers::ContainerId> seen;
  while (!heap.empty()) {
    const Completion& c = heap.top();
    MLCR_CHECK_MSG(c.container.state == ContainerState::kBusy,
                   "container " << c.container.id << " idle while executing");
    MLCR_CHECK_MSG(seen.insert(c.container.id).second,
                   "container " << c.container.id << " busy twice");
    MLCR_CHECK_MSG(pool_->find(c.container.id) == nullptr,
                   "container " << c.container.id
                                << " simultaneously busy and pooled");
    MLCR_CHECK_MSG(c.container.id < next_container_id_,
                   "busy container id " << c.container.id << " never issued");
    MLCR_CHECK_MSG(c.time >= now_, "completion scheduled in the past");
    heap.pop();
  }
  for (const containers::Container* c : pool_->idle_containers())
    MLCR_CHECK_MSG(c->id < next_container_id_,
                   "pooled container id " << c->id << " never issued");

  metrics_.audit();
  const std::size_t episode_size =
      streaming_ ? stream_.size() : (trace_ != nullptr ? trace_->size() : 0);
  MLCR_CHECK_MSG(next_index_ <= episode_size, "episode index out of range");
  MLCR_CHECK_MSG(metrics_.invocation_count() == next_index_,
                 "metrics record count diverged from scheduled invocations");
}

}  // namespace mlcr::sim
