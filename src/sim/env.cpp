#include "sim/env.hpp"

#include <cmath>
#include <limits>
#include <set>

#include "containers/matching.hpp"
#include "faults/injector.hpp"
#include "obs/tracer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace mlcr::sim {

using containers::Container;
using containers::ContainerState;
using containers::MatchLevel;

ClusterEnv::ClusterEnv(const FunctionTable& functions,
                       const containers::PackageCatalog& catalog,
                       StartupCostModel cost_model, EnvConfig config,
                       EvictionPolicyFactory eviction_factory)
    : functions_(functions),
      catalog_(catalog),
      cost_model_(std::move(cost_model)),
      config_(config),
      eviction_factory_(std::move(eviction_factory)) {
  MLCR_CHECK(eviction_factory_ != nullptr);
  MLCR_CHECK(config_.pool_capacity_mb > 0.0);
}

void ClusterEnv::reset_common() {
  next_index_ = 0;
  down_ = false;
  partial_down_ = false;
  pool_ = std::make_unique<containers::WarmPool>(config_.pool_capacity_mb,
                                                 eviction_factory_(),
                                                 config_.max_pool_containers);
  pool_->set_tracer(tracer_, track_);
  busy_ = {};
  next_container_id_ = 0;
  metrics_.clear();
}

void ClusterEnv::set_tracer(obs::Tracer* tracer, std::uint32_t track) noexcept {
  tracer_ = tracer;
  track_ = track;
  if (pool_ != nullptr) pool_->set_tracer(tracer, track);
}

void ClusterEnv::reset(const Trace& trace) {
  trace_ = &trace;
  streaming_ = false;
  stream_.clear();
  now_ = trace.empty() ? 0.0 : trace.at(0).arrival_s;
  reset_common();
  episode_finished_ = trace.empty();
}

void ClusterEnv::reset_streaming() {
  trace_ = nullptr;
  streaming_ = true;
  stream_.clear();
  now_ = 0.0;
  reset_common();
  episode_finished_ = false;
}

void ClusterEnv::offer(Invocation inv) {
  MLCR_CHECK_MSG(streaming_, "offer() requires reset_streaming()");
  MLCR_CHECK_MSG(!down_, "offer() to a crashed node (invocation "
                             << stream_.size() << ", seq " << inv.seq
                             << "): route around it or recover() first");
  MLCR_CHECK_MSG(done(), "previous invocation has not been stepped yet");
  MLCR_CHECK_MSG(inv.function < functions_.size(),
                 "invocation " << stream_.size() << " (seq " << inv.seq
                               << ") names unknown function id "
                               << inv.function << " (table has "
                               << functions_.size() << " types)");
  MLCR_CHECK_MSG(inv.arrival_s >= now_,
                 "invocation " << stream_.size() << " (seq " << inv.seq
                               << ") arrives at " << inv.arrival_s
                               << "s, before the node clock " << now_
                               << "s — traces must be in arrival order");
  stream_.push_back(inv);
  drain_to(inv.arrival_s);
  MLCR_AUDIT_POINT(audit());
}

void ClusterEnv::advance_idle(double time) {
  MLCR_CHECK_MSG(done(), "advance_idle() with a pending invocation");
  if (time > now_) drain_to(time);
  MLCR_AUDIT_POINT(audit());
}

void ClusterEnv::advance_to(double time) {
  MLCR_CHECK_MSG(done(), "advance_to() with a pending invocation");
  if (time > now_) drain_to(time);
  MLCR_AUDIT_POINT(audit());
}

std::optional<double> ClusterEnv::next_event_time() const {
  if (down_ || pool_ == nullptr) return std::nullopt;
  std::optional<double> next;
  if (!busy_.empty()) next = busy_.top().time;
  if (config_.keep_alive_ttl_s) {
    if (const auto oldest = pool_->oldest_idle_at()) {
      // Smallest double t with t - oldest > ttl under floating-point
      // rounding: expire_older_than compares strictly, so a deadline of
      // exactly oldest + ttl would wake the fleet without expiring anything
      // (and a deadline one ulp short would skip the expiry entirely). The
      // nextafter loop terminates in a handful of steps.
      const double ttl = *config_.keep_alive_ttl_s;
      double deadline = *oldest + ttl;
      while (deadline - *oldest <= ttl)
        deadline =
            std::nextafter(deadline, std::numeric_limits<double>::infinity());
      if (!next || deadline < *next) next = deadline;
    }
  }
  return next;
}

void ClusterEnv::finish_streaming() {
  MLCR_CHECK_MSG(streaming_, "finish_streaming() requires reset_streaming()");
  MLCR_CHECK_MSG(done(), "finish_streaming() with a pending invocation");
  // Concurrent ingestion handed this node invocations in dispatch order;
  // restore canonical seq order so cumulative series and the fleet-level
  // audit see the strict sequential contract.
  metrics_.sort_records_by_seq();
  finish_episode();
  MLCR_AUDIT_POINT(audit());
}

void ClusterEnv::crash(double time, bool partial) {
  MLCR_CHECK_MSG(pool_ != nullptr, "crash() before the first reset");
  MLCR_CHECK_MSG(!down_, "crash() on an already-crashed node");
  MLCR_CHECK_MSG(done(), "crash() with a pending invocation");
  MLCR_CHECK_MSG(time >= now_, "crash() in the simulated past");
  drain_to(time);
  // In-flight executions die with the node: their containers are gone and
  // their invocations retroactively fail (the time spent stays in the
  // latency totals — it was spent).
  std::size_t killed = 0;
  while (!busy_.empty()) {
    metrics_.mark_failed(busy_.top().seq);
    busy_.pop();
    ++killed;
  }
  // A partial crash loses only compute: the warm pool rides out the window
  // (TTL expiry still applies at the next drain, as always).
  const std::size_t dropped = partial ? 0 : pool_->invalidate_all(time);
  down_ = true;
  partial_down_ = partial;
  if (injector_ != nullptr) {
    injector_->count_crash(partial);
    for (std::size_t i = 0; i < killed; ++i)
      injector_->count_failed_invocation();
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    std::vector<obs::TraceArg> args = {
        obs::narg("killed_executions", static_cast<std::int64_t>(killed)),
        obs::narg("lost_warm_containers", static_cast<std::int64_t>(dropped))};
    // Full-crash traces keep their exact pre-§14 bytes; only partial
    // windows carry the extra flag.
    if (partial) args.push_back(obs::narg("partial", std::int64_t{1}));
    tracer_->instant(obs::Tracer::kSimPid, track_, obs::to_micros(time),
                     "node_crash", "fault", std::move(args));
    tracer_->counter(obs::Tracer::kSimPid, track_, obs::to_micros(time),
                     "failed_invocations",
                     static_cast<double>(metrics_.failed_count()));
  }
  MLCR_AUDIT_POINT(audit());
}

void ClusterEnv::recover(double time) {
  MLCR_CHECK_MSG(down_, "recover() on a healthy node");
  MLCR_CHECK_MSG(time >= now_, "recover() in the simulated past");
  drain_to(time);
  down_ = false;
  partial_down_ = false;
  if (injector_ != nullptr) injector_->count_recovery();
  if (tracer_ != nullptr && tracer_->enabled())
    tracer_->instant(obs::Tracer::kSimPid, track_, obs::to_micros(time),
                     "node_recover", "fault", {});
  MLCR_AUDIT_POINT(audit());
}

bool ClusterEnv::done() const noexcept {
  if (streaming_) return next_index_ >= stream_.size();
  return trace_ == nullptr || next_index_ >= trace_->size();
}

const Invocation& ClusterEnv::at(std::size_t i) const {
  return streaming_ ? stream_[i] : trace_->at(i);
}

const Invocation& ClusterEnv::current() const {
  MLCR_CHECK_MSG(!done(), "no current invocation: episode is done");
  return at(next_index_);
}

const containers::WarmPool& ClusterEnv::pool() const {
  MLCR_CHECK_MSG(pool_ != nullptr, "call reset() first");
  return *pool_;
}

MatchLevel ClusterEnv::match_for(containers::ContainerId id,
                                 FunctionTypeId function) const {
  const Container* c = pool().find(id);
  if (c == nullptr) return MatchLevel::kNoMatch;
  return containers::match(functions_.get(function).image, c->image);
}

void ClusterEnv::drain_to(double time) {
  while (!busy_.empty() && busy_.top().time <= time) {
    Completion done_c = busy_.top();
    busy_.pop();
    if (config_.keep_alive_ttl_s)
      pool_->expire_older_than(done_c.time, *config_.keep_alive_ttl_s);
    Container& c = done_c.container;
    c.state = ContainerState::kIdle;
    c.last_idle_at = done_c.time;
    // Rejected containers are destroyed (their worker memory is released).
    (void)pool_->admit(std::move(c), done_c.time);
  }
  if (config_.keep_alive_ttl_s)
    pool_->expire_older_than(time, *config_.keep_alive_ttl_s);
  now_ = time;
}

void ClusterEnv::finish_episode() {
  if (episode_finished_) return;
  // Drain outstanding executions so pool peak/eviction stats are complete.
  while (!busy_.empty()) drain_to(busy_.top().time);
  episode_finished_ = true;
}

StepResult ClusterEnv::step(const Action& action) {
  MLCR_CHECK_MSG(!down_, "step() on a crashed node");
  const Invocation inv = current();
  drain_to(inv.arrival_s);
  const FunctionType& fn = functions_.get(inv.function);
  const bool traced = tracer_ != nullptr && tracer_->enabled();

  StepResult result;
  Container container;

  MatchLevel level = MatchLevel::kNoMatch;
  if (action.kind == Action::Kind::kReuse) {
    if (config_.reuse_semantics == ReuseSemantics::kUnion) {
      // Union reuse only needs a matching OS; report the Table-I-style
      // level implied by what is (not) missing.
      const Container* c = pool().find(action.container);
      if (c != nullptr && c->image.level_equals(fn.image,
                                                containers::Level::kOs)) {
        if (!c->image.level_contains(fn.image, containers::Level::kLanguage))
          level = MatchLevel::kL1;
        else if (!c->image.level_contains(fn.image,
                                          containers::Level::kRuntime))
          level = MatchLevel::kL2;
        else
          level = MatchLevel::kL3;
      }
    } else {
      level = match_for(action.container, inv.function);
    }
  }

  // Fault: the volume swap of an L1/L2 repack reuse can fail, destroying
  // the candidate container; the start degrades to cold, still paying the
  // attempted swap's cleaner time (DESIGN.md §9). L3 reuse swaps nothing
  // and union reuse removes nothing, so neither can repack-fail.
  double fault_overhead_s = 0.0;
  if (injector_ != nullptr && containers::reusable(level) &&
      level != MatchLevel::kL3 &&
      config_.reuse_semantics == ReuseSemantics::kRepack &&
      injector_->draw_repack_failure()) {
    auto broken = pool_->take(action.container, now_);
    MLCR_CHECK(broken.has_value());
    fault_overhead_s += cost_model_.warm_start(fn, level).cleaner_s;
    if (traced)
      tracer_->instant(
          obs::Tracer::kSimPid, track_, obs::to_micros(now_), "fault_injected",
          "fault",
          {obs::sarg("kind", "repack_failure"), obs::sarg("function", fn.name),
           obs::narg("container",
                     static_cast<std::int64_t>(action.container))});
    level = MatchLevel::kNoMatch;
  }

  if (containers::reusable(level)) {
    auto taken = pool_->take(action.container, now_);
    MLCR_CHECK(taken.has_value());
    container = std::move(*taken);
    if (config_.reuse_semantics == ReuseSemantics::kUnion) {
      result.breakdown = cost_model_.union_warm_start(fn, container.image);
      const bool grew =
          !container.image.level_contains(fn.image,
                                          containers::Level::kLanguage) ||
          !container.image.level_contains(fn.image,
                                          containers::Level::kRuntime);
      container.image.merge_level(containers::Level::kLanguage, fn.image);
      container.image.merge_level(containers::Level::kRuntime, fn.image);
      container.refresh_memory(catalog_);
      if (grew) ++container.repack_count;
    } else {
      result.breakdown = cost_model_.warm_start(fn, level);
      cost_model_.cleaner().repack(container, fn.image, catalog_, level);
    }
    result.cold = false;
  } else {
    container.id = next_container_id_++;
    container.image = fn.image;
    container.created_at = now_;
    container.refresh_memory(catalog_);
    result.breakdown = cost_model_.cold_start(fn);
    result.cold = true;
    level = MatchLevel::kNoMatch;
  }

  // Fault machinery: startup failures and timeouts, retried under the
  // plan's RetryPolicy. Draw order is fixed (DESIGN.md §9): one Bernoulli
  // per risky (cold or repack) start, the deadline comparison (no draw),
  // then one jitter draw per backoff — so the stream position is a pure
  // function of the episode. Without an injector this block is skipped and
  // the result is bit-identical to the pre-fault simulator.
  bool is_repack_start = !result.cold &&
                         config_.reuse_semantics == ReuseSemantics::kRepack &&
                         level != MatchLevel::kL3;
  bool failed_invocation = false;
  std::size_t attempts = 1;
  if (injector_ != nullptr) {
    const faults::FaultPlan& plan = injector_->plan();
    // SLO-based timeout tuning (DESIGN.md §14): the deadline is the
    // function's own override when present, else the global timeout_s.
    const std::optional<double> deadline_s =
        plan.timeout_for(static_cast<std::size_t>(inv.function));
    for (;;) {
      double attempt_cost_s = -1.0;  // < 0: the attempt succeeds
      const char* kind = nullptr;
      if ((result.cold || is_repack_start) &&
          injector_->draw_startup_failure()) {
        // The failure surfaces at the end of the startup sequence.
        attempt_cost_s = result.breakdown.total();
        kind = "startup_failure";
      } else if (deadline_s.has_value() &&
                 result.breakdown.total() + inv.exec_s > *deadline_s) {
        // Startup plus execution would blow the deadline: the container is
        // killed at the deadline and the attempt costs the full timeout.
        attempt_cost_s = *deadline_s;
        kind = "timeout";
        injector_->count_timeout();
      }
      if (attempt_cost_s < 0.0) break;
      fault_overhead_s += attempt_cost_s;
      if (traced)
        tracer_->instant(
            obs::Tracer::kSimPid, track_,
            obs::to_micros(inv.arrival_s + fault_overhead_s), "fault_injected",
            "fault",
            {obs::sarg("kind", kind), obs::sarg("function", fn.name),
             obs::narg("attempt", static_cast<std::int64_t>(attempts))});
      if (attempts >= plan.retry.max_attempts) {
        failed_invocation = true;
        break;
      }
      const double backoff_s = injector_->draw_backoff(attempts);
      fault_overhead_s += backoff_s;
      ++attempts;
      if (traced)
        tracer_->instant(
            obs::Tracer::kSimPid, track_,
            obs::to_micros(inv.arrival_s + fault_overhead_s), "retry_attempt",
            "fault",
            {obs::narg("attempt", static_cast<std::int64_t>(attempts)),
             obs::narg("backoff_s", backoff_s)});
      // The failed attempt's container is destroyed; any warm candidate was
      // consumed by the first attempt, so every retry is a fresh cold start.
      container = Container{};
      container.id = next_container_id_++;
      container.image = fn.image;
      container.created_at = now_;
      container.refresh_memory(catalog_);
      result.breakdown = cost_model_.cold_start(fn);
      result.cold = true;
      level = MatchLevel::kNoMatch;
      is_repack_start = false;
    }
  }

  result.match = failed_invocation ? MatchLevel::kNoMatch : level;
  result.failed = failed_invocation;
  result.attempts = attempts;
  if (failed_invocation) {
    result.cold = true;
    result.container = containers::kInvalidContainer;
    result.latency_s = fault_overhead_s;
    injector_->count_failed_invocation();
  } else {
    result.latency_s = fault_overhead_s + result.breakdown.total();
    result.container = container.id;

    container.state = ContainerState::kBusy;
    container.last_used_at = now_;
    ++container.use_count;
    container.last_function = inv.function;
    container.last_startup_cost_s = result.latency_s;

    busy_.push(Completion{now_ + result.latency_s + inv.exec_s,
                          std::move(container), inv.seq});
  }

  InvocationRecord rec;
  rec.seq = inv.seq;
  rec.function = inv.function;
  rec.arrival_s = inv.arrival_s;
  rec.container = result.container;
  rec.match = result.match;
  rec.cold = result.cold;
  rec.breakdown = result.breakdown;
  rec.latency_s = result.latency_s;
  rec.failed = result.failed;
  rec.attempts = attempts;
  metrics_.record(std::move(rec));

  if (traced) trace_step(inv, fn, result);

  ++next_index_;
  if (done()) {
    // A streaming episode never knows whether more invocations will arrive;
    // finish_streaming() drains it explicitly.
    if (!streaming_) finish_episode();
  } else {
    drain_to(at(next_index_).arrival_s);
  }

  MLCR_AUDIT_POINT(audit());
  return result;
}

void ClusterEnv::trace_step(const Invocation& inv, const FunctionType& fn,
                            const StepResult& result) const {
  namespace o = mlcr::obs;
  o::Tracer& t = *tracer_;
  const std::uint32_t pid = o::Tracer::kSimPid;
  const o::Micros arrival = o::to_micros(inv.arrival_s);
  const auto cid = static_cast<std::int64_t>(result.container);

  if (result.failed) {
    // No container ran: the fault loop already emitted one fault_injected
    // instant per attempt; close with the failure and the running count.
    t.instant(pid, track_, arrival, "invocation_failed", "fault",
              {o::sarg("function", fn.name),
               o::narg("attempts", static_cast<std::int64_t>(result.attempts)),
               o::narg("spent_s", result.latency_s)});
    t.counter(pid, track_, arrival, "failed_invocations",
              static_cast<double>(metrics_.failed_count()));
    return;
  }

  t.instant(pid, track_, arrival, "match", "sim",
            {o::sarg("function", fn.name),
             o::sarg("level", std::string(containers::to_string(result.match))),
             o::narg("cold", static_cast<std::int64_t>(result.cold ? 1 : 0)),
             o::narg("container", cid)});

  const StartupBreakdown& b = result.breakdown;
  t.span(pid, track_, arrival, o::to_micros(result.latency_s), "startup",
         "sim",
         {o::sarg("function", fn.name),
          o::sarg("level", std::string(containers::to_string(result.match))),
          o::narg("cold", static_cast<std::int64_t>(result.cold ? 1 : 0)),
          o::narg("container", cid)});

  // Child segments, laid out sequentially in the order the platform performs
  // them; zero-cost components are omitted except the repack, which carries
  // the cleaner's volume plan whenever a repack actually happened. When
  // faults added retries, the children describe the final (successful)
  // attempt and are right-aligned inside the startup span.
  double cursor_s =
      inv.arrival_s + (result.latency_s - result.breakdown.total());
  auto child = [&](const char* name, double dur_s,
                   std::vector<o::TraceArg> args = {}) {
    t.span(pid, track_, o::to_micros(cursor_s), o::to_micros(dur_s), name,
           "sim", std::move(args));
    cursor_s += dur_s;
  };
  if (b.sandbox_s > 0.0) child("sandbox", b.sandbox_s);
  if (!result.cold && config_.reuse_semantics == ReuseSemantics::kRepack) {
    const containers::RepackPlan plan =
        cost_model_.cleaner().plan(fn.image, result.match);
    child("repack", b.cleaner_s,
          {o::narg("unmounted_volumes",
                   static_cast<std::int64_t>(plan.unmounted_volumes)),
           o::narg("mounted_volumes",
                   static_cast<std::int64_t>(plan.mounted_volumes)),
           o::narg("volume_ops_s", plan.volume_ops_s)});
  } else if (b.cleaner_s > 0.0) {
    child("repack", b.cleaner_s);
  }
  if (b.pull_s > 0.0) child("pull", b.pull_s);
  if (b.install_s > 0.0) child("install", b.install_s);
  if (b.runtime_init_s > 0.0) child("runtime_init", b.runtime_init_s);
  if (b.function_init_s > 0.0) child("function_init", b.function_init_s);

  t.span(pid, track_, o::to_micros(inv.arrival_s + result.latency_s),
         o::to_micros(inv.exec_s), "exec", "sim",
         {o::sarg("function", fn.name), o::narg("container", cid)});
}

void ClusterEnv::audit() const {
  if (pool_ == nullptr) return;  // before the first reset there is no state
  pool_->audit();

  // Busy containers: unique ids, disjoint from the pool ("no container
  // simultaneously busy and reusable"), kBusy state, completion not in the
  // simulated past, ids actually issued.
  auto heap = busy_;
  std::set<containers::ContainerId> seen;
  while (!heap.empty()) {
    const Completion& c = heap.top();
    MLCR_CHECK_MSG(c.container.state == ContainerState::kBusy,
                   "container " << c.container.id << " idle while executing");
    MLCR_CHECK_MSG(seen.insert(c.container.id).second,
                   "container " << c.container.id << " busy twice");
    MLCR_CHECK_MSG(pool_->find(c.container.id) == nullptr,
                   "container " << c.container.id
                                << " simultaneously busy and pooled");
    MLCR_CHECK_MSG(c.container.id < next_container_id_,
                   "busy container id " << c.container.id << " never issued");
    MLCR_CHECK_MSG(c.time >= now_, "completion scheduled in the past");
    heap.pop();
  }
  for (const containers::Container* c : pool_->idle_containers())
    MLCR_CHECK_MSG(c->id < next_container_id_,
                   "pooled container id " << c->id << " never issued");

  // Mid-flight streaming records arrive in dispatch order, not seq order;
  // finish_streaming() sorts before the final audit re-imposes the strict
  // ordering contract.
  metrics_.audit(/*require_seq_order=*/!streaming_);
  const std::size_t episode_size =
      streaming_ ? stream_.size() : (trace_ != nullptr ? trace_->size() : 0);
  MLCR_CHECK_MSG(next_index_ <= episode_size, "episode index out of range");
  MLCR_CHECK_MSG(metrics_.invocation_count() == next_index_,
                 "metrics record count diverged from scheduled invocations");

  // Fault invariants (DESIGN.md §9, §14): a crashed node holds no busy
  // container; only a *full* crash also empties the warm pool (a partial
  // crash keeps it alive through the window).
  if (down_) {
    MLCR_CHECK_MSG(busy_.empty(), "busy container on a crashed node");
    if (!partial_down_)
      MLCR_CHECK_MSG(pool_->empty(), "warm container on a fully-crashed node");
  }
  if (injector_ != nullptr) {
    const std::size_t max_attempts = injector_->plan().retry.max_attempts;
    for (const InvocationRecord& r : metrics_.records())
      MLCR_CHECK_MSG(r.attempts <= max_attempts,
                     "record seq " << r.seq << " made " << r.attempts
                                   << " attempts, over the retry budget of "
                                   << max_attempts);
  }
}

}  // namespace mlcr::sim
