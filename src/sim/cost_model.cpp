#include "sim/cost_model.hpp"

#include "util/check.hpp"

namespace mlcr::sim {

using containers::Level;
using containers::MatchLevel;

StartupCostModel::StartupCostModel(const containers::PackageCatalog& catalog,
                                   CostModelConfig config)
    : catalog_(catalog), config_(config), cleaner_(config.cleaner) {
  MLCR_CHECK(config_.sandbox_create_s >= 0.0);
  MLCR_CHECK(config_.pull_bandwidth_mb_s > 0.0);
  MLCR_CHECK(config_.pull_rtt_s >= 0.0);
}

double StartupCostModel::pull_time_s(double size_mb,
                                     std::size_t package_count) const noexcept {
  return size_mb / config_.pull_bandwidth_mb_s +
         config_.pull_rtt_s * static_cast<double>(package_count);
}

void StartupCostModel::add_level_provisioning(const FunctionType& fn,
                                              Level level,
                                              StartupBreakdown& b) const {
  const auto& packages = fn.image.level(level);
  b.pull_s += pull_time_s(catalog_.total_size_mb(packages), packages.size());
  b.install_s += catalog_.total_install_s(packages);
}

StartupBreakdown StartupCostModel::cold_start(const FunctionType& fn) const {
  StartupBreakdown b;
  b.sandbox_s = config_.sandbox_create_s;
  for (Level level : containers::kAllLevels)
    add_level_provisioning(fn, level, b);
  b.runtime_init_s = fn.runtime_init_s;
  b.function_init_s = fn.function_init_s;
  return b;
}

StartupBreakdown StartupCostModel::warm_start(const FunctionType& fn,
                                              MatchLevel level) const {
  MLCR_CHECK_MSG(containers::reusable(level),
                 "warm_start requires a reusable match level");
  StartupBreakdown b;
  if (level <= MatchLevel::kL1)
    add_level_provisioning(fn, Level::kLanguage, b);
  if (level <= MatchLevel::kL2) {
    add_level_provisioning(fn, Level::kRuntime, b);
    // Re-provisioned runtime packages force a framework re-initialization.
    b.runtime_init_s = fn.runtime_init_s;
  }
  b.function_init_s = fn.function_init_s;
  b.cleaner_s = cleaner_.plan(fn.image, level).volume_ops_s;
  return b;
}

StartupBreakdown StartupCostModel::start_cost(const FunctionType& fn,
                                              MatchLevel level) const {
  return containers::reusable(level) ? warm_start(fn, level) : cold_start(fn);
}

StartupBreakdown StartupCostModel::union_warm_start(
    const FunctionType& fn, const containers::ImageSpec& container) const {
  MLCR_CHECK_MSG(container.level_equals(fn.image, Level::kOs),
                 "union reuse requires a matching OS level");
  StartupBreakdown b;
  bool runtime_changed = false;
  for (const Level level : {Level::kLanguage, Level::kRuntime}) {
    const auto missing = container.level_missing(fn.image, level);
    if (missing.empty()) continue;
    b.pull_s += pull_time_s(catalog_.total_size_mb(missing), missing.size());
    b.install_s += catalog_.total_install_s(missing);
    runtime_changed = true;
  }
  if (runtime_changed) b.runtime_init_s = fn.runtime_init_s;
  b.function_init_s = fn.function_init_s;
  // The cleaner only mounts the missing volumes plus the user-data swap.
  containers::RepackPlan plan;
  plan.mounted_volumes = runtime_changed ? 1 : 0;
  const auto& cc = cleaner_.config();
  b.cleaner_s = plan.mounted_volumes * cc.mount_s +
                (cc.swap_user_data_volume ? cc.mount_s + cc.unmount_s : 0.0);
  return b;
}

}  // namespace mlcr::sim
