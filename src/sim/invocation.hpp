// Invocations and traces: the workload fed to the simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/function_type.hpp"

namespace mlcr::sim {

/// One function invocation request.
struct Invocation {
  std::uint64_t seq = 0;  ///< position in the trace (assigned by Trace)
  FunctionTypeId function = containers::kInvalidFunctionType;
  double arrival_s = 0.0;  ///< absolute arrival time
  double exec_s = 0.1;     ///< sampled execution duration
};

/// An arrival-ordered sequence of invocations.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Invocation> invocations);

  [[nodiscard]] const std::vector<Invocation>& invocations() const noexcept {
    return invocations_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return invocations_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return invocations_.empty(); }
  [[nodiscard]] const Invocation& at(std::size_t i) const;

  /// Total wall-clock span (last arrival - first arrival); 0 when < 2 entries.
  [[nodiscard]] double span_s() const noexcept;

 private:
  std::vector<Invocation> invocations_;
};

}  // namespace mlcr::sim
