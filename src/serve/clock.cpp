// The single wall-time producer of the serving layer: WallClock wraps
// util::wall_now_us (the src/util allowed zone). Everything else in
// src/serve receives time through the Clock interface — enforced by the
// simlint `serve-clock-injection` rule, whose allow-list names exactly this
// file.
#include "serve/clock.hpp"

#include "util/check.hpp"
#include "util/wall_clock.hpp"

namespace mlcr::serve {

SimClock::SimClock(double start_s) : now_s_(start_s) {
  MLCR_CHECK_MSG(start_s >= 0.0, "SimClock cannot start before the epoch");
}

double SimClock::now_s() const {
  return now_s_.load(std::memory_order_acquire);
}

void SimClock::advance_to(double t) {
  const double now = now_s_.load(std::memory_order_relaxed);
  MLCR_CHECK_MSG(t >= now, "SimClock::advance_to(" << t << ") would move time "
                                                   << "backwards from " << now);
  now_s_.store(t, std::memory_order_release);
}

WallClock::WallClock() : epoch_us_(util::wall_now_us()) {}

double WallClock::now_s() const {
  return static_cast<double>(util::wall_now_us() - epoch_us_) / 1e6;
}

}  // namespace mlcr::serve
