// Routing policies for the concurrent scheduler service. Each is the
// serving-side twin of a fleet::Router, reading the ShardedFleetIndex
// instead of the FleetEnv: route() must be safe to call from many worker
// threads at once (stateful policies guard their own state), and over an
// up-to-date index every policy picks the same node its fleet twin would —
// the bit-identity the deterministic-replay tests pin.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fleet/router.hpp"
#include "serve/sharded_index.hpp"
#include "sim/invocation.hpp"
#include "util/rng.hpp"

namespace mlcr::sim {
class FunctionTable;
}

namespace mlcr::serve {

class RoutePolicy {
 public:
  virtual ~RoutePolicy() = default;

  /// Called once per service episode, before the first route(); resets
  /// per-episode state and lets ring-based policies size themselves.
  virtual void on_episode_start(std::size_t node_count) { (void)node_count; }

  /// Pick the node (in [0, index.node_count())) that serves `inv`. May be
  /// called concurrently from any worker thread.
  [[nodiscard]] virtual std::size_t route(const ShardedFleetIndex& index,
                                          const sim::FunctionTable& functions,
                                          const sim::Invocation& inv) = 0;

  /// True when this policy consults warm-pool state, so the service
  /// maintains the index's warm side (see fleet::Router::needs_warm_index).
  [[nodiscard]] virtual bool needs_warm_index() const { return false; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Seeded uniform-random node choice; draws are serialized on a mutex, so
/// under single-threaded replay the stream matches fleet::RandomRouter.
class RandomPolicy final : public RoutePolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  void on_episode_start(std::size_t node_count) override;
  [[nodiscard]] std::size_t route(const ShardedFleetIndex& index,
                                  const sim::FunctionTable& functions,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  std::uint64_t seed_;
  std::mutex mutex_;
  util::Rng rng_;
};

/// Cycles through nodes in index order (atomic cursor).
class RoundRobinPolicy final : public RoutePolicy {
 public:
  void on_episode_start(std::size_t node_count) override;
  [[nodiscard]] std::size_t route(const ShardedFleetIndex& index,
                                  const sim::FunctionTable& functions,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return "Round-Robin"; }

 private:
  std::atomic<std::size_t> next_{0};
};

/// Node with the fewest in-flight executions (lowest index on ties), merged
/// over the shard minima.
class LeastOutstandingPolicy final : public RoutePolicy {
 public:
  [[nodiscard]] std::size_t route(const ShardedFleetIndex& index,
                                  const sim::FunctionTable& functions,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override {
    return "Least-Outstanding";
  }
};

/// Consistent hashing on the image's OS + language levels — the identical
/// ring and key as fleet::ConsistentHashRouter (shared helpers). Routing is
/// a pure read of the per-episode ring: no locks, no index access — the
/// fastest policy in bench/serve_throughput.
class HashAffinityPolicy final : public RoutePolicy {
 public:
  explicit HashAffinityPolicy(std::size_t virtual_nodes = 64);

  void on_episode_start(std::size_t node_count) override;
  [[nodiscard]] std::size_t route(const ShardedFleetIndex& index,
                                  const sim::FunctionTable& functions,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return "Hash-Affinity"; }

 private:
  std::size_t virtual_nodes_;
  std::vector<fleet::HashRingPoint> ring_;  ///< rebuilt per episode
};

/// Best Table-I match across the fleet via the warm index (L3 down to L1),
/// ties broken by (fewest busy, most free memory, lowest index) from the
/// index's load entries; least-outstanding fallback on a fleet-wide cold
/// start. Matches fleet::WarmAwareRouter's index path decision for decision.
class WarmAwarePolicy final : public RoutePolicy {
 public:
  [[nodiscard]] std::size_t route(const ShardedFleetIndex& index,
                                  const sim::FunctionTable& functions,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] bool needs_warm_index() const override { return true; }
  [[nodiscard]] std::string name() const override { return "Warm-Aware"; }
};

/// A named policy source (fresh instance per episode), mirroring
/// fleet::RouterSpec so benches/tests sweep serving policies the same way.
struct PolicySpec {
  std::string name;
  std::function<std::unique_ptr<RoutePolicy>()> make;
};

/// The five standard policies, named identically to fleet::standard_routers
/// (`seed` feeds the random policy).
[[nodiscard]] std::vector<PolicySpec> standard_policies(std::uint64_t seed = 1);

}  // namespace mlcr::serve
