#include "serve/sharded_index.hpp"

#include <algorithm>
#include <mutex>

#include "util/check.hpp"
#include "util/lock_audit.hpp"

namespace mlcr::serve {

ShardedFleetIndex::ShardedFleetIndex(std::size_t nodes, std::size_t shards,
                                     bool track_warm)
    : nodes_(nodes), track_warm_(track_warm) {
  MLCR_CHECK_MSG(nodes > 0, "an index needs at least one node");
  MLCR_CHECK_MSG(shards > 0, "an index needs at least one shard");
  const std::size_t count = std::min(shards, nodes);
  shards_.reserve(count);
  for (std::size_t s = 0; s < count; ++s)
    shards_.push_back(std::make_unique<Shard>(nodes, track_warm));
}

void ShardedFleetIndex::update(std::size_t node, const sim::ClusterEnv& env) {
  MLCR_CHECK(node < nodes_);
  const std::size_t s = shard_of(node);
  Shard& shard = *shards_[s];
  std::unique_lock lock(shard.mutex);
  const util::LockRankScope lock_rank(util::lock_ranks::index_shard(s),
                                      "index shard lock");
  shard.index.update(node, env);
}

void ShardedFleetIndex::set_routable(std::size_t node, bool routable) {
  MLCR_CHECK(node < nodes_);
  const std::size_t s = shard_of(node);
  Shard& shard = *shards_[s];
  std::unique_lock lock(shard.mutex);
  const util::LockRankScope lock_rank(util::lock_ranks::index_shard(s),
                                      "index shard lock");
  shard.index.set_routable(node, routable);
}

std::size_t ShardedFleetIndex::least_outstanding() const {
  // The global minimum of the (busy, node) order is the minimum over shard
  // minima; comparing the pairs keeps the lowest-index tie-break exact.
  std::optional<std::pair<std::size_t, std::size_t>> best;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::shared_lock lock(shard.mutex);
    const util::LockRankScope lock_rank(util::lock_ranks::index_shard(s),
                                        "index shard lock");
    const auto entry = shard.index.least_outstanding_entry();
    if (entry && (!best || *entry < *best)) best = entry;
  }
  MLCR_CHECK_MSG(best.has_value(), "least_outstanding() before any update()");
  return best->second;
}

std::optional<std::size_t> ShardedFleetIndex::least_outstanding_healthy()
    const {
  std::optional<std::pair<std::size_t, std::size_t>> best;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::shared_lock lock(shard.mutex);
    const util::LockRankScope lock_rank(util::lock_ranks::index_shard(s),
                                        "index shard lock");
    const auto entry = shard.index.least_outstanding_healthy_entry();
    if (entry && (!best || *entry < *best)) best = entry;
  }
  if (!best) return std::nullopt;
  return best->second;
}

fleet::FleetIndex::NodeLoad ShardedFleetIndex::node_load(
    std::size_t node) const {
  MLCR_CHECK(node < nodes_);
  const std::size_t s = shard_of(node);
  const Shard& shard = *shards_[s];
  std::shared_lock lock(shard.mutex);
  const util::LockRankScope lock_rank(util::lock_ranks::index_shard(s),
                                      "index shard lock");
  return shard.index.node_load(node);
}

std::vector<std::size_t> ShardedFleetIndex::nodes_matching(
    const containers::ImageSpec& image, containers::MatchLevel level) const {
  MLCR_CHECK_MSG(track_warm_, "warm lookup on a load-only index");
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::shared_lock lock(shard.mutex);
    const util::LockRankScope lock_rank(util::lock_ranks::index_shard(s),
                                        "index shard lock");
    const auto* matches = shard.index.nodes_matching(image, level);
    if (matches == nullptr) continue;
    for (const auto& [node, count] : *matches) {
      (void)count;
      out.push_back(node);
    }
  }
  // Each shard's answer is already ascending; the merged view must be too
  // (the warm-aware tie-break walks candidates in node order).
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mlcr::serve
