#include "serve/policy.hpp"

#include "sim/invocation.hpp"
#include "util/check.hpp"

namespace mlcr::serve {

void RandomPolicy::on_episode_start(std::size_t node_count) {
  (void)node_count;
  std::lock_guard lock(mutex_);
  rng_ = util::Rng(seed_);
}

std::size_t RandomPolicy::route(const ShardedFleetIndex& index,
                                const sim::FunctionTable& functions,
                                const sim::Invocation& inv) {
  (void)functions;
  (void)inv;
  MLCR_CHECK_MSG(index.node_count() > 0, "route() over an empty fleet");
  std::lock_guard lock(mutex_);
  return rng_.uniform_index(index.node_count());
}

void RoundRobinPolicy::on_episode_start(std::size_t node_count) {
  (void)node_count;
  next_.store(0, std::memory_order_relaxed);
}

std::size_t RoundRobinPolicy::route(const ShardedFleetIndex& index,
                                    const sim::FunctionTable& functions,
                                    const sim::Invocation& inv) {
  (void)functions;
  (void)inv;
  const std::size_t n = index.node_count();
  MLCR_CHECK_MSG(n > 0, "route() over an empty fleet");
  return next_.fetch_add(1, std::memory_order_relaxed) % n;
}

std::size_t LeastOutstandingPolicy::route(const ShardedFleetIndex& index,
                                          const sim::FunctionTable& functions,
                                          const sim::Invocation& inv) {
  (void)functions;
  (void)inv;
  MLCR_CHECK_MSG(index.node_count() > 0, "route() over an empty fleet");
  return index.least_outstanding();
}

HashAffinityPolicy::HashAffinityPolicy(std::size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes) {
  MLCR_CHECK(virtual_nodes_ > 0);
}

void HashAffinityPolicy::on_episode_start(std::size_t node_count) {
  ring_ = fleet::build_hash_ring(node_count, virtual_nodes_);
}

std::size_t HashAffinityPolicy::route(const ShardedFleetIndex& index,
                                      const sim::FunctionTable& functions,
                                      const sim::Invocation& inv) {
  (void)index;
  MLCR_CHECK_MSG(!ring_.empty(), "route() before on_episode_start()");
  return fleet::hash_ring_pick(
      ring_, fleet::affinity_key(functions.get(inv.function).image));
}

std::size_t WarmAwarePolicy::route(const ShardedFleetIndex& index,
                                   const sim::FunctionTable& functions,
                                   const sim::Invocation& inv) {
  MLCR_CHECK_MSG(index.node_count() > 0, "route() over an empty fleet");
  const auto& fn_image = functions.get(inv.function).image;
  // Best level first: at the first non-empty lookup every candidate's best
  // match is exactly that level (a better one would have answered the
  // higher lookup), so the (busy, free memory, index) tie-break reproduces
  // fleet::WarmAwareRouter's index-path choice bit for bit.
  for (const containers::MatchLevel level :
       {containers::MatchLevel::kL3, containers::MatchLevel::kL2,
        containers::MatchLevel::kL1}) {
    const std::vector<std::size_t> candidates =
        index.nodes_matching(fn_image, level);
    if (candidates.empty()) continue;
    std::size_t best = candidates.front();
    fleet::FleetIndex::NodeLoad best_load = index.node_load(best);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      const std::size_t node = candidates[i];
      const fleet::FleetIndex::NodeLoad load = index.node_load(node);
      if (load.busy < best_load.busy ||
          (load.busy == best_load.busy && load.free_mb > best_load.free_mb)) {
        best = node;
        best_load = load;
      }
    }
    return best;
  }
  // Fleet-wide cold start: place it where the least work is outstanding.
  return index.least_outstanding();
}

std::vector<PolicySpec> standard_policies(std::uint64_t seed) {
  std::vector<PolicySpec> policies;
  policies.push_back(
      {"Random", [seed] { return std::make_unique<RandomPolicy>(seed); }});
  policies.push_back(
      {"Round-Robin", [] { return std::make_unique<RoundRobinPolicy>(); }});
  policies.push_back(
      {"Least-Outstanding",
       [] { return std::make_unique<LeastOutstandingPolicy>(); }});
  policies.push_back(
      {"Hash-Affinity", [] { return std::make_unique<HashAffinityPolicy>(); }});
  policies.push_back(
      {"Warm-Aware", [] { return std::make_unique<WarmAwarePolicy>(); }});
  return policies;
}

}  // namespace mlcr::serve
