// Sharded fleet/warm-pool index for the concurrent scheduler service
// (DESIGN.md §11). The single-threaded FleetIndex is exact but global; the
// service shards it so concurrent routing reads and per-node dispatch writes
// do not serialize on one lock:
//
//   - node n belongs to shard n % shards;
//   - every shard holds its own FleetIndex (over the full node-id space, but
//     only its own nodes are ever updated) behind a std::shared_mutex;
//   - readers (routing) take shared locks, across as many shards as the
//     query needs; writers (dispatch, janitor) take the unique lock of the
//     single shard owning the touched node.
//
// All queries are exact merges of per-shard answers, so routing over the
// sharded index is bit-identical to routing over one FleetIndex — the
// property the deterministic-replay tests pin.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "containers/matching.hpp"
#include "fleet/fleet_index.hpp"

namespace mlcr::sim {
class ClusterEnv;
}

namespace mlcr::serve {

class ShardedFleetIndex {
 public:
  /// `shards` is clamped to `nodes` (more shards than nodes adds pure
  /// overhead); `track_warm` as in FleetIndex.
  ShardedFleetIndex(std::size_t nodes, std::size_t shards, bool track_warm);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] bool tracks_warm() const noexcept { return track_warm_; }
  [[nodiscard]] std::size_t shard_of(std::size_t node) const noexcept {
    return node % shards_.size();
  }

  /// Writer: re-derive `node`'s contribution from its environment, under the
  /// owning shard's unique lock. The caller must hold whatever lock guards
  /// the env itself (the service's dispatch shard mutex) while this reads it.
  void update(std::size_t node, const sim::ClusterEnv& env);

  /// Writer: mark `node` routable or not (unique lock on its shard). A
  /// non-routable node — a cold spare not yet admitted — is invisible to
  /// every load/warm query until flipped back (DESIGN.md §14).
  void set_routable(std::size_t node, bool routable);

  /// Node with the fewest in-flight executions (lowest index on ties) —
  /// merged over shard minima; bit-identical to FleetIndex. Requires at
  /// least one update().
  [[nodiscard]] std::size_t least_outstanding() const;
  /// Same over healthy nodes only; nullopt when the whole fleet is down.
  [[nodiscard]] std::optional<std::size_t> least_outstanding_healthy() const;

  /// Snapshot of one node's load entry (shared lock on its shard).
  [[nodiscard]] fleet::FleetIndex::NodeLoad node_load(std::size_t node) const;

  /// Nodes holding at least one idle container matching `image` at level
  /// >= `level`, ascending node order, merged across shards. Empty when no
  /// node matches. Requires tracks_warm().
  [[nodiscard]] std::vector<std::size_t> nodes_matching(
      const containers::ImageSpec& image, containers::MatchLevel level) const;

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    fleet::FleetIndex index;

    Shard(std::size_t nodes, bool track_warm) : index(nodes, track_warm) {}
  };

  std::size_t nodes_;
  bool track_warm_;
  /// unique_ptr because std::shared_mutex is neither movable nor copyable.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mlcr::serve
