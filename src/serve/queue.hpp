// Bounded MPMC ingestion queue for the scheduler service. Producers
// try_push and are told immediately when the queue is full (the service
// layers its reject/degrade backpressure on top); consumers drain in batches
// so one wake-up amortizes over up to B requests — the shape the per-worker
// QNetwork::forward_batch path needs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace mlcr::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    MLCR_CHECK_MSG(capacity_ > 0, "a queue needs room for at least one item");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueue `value`; false when the queue is full or closed (the value is
  /// dropped — callers count the rejection).
  [[nodiscard]] bool try_push(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until at least one item is available (or the queue is closed),
  /// then move up to `max_items` into `out` (appended). Returns the number
  /// moved; 0 means closed-and-empty — the consumer's shutdown signal.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return drain_locked(out, max_items);
  }

  /// Non-blocking drain for single-threaded pumping (tests, replay).
  std::size_t drain_nowait(std::vector<T>& out, std::size_t max_items) {
    std::lock_guard lock(mutex_);
    return drain_locked(out, max_items);
  }

  /// Close the queue: further try_push fails, consumers drain what remains
  /// and then see pop_batch return 0.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  std::size_t drain_locked(std::vector<T>& out, std::size_t max_items) {
    std::size_t moved = 0;
    while (moved < max_items && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++moved;
    }
    return moved;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace mlcr::serve
