// serve::Telemetry — the concurrent telemetry facade of the serving plane
// (DESIGN.md §13). SchedulerService (and only it — simlint's
// obs-concurrent-registry rule bans the single-threaded obs front-ends from
// src/serve) reports every request's lifecycle here:
//
//   submit  -> flow-start "request" (id = invocation seq) on the ingest
//              track, counters, queue-depth watermark sample
//   route   -> flow-step on the target node's track
//   dispatch-> dispatch span + flow-end on the node track, routing/e2e
//              latency samples
//   lost    -> flow-end on the lost track (so every flow pairs)
//   janitor -> advance() the sliding SLO windows off the injected
//              serve::Clock and emit a flight-recorder snapshot every
//              snapshot_period_s
//
// Metrics go to an obs::ConcurrentMetricsRegistry (per-slot locks — the
// hot path never takes a global lock for a counter). The borrowed
// obs::Tracer is single-threaded, so trace emission and the SLO windows
// share one telemetry mutex (rank util::lock_ranks::kTelemetry; the
// registry's slot locks rank above it so snapshots can merge while holding
// it). A null/disabled tracer skips that mutex entirely on the trace paths.
//
// Determinism: every timestamp is caller-supplied from the service clock.
// Under SimClock with single-threaded run_replay, traces and snapshot JSONL
// are byte-identical across runs (pinned in tests/serve/test_telemetry.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/concurrent.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "obs/tracer.hpp"
#include "sim/env.hpp"
#include "sim/invocation.hpp"

namespace mlcr::serve {

struct TelemetryConfig {
  /// SLO thresholds + window length (defaults: observe only, no breaches).
  obs::SloConfig slo;
  /// Flight-recorder cadence in clock seconds.
  double snapshot_period_s = 1.0;
  /// JSONL snapshot path; empty disables the flight recorder.
  std::string snapshot_path;
  /// Writer slots in the concurrent registry (~ worker threads).
  std::size_t registry_slots = 8;
};

class Telemetry {
 public:
  /// `tracer` is borrowed (may be null: metrics/SLO only). Null or sink-less
  /// tracers cost one predicted branch per hook.
  explicit Telemetry(TelemetryConfig config = {},
                     obs::Tracer* tracer = nullptr);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Reset counters and windows, emit the serve-track naming metadata.
  /// Track layout: tid [0, workers) ingest slots, [workers, workers+nodes)
  /// node tracks, workers+nodes the lost track.
  void begin_episode(std::size_t nodes, std::size_t workers, double now_s);

  /// Final window advance + one last snapshot, then close the recorder.
  void end_episode(double now_s);

  /// One submit() call. `accepted` false means backpressure-rejected (no
  /// flow is started); `queue_depth` is the depth seen at ingestion.
  void on_submit(const sim::Invocation& inv, std::size_t queue_slot,
                 std::size_t queue_depth, bool degraded, bool accepted,
                 double now_s);

  /// Routing decision for an accepted request (before dispatch).
  void on_route(const sim::Invocation& inv, std::size_t node, bool rerouted,
                double now_s);

  /// Request executed on `node`. Records routing + end-to-end latency and
  /// ends the request's flow.
  void on_dispatch(const sim::Invocation& inv, std::size_t node,
                   bool degraded, bool rerouted, const sim::StepResult& result,
                   double now_s);

  /// Accepted request dropped: no healthy node. Ends the flow on the lost
  /// track.
  void on_lost(const sim::Invocation& inv, double now_s);

  // Fault-plane hooks (DESIGN.md §14): the service reports crash/recover/
  // domain events here so chaos runs are gateable offline (tracecheck on the
  // instants, obsreport on the loss-rate / retry-pressure SLOs).

  /// `node` crashed (partial: compute lost, warm pool survives).
  void on_node_crash(std::size_t node, bool partial, double now_s);

  /// `node` rejoined the routable fleet.
  void on_node_recover(std::size_t node, double now_s);

  /// First member crash of a correlated (domain, down_at) group.
  void on_domain_crash(std::size_t domain, bool partial, double now_s);

  /// A crash event admitted cold spare `node` into the routable set.
  void on_spare_activated(std::size_t node, double now_s);

  /// Janitor tick: evict expired window samples and, when
  /// snapshot_period_s has elapsed, write a flight-recorder snapshot
  /// (metrics + SLO report + breach evaluation).
  void advance(double now_s);

  /// Merged view of the concurrent registry.
  [[nodiscard]] obs::MetricsRegistry metrics() const;

  /// Windowed SLO evaluation as of the last advance()/hook.
  [[nodiscard]] obs::SloReport slo_report() const;

  /// Total SLO breaches recorded at snapshots so far.
  [[nodiscard]] std::uint64_t breach_count() const;

  /// Snapshots written so far (0 without a snapshot_path).
  [[nodiscard]] std::uint64_t snapshot_count() const;

  [[nodiscard]] const TelemetryConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Build the SLO report from the windows; caller holds telemetry_mutex_.
  [[nodiscard]] obs::SloReport windowed_slo_locked() const;

  /// Write one snapshot line; caller holds telemetry_mutex_.
  void snapshot_locked(double now_s);

  [[nodiscard]] bool tracing() const noexcept {
    return tracer_ != nullptr && tracer_->enabled();
  }

  TelemetryConfig config_;
  obs::Tracer* tracer_ = nullptr;
  obs::ConcurrentMetricsRegistry registry_;

  /// Guards the windows, the tracer, and the recorder (single-threaded
  /// pieces behind the concurrent facade).
  mutable std::mutex telemetry_mutex_;
  std::size_t nodes_ = 0;
  std::size_t workers_ = 0;
  obs::SlidingWindow route_latency_;
  obs::SlidingWindow e2e_latency_;
  obs::SlidingWindow queue_depth_;
  obs::SlidingWindow submits_;
  obs::SlidingWindow routes_;
  obs::SlidingWindow rejects_;
  obs::SlidingWindow losses_;
  /// Extra start attempts per dispatched request (retry pressure, §14).
  obs::SlidingWindow retries_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  double last_snapshot_s_ = 0.0;
  std::uint64_t breaches_total_ = 0;
};

}  // namespace mlcr::serve
