// SchedulerService: the online serving front-end over an MLCR fleet
// (DESIGN.md §11). Producers submit() invocations into bounded per-worker
// queues; worker threads drain them in batches and dispatch each request to
// a node picked by a RoutePolicy over the ShardedFleetIndex. The node's own
// scheduler (any SystemSpec, including MLCR) then makes the container-reuse
// decision, exactly as in FleetEnv::run.
//
// Concurrency model (two-level locking):
//   - routing reads only the sharded index (shared locks inside it) — never
//     a node environment;
//   - dispatch mutates node state under the service's per-shard std::mutex
//     (node n -> shard n % shards), and refreshes the index entry before
//     releasing it, so readers never observe a node mid-step;
//   - lock order is service shard mutex -> index shard lock (inside
//     update()) -> inference mutex, never reversed; multi-shard waves
//     acquire shard mutexes in ascending shard order.
//
// Backpressure: a submit() that finds its queue at/above `degrade_depth` is
// accepted *degraded* — it will be served with a forced cold start, skipping
// the scheduler (the serving twin of the faults layer's
// degrade-rather-than-fail semantics); a submit() that finds the queue full
// is rejected outright. Always: submitted == routed + rejected + lost.
//
// Time never comes from the OS directly — an injected serve::Clock drives
// the janitor (and live arrival stamps), so the same service runs live
// (WallClock) or bit-reproducibly under run_replay() (SimClock).
//
// Faults (DESIGN.md §14): on a faulted fleet the service attaches per-node
// injectors at begin_episode() and fires the plan two ways — run_replay()
// merges the fleet's pre-sorted fault-event list into its episode loop
// (faults before node advances at equal times, exactly as FleetEnv::run),
// while live chaos drives apply_crash()/apply_recover()/apply_domain_crash()
// from ONE admin thread (the spare-admission and fleet routable-set state is
// not atomic; a single chaos driver concurrent with the workers is the
// supported model, and what the TSan tests pin). Crash events admit cold
// spares into the routable set via the sharded index, so recovery capacity
// appears on the failover path without restarting the episode.
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "faults/injector.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/metrics.hpp"
#include "serve/clock.hpp"
#include "serve/policy.hpp"
#include "serve/queue.hpp"
#include "serve/sharded_index.hpp"
#include "util/thread_pool.hpp"

namespace mlcr::core {
class MlcrScheduler;
}

namespace mlcr::serve {

class Telemetry;

struct ServeConfig {
  /// Worker threads; each owns one ingestion queue (submit round-robins).
  std::size_t workers = 1;
  /// Index/dispatch shards (clamped to the node count).
  std::size_t shards = 1;
  /// Per-worker queue bound; a push into a full queue is rejected.
  std::size_t queue_capacity = 1024;
  /// Queue depth at/above which an accepted request is served degraded
  /// (forced cold start, scheduler bypassed). 0 disables degradation.
  std::size_t degrade_depth = 0;
  /// Max requests drained per worker wake-up — and, on an MLCR fleet, the
  /// max wave width batched through one QNetwork::forward_batch call.
  std::size_t batch = 8;
};

/// Service-level accounting for one episode (all counters monotone).
struct ServeStats {
  std::size_t submitted = 0;  ///< every submit() call
  std::size_t routed = 0;     ///< dispatched to (and executed on) a node
  std::size_t rejected = 0;   ///< dropped at ingestion: queue full
  std::size_t degraded = 0;   ///< of routed: served with a forced cold start
  std::size_t lost = 0;       ///< accepted but no healthy node remained
  std::size_t rerouted = 0;   ///< target node down -> deterministic failover
  std::size_t batches = 0;    ///< consumer drains that served >= 1 request
  std::size_t inference_calls = 0;  ///< MLCR decide_batch invocations
  std::size_t max_wave = 0;         ///< widest single decide_batch

  // Fault-plane accounting (DESIGN.md §14); all 0 on a faultless episode.
  std::size_t node_crashes = 0;     ///< crash events fired (partial included)
  std::size_t node_recoveries = 0;  ///< recovery events fired
  std::size_t domain_crashes = 0;   ///< domain-level crash events (lead only)
  std::size_t partial_crashes = 0;  ///< of node_crashes: warm pool survived
  std::size_t spares_activated = 0;  ///< cold spares admitted by crashes
};

/// Episode result: the fleet-level summary (same accounting as
/// FleetEnv::run — summarize_env + aggregate_fleet per node) plus the
/// service-level counters.
struct ServeSummary {
  fleet::FleetSummary fleet;
  ServeStats stats;
};

class SchedulerService {
 public:
  /// The fleet must outlive the service. A faulted fleet is served too: the
  /// service attaches the fleet's injectors per episode and fires the crash
  /// schedule itself (run_replay's event merge, or the apply_* admin APIs
  /// live). `clock` is borrowed; `policy` is owned.
  SchedulerService(fleet::FleetEnv& fleet, Clock& clock,
                   std::unique_ptr<RoutePolicy> policy, ServeConfig config);
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Attach the telemetry plane (borrowed, may be null to detach; must
  /// outlive the service's episodes). Set it before begin_episode() so the
  /// episode reset and track metadata are recorded. Every request lifecycle
  /// event, the janitor's window advance, and the episode boundaries are
  /// reported; a null telemetry pointer costs one predicted branch per site.
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Reset every node's streaming episode and scheduler, rebuild the sharded
  /// index, create fresh queues, and zero the counters. Detects an MLCR
  /// fleet (all node schedulers are MlcrScheduler — mixed fleets are
  /// rejected) and switches dispatch to batched wave inference.
  void begin_episode();

  /// Spawn the worker threads (requires begin_episode()).
  void start();

  /// Enqueue one invocation; false when its queue was full (rejected).
  /// Thread-safe. Arrival stamps should come from the service clock (live)
  /// or the trace (replay); dispatch clamps them to the target node's clock.
  [[nodiscard]] bool submit(const sim::Invocation& inv);

  /// Single-threaded drive path for deterministic tests: drain and serve
  /// everything currently queued on the caller's thread (no workers may be
  /// running). Returns the number of requests served or dropped.
  std::size_t pump_once();

  /// Close the queues, drain what remains (joining the workers when
  /// start()ed), finish every node's streaming episode and aggregate the
  /// fleet summary. Ends the episode.
  [[nodiscard]] ServeSummary finish_episode();

  /// Deterministic replay: run `trace` through the full service path —
  /// sharded index, routing policy, per-node schedulers — single-threadedly
  /// in arrival order, advancing the SimClock and the nodes' event cores
  /// exactly as FleetEnv::run does. With an up-to-date index every policy
  /// matches its fleet-router twin decision for decision, so the returned
  /// fleet summary equals FleetEnv::run's on a faultless plan (asserted in
  /// tests/serve). On a faulted plan the fleet's fault-event list is merged
  /// into the loop, firing before node advances at equal times. Requires a
  /// SimClock. Runs its own episode.
  [[nodiscard]] ServeSummary run_replay(const sim::Trace& trace);

  // Live chaos admin APIs (DESIGN.md §14). Thread-safe against the workers,
  // but at most ONE admin thread may drive them at a time (spare admission
  // mutates non-atomic fleet state).

  /// Crash `node` now (clamped to its clock). False when it was already
  /// down. A partial crash kills only in-flight work; the warm pool
  /// survives. Every successful crash admits one cold spare while any
  /// remain.
  bool apply_crash(std::size_t node, bool partial = false);

  /// Recover `node` now. False when it was already up.
  bool apply_recover(std::size_t node);

  /// Crash every member of the configured failure domain `domain_id` (in
  /// ascending node order), counting/tracing the domain-level event once.
  /// Returns how many members actually went down.
  std::size_t apply_domain_crash(std::size_t domain_id, bool partial = false);

  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }
  [[nodiscard]] const RoutePolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] bool mlcr_mode() const noexcept { return mlcr_mode_; }
  /// Live counters (racy-but-monotone snapshot while workers run).
  [[nodiscard]] ServeStats stats() const;
  /// The episode's index (requires an episode in progress).
  [[nodiscard]] const ShardedFleetIndex& index() const;

 private:
  struct Request {
    sim::Invocation inv;
    bool degraded = false;
  };

  /// Routing decision for one request; `lost` when no healthy node exists.
  struct RouteOutcome {
    bool lost = false;
    std::size_t node = 0;
    bool rerouted = false;
  };

  [[nodiscard]] RouteOutcome pick_target(const sim::Invocation& inv) const;

  /// Route + dispatch one request (used by the non-MLCR path and replay).
  /// Returns the node served, or nullopt when the request was lost.
  std::optional<std::size_t> serve_one(const Request& req);

  /// Offer/decide/step/observe on `target` under its shard mutex, then
  /// refresh the index entry. Mirrors FleetEnv::dispatch. `rerouted` is
  /// routing context forwarded to telemetry.
  void dispatch_one(const Request& req, std::size_t target, bool rerouted);

  /// Serve `batch[begin..]` up to one MLCR wave: route requests until a
  /// target node repeats or the wave reaches config_.batch, then offer all,
  /// decide the whole wave in one forward_batch, and step each. Returns the
  /// index of the first unserved request.
  std::size_t dispatch_wave(const std::vector<Request>& batch,
                            std::size_t begin);

  void process_batch(const std::vector<Request>& batch);

  /// Advance one node (round-robin) to the service clock so idle nodes
  /// still see completions and TTL expiry; called after every batch.
  void janitor_step();

  void worker_loop(std::size_t worker);
  void drain_queues_on_caller();
  void note_wave(std::size_t width);

  /// Admit `spare` into the routable set: flip its index entry routable and
  /// refresh it under the spare's shard mutex. Called after the crashed
  /// node's shard lock is released (ascending-order discipline: the spare's
  /// shard may rank below the crashed node's).
  void admit_spare(std::size_t spare);

  /// Replay-path twin of FleetEnv::fire_fault_event: fire one pre-planned
  /// transition (single-threaded; no shard mutexes). `clamp` is the
  /// episode-tail mode — times clamp to the node clock and stale recoveries
  /// are skipped. Returns the spare admitted by a crash, if any.
  std::optional<std::size_t> apply_fault_event(
      const fleet::FleetEnv::FaultEvent& ev, bool clamp);

  fleet::FleetEnv& fleet_;
  Clock& clock_;
  std::unique_ptr<RoutePolicy> policy_;
  ServeConfig config_;
  Telemetry* telemetry_ = nullptr;

  bool in_episode_ = false;
  bool mlcr_mode_ = false;
  std::unique_ptr<ShardedFleetIndex> index_;
  /// Per-node fault injectors on a faulted plan (empty otherwise); owned
  /// here because the service, not FleetEnv::run, drives the episode. The
  /// envs borrow them, so they detach at finish_episode().
  std::vector<std::unique_ptr<faults::FaultInjector>> injectors_;
  /// Per node: its scheduler as MlcrScheduler, set only in MLCR mode.
  std::vector<core::MlcrScheduler*> mlcr_;
  /// unique_ptr: queues/mutexes are neither movable nor copyable.
  std::vector<std::unique_ptr<BoundedQueue<Request>>> queues_;
  std::vector<std::unique_ptr<std::mutex>> shard_mutexes_;
  /// Serializes forward_batch on the shared agent across workers.
  std::mutex inference_mutex_;

  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::future<void>> workers_;

  std::atomic<std::size_t> submit_cursor_{0};
  std::atomic<std::size_t> janitor_cursor_{0};
  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> routed_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> degraded_{0};
  std::atomic<std::size_t> lost_{0};
  std::atomic<std::size_t> rerouted_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> inference_calls_{0};
  std::atomic<std::size_t> max_wave_{0};
  std::atomic<std::size_t> node_crashes_{0};
  std::atomic<std::size_t> node_recoveries_{0};
  std::atomic<std::size_t> domain_crashes_{0};
  std::atomic<std::size_t> partial_crashes_{0};
  std::atomic<std::size_t> spares_activated_{0};
};

}  // namespace mlcr::serve
