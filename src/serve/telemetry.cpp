#include "serve/telemetry.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/lock_audit.hpp"

namespace mlcr::serve {

namespace {

constexpr std::uint32_t kPid = obs::Tracer::kServePid;

[[nodiscard]] std::uint32_t track(std::size_t tid) {
  return static_cast<std::uint32_t>(tid);
}

}  // namespace

Telemetry::Telemetry(TelemetryConfig config, obs::Tracer* tracer)
    : config_(std::move(config)),
      tracer_(tracer),
      registry_(config_.registry_slots),
      route_latency_(config_.slo.window_s),
      e2e_latency_(config_.slo.window_s),
      queue_depth_(config_.slo.window_s),
      submits_(config_.slo.window_s),
      routes_(config_.slo.window_s),
      rejects_(config_.slo.window_s),
      losses_(config_.slo.window_s),
      retries_(config_.slo.window_s) {
  MLCR_CHECK_MSG(config_.snapshot_period_s > 0.0,
                 "snapshot period must be positive");
  if (!config_.snapshot_path.empty())
    recorder_ = std::make_unique<obs::FlightRecorder>(config_.snapshot_path);
}

void Telemetry::begin_episode(std::size_t nodes, std::size_t workers,
                              double now_s) {
  registry_.clear();
  registry_.set_gauge("serve.nodes", static_cast<double>(nodes));
  registry_.set_gauge("serve.workers", static_cast<double>(workers));

  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  nodes_ = nodes;
  workers_ = workers;
  for (obs::SlidingWindow* window :
       {&route_latency_, &e2e_latency_, &queue_depth_, &submits_, &routes_,
        &rejects_, &losses_, &retries_})
    window->clear();
  last_snapshot_s_ = now_s;
  breaches_total_ = 0;
  if (tracing()) {
    tracer_->process_name(kPid, "serving");
    for (std::size_t w = 0; w < workers_; ++w)
      tracer_->thread_name(kPid, track(w), "ingest-" + std::to_string(w));
    for (std::size_t n = 0; n < nodes_; ++n)
      tracer_->thread_name(kPid, track(workers_ + n),
                           "node-" + std::to_string(n));
    tracer_->thread_name(kPid, track(workers_ + nodes_), "lost");
  }
}

void Telemetry::end_episode(double now_s) {
  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  for (obs::SlidingWindow* window :
       {&route_latency_, &e2e_latency_, &queue_depth_, &submits_, &routes_,
        &rejects_, &losses_, &retries_})
    window->advance(now_s);
  snapshot_locked(now_s);
  last_snapshot_s_ = now_s;
  if (recorder_) recorder_->close();
}

void Telemetry::on_submit(const sim::Invocation& inv, std::size_t queue_slot,
                          std::size_t queue_depth, bool degraded,
                          bool accepted, double now_s) {
  registry_.add("serve.submitted");
  if (!accepted) registry_.add("serve.rejected");
  if (degraded) registry_.add("serve.degrade_marked");
  registry_.record("serve.queue_depth", static_cast<double>(queue_depth));

  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  submits_.record(now_s, 1.0);
  if (!accepted) rejects_.record(now_s, 1.0);
  queue_depth_.record(now_s, static_cast<double>(queue_depth));
  if (!tracing()) return;
  const obs::Micros ts = obs::to_micros(now_s);
  if (accepted) {
    tracer_->flow_start(
        kPid, track(queue_slot), ts, inv.seq, "request", "serve",
        {obs::narg("function", static_cast<std::uint64_t>(inv.function)),
         obs::narg("queue_depth", static_cast<std::uint64_t>(queue_depth))});
  } else {
    tracer_->instant(
        kPid, track(queue_slot), ts, "request_rejected", "serve",
        {obs::narg("seq", inv.seq),
         obs::narg("queue_depth", static_cast<std::uint64_t>(queue_depth))});
  }
}

void Telemetry::on_route(const sim::Invocation& inv, std::size_t node,
                         bool rerouted, double now_s) {
  const double wait = std::max(0.0, now_s - inv.arrival_s);
  registry_.record("serve.route_latency_s", wait);

  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  route_latency_.record(now_s, wait);
  if (!tracing()) return;
  tracer_->flow_step(kPid, track(workers_ + node), obs::to_micros(now_s),
                     inv.seq, "request", "serve",
                     {obs::narg("node", static_cast<std::uint64_t>(node)),
                      obs::narg("rerouted",
                                static_cast<std::int64_t>(rerouted ? 1 : 0))});
}

void Telemetry::on_dispatch(const sim::Invocation& inv, std::size_t node,
                            bool degraded, bool rerouted,
                            const sim::StepResult& result, double now_s) {
  registry_.add("serve.routed");
  if (degraded) registry_.add("serve.degraded");
  if (rerouted) registry_.add("serve.rerouted");
  if (result.cold) registry_.add("serve.cold_starts");
  registry_.record("serve.startup_latency_s", result.latency_s);
  const double wait = std::max(0.0, now_s - inv.arrival_s);
  const double e2e = wait + result.latency_s;
  registry_.record("serve.e2e_latency_s", e2e);
  const double retries = static_cast<double>(result.attempts - 1);
  if (retries > 0.0) registry_.add("serve.start_retries",
                                   static_cast<std::uint64_t>(retries));

  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  e2e_latency_.record(now_s, e2e);
  routes_.record(now_s, 1.0);
  retries_.record(now_s, retries);
  if (!tracing()) return;
  const obs::Micros ts = obs::to_micros(now_s);
  tracer_->span(
      kPid, track(workers_ + node), ts, obs::to_micros(result.latency_s),
      "serve.dispatch", "serve",
      {obs::narg("seq", inv.seq),
       obs::narg("cold", static_cast<std::int64_t>(result.cold ? 1 : 0)),
       obs::narg("degraded", static_cast<std::int64_t>(degraded ? 1 : 0)),
       obs::narg("latency_s", result.latency_s)});
  tracer_->flow_end(kPid, track(workers_ + node), ts, inv.seq, "request",
                    "serve",
                    {obs::narg("node", static_cast<std::uint64_t>(node))});
}

void Telemetry::on_lost(const sim::Invocation& inv, double now_s) {
  registry_.add("serve.lost");

  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  losses_.record(now_s, 1.0);
  if (!tracing()) return;
  const obs::Micros ts = obs::to_micros(now_s);
  tracer_->instant(kPid, track(workers_ + nodes_), ts, "request_lost",
                   "serve", {obs::narg("seq", inv.seq)});
  tracer_->flow_end(kPid, track(workers_ + nodes_), ts, inv.seq, "request",
                    "serve");
}

void Telemetry::on_node_crash(std::size_t node, bool partial, double now_s) {
  registry_.add("serve.node_crashes");
  if (partial) registry_.add("serve.partial_crashes");
  if (!tracing()) return;
  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  tracer_->instant(
      kPid, track(workers_ + node), obs::to_micros(now_s), "node_crash",
      "fault",
      {obs::narg("node", static_cast<std::uint64_t>(node)),
       obs::narg("partial", static_cast<std::int64_t>(partial ? 1 : 0))});
}

void Telemetry::on_node_recover(std::size_t node, double now_s) {
  registry_.add("serve.node_recoveries");
  if (!tracing()) return;
  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  tracer_->instant(kPid, track(workers_ + node), obs::to_micros(now_s),
                   "node_recover", "fault",
                   {obs::narg("node", static_cast<std::uint64_t>(node))});
}

void Telemetry::on_domain_crash(std::size_t domain, bool partial,
                                double now_s) {
  registry_.add("serve.domain_crashes");
  if (!tracing()) return;
  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  // Domain events are fleet-wide, so they land on the shared lost track
  // rather than any single node's.
  tracer_->instant(
      kPid, track(workers_ + nodes_), obs::to_micros(now_s), "domain_crash",
      "fault",
      {obs::narg("domain", static_cast<std::uint64_t>(domain)),
       obs::narg("partial", static_cast<std::int64_t>(partial ? 1 : 0))});
}

void Telemetry::on_spare_activated(std::size_t node, double now_s) {
  registry_.add("serve.spares_activated");
  if (!tracing()) return;
  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  tracer_->instant(kPid, track(workers_ + node), obs::to_micros(now_s),
                   "spare_activated", "fault",
                   {obs::narg("node", static_cast<std::uint64_t>(node))});
}

void Telemetry::advance(double now_s) {
  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  for (obs::SlidingWindow* window :
       {&route_latency_, &e2e_latency_, &queue_depth_, &submits_, &routes_,
        &rejects_, &losses_, &retries_})
    window->advance(now_s);
  if (now_s - last_snapshot_s_ >= config_.snapshot_period_s) {
    snapshot_locked(now_s);
    last_snapshot_s_ = now_s;
  }
}

obs::SloReport Telemetry::windowed_slo_locked() const {
  obs::SloReport report;
  report.window_s = config_.slo.window_s;
  report.submitted = submits_.count();
  report.routed = routes_.count();
  report.rejected = rejects_.count();
  report.lost = losses_.count();
  const std::vector<double> ps = {50.0, 95.0, 99.0};
  const std::vector<double> route = route_latency_.percentiles(ps);
  report.route_p50_s = route[0];
  report.route_p95_s = route[1];
  report.route_p99_s = route[2];
  const std::vector<double> e2e = e2e_latency_.percentiles(ps);
  report.e2e_p50_s = e2e[0];
  report.e2e_p95_s = e2e[1];
  report.e2e_p99_s = e2e[2];
  const double submitted = static_cast<double>(report.submitted);
  report.goodput =
      report.submitted == 0
          ? 1.0
          : static_cast<double>(report.routed) / submitted;
  report.rejection_rate =
      report.submitted == 0
          ? 0.0
          : static_cast<double>(report.rejected) / submitted;
  report.queue_depth_max = queue_depth_.max();
  report.loss_rate = report.submitted == 0
                         ? 0.0
                         : static_cast<double>(report.lost) / submitted;
  report.retry_pressure =
      report.routed == 0
          ? 0.0
          : retries_.sum() / static_cast<double>(report.routed);
  return report;
}

void Telemetry::snapshot_locked(double now_s) {
  obs::SloReport report = windowed_slo_locked();
  report.breaches = obs::slo_breaches(config_.slo, report);
  breaches_total_ += report.breaches.size();
  if (!report.breaches.empty())
    registry_.add("serve.slo_breach", report.breaches.size());
  registry_.set_gauge("serve.retry_pressure", report.retry_pressure);
  if (tracing()) {
    const obs::Micros ts = obs::to_micros(now_s);
    tracer_->counter(kPid, 0, ts, "serve.e2e_p99_s", report.e2e_p99_s);
    tracer_->counter(kPid, 0, ts, "serve.goodput", report.goodput);
    tracer_->counter(kPid, 0, ts, "serve.queue_depth_max",
                     report.queue_depth_max);
    tracer_->counter(kPid, 0, ts, "serve.retry_pressure",
                     report.retry_pressure);
  }
  if (recorder_) recorder_->write(now_s, registry_.snapshot(), report);
}

obs::MetricsRegistry Telemetry::metrics() const {
  return registry_.snapshot();
}

obs::SloReport Telemetry::slo_report() const {
  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  obs::SloReport report = windowed_slo_locked();
  report.breaches = obs::slo_breaches(config_.slo, report);
  return report;
}

std::uint64_t Telemetry::breach_count() const {
  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  return breaches_total_;
}

std::uint64_t Telemetry::snapshot_count() const {
  std::lock_guard<std::mutex> guard(telemetry_mutex_);
  const util::LockRankScope rank(util::lock_ranks::kTelemetry,
                                 "telemetry_mutex_");
  return recorder_ ? recorder_->snapshot_count() : 0;
}

}  // namespace mlcr::serve
