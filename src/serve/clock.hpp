// Time injection for the serving layer (DESIGN.md §6, §11). Service logic
// never reads a clock directly — it asks an injected serve::Clock — so the
// same SchedulerService runs live against wall time (WallClock) or replayed
// deterministically against the simulator (SimClock driven by a trace). The
// simlint rule `serve-clock-injection` enforces that src/serve/clock.cpp
// stays the only wall-time producer outside the existing allowed zones.
#pragma once

#include <atomic>
#include <cstdint>

namespace mlcr::serve {

/// Service time source, seconds since the service epoch. Implementations
/// must be monotone non-decreasing across calls and safe to read from any
/// thread.
class Clock {
 public:
  virtual ~Clock() = default;

  [[nodiscard]] virtual double now_s() const = 0;

  /// True when time is simulated (advanced explicitly, never by the OS);
  /// deterministic replay requires it.
  [[nodiscard]] virtual bool is_simulated() const noexcept = 0;
};

/// Simulated clock: time moves only via advance_to(), so a service driven by
/// it is a pure function of its inputs. The driving thread advances it; any
/// thread may read it.
class SimClock final : public Clock {
 public:
  explicit SimClock(double start_s = 0.0);

  [[nodiscard]] double now_s() const override;
  [[nodiscard]] bool is_simulated() const noexcept override { return true; }

  /// Move time forward to `t` (seconds). Requires t >= now_s().
  void advance_to(double t);

 private:
  std::atomic<double> now_s_;
};

/// Wall clock for live serving: monotonic time relative to construction
/// (the service epoch), so arrival stamps start near zero like a trace.
class WallClock final : public Clock {
 public:
  WallClock();

  [[nodiscard]] double now_s() const override;
  [[nodiscard]] bool is_simulated() const noexcept override { return false; }

 private:
  std::int64_t epoch_us_;
};

}  // namespace mlcr::serve
