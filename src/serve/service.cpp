#include "serve/service.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "core/mlcr.hpp"
#include "policies/runner.hpp"
#include "serve/telemetry.hpp"
#include "util/check.hpp"
#include "util/lock_audit.hpp"

namespace mlcr::serve {

SchedulerService::SchedulerService(fleet::FleetEnv& fleet, Clock& clock,
                                   std::unique_ptr<RoutePolicy> policy,
                                   ServeConfig config)
    : fleet_(fleet),
      clock_(clock),
      policy_(std::move(policy)),
      config_(config) {
  MLCR_CHECK(policy_ != nullptr);
  MLCR_CHECK_MSG(config_.workers > 0, "the service needs at least one worker");
  MLCR_CHECK_MSG(config_.shards > 0, "the service needs at least one shard");
  MLCR_CHECK_MSG(config_.batch > 0, "batch must drain at least one request");
  MLCR_CHECK_MSG(config_.queue_capacity > 0, "queues need room for one item");
  MLCR_CHECK_MSG(
      config_.degrade_depth <= config_.queue_capacity,
      "degrade_depth beyond the queue capacity would never trigger");
}

SchedulerService::~SchedulerService() {
  for (auto& queue : queues_) queue->close();
  for (auto& worker : workers_) {
    if (!worker.valid()) continue;
    try {
      worker.get();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // A worker that died mid-episode has nothing left to report here.
    }
  }
  workers_.clear();
  pool_.reset();
}

void SchedulerService::begin_episode() {
  MLCR_CHECK_MSG(pool_ == nullptr, "begin_episode() while workers run");
  const std::size_t nodes = fleet_.node_count();

  // MLCR detection: batched wave dispatch only makes sense when every node
  // consults the same DQN; a fleet mixing MLCR and heuristic nodes has no
  // coherent batching story, so reject it outright.
  mlcr_.assign(nodes, nullptr);
  std::size_t mlcr_nodes = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    mlcr_[i] = dynamic_cast<core::MlcrScheduler*>(&fleet_.node_scheduler(i));
    if (mlcr_[i] != nullptr) ++mlcr_nodes;
  }
  MLCR_CHECK_MSG(mlcr_nodes == 0 || mlcr_nodes == nodes,
                 "fleets mixing MLCR and non-MLCR nodes are unsupported");
  mlcr_mode_ = mlcr_nodes == nodes;

  for (std::size_t i = 0; i < nodes; ++i) {
    fleet_.node_env(i).reset_streaming();
    fleet_.node_scheduler(i).on_episode_start(fleet_.node_env(i));
  }
  // Per-node fault injectors (empty on a faultless plan — that path is
  // bit-identical to the pre-§14 service).
  injectors_ = fleet_.make_injectors();
  fleet_.reset_routable();
  // Policies route over the initial routable prefix; spares admitted later
  // are reachable through the index's failover/least-outstanding queries.
  policy_->on_episode_start(fleet_.routable_count());

  index_ = std::make_unique<ShardedFleetIndex>(nodes, config_.shards,
                                               policy_->needs_warm_index());
  for (std::size_t i = 0; i < nodes; ++i) {
    index_->update(i, fleet_.node_env(i));
    index_->set_routable(i, fleet_.node_routable(i));
  }

  queues_.clear();
  for (std::size_t w = 0; w < config_.workers; ++w)
    queues_.push_back(
        std::make_unique<BoundedQueue<Request>>(config_.queue_capacity));
  shard_mutexes_.clear();
  for (std::size_t s = 0; s < index_->shard_count(); ++s)
    shard_mutexes_.push_back(std::make_unique<std::mutex>());

  submit_cursor_.store(0, std::memory_order_relaxed);
  janitor_cursor_.store(0, std::memory_order_relaxed);
  for (auto* counter :
       {&submitted_, &routed_, &rejected_, &degraded_, &lost_, &rerouted_,
        &batches_, &inference_calls_, &max_wave_, &node_crashes_,
        &node_recoveries_, &domain_crashes_, &partial_crashes_,
        &spares_activated_})
    counter->store(0, std::memory_order_relaxed);
  in_episode_ = true;
  if (telemetry_ != nullptr)
    telemetry_->begin_episode(nodes, config_.workers, clock_.now_s());
}

void SchedulerService::start() {
  MLCR_CHECK_MSG(in_episode_, "start() before begin_episode()");
  MLCR_CHECK_MSG(pool_ == nullptr, "start() while workers already run");
  pool_ = std::make_unique<util::ThreadPool>(config_.workers);
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w)
    workers_.push_back(pool_->submit([this, w] { worker_loop(w); }));
}

bool SchedulerService::submit(const sim::Invocation& inv) {
  MLCR_CHECK_MSG(in_episode_, "submit() outside an episode");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t slot =
      submit_cursor_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  BoundedQueue<Request>& queue = *queues_[slot];
  const std::size_t depth = queue.size();
  const bool degraded =
      config_.degrade_depth > 0 && depth >= config_.degrade_depth;
  const bool accepted = queue.try_push({inv, degraded});
  if (!accepted) rejected_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr)
    telemetry_->on_submit(inv, slot, depth, degraded, accepted,
                          clock_.now_s());
  return accepted;
}

std::size_t SchedulerService::pump_once() {
  MLCR_CHECK_MSG(in_episode_, "pump_once() outside an episode");
  MLCR_CHECK_MSG(pool_ == nullptr,
                 "pump_once() is the single-threaded drive path");
  std::size_t processed = 0;
  std::vector<Request> batch;
  batch.reserve(config_.batch);
  for (auto& queue : queues_) {
    for (;;) {
      batch.clear();
      if (queue->drain_nowait(batch, config_.batch) == 0) break;
      processed += batch.size();
      process_batch(batch);
    }
  }
  return processed;
}

void SchedulerService::worker_loop(std::size_t worker) {
  BoundedQueue<Request>& queue = *queues_[worker];
  std::vector<Request> batch;
  batch.reserve(config_.batch);
  for (;;) {
    batch.clear();
    if (queue.pop_batch(batch, config_.batch) == 0) return;
    process_batch(batch);
  }
}

void SchedulerService::drain_queues_on_caller() {
  std::vector<Request> batch;
  batch.reserve(config_.batch);
  for (auto& queue : queues_) {
    for (;;) {
      batch.clear();
      if (queue->drain_nowait(batch, config_.batch) == 0) break;
      process_batch(batch);
    }
  }
}

ServeSummary SchedulerService::finish_episode() {
  MLCR_CHECK_MSG(in_episode_, "finish_episode() outside an episode");
  for (auto& queue : queues_) queue->close();
  if (pool_ != nullptr) {
    for (auto& worker : workers_) worker.get();
    workers_.clear();
    pool_.reset();
  } else {
    // Pump-driven episode: serve whatever is still queued, as a worker
    // draining after close() would.
    drain_queues_on_caller();
  }

  // Any node still inside a crash window recovers before the episode closes
  // (the fleet twin fires the plan's tail recoveries in finish_run; live
  // chaos may simply never have recovered a node). Counted like any other
  // recovery.
  for (std::size_t i = 0; i < fleet_.node_count(); ++i)
    if (fleet_.node_env(i).down()) (void)apply_recover(i);

  ServeSummary out;
  out.stats = stats();
  std::vector<fleet::NodeObservation> observations;
  observations.reserve(fleet_.node_count());
  for (std::size_t i = 0; i < fleet_.node_count(); ++i) {
    sim::ClusterEnv& env = fleet_.node_env(i);
    env.finish_streaming();
    observations.push_back(
        {policies::summarize_env(env, fleet_.node_scheduler(i).name()),
         &env.metrics()});
  }
  out.fleet =
      fleet::aggregate_fleet(policy_->name(), fleet_.system_name(),
                             observations);
  out.fleet.lost = out.stats.lost;
  out.fleet.rerouted = out.stats.rerouted;
  out.fleet.node_crashes = out.stats.node_crashes;
  out.fleet.node_recoveries = out.stats.node_recoveries;
  out.fleet.domain_crashes = out.stats.domain_crashes;
  out.fleet.partial_crashes = out.stats.partial_crashes;
  out.fleet.spares_activated = out.stats.spares_activated;

  // Conservation: every submission ends in exactly one bucket, and every
  // dispatched request became exactly one node invocation.
  MLCR_CHECK_MSG(out.stats.submitted ==
                     out.stats.routed + out.stats.rejected + out.stats.lost,
                 "service lost track of " << out.stats.submitted << " - ("
                                          << out.stats.routed << " + "
                                          << out.stats.rejected << " + "
                                          << out.stats.lost << ") requests");
  MLCR_CHECK_MSG(out.stats.routed == out.fleet.total.invocations,
                 "routed " << out.stats.routed << " requests but the nodes "
                           << "recorded " << out.fleet.total.invocations
                           << " invocations");

  if (telemetry_ != nullptr) telemetry_->end_episode(clock_.now_s());

  // The envs borrow the injectors; detach before the service drops them.
  if (!injectors_.empty())
    for (std::size_t i = 0; i < fleet_.node_count(); ++i)
      fleet_.node_env(i).set_fault_injector(nullptr);
  injectors_.clear();

  in_episode_ = false;
  index_.reset();
  queues_.clear();
  shard_mutexes_.clear();
  return out;
}

ServeStats SchedulerService::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.routed = routed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.lost = lost_.load(std::memory_order_relaxed);
  s.rerouted = rerouted_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.inference_calls = inference_calls_.load(std::memory_order_relaxed);
  s.max_wave = max_wave_.load(std::memory_order_relaxed);
  s.node_crashes = node_crashes_.load(std::memory_order_relaxed);
  s.node_recoveries = node_recoveries_.load(std::memory_order_relaxed);
  s.domain_crashes = domain_crashes_.load(std::memory_order_relaxed);
  s.partial_crashes = partial_crashes_.load(std::memory_order_relaxed);
  s.spares_activated = spares_activated_.load(std::memory_order_relaxed);
  return s;
}

const ShardedFleetIndex& SchedulerService::index() const {
  MLCR_CHECK_MSG(index_ != nullptr, "index() outside an episode");
  return *index_;
}

bool SchedulerService::apply_crash(std::size_t node, bool partial) {
  MLCR_CHECK_MSG(in_episode_, "apply_crash() outside an episode");
  MLCR_CHECK_MSG(node < fleet_.node_count(),
                 "apply_crash() on unknown node " << node);
  std::optional<std::size_t> spare;
  double at = 0.0;
  {
    const std::size_t shard = index_->shard_of(node);
    std::lock_guard lock(*shard_mutexes_[shard]);
    const util::LockRankScope lock_rank(
        util::lock_ranks::service_shard(shard), "service shard mutex");
    sim::ClusterEnv& env = fleet_.node_env(node);
    if (env.down()) return false;
    at = std::max(clock_.now_s(), env.now());
    env.crash(at, partial);
    index_->update(node, env);
    node_crashes_.fetch_add(1, std::memory_order_relaxed);
    if (partial) partial_crashes_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) telemetry_->on_node_crash(node, partial, at);
    spare = fleet_.activate_spare();
  }
  // Outside the crashed node's shard lock: the spare's shard may rank below
  // it, and the ascending-order discipline forbids acquiring backwards.
  if (spare) admit_spare(*spare);
  return true;
}

bool SchedulerService::apply_recover(std::size_t node) {
  MLCR_CHECK_MSG(in_episode_, "apply_recover() outside an episode");
  MLCR_CHECK_MSG(node < fleet_.node_count(),
                 "apply_recover() on unknown node " << node);
  const std::size_t shard = index_->shard_of(node);
  std::lock_guard lock(*shard_mutexes_[shard]);
  const util::LockRankScope lock_rank(util::lock_ranks::service_shard(shard),
                                      "service shard mutex");
  sim::ClusterEnv& env = fleet_.node_env(node);
  if (!env.down()) return false;
  const double at = std::max(clock_.now_s(), env.now());
  env.recover(at);
  index_->update(node, env);
  node_recoveries_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr) telemetry_->on_node_recover(node, at);
  return true;
}

std::size_t SchedulerService::apply_domain_crash(std::size_t domain_id,
                                                 bool partial) {
  MLCR_CHECK_MSG(in_episode_, "apply_domain_crash() outside an episode");
  const faults::FailureDomain* domain = nullptr;
  for (const faults::FailureDomain& d : fleet_.config().faults.domains)
    if (d.id == domain_id) domain = &d;
  MLCR_CHECK_MSG(domain != nullptr, "apply_domain_crash() on unknown domain "
                                        << domain_id);
  std::vector<std::size_t> members = domain->nodes;
  std::sort(members.begin(), members.end());
  std::size_t crashed = 0;
  for (const std::size_t node : members) {
    if (!apply_crash(node, partial)) continue;
    if (crashed == 0) {
      // First member down leads the domain event, as in the planned path.
      domain_crashes_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry_ != nullptr)
        telemetry_->on_domain_crash(domain_id, partial, clock_.now_s());
    }
    ++crashed;
  }
  return crashed;
}

void SchedulerService::admit_spare(std::size_t spare) {
  const std::size_t shard = index_->shard_of(spare);
  std::lock_guard lock(*shard_mutexes_[shard]);
  const util::LockRankScope lock_rank(util::lock_ranks::service_shard(shard),
                                      "service shard mutex");
  index_->update(spare, fleet_.node_env(spare));
  index_->set_routable(spare, true);
  spares_activated_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr)
    telemetry_->on_spare_activated(spare, clock_.now_s());
}

std::optional<std::size_t> SchedulerService::apply_fault_event(
    const fleet::FleetEnv::FaultEvent& ev, bool clamp) {
  sim::ClusterEnv& env = fleet_.node_env(ev.node);
  const double at = clamp ? std::max(ev.time, env.now()) : ev.time;
  if (ev.is_recovery) {
    if (clamp && !env.down()) return std::nullopt;
    env.recover(at);
    index_->update(ev.node, env);
    node_recoveries_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) telemetry_->on_node_recover(ev.node, at);
    return std::nullopt;
  }
  env.crash(at, ev.partial);
  index_->update(ev.node, env);
  node_crashes_.fetch_add(1, std::memory_order_relaxed);
  if (ev.partial) partial_crashes_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr) telemetry_->on_node_crash(ev.node, ev.partial, at);
  if (ev.domain_lead) {
    domain_crashes_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr)
      telemetry_->on_domain_crash(ev.domain, ev.partial, at);
  }
  const std::optional<std::size_t> spare = fleet_.activate_spare();
  if (spare) {
    index_->update(*spare, fleet_.node_env(*spare));
    index_->set_routable(*spare, true);
    spares_activated_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) telemetry_->on_spare_activated(*spare, at);
  }
  return spare;
}

SchedulerService::RouteOutcome SchedulerService::pick_target(
    const sim::Invocation& inv) const {
  RouteOutcome out;
  out.node = policy_->route(*index_, fleet_.functions(), inv);
  MLCR_CHECK_MSG(out.node < fleet_.node_count(),
                 "policy picked an invalid node");
  if (!index_->node_load(out.node).up) {
    // Deterministic failover, as in FleetEnv::run: least outstanding work
    // among healthy nodes, lowest index on ties.
    const auto best = index_->least_outstanding_healthy();
    if (!best) {
      out.lost = true;
      return out;
    }
    out.node = *best;
    out.rerouted = true;
  }
  return out;
}

std::optional<std::size_t> SchedulerService::serve_one(const Request& req) {
  const RouteOutcome route = pick_target(req.inv);
  if (route.lost) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) telemetry_->on_lost(req.inv, clock_.now_s());
    return std::nullopt;
  }
  if (route.rerouted) rerouted_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr)
    telemetry_->on_route(req.inv, route.node, route.rerouted, clock_.now_s());
  dispatch_one(req, route.node, route.rerouted);
  return route.node;
}

void SchedulerService::dispatch_one(const Request& req, std::size_t target,
                                    bool rerouted) {
  const std::size_t shard = index_->shard_of(target);
  std::lock_guard lock(*shard_mutexes_[shard]);
  const util::LockRankScope lock_rank(util::lock_ranks::service_shard(shard),
                                      "service shard mutex");
  sim::ClusterEnv& env = fleet_.node_env(target);
  sim::Invocation inv = req.inv;
  // Concurrent ingestion can deliver a request after the node's clock moved
  // past its stamped arrival; clamping keeps offer()'s non-decreasing
  // arrival contract. A no-op in ordered single-threaded replay.
  if (inv.arrival_s < env.now()) inv.arrival_s = env.now();
  env.offer(inv);
  policies::Scheduler& scheduler = fleet_.node_scheduler(target);
  const sim::Action action =
      req.degraded ? sim::Action::cold() : scheduler.decide(env, inv);
  const sim::StepResult result = env.step(action);
  if (!req.degraded) scheduler.on_step_result(env, result);
  index_->update(target, env);
  routed_.fetch_add(1, std::memory_order_relaxed);
  if (req.degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr)
    telemetry_->on_dispatch(req.inv, target, req.degraded, rerouted, result,
                            clock_.now_s());
}

void SchedulerService::note_wave(std::size_t width) {
  inference_calls_.fetch_add(1, std::memory_order_relaxed);
  std::size_t prev = max_wave_.load(std::memory_order_relaxed);
  while (prev < width && !max_wave_.compare_exchange_weak(
                             prev, width, std::memory_order_relaxed)) {
  }
}

std::size_t SchedulerService::dispatch_wave(const std::vector<Request>& batch,
                                            std::size_t begin) {
  // Phase 1 — route. Every wave member must target a *distinct* node:
  // ClusterEnv requires offer -> step before the next offer on a node, and
  // a wave steps only after the batched forward. The whole wave routes
  // against the wave-start index (the documented batched-serving
  // semantics); a repeated target closes the wave and that request
  // re-routes at the head of the next one.
  struct Entry {
    const Request* req;
    std::size_t target;
    bool rerouted;
  };
  std::vector<Entry> wave;
  wave.reserve(config_.batch);
  std::size_t next = begin;
  while (next < batch.size() && wave.size() < config_.batch) {
    const Request& req = batch[next];
    const RouteOutcome route = pick_target(req.inv);
    if (route.lost) {
      lost_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry_ != nullptr) telemetry_->on_lost(req.inv, clock_.now_s());
      ++next;
      continue;
    }
    const bool repeat =
        std::any_of(wave.begin(), wave.end(), [&](const Entry& e) {
          return e.target == route.node;
        });
    if (repeat) break;
    if (telemetry_ != nullptr)
      telemetry_->on_route(req.inv, route.node, route.rerouted,
                           clock_.now_s());
    wave.push_back({&req, route.node, route.rerouted});
    ++next;
  }
  if (wave.empty()) return next;

  // Phase 2 — lock the touched shards' dispatch mutexes in ascending shard
  // order (deduped), so concurrent workers can never deadlock.
  std::vector<std::size_t> shards;
  shards.reserve(wave.size());
  for (const Entry& entry : wave)
    shards.push_back(index_->shard_of(entry.target));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards.size());
  std::vector<util::LockRankScope> lock_ranks;
  lock_ranks.reserve(shards.size());
  for (const std::size_t shard : shards) {
    locks.emplace_back(*shard_mutexes_[shard]);
    lock_ranks.emplace_back(util::lock_ranks::service_shard(shard),
                            "service shard mutex");
  }

  // Phase 3 — offer every wave member (clamped), then decide the
  // non-degraded ones in a single forward_batch under the inference mutex.
  std::vector<sim::Invocation> offered;
  offered.reserve(wave.size());
  for (const Entry& entry : wave) {
    sim::ClusterEnv& env = fleet_.node_env(entry.target);
    sim::Invocation inv = entry.req->inv;
    if (inv.arrival_s < env.now()) inv.arrival_s = env.now();
    env.offer(inv);
    offered.push_back(inv);
  }
  std::vector<sim::Action> actions(wave.size(), sim::Action::cold());
  std::vector<std::size_t> ask;
  ask.reserve(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i)
    if (!wave[i].req->degraded) ask.push_back(i);
  if (!ask.empty()) {
    std::vector<core::MlcrScheduler*> schedulers;
    std::vector<const sim::ClusterEnv*> envs;
    std::vector<const sim::Invocation*> invs;
    schedulers.reserve(ask.size());
    envs.reserve(ask.size());
    invs.reserve(ask.size());
    for (const std::size_t i : ask) {
      schedulers.push_back(mlcr_[wave[i].target]);
      envs.push_back(&fleet_.node_env(wave[i].target));
      invs.push_back(&offered[i]);
    }
    std::lock_guard inference_lock(inference_mutex_);
    const util::LockRankScope inference_rank(util::lock_ranks::kInference,
                                             "inference mutex");
    const std::vector<sim::Action> decided =
        core::MlcrScheduler::decide_batch(schedulers, envs, invs);
    for (std::size_t j = 0; j < ask.size(); ++j) actions[ask[j]] = decided[j];
    note_wave(ask.size());
  }

  // Phase 4 — step every member and refresh its index entry before the
  // shard locks drop.
  for (std::size_t i = 0; i < wave.size(); ++i) {
    const Entry& entry = wave[i];
    sim::ClusterEnv& env = fleet_.node_env(entry.target);
    const sim::StepResult result = env.step(actions[i]);
    if (!entry.req->degraded)
      fleet_.node_scheduler(entry.target).on_step_result(env, result);
    index_->update(entry.target, env);
    routed_.fetch_add(1, std::memory_order_relaxed);
    if (entry.req->degraded)
      degraded_.fetch_add(1, std::memory_order_relaxed);
    if (entry.rerouted) rerouted_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr)
      telemetry_->on_dispatch(entry.req->inv, entry.target,
                              entry.req->degraded, entry.rerouted, result,
                              clock_.now_s());
  }
  return next;
}

void SchedulerService::process_batch(const std::vector<Request>& batch) {
  if (batch.empty()) return;
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (mlcr_mode_) {
    std::size_t i = 0;
    while (i < batch.size()) i = dispatch_wave(batch, i);
  } else {
    for (const Request& req : batch) (void)serve_one(req);
  }
  janitor_step();
}

void SchedulerService::janitor_step() {
  const double now = clock_.now_s();
  // The janitor is the telemetry plane's heartbeat: SLO windows advance on
  // the injected clock, never the OS's.
  if (telemetry_ != nullptr) telemetry_->advance(now);
  const std::size_t node =
      janitor_cursor_.fetch_add(1, std::memory_order_relaxed) %
      fleet_.node_count();
  const std::size_t shard = index_->shard_of(node);
  std::lock_guard lock(*shard_mutexes_[shard]);
  const util::LockRankScope lock_rank(util::lock_ranks::service_shard(shard),
                                      "service shard mutex");
  sim::ClusterEnv& env = fleet_.node_env(node);
  if (env.now() >= now) return;
  env.advance_idle(now);
  index_->update(node, env);
}

ServeSummary SchedulerService::run_replay(const sim::Trace& trace) {
  auto* sim_clock = dynamic_cast<SimClock*>(&clock_);
  MLCR_CHECK_MSG(sim_clock != nullptr,
                 "run_replay() requires a simulated clock");
  MLCR_CHECK_MSG(pool_ == nullptr, "run_replay() while workers run");
  begin_episode();

  // The event core of FleetEnv::run, replicated over the sharded index: one
  // lazily-invalidated heap entry per node holds its next self-scheduled
  // event (completion or TTL expiry); stale entries are discarded on pop.
  // The plan's fault events stay in the fleet's pre-sorted list and are
  // merged by time, firing before node advances at equal times — the order
  // FleetEnv::run uses.
  struct AdvanceEntry {
    double time;
    std::size_t node;
    std::uint64_t version;
  };
  struct AdvanceLater {
    bool operator()(const AdvanceEntry& a, const AdvanceEntry& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap on time
      return a.node > b.node;                        // deterministic ties
    }
  };
  std::priority_queue<AdvanceEntry, std::vector<AdvanceEntry>, AdvanceLater>
      heap;
  std::vector<std::uint64_t> versions(fleet_.node_count(), 0);
  const auto reschedule = [&](std::size_t node) {
    ++versions[node];
    if (const auto at = fleet_.node_env(node).next_event_time())
      heap.push({*at, node, versions[node]});
  };
  for (std::size_t i = 0; i < fleet_.node_count(); ++i) reschedule(i);

  const auto drain = [&](double t, bool inclusive) {
    for (;;) {
      while (!heap.empty() && heap.top().version != versions[heap.top().node])
        heap.pop();
      if (heap.empty()) return;
      if (inclusive ? heap.top().time > t : heap.top().time >= t) return;
      const AdvanceEntry entry = heap.top();
      heap.pop();
      sim::ClusterEnv& env = fleet_.node_env(entry.node);
      env.advance_to(entry.time);
      index_->update(entry.node, env);
      reschedule(entry.node);
    }
  };
  const auto& fault_events = fleet_.fault_events();
  std::size_t next_fault = 0;
  // Fire one pre-planned transition: node advances strictly before it run
  // first, then the event, then the touched nodes reschedule.
  const auto fire_fault = [&](const fleet::FleetEnv::FaultEvent& ev,
                              bool clamp) {
    if (!clamp) drain(ev.time, /*inclusive=*/false);
    const std::optional<std::size_t> spare = apply_fault_event(ev, clamp);
    reschedule(ev.node);
    if (spare) reschedule(*spare);
  };

  double last_arrival = 0.0;
  for (const sim::Invocation& inv : trace.invocations()) {
    MLCR_CHECK_MSG(inv.arrival_s >= last_arrival,
                   "replay traces must be sorted by arrival");
    last_arrival = inv.arrival_s;
    while (next_fault < fault_events.size() &&
           fault_events[next_fault].time <= inv.arrival_s) {
      const fleet::FleetEnv::FaultEvent& ev = fault_events[next_fault++];
      sim_clock->advance_to(ev.time);
      fire_fault(ev, /*clamp=*/false);
    }
    sim_clock->advance_to(inv.arrival_s);
    drain(inv.arrival_s, /*inclusive=*/true);
    submitted_.fetch_add(1, std::memory_order_relaxed);
    // Replay bypasses the queues, so the ingest hook fires here: queue slot
    // as submit() would round-robin it, depth 0 (nothing ever queues).
    if (telemetry_ != nullptr)
      telemetry_->on_submit(inv, inv.seq % config_.workers, 0, false, true,
                            inv.arrival_s);
    // Strictly sequential dispatch — MLCR decides per request, exactly as
    // FleetEnv::dispatch does, so the replay is bit-identical to run().
    if (const auto target = serve_one({inv, false})) reschedule(*target);
    // No janitor runs in replay; advance the SLO windows off the SimClock
    // directly so the telemetry stream stays a pure function of the trace.
    if (telemetry_ != nullptr) telemetry_->advance(inv.arrival_s);
  }
  // Episode tail: fire what remains of the plan (clamped to node clocks, as
  // FleetEnv::finish_run does) so crash/recovery counts match it.
  for (; next_fault < fault_events.size(); ++next_fault) {
    const fleet::FleetEnv::FaultEvent& ev = fault_events[next_fault];
    if (ev.time > sim_clock->now_s()) sim_clock->advance_to(ev.time);
    fire_fault(ev, /*clamp=*/true);
  }
  return finish_episode();
}

}  // namespace mlcr::serve
