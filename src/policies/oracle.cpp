#include "policies/oracle.hpp"

#include <limits>

#include "containers/matching.hpp"
#include "util/check.hpp"

namespace mlcr::policies {

namespace {

/// Replay `actions` from a fresh reset; returns the env positioned after the
/// prefix. The env's container-id assignment is deterministic, so replaying
/// an action list always reproduces the same state.
void replay_prefix(sim::ClusterEnv& env, const sim::Trace& trace,
                   const std::vector<sim::Action>& actions) {
  env.reset(trace);
  for (const auto& a : actions) env.step(a);
}

void search(sim::ClusterEnv& env, const sim::Trace& trace,
            std::vector<sim::Action>& prefix, double prefix_latency,
            OracleResult& best) {
  ++best.nodes_explored;
  if (prefix.size() == trace.size()) {
    if (prefix_latency < best.total_latency_s) {
      best.total_latency_s = prefix_latency;
      best.actions = prefix;
    }
    return;
  }
  if (prefix_latency >= best.total_latency_s) return;  // branch and bound

  // Determine candidate actions at this node.
  replay_prefix(env, trace, prefix);
  const sim::Invocation& inv = env.current();
  const auto& fn_image = env.functions().get(inv.function).image;
  std::vector<sim::Action> candidates;
  candidates.push_back(sim::Action::cold());
  for (const containers::Container* c : env.pool().idle_containers())
    if (containers::reusable(containers::match(fn_image, c->image)))
      candidates.push_back(sim::Action::reuse(c->id));

  for (const auto& action : candidates) {
    replay_prefix(env, trace, prefix);
    const sim::StepResult r = env.step(action);
    prefix.push_back(action);
    search(env, trace, prefix, prefix_latency + r.latency_s, best);
    prefix.pop_back();
  }
}

}  // namespace

OracleResult exhaustive_best_plan(
    const sim::FunctionTable& functions,
    const containers::PackageCatalog& catalog,
    const sim::StartupCostModel& cost_model, const sim::EnvConfig& config,
    const sim::EvictionPolicyFactory& eviction_factory,
    const sim::Trace& trace, std::size_t max_invocations) {
  MLCR_CHECK_MSG(trace.size() <= max_invocations,
                 "oracle search limited to " << max_invocations
                                             << " invocations");
  sim::ClusterEnv env(functions, catalog, cost_model, config,
                      eviction_factory);
  OracleResult best;
  best.total_latency_s = std::numeric_limits<double>::infinity();
  std::vector<sim::Action> prefix;
  search(env, trace, prefix, 0.0, best);
  return best;
}

sim::Action PlanScheduler::decide(const sim::ClusterEnv& env,
                                  const sim::Invocation& inv) {
  (void)env;
  (void)inv;
  MLCR_CHECK_MSG(next_ < actions_.size(), "plan exhausted");
  return actions_[next_++];
}

}  // namespace policies = mlcr::policies
