// Episode runner: drives a scheduler over a trace and collects the summary
// the benchmark tables report.
#pragma once

#include <string>
#include <vector>

#include "policies/baselines.hpp"
#include "policies/scheduler.hpp"
#include "sim/env.hpp"

namespace mlcr::obs {
class Tracer;
}

namespace mlcr::policies {

struct EpisodeSummary {
  std::string scheduler;
  std::size_t invocations = 0;
  double total_latency_s = 0.0;
  double average_latency_s = 0.0;
  std::size_t cold_starts = 0;
  std::size_t warm_l1 = 0;
  std::size_t warm_l2 = 0;
  std::size_t warm_l3 = 0;
  double peak_pool_mb = 0.0;
  std::size_t evictions = 0;
  std::size_t rejections = 0;
  /// Invocations never served (fault retries exhausted / node crash) and
  /// retried start attempts; both 0 without fault injection.
  std::size_t failed = 0;
  std::size_t retries = 0;
};

/// Build the summary row from an environment's collected metrics and pool
/// statistics. Factored out of run_episode so the fleet layer can summarize
/// each node with identical accounting.
[[nodiscard]] EpisodeSummary summarize_env(const sim::ClusterEnv& env,
                                           std::string scheduler_name);

/// Run one full episode of `scheduler` on `trace` in `env` (resets the env).
EpisodeSummary run_episode(sim::ClusterEnv& env, Scheduler& scheduler,
                           const sim::Trace& trace);

/// Convenience: build an env for `spec` and run it on `trace`. When
/// `tracer` is non-null the episode's lifecycle events are emitted on
/// (obs::Tracer::kSimPid, `track`) — see sim::ClusterEnv::set_tracer.
EpisodeSummary run_system(const SystemSpec& spec,
                          const sim::FunctionTable& functions,
                          const containers::PackageCatalog& catalog,
                          const sim::StartupCostModel& cost_model,
                          double pool_capacity_mb, const sim::Trace& trace,
                          std::size_t max_pool_containers = 0,
                          obs::Tracer* tracer = nullptr,
                          std::uint32_t track = 0);

}  // namespace mlcr::policies
