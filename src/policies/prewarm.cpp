#include "policies/prewarm.hpp"

#include <limits>

#include "util/check.hpp"

namespace mlcr::policies {

void InterArrivalEstimator::observe(containers::FunctionTypeId fn,
                                    double now) {
  FnStats& s = stats_[fn];
  if (s.observations > 0) {
    const double gap = now - s.last_arrival;
    if (gap > 0.0)
      s.ema_gap_s = s.observations == 1
                        ? gap
                        : (1.0 - alpha_) * s.ema_gap_s + alpha_ * gap;
  }
  s.last_arrival = now;
  ++s.observations;
}

double InterArrivalEstimator::predicted_next_arrival(
    containers::FunctionTypeId fn, double now) const {
  const auto it = stats_.find(fn);
  if (it == stats_.end() || it->second.observations < 2 ||
      it->second.ema_gap_s <= 0.0)
    return std::numeric_limits<double>::infinity();
  // The next arrival is one EMA gap after the last; if that moment already
  // passed, assume it is imminent (clamp to now).
  return std::max(now, it->second.last_arrival + it->second.ema_gap_s);
}

containers::ContainerId PredictiveEviction::choose_victim(
    const std::vector<const containers::Container*>& idle, double now) {
  MLCR_CHECK(!idle.empty());
  const containers::Container* victim = idle.front();
  double victim_next = -1.0;
  for (const containers::Container* c : idle) {
    const double next =
        estimator_.predicted_next_arrival(c->last_function, now);
    // Evict the container needed furthest in the future; on ties prefer the
    // least recently used one (matches LRU behaviour for untracked types).
    if (next > victim_next ||
        (next == victim_next && c->last_idle_at < victim->last_idle_at)) {
      victim = c;
      victim_next = next;
    }
  }
  return victim->id;
}

void PredictiveEviction::on_admit(containers::Container& container,
                                  double now) {
  (void)now;
  // last_used_at is the arrival time of the invocation this container just
  // served — the signal the inter-arrival estimator needs.
  if (container.last_function != containers::kInvalidFunctionType)
    estimator_.observe(container.last_function, container.last_used_at);
}

SystemSpec make_prewarm_system(double ema_alpha) {
  return SystemSpec{
      "Prewarm", std::make_unique<SameConfigScheduler>("Prewarm"),
      [ema_alpha] { return std::make_unique<PredictiveEviction>(ema_alpha); },
      std::nullopt};
}

}  // namespace mlcr::policies
