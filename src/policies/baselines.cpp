#include "policies/baselines.hpp"

#include "containers/matching.hpp"

namespace mlcr::policies {

using containers::Container;
using containers::MatchLevel;

namespace {

/// Pick the idle container with the best (level, recency) score for `inv`,
/// requiring at least `min_level`. Returns nullptr when none qualifies.
[[nodiscard]] const Container* best_match(const sim::ClusterEnv& env,
                                          const sim::Invocation& inv,
                                          MatchLevel min_level) {
  const auto& fn_image = env.functions().get(inv.function).image;
  const Container* best = nullptr;
  MatchLevel best_level = MatchLevel::kNoMatch;
  for (const Container* c : env.pool().idle_containers()) {
    const MatchLevel level = containers::match(fn_image, c->image);
    if (level < min_level || !containers::reusable(level)) continue;
    // Prefer higher match; among equals, the most recently idle container
    // (leaves LRU victims untouched for longer).
    if (best == nullptr || level > best_level ||
        (level == best_level && c->last_idle_at > best->last_idle_at)) {
      best = c;
      best_level = level;
    }
  }
  return best;
}

}  // namespace

sim::Action SameConfigScheduler::decide(const sim::ClusterEnv& env,
                                        const sim::Invocation& inv) {
  const Container* c = best_match(env, inv, MatchLevel::kL3);
  return c != nullptr ? sim::Action::reuse(c->id) : sim::Action::cold();
}

sim::Action GreedyMatchScheduler::decide(const sim::ClusterEnv& env,
                                         const sim::Invocation& inv) {
  const Container* c = best_match(env, inv, MatchLevel::kL1);
  return c != nullptr ? sim::Action::reuse(c->id) : sim::Action::cold();
}

sim::Action RandomScheduler::decide(const sim::ClusterEnv& env,
                                    const sim::Invocation& inv) {
  const auto& fn_image = env.functions().get(inv.function).image;
  std::vector<containers::ContainerId> candidates;
  for (const Container* c : env.pool().idle_containers())
    if (containers::reusable(containers::match(fn_image, c->image)))
      candidates.push_back(c->id);
  const std::size_t choice = rng_.uniform_index(candidates.size() + 1);
  if (choice == candidates.size()) return sim::Action::cold();
  return sim::Action::reuse(candidates[choice]);
}

SystemSpec make_lru_system() {
  return SystemSpec{
      "LRU", std::make_unique<SameConfigScheduler>("LRU"),
      [] { return std::make_unique<containers::LruEviction>(); },
      std::nullopt};
}

SystemSpec make_faascache_system() {
  return SystemSpec{
      "FaasCache", std::make_unique<SameConfigScheduler>("FaasCache"),
      [] { return std::make_unique<containers::FaasCacheEviction>(); },
      std::nullopt};
}

SystemSpec make_keepalive_system(double ttl_s) {
  return SystemSpec{
      "KeepAlive", std::make_unique<SameConfigScheduler>("KeepAlive"),
      [] { return std::make_unique<containers::RejectWhenFull>(); }, ttl_s};
}

SystemSpec make_greedy_match_system() {
  return SystemSpec{
      "Greedy-Match", std::make_unique<GreedyMatchScheduler>(),
      [] { return std::make_unique<containers::LruEviction>(); },
      std::nullopt};
}

SystemSpec make_random_system(std::uint64_t seed) {
  return SystemSpec{
      "Random", std::make_unique<RandomScheduler>(seed),
      [] { return std::make_unique<containers::LruEviction>(); },
      std::nullopt};
}

}  // namespace mlcr::policies
