// Zygote-container baseline (Li et al., "Help Rather Than Recycle",
// ATC'22 — the paper's closest related work, Sec. VII): warm containers
// accumulate the union of every function they have served. A container whose
// package set contains all of a function's packages serves it as a full
// warm start; otherwise the missing packages are pulled and *added* (the
// container grows, it is never stripped). Runs on the environment's
// ReuseSemantics::kUnion mode.
//
// MLCR's advantages over zygotes (paper Sec. VII): repacking keeps
// containers small (a zygote's footprint only grows), and matching whole
// levels is cheaper than subset tests over full package sets.
#pragma once

#include "policies/baselines.hpp"

namespace mlcr::policies {

/// Greedy union-reuse: pick the same-OS container with the least missing
/// package volume (ties: most recently idle); cold start when no container
/// shares the OS level.
class ZygoteScheduler final : public Scheduler {
 public:
  [[nodiscard]] sim::Action decide(const sim::ClusterEnv& env,
                                   const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return "Zygote"; }
};

/// Zygote system: union semantics + LRU eviction.
[[nodiscard]] SystemSpec make_zygote_system();

}  // namespace mlcr::policies
