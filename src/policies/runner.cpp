#include "policies/runner.hpp"

#include "containers/matching.hpp"

namespace mlcr::policies {

EpisodeSummary summarize_env(const sim::ClusterEnv& env,
                             std::string scheduler_name) {
  const auto& m = env.metrics();
  EpisodeSummary s;
  s.scheduler = std::move(scheduler_name);
  s.invocations = m.invocation_count();
  s.total_latency_s = m.total_latency_s();
  s.average_latency_s = m.average_latency_s();
  s.cold_starts = m.cold_start_count();
  s.warm_l1 = m.warm_starts_at(containers::MatchLevel::kL1);
  s.warm_l2 = m.warm_starts_at(containers::MatchLevel::kL2);
  s.warm_l3 = m.warm_starts_at(containers::MatchLevel::kL3);
  s.peak_pool_mb = env.pool().peak_used_mb();
  s.evictions = env.pool().eviction_count();
  s.rejections = env.pool().rejection_count();
  s.failed = m.failed_count();
  s.retries = m.retry_count();
  return s;
}

EpisodeSummary run_episode(sim::ClusterEnv& env, Scheduler& scheduler,
                           const sim::Trace& trace) {
  env.reset(trace);
  scheduler.on_episode_start(env);
  while (!env.done()) {
    const sim::Invocation& inv = env.current();
    const sim::Action action = scheduler.decide(env, inv);
    const sim::StepResult result = env.step(action);
    scheduler.on_step_result(env, result);
  }
  return summarize_env(env, scheduler.name());
}

EpisodeSummary run_system(const SystemSpec& spec,
                          const sim::FunctionTable& functions,
                          const containers::PackageCatalog& catalog,
                          const sim::StartupCostModel& cost_model,
                          double pool_capacity_mb, const sim::Trace& trace,
                          std::size_t max_pool_containers, obs::Tracer* tracer,
                          std::uint32_t track) {
  sim::EnvConfig config;
  config.pool_capacity_mb = pool_capacity_mb;
  config.max_pool_containers = max_pool_containers;
  config.keep_alive_ttl_s = spec.keep_alive_ttl_s;
  config.reuse_semantics = spec.reuse_semantics;
  sim::ClusterEnv env(functions, catalog, cost_model, config,
                      spec.eviction_factory);
  env.set_tracer(tracer, track);
  return run_episode(env, *spec.scheduler, trace);
}

}  // namespace mlcr::policies
