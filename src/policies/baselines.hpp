// The four baseline warm-start systems the paper compares against
// (Sec. VI-A "Comparisons"):
//   LRU         — same-configuration reuse, LRU eviction.
//   FaasCache   — same-configuration reuse, greedy-dual eviction.
//   KeepAlive   — same-configuration reuse, fixed 10-minute TTL, pool
//                 rejects keep-warm requests when full.
//   Greedy-Match— multi-level (Table I) reuse, greedily picks the best
//                 match for the current invocation, LRU eviction.
#pragma once

#include <memory>

#include "policies/scheduler.hpp"
#include "util/rng.hpp"

namespace mlcr::policies {

/// Classic warm start: only a full (L3) match may be reused. Among full
/// matches the most recently idle container is chosen. Shared by LRU,
/// FaasCache and KeepAlive, which differ only in their eviction behaviour.
class SameConfigScheduler final : public Scheduler {
 public:
  explicit SameConfigScheduler(std::string name = "SameConfig")
      : name_(std::move(name)) {}

  [[nodiscard]] sim::Action decide(const sim::ClusterEnv& env,
                                   const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
};

/// Multi-level greedy: reuse the container with the highest Table-I match
/// level (ties: most recently idle). Falls back to cold start only when no
/// container matches at any level.
class GreedyMatchScheduler final : public Scheduler {
 public:
  [[nodiscard]] sim::Action decide(const sim::ClusterEnv& env,
                                   const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return "Greedy-Match"; }
};

/// Uniform random choice among {cold} ∪ {reusable containers}; a sanity
/// floor for evaluations and a data source for offline RL experiments.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed = 1) : rng_(seed) {}

  [[nodiscard]] sim::Action decide(const sim::ClusterEnv& env,
                                   const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  util::Rng rng_;
};

/// A fully configured system = scheduler + pool eviction behaviour + TTL +
/// container-reuse semantics.
struct SystemSpec {
  std::string name;
  std::unique_ptr<Scheduler> scheduler;
  sim::EvictionPolicyFactory eviction_factory;
  std::optional<double> keep_alive_ttl_s;
  sim::ReuseSemantics reuse_semantics = sim::ReuseSemantics::kRepack;
};

/// Factories for the paper's comparison systems.
[[nodiscard]] SystemSpec make_lru_system();
[[nodiscard]] SystemSpec make_faascache_system();
[[nodiscard]] SystemSpec make_keepalive_system(double ttl_s = 600.0);
[[nodiscard]] SystemSpec make_greedy_match_system();
[[nodiscard]] SystemSpec make_random_system(std::uint64_t seed = 1);

}  // namespace mlcr::policies
