#include "policies/zygote.hpp"

namespace mlcr::policies {

using containers::Container;
using containers::Level;

sim::Action ZygoteScheduler::decide(const sim::ClusterEnv& env,
                                    const sim::Invocation& inv) {
  const auto& fn_image = env.functions().get(inv.function).image;
  const auto& catalog = env.catalog();

  const Container* best = nullptr;
  double best_missing_mb = 0.0;
  for (const Container* c : env.pool().idle_containers()) {
    if (!c->image.level_equals(fn_image, Level::kOs)) continue;
    double missing_mb = 0.0;
    for (const Level level : {Level::kLanguage, Level::kRuntime})
      missing_mb +=
          catalog.total_size_mb(c->image.level_missing(fn_image, level));
    if (best == nullptr || missing_mb < best_missing_mb ||
        (missing_mb == best_missing_mb &&
         c->last_idle_at > best->last_idle_at)) {
      best = c;
      best_missing_mb = missing_mb;
    }
  }
  return best != nullptr ? sim::Action::reuse(best->id) : sim::Action::cold();
}

SystemSpec make_zygote_system() {
  SystemSpec spec{
      "Zygote", std::make_unique<ZygoteScheduler>(),
      [] { return std::make_unique<containers::LruEviction>(); },
      std::nullopt};
  spec.reuse_semantics = sim::ReuseSemantics::kUnion;
  return spec;
}

}  // namespace mlcr::policies
