// Prediction-driven keep-alive, in the spirit of the pre-warming line of
// work the paper discusses (Shahrad et al. ATC'20; Roy et al. ASPLOS'22):
// the platform tracks per-function inter-arrival times and, when the pool
// is full, evicts the container whose function is predicted to be needed
// FURTHEST in the future. This is the "prediction" counterpoint to MLCR's
// "adaptation" — the paper argues prediction-based schemes degrade when
// arrivals are hard to predict (Fig. 11c Peak), which the extended-baseline
// bench measures.
#pragma once

#include <map>

#include "containers/pool.hpp"
#include "policies/baselines.hpp"

namespace mlcr::policies {

/// Exponential-moving-average estimator of per-function inter-arrival times.
class InterArrivalEstimator {
 public:
  explicit InterArrivalEstimator(double alpha = 0.3) : alpha_(alpha) {}

  /// Record an arrival of `fn` at time `now`.
  void observe(containers::FunctionTypeId fn, double now);

  /// Predicted next arrival of `fn`; +infinity when never observed twice.
  [[nodiscard]] double predicted_next_arrival(containers::FunctionTypeId fn,
                                              double now) const;

  [[nodiscard]] std::size_t tracked_functions() const noexcept {
    return stats_.size();
  }

 private:
  struct FnStats {
    double last_arrival = 0.0;
    double ema_gap_s = 0.0;
    std::size_t observations = 0;
  };
  double alpha_;
  /// Keyed map is ordered so any future scan over tracked functions (e.g.
  /// proactive prewarm candidates) is deterministic by construction.
  std::map<containers::FunctionTypeId, FnStats> stats_;
};

/// Eviction policy that keeps the containers predicted to be reused soonest.
/// Observes arrivals through on_take/on_admit (every invocation eventually
/// passes through one of them with its arrival timestamp in last_used_at).
class PredictiveEviction final : public containers::EvictionPolicy {
 public:
  explicit PredictiveEviction(double ema_alpha = 0.3)
      : estimator_(ema_alpha) {}

  [[nodiscard]] containers::ContainerId choose_victim(
      const std::vector<const containers::Container*>& idle,
      double now) override;
  void on_admit(containers::Container& container, double now) override;
  [[nodiscard]] const char* name() const override { return "Prewarm"; }

  [[nodiscard]] const InterArrivalEstimator& estimator() const noexcept {
    return estimator_;
  }

 private:
  InterArrivalEstimator estimator_;
};

/// Prediction-based keep-alive system: same-config reuse + PredictiveEviction.
[[nodiscard]] SystemSpec make_prewarm_system(double ema_alpha = 0.3);

}  // namespace mlcr::policies
