// Exhaustive offline planner for small traces. Enumerates every feasible
// action sequence (cold start or any reusable pool container, per step) and
// returns the plan with minimal total startup latency. Exponential in trace
// length — intended for validating schedulers on toy instances such as the
// paper's Fig. 2 example, and for measuring optimality gaps in tests.
#pragma once

#include <cstddef>
#include <vector>

#include "policies/scheduler.hpp"
#include "sim/env.hpp"

namespace mlcr::policies {

struct OracleResult {
  double total_latency_s = 0.0;
  std::vector<sim::Action> actions;
  std::size_t nodes_explored = 0;
};

/// Find the optimal plan by depth-first search with prefix replay.
/// Requires trace.size() <= max_invocations (guards accidental blow-up).
[[nodiscard]] OracleResult exhaustive_best_plan(
    const sim::FunctionTable& functions,
    const containers::PackageCatalog& catalog,
    const sim::StartupCostModel& cost_model, const sim::EnvConfig& config,
    const sim::EvictionPolicyFactory& eviction_factory,
    const sim::Trace& trace, std::size_t max_invocations = 10);

/// Replays a fixed action list (e.g. an oracle plan) as a Scheduler.
class PlanScheduler final : public Scheduler {
 public:
  explicit PlanScheduler(std::vector<sim::Action> actions)
      : actions_(std::move(actions)) {}

  void on_episode_start(const sim::ClusterEnv& env) override {
    (void)env;
    next_ = 0;
  }
  [[nodiscard]] sim::Action decide(const sim::ClusterEnv& env,
                                   const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return "Plan"; }

 private:
  std::vector<sim::Action> actions_;
  std::size_t next_ = 0;
};

}  // namespace mlcr::policies
