// Scheduler interface: maps the current invocation + environment state to a
// start action (reuse a warm container or cold-start). Both the heuristic
// baselines and the DRL-based MLCR scheduler implement this.
#pragma once

#include <string>

#include "sim/env.hpp"

namespace mlcr::policies {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once per episode before the first decide().
  virtual void on_episode_start(const sim::ClusterEnv& env) { (void)env; }

  /// Choose the start action for `inv`, which is env.current().
  [[nodiscard]] virtual sim::Action decide(const sim::ClusterEnv& env,
                                           const sim::Invocation& inv) = 0;

  /// Observation hook after the environment applied the action (the DRL
  /// scheduler uses it for online fine-tuning).
  virtual void on_step_result(const sim::ClusterEnv& env,
                              const sim::StepResult& result) {
    (void)env;
    (void)result;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace mlcr::policies
