#include "rl/qnetwork.hpp"

#include "util/check.hpp"

namespace mlcr::rl {

QNetwork::QNetwork(QNetworkConfig config, util::Rng& rng)
    : config_(config),
      input_proj_(config.feature_dim, config.embed_dim, rng),
      final_norm_(config.embed_dim),
      value_head_(config.embed_dim, 1, rng) {
  MLCR_CHECK(config_.feature_dim > 0 && config_.num_slots > 0);
  MLCR_CHECK(config_.embed_dim > 0 && config_.blocks > 0);
  if (config_.use_attention) {
    for (std::size_t i = 0; i < config_.blocks; ++i)
      blocks_.push_back(std::make_unique<nn::TransformerBlock>(
          config_.embed_dim, config_.heads, config_.ffn_dim, rng));
  } else {
    // Ablation: per-token MLP of matching depth, no cross-token mixing.
    for (std::size_t i = 0; i < config_.blocks; ++i) {
      mlp_.push_back(std::make_unique<nn::Linear>(config_.embed_dim,
                                                  config_.ffn_dim, rng));
      mlp_.push_back(std::make_unique<nn::ReLU>());
      mlp_.push_back(std::make_unique<nn::Linear>(config_.ffn_dim,
                                                  config_.embed_dim, rng));
    }
  }
}

nn::Tensor QNetwork::forward(const nn::Tensor& tokens) {
  MLCR_CHECK_MSG(tokens.rows() == num_tokens() &&
                     tokens.cols() == config_.feature_dim,
                 "expected tokens " << num_tokens() << "x"
                                    << config_.feature_dim << ", got "
                                    << tokens.rows() << "x" << tokens.cols());
  cached_tokens_ = tokens.rows();
  nn::Tensor h = input_proj_.forward(tokens);
  if (config_.use_attention) {
    for (const auto& block : blocks_) h = block->forward(h);
  } else {
    for (const auto& layer : mlp_) h = layer->forward(h);
  }
  h = final_norm_.forward(h);
  const nn::Tensor values = value_head_.forward(h);  // (T x 1)

  nn::Tensor q(num_actions(), 1);
  for (std::size_t slot = 0; slot < config_.num_slots; ++slot)
    q(slot, 0) = values(kFirstSlotTokenRow + slot, 0);
  q(config_.num_slots, 0) = values(kFunctionTokenRow, 0);  // cold start
  return q;
}

std::vector<nn::Tensor> QNetwork::forward_batch(
    const std::vector<const nn::Tensor*>& states) {
  std::vector<nn::Tensor> out;
  if (states.empty()) return out;
  const std::size_t tokens = num_tokens();
  nn::Tensor stacked(states.size() * tokens, config_.feature_dim);
  for (std::size_t b = 0; b < states.size(); ++b) {
    const nn::Tensor& state = *states[b];
    MLCR_CHECK_MSG(state.rows() == tokens &&
                       state.cols() == config_.feature_dim,
                   "expected tokens " << tokens << "x" << config_.feature_dim
                                      << ", got " << state.rows() << "x"
                                      << state.cols());
    for (std::size_t r = 0; r < tokens; ++r) {
      const float* in = state.row(r);
      float* o = stacked.row(b * tokens + r);
      for (std::size_t c = 0; c < config_.feature_dim; ++c) o[c] = in[c];
    }
  }

  nn::Tensor h = input_proj_.forward(stacked);
  if (config_.use_attention) {
    for (const auto& b : blocks_) h = b->forward_batched(h, tokens);
  } else {
    for (const auto& layer : mlp_) h = layer->forward(h);
  }
  h = final_norm_.forward(h);
  const nn::Tensor values = value_head_.forward(h);  // (B*T x 1)

  out.reserve(states.size());
  for (std::size_t b = 0; b < states.size(); ++b) {
    nn::Tensor q(num_actions(), 1);
    const std::size_t base = b * tokens;
    for (std::size_t slot = 0; slot < config_.num_slots; ++slot)
      q(slot, 0) = values(base + kFirstSlotTokenRow + slot, 0);
    q(config_.num_slots, 0) = values(base + kFunctionTokenRow, 0);
    out.push_back(std::move(q));
  }
  return out;
}

nn::Tensor QNetwork::backward(const nn::Tensor& grad_q) {
  MLCR_CHECK(grad_q.rows() == num_actions() && grad_q.cols() == 1);
  nn::Tensor grad_values(cached_tokens_, 1);
  for (std::size_t slot = 0; slot < config_.num_slots; ++slot)
    grad_values(kFirstSlotTokenRow + slot, 0) = grad_q(slot, 0);
  grad_values(kFunctionTokenRow, 0) = grad_q(config_.num_slots, 0);

  nn::Tensor g = value_head_.backward(grad_values);
  g = final_norm_.backward(g);
  if (config_.use_attention) {
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it)
      g = (*it)->backward(g);
  } else {
    for (auto it = mlp_.rbegin(); it != mlp_.rend(); ++it)
      g = (*it)->backward(g);
  }
  return input_proj_.backward(g);
}

void QNetwork::collect_parameters(std::vector<nn::Parameter*>& out) {
  input_proj_.collect_parameters(out);
  for (const auto& block : blocks_) block->collect_parameters(out);
  for (const auto& layer : mlp_) layer->collect_parameters(out);
  final_norm_.collect_parameters(out);
  value_head_.collect_parameters(out);
}

std::optional<std::size_t> masked_argmax(const nn::Tensor& q,
                                         const ActionMask& mask) {
  MLCR_CHECK(q.cols() == 1 && mask.size() == q.rows());
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (!mask[i]) continue;
    if (!best || q(i, 0) > q(*best, 0)) best = i;
  }
  return best;
}

std::optional<float> masked_max(const nn::Tensor& q, const ActionMask& mask) {
  const auto idx = masked_argmax(q, mask);
  if (!idx) return std::nullopt;
  return q(*idx, 0);
}

}  // namespace mlcr::rl
