#include "rl/dqn.hpp"

#include <cmath>

#include "nn/serialize.hpp"
#include "obs/tracer.hpp"
#include "util/check.hpp"

namespace mlcr::rl {

DqnAgent::DqnAgent(DqnConfig config, util::Rng init_rng)
    : config_(config),
      online_(config.network, init_rng),
      target_(config.network, init_rng),
      optimizer_(online_.parameters(), config.learning_rate),
      replay_(config.replay_capacity) {
  nn::copy_parameters(online_, target_);
}

std::size_t DqnAgent::select_action(const nn::Tensor& state,
                                    const ActionMask& mask, float epsilon,
                                    util::Rng& rng) {
  MLCR_CHECK(mask.size() == online_.num_actions());
  if (rng.uniform() < epsilon) {
    // Uniform over allowed actions only: masking applies to exploration too
    // (paper Sec. IV-C — no purposeless exploration of no-match actions).
    std::vector<std::size_t> allowed;
    for (std::size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) allowed.push_back(i);
    MLCR_CHECK_MSG(!allowed.empty(), "no allowed action in mask");
    return allowed[rng.uniform_index(allowed.size())];
  }
  return greedy_action(state, mask);
}

std::size_t DqnAgent::greedy_action(const nn::Tensor& state,
                                    const ActionMask& mask) {
  const nn::Tensor q = online_.forward(state);
  const auto best = masked_argmax(q, mask);
  MLCR_CHECK_MSG(best.has_value(), "no allowed action in mask");
  return *best;
}

nn::Tensor DqnAgent::q_values(const nn::Tensor& state) {
  return online_.forward(state);
}

std::vector<nn::Tensor> DqnAgent::q_values_batch(
    const std::vector<const nn::Tensor*>& states) {
  return online_.forward_batch(states);
}

std::vector<std::size_t> DqnAgent::greedy_actions(
    const std::vector<const nn::Tensor*>& states,
    const std::vector<const ActionMask*>& masks) {
  MLCR_CHECK(states.size() == masks.size());
  const std::vector<nn::Tensor> qs = online_.forward_batch(states);
  std::vector<std::size_t> actions;
  actions.reserve(states.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto best = masked_argmax(qs[i], *masks[i]);
    MLCR_CHECK_MSG(best.has_value(), "no allowed action in mask");
    actions.push_back(*best);
  }
  return actions;
}

std::optional<float> DqnAgent::train_step(util::Rng& rng) {
  if (replay_.size() < config_.min_replay) return std::nullopt;

  const auto batch = replay_.sample(config_.batch_size, rng);
  online_.zero_grad();

  // Bootstrap targets, batched: one forward pass per network over all
  // non-terminal next states instead of one per transition. Pure inference
  // with frozen weights and row-wise/segment-confined batching, so every
  // target is bit-identical to the per-transition forwards it replaces
  // (asserted in tests/rl). An empty next mask (or terminal flag) means no
  // bootstrapping.
  std::vector<float> targets(batch.size());
  std::vector<std::size_t> boot_index;
  std::vector<const nn::Tensor*> next_states;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    targets[i] = batch[i]->reward;
    if (!batch[i]->terminal) {
      boot_index.push_back(i);
      next_states.push_back(&batch[i]->next_state);
    }
  }
  if (!next_states.empty()) {
    const std::vector<nn::Tensor> q_target_next =
        target_.forward_batch(next_states);
    if (config_.double_dqn) {
      const std::vector<nn::Tensor> q_online_next =
          online_.forward_batch(next_states);
      for (std::size_t j = 0; j < boot_index.size(); ++j) {
        const Transition* t = batch[boot_index[j]];
        if (const auto a_star = masked_argmax(q_online_next[j], t->next_mask))
          targets[boot_index[j]] +=
              config_.gamma * q_target_next[j](*a_star, 0);
      }
    } else {
      for (std::size_t j = 0; j < boot_index.size(); ++j) {
        const Transition* t = batch[boot_index[j]];
        if (const auto m = masked_max(q_target_next[j], t->next_mask))
          targets[boot_index[j]] += config_.gamma * *m;
      }
    }
  }

  float total_loss = 0.0F;
  const float inv_batch = 1.0F / static_cast<float>(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Transition* t = batch[i];
    const float target_value = targets[i];
    const nn::Tensor q = online_.forward(t->state);
    MLCR_CHECK(t->action < q.rows());
    const float td = q(t->action, 0) - target_value;

    // Huber loss and its derivative w.r.t. q[a].
    const float delta = config_.huber_delta;
    float loss, dloss;
    if (std::abs(td) <= delta) {
      loss = 0.5F * td * td;
      dloss = td;
    } else {
      loss = delta * (std::abs(td) - 0.5F * delta);
      dloss = td > 0.0F ? delta : -delta;
    }
    total_loss += loss;

    nn::Tensor grad_q(q.rows(), 1);
    grad_q(t->action, 0) = dloss * inv_batch;
    (void)online_.backward(grad_q);
  }

  optimizer_.clip_grad_norm(config_.grad_clip);
  optimizer_.step();

  ++train_steps_;
  const bool synced = train_steps_ % config_.target_sync_every == 0;
  if (synced) nn::copy_parameters(online_, target_);

  const float mean_loss = total_loss * inv_batch;
  if (tracer_ != nullptr && tracer_->enabled()) {
    // The gradient-step track: 1 train step = 1 "microsecond".
    const auto ts = static_cast<obs::Micros>(train_steps_);
    const std::uint32_t pid = obs::Tracer::kTrainPid;
    tracer_->counter(pid, 1, ts, "loss", static_cast<double>(mean_loss));
    tracer_->counter(pid, 1, ts, "replay_occupancy",
                     static_cast<double>(replay_.size()));
    tracer_->counter(pid, 1, ts, "target_staleness",
                     static_cast<double>(train_steps_ %
                                         config_.target_sync_every));
    if (synced) tracer_->instant(pid, 1, ts, "target_sync", "train");
  }
  return mean_loss;
}

void DqnAgent::save(const std::string& path) {
  nn::save_parameters(online_, path);
}

void DqnAgent::load(const std::string& path) {
  nn::load_parameters(online_, path);
  nn::copy_parameters(online_, target_);
}

std::vector<nn::Tensor> DqnAgent::snapshot_weights() {
  std::vector<nn::Tensor> out;
  for (const nn::Parameter* p : online_.parameters())
    out.push_back(p->value);
  return out;
}

void DqnAgent::restore_weights(const std::vector<nn::Tensor>& weights) {
  const auto params = online_.parameters();
  MLCR_CHECK(weights.size() == params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    MLCR_CHECK(weights[i].same_shape(params[i]->value));
    params[i]->value = weights[i];
  }
  nn::copy_parameters(online_, target_);
}

}  // namespace mlcr::rl
