#include "rl/replay_buffer.hpp"

#include "util/check.hpp"

namespace mlcr::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  MLCR_CHECK(capacity_ > 0);
  storage_.reserve(capacity_);
}

void ReplayBuffer::push(Transition t) {
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(t));
  } else {
    storage_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t batch,
                                                    util::Rng& rng) const {
  MLCR_CHECK_MSG(!storage_.empty(), "cannot sample an empty replay buffer");
  std::vector<const Transition*> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i)
    out.push_back(&storage_[rng.uniform_index(storage_.size())]);
  return out;
}

void ReplayBuffer::clear() {
  storage_.clear();
  next_ = 0;
}

}  // namespace mlcr::rl
