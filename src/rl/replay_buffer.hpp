// Experience replay (paper Algorithm 1: experiences (s_t, a_t, r_t, s_{t+1})
// are saved to a pool E and sampled in batches; the pool is reused across
// training rounds).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace mlcr::rl {

/// Action mask: mask[i] != 0 means action i may be selected (paper Sec. IV-C:
/// no-match containers are filtered out and never explored).
using ActionMask = std::vector<std::uint8_t>;

struct Transition {
  nn::Tensor state;      ///< token matrix (T x F)
  std::size_t action = 0;
  float reward = 0.0F;
  nn::Tensor next_state;  ///< token matrix of s_{t+1}
  ActionMask next_mask;   ///< valid actions in s_{t+1}
  bool terminal = false;  ///< end of episode: no bootstrap
};

/// Fixed-capacity ring buffer of transitions with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void push(Transition t);
  /// Sample `batch` indices uniformly with replacement. Requires !empty().
  [[nodiscard]] std::vector<const Transition*> sample(std::size_t batch,
                                                      util::Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return storage_.empty(); }
  void clear();

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< ring write cursor once full
  std::vector<Transition> storage_;
};

}  // namespace mlcr::rl
