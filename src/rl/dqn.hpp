// DQN agent (paper Sec. IV-B and Algorithm 1): epsilon-greedy behaviour
// policy over the masked action set, experience replay, a periodically
// synchronized target network, Huber TD loss, and optional double-DQN target
// estimation (reduces overestimation; can be disabled to match vanilla DQN).
#pragma once

#include <memory>
#include <string>

#include "nn/optimizer.hpp"
#include "rl/qnetwork.hpp"
#include "rl/replay_buffer.hpp"

namespace mlcr::obs {
class Tracer;
}

namespace mlcr::rl {

struct DqnConfig {
  QNetworkConfig network;
  float learning_rate = 1e-3F;
  float gamma = 0.95F;  ///< discount over invocation steps
  std::size_t replay_capacity = 20'000;
  std::size_t batch_size = 32;
  /// Minimum stored transitions before training starts.
  std::size_t min_replay = 256;
  /// Hard target-network sync period, in train steps.
  std::size_t target_sync_every = 200;
  bool double_dqn = true;
  float grad_clip = 5.0F;
  float huber_delta = 1.0F;
};

class DqnAgent {
 public:
  DqnAgent(DqnConfig config, util::Rng init_rng);

  /// Epsilon-greedy action over allowed entries of `mask`. Requires at least
  /// one allowed action (cold start is always allowed in MLCR states).
  [[nodiscard]] std::size_t select_action(const nn::Tensor& state,
                                          const ActionMask& mask,
                                          float epsilon, util::Rng& rng);

  /// Greedy (evaluation) action.
  [[nodiscard]] std::size_t greedy_action(const nn::Tensor& state,
                                          const ActionMask& mask);

  /// Raw Q-values for a state (online network).
  [[nodiscard]] nn::Tensor q_values(const nn::Tensor& state);

  /// Batched q_values: one forward pass over all states (QNetwork::
  /// forward_batch), bit-identical per state to q_values().
  [[nodiscard]] std::vector<nn::Tensor> q_values_batch(
      const std::vector<const nn::Tensor*>& states);

  /// Batched greedy_action over parallel state/mask arrays: one forward
  /// pass, bit-identical per entry to greedy_action().
  [[nodiscard]] std::vector<std::size_t> greedy_actions(
      const std::vector<const nn::Tensor*>& states,
      const std::vector<const ActionMask*>& masks);

  void observe(Transition transition) { replay_.push(std::move(transition)); }

  /// One gradient step on a sampled batch; returns the mean Huber loss, or
  /// nullopt when the replay buffer has fewer than min_replay transitions.
  std::optional<float> train_step(util::Rng& rng);

  [[nodiscard]] const DqnConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t train_steps() const noexcept {
    return train_steps_;
  }
  [[nodiscard]] const ReplayBuffer& replay() const noexcept { return replay_; }
  [[nodiscard]] QNetwork& online_network() noexcept { return online_; }

  void save(const std::string& path);
  void load(const std::string& path);

  /// Attach a tracer: every successful train_step() emits loss / replay
  /// occupancy / target-staleness counters on the gradient-step track
  /// (obs::Tracer::kTrainPid, tid 1), timestamped by the train-step index —
  /// deterministic, no clock involved. nullptr detaches; not owned.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Snapshot / restore the online network's weights (used by the trainer's
  /// validation-based checkpoint selection). restore also syncs the target.
  [[nodiscard]] std::vector<nn::Tensor> snapshot_weights();
  void restore_weights(const std::vector<nn::Tensor>& weights);

 private:
  DqnConfig config_;
  QNetwork online_;
  QNetwork target_;
  nn::Adam optimizer_;
  ReplayBuffer replay_;
  std::size_t train_steps_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace mlcr::rl
