// Exploration-rate schedules for epsilon-greedy action selection.
#pragma once

#include <algorithm>
#include <cstddef>

namespace mlcr::rl {

/// Linearly anneals epsilon from `start` to `end` over `decay_steps`, then
/// stays at `end`.
class LinearEpsilon {
 public:
  LinearEpsilon(float start, float end, std::size_t decay_steps)
      : start_(start), end_(end), decay_steps_(decay_steps) {}

  [[nodiscard]] float value(std::size_t step) const noexcept {
    if (decay_steps_ == 0 || step >= decay_steps_) return end_;
    const float frac =
        static_cast<float>(step) / static_cast<float>(decay_steps_);
    return start_ + (end_ - start_) * frac;
  }

 private:
  float start_;
  float end_;
  std::size_t decay_steps_;
};

}  // namespace mlcr::rl
