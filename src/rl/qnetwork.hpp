// Policy/Q network (paper Fig. 7): the state is a token matrix — one cluster
// token, one function token, and one token per warm-pool slot — which is
// projected into an embedding space, passed through two multi-head-attention
// (transformer) layers, and reduced to one Q-value per action by a linear
// head. Action i in [0, n) reuses slot i's container; action n is cold start
// (paper Sec. IV-B). A mask filters manifestly wrong actions (Sec. IV-C).
#pragma once

#include <memory>
#include <optional>

#include "nn/attention.hpp"
#include "rl/replay_buffer.hpp"

namespace mlcr::rl {

struct QNetworkConfig {
  std::size_t feature_dim = 16;  ///< per-token input features F
  std::size_t num_slots = 16;    ///< warm-pool slots n; actions = n + 1
  std::size_t embed_dim = 64;    ///< d (paper uses 512; scaled for CPU)
  std::size_t heads = 2;         ///< attention heads (paper: 2)
  std::size_t blocks = 2;        ///< attention layers (paper: 2)
  std::size_t ffn_dim = 128;     ///< transformer feed-forward width
  /// If true, use an MLP instead of attention blocks (ablation, Sec. IV-C).
  bool use_attention = true;
};

/// Token layout inside the state matrix.
inline constexpr std::size_t kClusterTokenRow = 0;
inline constexpr std::size_t kFunctionTokenRow = 1;
inline constexpr std::size_t kFirstSlotTokenRow = 2;

class QNetwork final : public nn::Module {
 public:
  QNetwork(QNetworkConfig config, util::Rng& rng);

  /// tokens: ((2 + num_slots) x feature_dim) -> Q: ((num_slots + 1) x 1).
  [[nodiscard]] nn::Tensor forward(const nn::Tensor& tokens) override;

  /// Inference-only batched forward: one pass over all `states` (each a
  /// token matrix as forward() takes) with every row-wise layer applied to
  /// the stacked (B * num_tokens) matrix and attention confined per state.
  /// states[i]'s Q vector is bit-identical to forward(*states[i]) —
  /// asserted in tests/rl. Clobbers the forward caches, so backward() is
  /// invalid until the next forward().
  [[nodiscard]] std::vector<nn::Tensor> forward_batch(
      const std::vector<const nn::Tensor*>& states);

  [[nodiscard]] nn::Tensor backward(const nn::Tensor& grad_q) override;
  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  [[nodiscard]] std::string name() const override { return "QNetwork"; }

  [[nodiscard]] const QNetworkConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t num_actions() const noexcept {
    return config_.num_slots + 1;
  }
  [[nodiscard]] std::size_t num_tokens() const noexcept {
    return kFirstSlotTokenRow + config_.num_slots;
  }

 private:
  QNetworkConfig config_;
  nn::Linear input_proj_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  /// MLP path for the no-attention ablation.
  std::vector<std::unique_ptr<nn::Module>> mlp_;
  nn::LayerNorm final_norm_;
  nn::Linear value_head_;
  std::size_t cached_tokens_ = 0;
};

/// argmax over allowed actions; `mask` has q.rows() entries (mask[i] != 0
/// means allowed). Returns nullopt if nothing is allowed.
[[nodiscard]] std::optional<std::size_t> masked_argmax(const nn::Tensor& q,
                                                       const ActionMask& mask);
/// max Q over allowed actions; nullopt if nothing is allowed.
[[nodiscard]] std::optional<float> masked_max(const nn::Tensor& q,
                                              const ActionMask& mask);

}  // namespace mlcr::rl
