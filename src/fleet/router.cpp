#include "fleet/router.hpp"

#include <algorithm>
#include <optional>

#include "containers/matching.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/fleet_index.hpp"
#include "util/check.hpp"

namespace mlcr::fleet {

namespace {

/// One splitmix64 pass: a cheap, well-mixed 64-bit hash step.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) noexcept {
  return util::splitmix64(x);
}

[[nodiscard]] std::size_t least_outstanding_node(const FleetEnv& fleet) {
  // Index fast path: the ordered load set's minimum is exactly what the
  // linear scan below picks (min busy, lowest index on ties). Both cover
  // the routable prefix only — spares join as crash events admit them.
  if (const FleetIndex* index = fleet.index())
    return index->least_outstanding();
  std::size_t best = 0;
  for (std::size_t i = 1; i < fleet.routable_count(); ++i)
    if (fleet.node(i).busy_count() < fleet.node(best).busy_count()) best = i;
  return best;
}

/// Healthy routable node with the fewest in-flight executions (lowest index
/// on ties); nullopt when the whole routable fleet is down. The failover
/// contract of FailoverRouter and FleetEnv::run()'s reroute path.
[[nodiscard]] std::optional<std::size_t> least_outstanding_healthy_node(
    const FleetEnv& fleet) {
  if (const FleetIndex* index = fleet.index())
    return index->least_outstanding_healthy();
  std::size_t best = fleet.routable_count();
  for (std::size_t i = 0; i < fleet.routable_count(); ++i) {
    if (!fleet.node_up(i)) continue;
    if (best == fleet.routable_count() ||
        fleet.node(i).busy_count() < fleet.node(best).busy_count())
      best = i;
  }
  if (best == fleet.routable_count()) return std::nullopt;
  return best;
}

}  // namespace

std::uint64_t affinity_key(const containers::ImageSpec& image) noexcept {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (const containers::Level level :
       {containers::Level::kOs, containers::Level::kLanguage})
    for (const containers::PackageId id : image.level(level))
      h = mix(h ^ (static_cast<std::uint64_t>(id) + 1));
  return h;
}

std::vector<HashRingPoint> build_hash_ring(std::size_t nodes,
                                           std::size_t virtual_nodes) {
  MLCR_CHECK(nodes > 0 && virtual_nodes > 0);
  std::vector<HashRingPoint> ring;
  ring.reserve(nodes * virtual_nodes);
  for (std::size_t node = 0; node < nodes; ++node) {
    // Each (node, replica) pair gets a deterministic ring position; the
    // double-mix decorrelates adjacent indices.
    std::uint64_t h = mix(0xF1EE7000ULL + node);
    for (std::size_t v = 0; v < virtual_nodes; ++v) {
      h = mix(h + v + 1);
      ring.push_back({h, node});
    }
  }
  std::sort(ring.begin(), ring.end(),
            [](const HashRingPoint& a, const HashRingPoint& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.node < b.node;  // deterministic on (improbable) ties
            });
  return ring;
}

std::size_t hash_ring_pick(const std::vector<HashRingPoint>& ring,
                           std::uint64_t key) {
  MLCR_CHECK_MSG(!ring.empty(), "pick on an empty hash ring");
  auto it = std::lower_bound(ring.begin(), ring.end(), key,
                             [](const HashRingPoint& p, std::uint64_t k) {
                               return p.hash < k;
                             });
  if (it == ring.end()) it = ring.begin();
  return it->node;
}

void RandomRouter::on_episode_start(const FleetEnv& fleet) {
  (void)fleet;
  rng_ = util::Rng(seed_);
}

std::size_t RandomRouter::route(const FleetEnv& fleet,
                                const sim::Invocation& inv) {
  (void)inv;
  MLCR_CHECK_MSG(fleet.routable_count() > 0, "route() over an empty fleet");
  return rng_.uniform_index(fleet.routable_count());
}

void RoundRobinRouter::on_episode_start(const FleetEnv& fleet) {
  (void)fleet;
  next_ = 0;
}

std::size_t RoundRobinRouter::route(const FleetEnv& fleet,
                                    const sim::Invocation& inv) {
  (void)inv;
  MLCR_CHECK_MSG(next_ < fleet.routable_count(),
                 "round-robin cursor outside the fleet");
  const std::size_t node = next_;
  next_ = (next_ + 1) % fleet.routable_count();
  return node;
}

std::size_t LeastOutstandingRouter::route(const FleetEnv& fleet,
                                          const sim::Invocation& inv) {
  (void)inv;
  MLCR_CHECK_MSG(fleet.routable_count() > 0, "route() over an empty fleet");
  return least_outstanding_node(fleet);
}

ConsistentHashRouter::ConsistentHashRouter(std::size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes) {
  MLCR_CHECK(virtual_nodes_ > 0);
}

void ConsistentHashRouter::on_episode_start(const FleetEnv& fleet) {
  // The ring covers the episode's initial routable set. Spares admitted
  // mid-episode stay off the ring — affinity keys keep their mapping and
  // spares absorb traffic through failover / least-outstanding paths.
  ring_ = build_hash_ring(fleet.routable_count(), virtual_nodes_);
}

std::size_t ConsistentHashRouter::route(const FleetEnv& fleet,
                                        const sim::Invocation& inv) {
  MLCR_CHECK_MSG(!ring_.empty(), "route() before on_episode_start()");
  return hash_ring_pick(ring_,
                        affinity_key(fleet.functions().get(inv.function).image));
}

std::size_t WarmAwareRouter::route(const FleetEnv& fleet,
                                   const sim::Invocation& inv) {
  MLCR_CHECK_MSG(fleet.routable_count() > 0, "route() over an empty fleet");
  const auto& fn_image = fleet.functions().get(inv.function).image;

  // Index fast path: the warm index maps a level key to the nodes holding a
  // match at >= that level, so the best level is the first non-empty lookup
  // from L3 down. At that level every candidate's best match is exactly the
  // level (a better one would have answered the higher lookup), so the
  // (busy, free memory, index) tie-break below reproduces the scan's choice
  // bit for bit.
  const FleetIndex* index = fleet.index();
  if (index != nullptr && index->tracks_warm()) {
    for (const containers::MatchLevel level :
         {containers::MatchLevel::kL3, containers::MatchLevel::kL2,
          containers::MatchLevel::kL1}) {
      const auto* candidates = index->nodes_matching(fn_image, level);
      if (candidates == nullptr) continue;
      std::size_t best = fleet.node_count();
      for (const auto& [node, count] : *candidates) {
        (void)count;
        if (best == fleet.node_count()) {
          best = node;
          continue;
        }
        const sim::ClusterEnv& env = fleet.node(node);
        const sim::ClusterEnv& best_env = fleet.node(best);
        if (env.busy_count() < best_env.busy_count() ||
            (env.busy_count() == best_env.busy_count() &&
             env.pool().free_mb() > best_env.pool().free_mb()))
          best = node;
      }
      return best;
    }
    return least_outstanding_node(fleet);
  }

  std::size_t best_node = fleet.node_count();
  containers::MatchLevel best_level = containers::MatchLevel::kNoMatch;
  for (std::size_t i = 0; i < fleet.routable_count(); ++i) {
    const sim::ClusterEnv& env = fleet.node(i);
    containers::MatchLevel node_best = containers::MatchLevel::kNoMatch;
    for (const containers::Container* c : env.pool().idle_containers()) {
      node_best = std::max(node_best, containers::match(fn_image, c->image));
      if (node_best == containers::MatchLevel::kL3) break;
    }
    if (!containers::reusable(node_best)) continue;
    if (best_node == fleet.node_count()) {
      best_node = i;
      best_level = node_best;
      continue;
    }
    const sim::ClusterEnv& best_env = fleet.node(best_node);
    const bool better =
        node_best > best_level ||
        (node_best == best_level &&
         (env.busy_count() < best_env.busy_count() ||
          (env.busy_count() == best_env.busy_count() &&
           env.pool().free_mb() > best_env.pool().free_mb())));
    if (better) {
      best_node = i;
      best_level = node_best;
    }
  }
  if (best_node != fleet.node_count()) return best_node;
  // Fleet-wide cold start: place it where the least work is outstanding.
  return least_outstanding_node(fleet);
}

FailoverRouter::FailoverRouter(std::unique_ptr<Router> inner)
    : inner_(std::move(inner)) {
  MLCR_CHECK(inner_ != nullptr);
}

void FailoverRouter::on_episode_start(const FleetEnv& fleet) {
  inner_->on_episode_start(fleet);
}

std::size_t FailoverRouter::route(const FleetEnv& fleet,
                                  const sim::Invocation& inv) {
  const std::size_t target = inner_->route(fleet, inv);
  MLCR_CHECK_MSG(target < fleet.routable_count(),
                 "inner router picked an invalid node");
  if (fleet.node_up(target)) return target;
  // Every node down: return the inner choice; FleetEnv::run() counts the
  // invocation as lost.
  return least_outstanding_healthy_node(fleet).value_or(target);
}

bool FailoverRouter::needs_warm_index() const {
  return inner_->needs_warm_index();
}

std::string FailoverRouter::name() const {
  return "Failover(" + inner_->name() + ")";
}

HealthAwareRouter::HealthAwareRouter(std::unique_ptr<Router> inner,
                                     double alpha, double threshold)
    : inner_(std::move(inner)), alpha_(alpha), threshold_(threshold) {
  MLCR_CHECK(inner_ != nullptr);
  MLCR_CHECK_MSG(alpha_ > 0.0 && alpha_ <= 1.0,
                 "EWMA smoothing factor must be in (0, 1], got " << alpha_);
  MLCR_CHECK_MSG(threshold_ >= 0.0 && threshold_ <= 1.0,
                 "failure-rate threshold must be in [0, 1], got "
                     << threshold_);
}

void HealthAwareRouter::on_episode_start(const FleetEnv& fleet) {
  inner_->on_episode_start(fleet);
  ewma_.assign(fleet.node_count(), 0.0);
  last_failed_.assign(fleet.node_count(), 0);
}

void HealthAwareRouter::observe(const FleetEnv& fleet) {
  // One EWMA step per route() call, over every node (spares included, so
  // their signal is current the moment they become routable). The failure
  // signal is 1 while the node is down or failed an invocation since the
  // last observation, 0 otherwise — all read from deterministic simulator
  // state, so the router is replayable under SimClock.
  for (std::size_t i = 0; i < fleet.node_count(); ++i) {
    const std::size_t failed = fleet.node(i).metrics().failed_count();
    const double signal =
        (!fleet.node_up(i) || failed > last_failed_[i]) ? 1.0 : 0.0;
    ewma_[i] = alpha_ * signal + (1.0 - alpha_) * ewma_[i];
    last_failed_[i] = failed;
  }
}

std::size_t HealthAwareRouter::route(const FleetEnv& fleet,
                                     const sim::Invocation& inv) {
  MLCR_CHECK_MSG(ewma_.size() == fleet.node_count(),
                 "route() before on_episode_start()");
  observe(fleet);
  const std::size_t target = inner_->route(fleet, inv);
  MLCR_CHECK_MSG(target < fleet.routable_count(),
                 "inner router picked an invalid node");
  if (fleet.node_up(target) && ewma_[target] <= threshold_) return target;
  // Steer to the healthy routable node with the lowest failure EWMA; ties
  // break to fewer in-flight executions, then the lowest index.
  std::size_t best = fleet.routable_count();
  for (std::size_t i = 0; i < fleet.routable_count(); ++i) {
    if (!fleet.node_up(i)) continue;
    if (best == fleet.routable_count()) {
      best = i;
      continue;
    }
    if (ewma_[i] < ewma_[best] ||
        (ewma_[i] == ewma_[best] &&
         fleet.node(i).busy_count() < fleet.node(best).busy_count()))
      best = i;
  }
  // Whole routable fleet down: return the inner choice; FleetEnv::run()
  // counts the invocation as lost.
  if (best == fleet.routable_count()) return target;
  return best;
}

bool HealthAwareRouter::needs_warm_index() const {
  return inner_->needs_warm_index();
}

std::string HealthAwareRouter::name() const {
  return "Health-Aware(" + inner_->name() + ")";
}

std::vector<RouterSpec> standard_routers(std::uint64_t seed) {
  std::vector<RouterSpec> routers;
  routers.push_back(
      {"Random", [seed] { return std::make_unique<RandomRouter>(seed); }});
  routers.push_back(
      {"Round-Robin", [] { return std::make_unique<RoundRobinRouter>(); }});
  routers.push_back({"Least-Outstanding",
                     [] { return std::make_unique<LeastOutstandingRouter>(); }});
  routers.push_back({"Hash-Affinity",
                     [] { return std::make_unique<ConsistentHashRouter>(); }});
  routers.push_back(
      {"Warm-Aware", [] { return std::make_unique<WarmAwareRouter>(); }});
  return routers;
}

RouterSpec with_failover(RouterSpec spec) {
  RouterSpec wrapped;
  wrapped.name = "Failover(" + spec.name + ")";
  wrapped.make = [make = std::move(spec.make)] {
    return std::make_unique<FailoverRouter>(make());
  };
  return wrapped;
}

RouterSpec with_health_aware(RouterSpec spec, double alpha, double threshold) {
  RouterSpec wrapped;
  wrapped.name = "Health-Aware(" + spec.name + ")";
  wrapped.make = [make = std::move(spec.make), alpha, threshold] {
    return std::make_unique<HealthAwareRouter>(make(), alpha, threshold);
  };
  return wrapped;
}

}  // namespace mlcr::fleet
