#include "fleet/fleet_index.hpp"

#include "sim/env.hpp"
#include "util/check.hpp"

namespace mlcr::fleet {

namespace {

/// Match levels in ImageSpec level order: kL1 is the OS prefix, kL2 adds
/// language, kL3 adds runtime.
constexpr std::array<containers::MatchLevel, 3> kMatchLevels = {
    containers::MatchLevel::kL1, containers::MatchLevel::kL2,
    containers::MatchLevel::kL3};

[[nodiscard]] std::size_t level_index(containers::MatchLevel level) {
  MLCR_CHECK(containers::reusable(level));
  return static_cast<std::size_t>(level) - 1;
}

}  // namespace

std::string FleetIndex::level_key(const containers::ImageSpec& image,
                                  containers::MatchLevel level) {
  std::string key;
  for (std::size_t l = 0; l <= level_index(level); ++l) {
    if (l > 0) key += '|';
    const auto& packages = image.level(static_cast<containers::Level>(l));
    for (std::size_t i = 0; i < packages.size(); ++i) {
      if (i > 0) key += ',';
      key += std::to_string(packages[i]);
    }
  }
  return key;
}

FleetIndex::FleetIndex(std::size_t nodes, bool track_warm)
    : track_warm_(track_warm), nodes_(nodes) {
  MLCR_CHECK(nodes > 0);
}

void FleetIndex::update(std::size_t node, const sim::ClusterEnv& env) {
  MLCR_CHECK(node < nodes_.size());
  NodeEntry& entry = nodes_[node];

  const std::size_t busy = env.busy_count();
  const bool up = !env.down();
  if (entry.in_load && entry.routable) {
    load_all_.erase({entry.busy, node});
    if (entry.up) load_healthy_.erase({entry.busy, node});
  }
  if (entry.routable) {
    load_all_.insert({busy, node});
    if (up) load_healthy_.insert({busy, node});
  }
  entry.busy = busy;
  entry.up = up;
  // A crashed node keeps its last free_mb reading: its pool object survives
  // the crash (emptied, not destroyed), and routers never consult down
  // nodes' memory anyway.
  entry.free_mb = env.pool().free_mb();
  entry.in_load = true;

  if (!track_warm_) return;
  std::array<std::map<std::string, std::size_t>, 3> fresh;
  for (const containers::Container* c : env.pool().idle_containers())
    for (std::size_t l = 0; l < kMatchLevels.size(); ++l)
      ++fresh[l][level_key(c->image, kMatchLevels[l])];
  for (std::size_t l = 0; l < kMatchLevels.size(); ++l) {
    if (fresh[l] == entry.keys[l]) continue;
    for (const auto& [key, count] : entry.keys[l]) {
      auto it = warm_[l].find(key);
      MLCR_CHECK(it != warm_[l].end());
      it->second.erase(node);
      if (it->second.empty()) warm_[l].erase(it);
      (void)count;
    }
    for (const auto& [key, count] : fresh[l]) warm_[l][key][node] = count;
    entry.keys[l] = fresh[l];
  }
}

void FleetIndex::set_routable(std::size_t node, bool routable) {
  MLCR_CHECK(node < nodes_.size());
  NodeEntry& entry = nodes_[node];
  if (entry.routable == routable) return;
  entry.routable = routable;
  if (!entry.in_load) return;
  if (routable) {
    load_all_.insert({entry.busy, node});
    if (entry.up) load_healthy_.insert({entry.busy, node});
  } else {
    load_all_.erase({entry.busy, node});
    if (entry.up) load_healthy_.erase({entry.busy, node});
  }
}

std::size_t FleetIndex::least_outstanding() const {
  MLCR_CHECK_MSG(!load_all_.empty(),
                 "least_outstanding() before any update()");
  return load_all_.begin()->second;
}

std::optional<std::size_t> FleetIndex::least_outstanding_healthy() const {
  if (load_healthy_.empty()) return std::nullopt;
  return load_healthy_.begin()->second;
}

std::optional<std::pair<std::size_t, std::size_t>>
FleetIndex::least_outstanding_entry() const {
  if (load_all_.empty()) return std::nullopt;
  return *load_all_.begin();
}

std::optional<std::pair<std::size_t, std::size_t>>
FleetIndex::least_outstanding_healthy_entry() const {
  if (load_healthy_.empty()) return std::nullopt;
  return *load_healthy_.begin();
}

FleetIndex::NodeLoad FleetIndex::node_load(std::size_t node) const {
  MLCR_CHECK(node < nodes_.size());
  const NodeEntry& entry = nodes_[node];
  return {entry.busy, entry.up, entry.free_mb, entry.in_load, entry.routable};
}

const std::map<std::size_t, std::size_t>* FleetIndex::nodes_matching(
    const containers::ImageSpec& image, containers::MatchLevel level) const {
  MLCR_CHECK_MSG(track_warm_, "warm lookup on a load-only index");
  const auto& by_key = warm_[level_index(level)];
  const auto it = by_key.find(level_key(image, level));
  if (it == by_key.end()) return nullptr;
  return &it->second;
}

}  // namespace mlcr::fleet
