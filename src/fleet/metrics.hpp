// Fleet-wide metrics: merges per-node MetricsCollector output into one
// cluster-level summary (total/average startup latency, cold starts, warm
// starts by Table-I level, aggregate pool memory) plus per-node breakdowns
// and routing-balance measures.
#pragma once

#include <string>
#include <vector>

#include "policies/runner.hpp"
#include "sim/metrics.hpp"

namespace mlcr::fleet {

/// One node's view after an episode: its summary row and (optionally) its
/// raw metrics records for fleet-wide series.
struct NodeObservation {
  policies::EpisodeSummary summary;
  const sim::MetricsCollector* metrics = nullptr;  ///< may be null
};

/// Cluster-level episode result.
struct FleetSummary {
  std::string router;  ///< routing policy that produced the assignment
  std::string system;  ///< per-node scheduler system (e.g. "Greedy-Match")
  std::size_t nodes = 0;

  /// Fleet-wide totals. Latency/cold/warm fields are sums over nodes;
  /// peak_pool_mb is the sum of per-node peaks (aggregate warm memory);
  /// average_latency_s is total latency over total invocations.
  policies::EpisodeSummary total;

  /// Per-node summaries, indexed by node.
  std::vector<policies::EpisodeSummary> per_node;

  /// Max over nodes of invocations routed there, divided by the balanced
  /// share (total/nodes); 1.0 = perfectly balanced, nodes = all on one node.
  double routing_imbalance = 0.0;

  // Fault-episode accounting (DESIGN.md §9); all 0 on a faultless run.
  /// Invocations dropped because every node was down when they arrived.
  std::size_t lost = 0;
  /// Invocations the fleet re-routed off a crashed target node.
  std::size_t rerouted = 0;
  /// Node crash / recovery events over the episode.
  std::size_t node_crashes = 0;
  std::size_t node_recoveries = 0;
  /// Domain-level crash events (one per correlated (domain, down_at) group
  /// of windows, however many member nodes it hit; DESIGN.md §14).
  std::size_t domain_crashes = 0;
  /// Of node_crashes: partial crashes, where the warm pool survived.
  std::size_t partial_crashes = 0;
  /// Cold spares admitted into the routable set by crash events.
  std::size_t spares_activated = 0;

  /// Fraction of *offered* invocations that were served: lost ones never
  /// reached a node and failed ones died there. 1.0 when nothing was
  /// offered.
  [[nodiscard]] double goodput() const noexcept {
    const std::size_t offered = total.invocations + lost;
    if (offered == 0) return 1.0;
    return static_cast<double>(total.invocations - total.failed) /
           static_cast<double>(offered);
  }

  /// All invocation records across nodes, re-ordered by global trace
  /// sequence (for fleet-wide cumulative series). Populated only when the
  /// observations carried metrics pointers.
  sim::MetricsCollector merged;
};

/// Merge per-node observations into a FleetSummary. `system` names the
/// per-node scheduler family; per-node scheduler names are preserved in
/// per_node[i].scheduler.
[[nodiscard]] FleetSummary aggregate_fleet(
    std::string router, std::string system,
    const std::vector<NodeObservation>& nodes);

}  // namespace mlcr::fleet
