// Front-end request routing for a multi-node fleet. The router decides
// *which node* sees an invocation before that node's own scheduler decides
// *which container* serves it — at cluster scale this placement step
// dominates cold-start outcomes, because a warm container on the wrong node
// is worth nothing.
//
// Five policies:
//   Random            — seeded uniform choice; the sanity floor.
//   Round-Robin       — classic load spreading, oblivious to warm state.
//   Least-Outstanding — fewest in-flight executions (power-of-all-choices).
//   Hash-Affinity     — consistent hashing on the function image's OS +
//                       language levels: functions sharing a package stack
//                       colocate, so Table-I L2/L3 matches stay possible,
//                       and the mapping is stable as nodes are added.
//   Warm-Aware        — inspect every node's pool and route to the best
//                       Table-I match for this invocation (the fleet analog
//                       of Greedy-Match; an upper bound for state-aware
//                       routing at O(nodes × pool) cost per request).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/invocation.hpp"
#include "util/rng.hpp"

namespace mlcr::containers {
class ImageSpec;
}

namespace mlcr::fleet {

class FleetEnv;

/// Hash of the OS + language package lists of an image: the affinity key of
/// ConsistentHashRouter. The runtime level is deliberately excluded so that
/// functions differing only in their runtime packages still colocate (and
/// can serve each other at Table-I L2). Shared with the serving layer's
/// HashAffinityPolicy so live routing and replay agree bit-for-bit.
[[nodiscard]] std::uint64_t affinity_key(
    const containers::ImageSpec& image) noexcept;

/// One virtual node on the consistent-hash ring.
struct HashRingPoint {
  std::uint64_t hash = 0;
  std::size_t node = 0;
};

/// Build the sorted ring of `nodes` x `virtual_nodes` deterministic points —
/// the per-episode state of ConsistentHashRouter, factored out so the
/// serving layer constructs the identical ring.
[[nodiscard]] std::vector<HashRingPoint> build_hash_ring(
    std::size_t nodes, std::size_t virtual_nodes);

/// First ring point clockwise of `key` (wrapping). Requires a non-empty
/// sorted ring.
[[nodiscard]] std::size_t hash_ring_pick(
    const std::vector<HashRingPoint>& ring, std::uint64_t key);

class Router {
 public:
  virtual ~Router() = default;

  /// Called once per episode, before the first route(); resets per-episode
  /// state and lets ring-based routers size themselves to the fleet.
  virtual void on_episode_start(const FleetEnv& fleet) { (void)fleet; }

  /// Pick the node (in [0, fleet.node_count())) that serves `inv`.
  [[nodiscard]] virtual std::size_t route(const FleetEnv& fleet,
                                          const sim::Invocation& inv) = 0;

  /// True when this policy consults warm-pool state, so the event-driven
  /// fleet maintains the FleetIndex's warm side (an O(pool) recompute per
  /// node touch that load-only policies should not pay). Routers read the
  /// index via FleetEnv::index() when one is active and fall back to a
  /// linear scan otherwise; both paths are bit-identical by construction
  /// (asserted in tests/fleet).
  [[nodiscard]] virtual bool needs_warm_index() const { return false; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Seeded uniform-random node choice.
class RandomRouter final : public Router {
 public:
  explicit RandomRouter(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  void on_episode_start(const FleetEnv& fleet) override;
  [[nodiscard]] std::size_t route(const FleetEnv& fleet,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  std::uint64_t seed_;
  util::Rng rng_;
};

/// Cycles through nodes in index order.
class RoundRobinRouter final : public Router {
 public:
  void on_episode_start(const FleetEnv& fleet) override;
  [[nodiscard]] std::size_t route(const FleetEnv& fleet,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return "Round-Robin"; }

 private:
  std::size_t next_ = 0;
};

/// Node with the fewest in-flight executions; ties break to the lowest
/// index, so results are deterministic.
class LeastOutstandingRouter final : public Router {
 public:
  [[nodiscard]] std::size_t route(const FleetEnv& fleet,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override {
    return "Least-Outstanding";
  }
};

/// Consistent hashing with virtual nodes over the function image's OS and
/// language package levels. Functions that share an OS + language stack map
/// to the same node (preserving multi-level reuse), a single function type
/// always maps to one node (preserving classic L3 warm starts), and only
/// ~1/N of keys move when the fleet grows by one node.
class ConsistentHashRouter final : public Router {
 public:
  explicit ConsistentHashRouter(std::size_t virtual_nodes = 64);

  void on_episode_start(const FleetEnv& fleet) override;
  [[nodiscard]] std::size_t route(const FleetEnv& fleet,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] std::string name() const override { return "Hash-Affinity"; }

 private:
  std::size_t virtual_nodes_;
  std::vector<HashRingPoint> ring_;  ///< sorted by hash
};

/// Scans every node's warm pool for the best Table-I match with the
/// invocation's image and routes there. Ties break to the node with fewer
/// in-flight executions, then more free pool memory, then the lowest index.
/// When no node holds any match (a fleet-wide cold start), falls back to
/// least-outstanding placement.
class WarmAwareRouter final : public Router {
 public:
  [[nodiscard]] std::size_t route(const FleetEnv& fleet,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] bool needs_warm_index() const override { return true; }
  [[nodiscard]] std::string name() const override { return "Warm-Aware"; }
};

/// Wraps any router with crash awareness: when the inner policy picks a
/// node that is down, the invocation moves to the healthy node with the
/// fewest in-flight executions (lowest index on ties). When every node is
/// down the inner choice is returned unchanged and FleetEnv::run() counts
/// the invocation as lost. The inner router still observes every request,
/// so its per-episode state (round-robin cursor, hash ring) stays intact.
class FailoverRouter final : public Router {
 public:
  explicit FailoverRouter(std::unique_ptr<Router> inner);

  void on_episode_start(const FleetEnv& fleet) override;
  [[nodiscard]] std::size_t route(const FleetEnv& fleet,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] bool needs_warm_index() const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::unique_ptr<Router> inner_;
};

/// Health-aware recovery baseline (DESIGN.md §14): wraps any router with a
/// per-node failure-rate tracker. Every route() observation folds each
/// node's state into an EWMA — signal 1 while the node is down or it failed
/// an invocation since the last look, 0 otherwise — and when the inner
/// policy picks a node that is down *or* whose EWMA exceeds the threshold,
/// the invocation steers to the healthy routable node with the lowest EWMA
/// (ties: fewer in-flight executions, then lowest index). Crashed and
/// recently-flaky nodes shed load until their EWMA decays, which spreads
/// the recovery cold-start storm instead of replaying it into the node
/// that just rejoined. Purely a function of observed simulator state: no
/// RNG, deterministic and replayable under SimClock.
class HealthAwareRouter final : public Router {
 public:
  explicit HealthAwareRouter(std::unique_ptr<Router> inner,
                             double alpha = 0.3, double threshold = 0.5);

  void on_episode_start(const FleetEnv& fleet) override;
  [[nodiscard]] std::size_t route(const FleetEnv& fleet,
                                  const sim::Invocation& inv) override;
  [[nodiscard]] bool needs_warm_index() const override;
  [[nodiscard]] std::string name() const override;

 private:
  /// Fold the fleet's current health into the per-node EWMAs.
  void observe(const FleetEnv& fleet);

  std::unique_ptr<Router> inner_;
  double alpha_;      ///< EWMA smoothing factor, in (0, 1]
  double threshold_;  ///< steer away above this failure rate, in [0, 1]
  std::vector<double> ewma_;  ///< per-node failure-rate estimate
  std::vector<std::size_t> last_failed_;  ///< failed_count() at last look
};

/// A named router source, so benches can sweep policies the way they sweep
/// systems (each episode gets a fresh router instance).
struct RouterSpec {
  std::string name;
  std::function<std::unique_ptr<Router>()> make;
};

/// The five standard policies. `seed` feeds the random router.
[[nodiscard]] std::vector<RouterSpec> standard_routers(std::uint64_t seed = 1);

/// Wrap a RouterSpec so every produced instance is failover-aware.
[[nodiscard]] RouterSpec with_failover(RouterSpec spec);

/// Wrap a RouterSpec so every produced instance is health-aware (EWMA
/// failure tracking; see HealthAwareRouter).
[[nodiscard]] RouterSpec with_health_aware(RouterSpec spec,
                                           double alpha = 0.3,
                                           double threshold = 0.5);

}  // namespace mlcr::fleet
