#include "fleet/fleet_env.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <utility>

#include "faults/injector.hpp"
#include "fleet/router.hpp"
#include "obs/tracer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace mlcr::fleet {

namespace {

/// Invariant auditor for a completed fleet episode: every node's summary
/// agrees with its metrics collector, and the per-node invocation counts sum
/// to the global trace — no invocation lost or duplicated by routing.
[[maybe_unused]] void audit_fleet_run(
    const sim::Trace& trace,
    const std::vector<NodeObservation>& observations, std::size_t lost) {
  std::size_t routed = 0;
  for (const NodeObservation& obs : observations) {
    MLCR_CHECK(obs.metrics != nullptr);
    obs.metrics->audit();
    MLCR_CHECK_MSG(obs.summary.invocations == obs.metrics->invocation_count(),
                   "node summary and metrics disagree on invocation count");
    routed += obs.summary.invocations;
  }
  MLCR_CHECK_MSG(routed + lost == trace.size(),
                 "fleet routed " << routed << " and lost " << lost
                                 << " invocations of a trace of "
                                 << trace.size());
}

}  // namespace

NodeSystemFactory uniform_system(std::function<policies::SystemSpec()> make) {
  MLCR_CHECK(make != nullptr);
  return [make = std::move(make)](std::size_t node, util::Rng rng) {
    (void)node;
    (void)rng;
    return make();
  };
}

FleetEnv::FleetEnv(const sim::FunctionTable& functions,
                   const containers::PackageCatalog& catalog,
                   const sim::StartupCostModel& cost_model, FleetConfig config,
                   const NodeSystemFactory& make_system)
    : functions_(functions), catalog_(catalog), config_(config) {
  MLCR_CHECK_MSG(config_.nodes > 0, "a fleet needs at least one node");
  MLCR_CHECK(make_system != nullptr);
  const std::size_t total = config_.nodes + config_.spare_nodes;
  config_.faults.validate(total);
  routable_count_ = config_.nodes;
  util::Rng master(config_.seed);
  nodes_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    Node node;
    node.spec = make_system(i, master.split());
    MLCR_CHECK(node.spec.scheduler != nullptr);
    MLCR_CHECK(node.spec.eviction_factory != nullptr);
    sim::EnvConfig env_cfg = config_.node_env;
    env_cfg.keep_alive_ttl_s = node.spec.keep_alive_ttl_s;
    env_cfg.reuse_semantics = node.spec.reuse_semantics;
    node.env = std::make_unique<sim::ClusterEnv>(
        functions_, catalog_, cost_model, env_cfg, node.spec.eviction_factory);
    nodes_.push_back(std::move(node));
  }
  system_name_ = nodes_.front().spec.name;
  // One extra split after the node streams: adding faults to a config must
  // not shift the streams the node factories already consumed.
  fault_root_ = master.split();
  rebuild_fault_events();
}

void FleetEnv::rebuild_fault_events() {
  fault_events_.clear();
  for (const faults::CrashWindow& w : config_.faults.crashes) {
    fault_events_.push_back({w.down_at, false, w.node, w.partial, w.domain,
                             /*domain_lead=*/false});
    fault_events_.push_back({w.up_at, true, w.node, w.partial, w.domain,
                             /*domain_lead=*/false});
  }
  std::sort(fault_events_.begin(), fault_events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.is_recovery != b.is_recovery) return a.is_recovery;
              return a.node < b.node;
            });
  // The first crash of each (domain, down_at) group — the lowest member
  // node, given the sort — leads it: it counts and traces the domain-level
  // event exactly once however many members participated.
  std::set<std::pair<std::size_t, double>> led;
  for (FaultEvent& ev : fault_events_) {
    if (ev.is_recovery || ev.domain == faults::kNoDomain) continue;
    ev.domain_lead = led.insert({ev.domain, ev.time}).second;
  }
}

void FleetEnv::set_fault_plan(faults::FaultPlan faults) {
  faults.validate(nodes_.size());
  config_.faults = std::move(faults);
  rebuild_fault_events();
}

bool FleetEnv::node_up(std::size_t i) const {
  MLCR_CHECK(i < nodes_.size());
  return !nodes_[i].env->down();
}

util::Rng FleetEnv::node_fault_stream(std::uint64_t seed, std::size_t nodes,
                                      std::size_t node) {
  MLCR_CHECK(node < nodes);
  util::Rng master(seed);
  for (std::size_t i = 0; i < nodes; ++i) (void)master.split();
  util::Rng root = master.split();
  for (std::size_t i = 0; i < node; ++i) (void)root.split();
  return root.split();
}

void FleetEnv::validate_trace(const sim::Trace& trace) const {
  double last_arrival = 0.0;
  std::size_t index = 0;
  for (const sim::Invocation& inv : trace.invocations()) {
    MLCR_CHECK_MSG(inv.function < functions_.size(),
                   "trace invocation " << index << " (seq " << inv.seq
                                       << ") names unknown function "
                                       << inv.function << " of a table of "
                                       << functions_.size());
    MLCR_CHECK_MSG(
        inv.arrival_s >= last_arrival,
        "trace invocation " << index << " (seq " << inv.seq << ") arrives at "
                            << inv.arrival_s
                            << "s, before its predecessor at " << last_arrival
                            << "s — traces must be sorted by arrival");
    last_arrival = inv.arrival_s;
    ++index;
  }
}

const sim::ClusterEnv& FleetEnv::node(std::size_t i) const {
  MLCR_CHECK(i < nodes_.size());
  return *nodes_[i].env;
}

sim::ClusterEnv& FleetEnv::node_env(std::size_t i) {
  MLCR_CHECK(i < nodes_.size());
  return *nodes_[i].env;
}

policies::Scheduler& FleetEnv::node_scheduler(std::size_t i) {
  MLCR_CHECK(i < nodes_.size());
  return *nodes_[i].spec.scheduler;
}

void FleetEnv::set_tracer(obs::Tracer* tracer) noexcept {
  tracer_ = tracer;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    nodes_[i].env->set_tracer(tracer, static_cast<std::uint32_t>(i));
}

std::string FleetEnv::start_episode(Router& router, bool traced) {
  std::string router_name;
  if (traced) {
    router_name = router.name();
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      tracer_->thread_name(obs::Tracer::kSimPid,
                           static_cast<std::uint32_t>(i),
                           "node" + std::to_string(i));
  }
  for (Node& node : nodes_) {
    node.env->reset_streaming();
    node.spec.scheduler->on_episode_start(*node.env);
  }
  reset_routable();
  router.on_episode_start(*this);
  return router_name;
}

std::optional<std::size_t> FleetEnv::fire_fault_event(
    const FaultEvent& ev, bool clamp, std::size_t& domain_crashes,
    std::size_t& spares_activated, bool traced) {
  sim::ClusterEnv& env = *nodes_[ev.node].env;
  const double at = clamp ? std::max(ev.time, env.now()) : ev.time;
  if (ev.is_recovery) {
    if (!clamp || env.down()) env.recover(at);
    return std::nullopt;
  }
  env.crash(at, ev.partial);
  if (ev.domain_lead) {
    ++domain_crashes;
    if (traced)
      tracer_->instant(obs::Tracer::kSimPid,
                       static_cast<std::uint32_t>(ev.node), obs::to_micros(at),
                       "domain_crash", "fault",
                       {obs::narg("domain", static_cast<std::int64_t>(
                                                ev.domain)),
                        obs::narg("partial", std::int64_t{ev.partial ? 1 : 0})});
  }
  // Elastic scale-out (DESIGN.md §14): every crash event admits one cold
  // spare into the routable set while any remain.
  const std::optional<std::size_t> spare = activate_spare();
  if (spare) {
    ++spares_activated;
    if (traced)
      tracer_->instant(
          obs::Tracer::kSimPid, static_cast<std::uint32_t>(*spare),
          obs::to_micros(at), "spare_activated", "fleet",
          {obs::narg("node", static_cast<std::int64_t>(*spare)),
           obs::narg("after_crash_of", static_cast<std::int64_t>(ev.node))});
  }
  return spare;
}

std::vector<std::unique_ptr<faults::FaultInjector>>
FleetEnv::make_injectors() {
  // Fault machinery only exists on a faulted plan; a faultless config takes
  // the exact pre-fault code path (bit-identity asserted in tests/faults).
  std::vector<std::unique_ptr<faults::FaultInjector>> injectors;
  if (config_.faults.faultless()) return injectors;
  // Copy fault_root_ so every run() of this fleet injects the same faults.
  util::Rng root = fault_root_;
  injectors.reserve(nodes_.size());
  for (Node& node : nodes_) {
    injectors.push_back(
        std::make_unique<faults::FaultInjector>(config_.faults, root.split()));
    node.env->set_fault_injector(injectors.back().get());
  }
  return injectors;
}

void FleetEnv::dispatch(const sim::Invocation& inv, std::size_t target,
                        bool traced, const std::string& router_name) {
  Node& node = nodes_[target];
  if (traced) {
    const auto tid = static_cast<std::uint32_t>(target);
    tracer_->instant(
        obs::Tracer::kSimPid, tid, obs::to_micros(inv.arrival_s), "route",
        "fleet",
        {obs::sarg("router", router_name),
         obs::narg("node", static_cast<std::int64_t>(target)),
         obs::narg("seq", static_cast<std::int64_t>(inv.seq))});
  }
  node.env->offer(inv);
  const sim::Action action = node.spec.scheduler->decide(*node.env, inv);
  const sim::StepResult result = node.env->step(action);
  node.spec.scheduler->on_step_result(*node.env, result);
  if (traced)
    tracer_->counter(obs::Tracer::kSimPid, static_cast<std::uint32_t>(target),
                     obs::to_micros(inv.arrival_s), "node_outstanding",
                     static_cast<double>(node.env->busy_count()));
}

FleetSummary FleetEnv::finish_run(
    [[maybe_unused]] const sim::Trace& trace, Router& router,
    std::size_t next_fault, std::size_t lost, std::size_t rerouted,
    std::size_t domain_crashes, std::size_t spares_activated,
    const std::vector<std::unique_ptr<faults::FaultInjector>>& injectors) {
  // Any node still inside a crash window recovers after the last arrival so
  // finish_streaming() drains a healthy fleet; remaining events fire in
  // order to keep the injector counters complete.
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  while (next_fault < fault_events_.size())
    (void)fire_fault_event(fault_events_[next_fault++], /*clamp=*/true,
                           domain_crashes, spares_activated, traced);

  std::vector<NodeObservation> observations;
  observations.reserve(nodes_.size());
  for (Node& node : nodes_) {
    node.env->finish_streaming();
    observations.push_back(
        {policies::summarize_env(*node.env, node.spec.scheduler->name()),
         &node.env->metrics()});
  }
  MLCR_AUDIT_POINT(audit_fleet_run(trace, observations, lost));
  FleetSummary fs = aggregate_fleet(router.name(), system_name_, observations);
  fs.lost = lost;
  fs.rerouted = rerouted;
  fs.domain_crashes = domain_crashes;
  fs.spares_activated = spares_activated;
  if (!injectors.empty()) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const faults::FaultCounters& c = injectors[i]->counters();
      fs.node_crashes += c.crashes;
      fs.partial_crashes += c.partial_crashes;
      fs.node_recoveries += c.recoveries;
      nodes_[i].env->set_fault_injector(nullptr);  // injectors die with run()
    }
  }
  return fs;
}

FleetSummary FleetEnv::run(const sim::Trace& trace, Router& router) {
  validate_trace(trace);
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  const std::string router_name = start_episode(router, traced);
  const auto injectors = make_injectors();

  index_ = std::make_unique<FleetIndex>(nodes_.size(),
                                        router.needs_warm_index());
  // Spares sit outside the routable set until a crash admits them; the
  // index's load minima must never surface them before that.
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    index_->set_routable(i, node_routable(i));

  // The event core. One lazily-invalidated heap entry per node holds the
  // node's next self-scheduled event (completion or TTL expiry); entries
  // are stamped with a per-node version and stale ones are discarded on
  // pop, so a node touch is O(log nodes) instead of a heap rebuild. Fault
  // events stay in the pre-sorted fault_events_ list and are merged by
  // time; at equal times faults fire before node advances — the order the
  // lockstep loop establishes (crash()'s internal drain makes same-time
  // completion-vs-crash races identical either way; see DESIGN.md §10).
  struct AdvanceEntry {
    double time;
    std::size_t node;
    std::uint64_t version;
  };
  struct AdvanceLater {
    bool operator()(const AdvanceEntry& a, const AdvanceEntry& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap on time
      return a.node > b.node;                        // deterministic ties
    }
  };
  std::priority_queue<AdvanceEntry, std::vector<AdvanceEntry>, AdvanceLater>
      heap;
  std::vector<std::uint64_t> versions(nodes_.size(), 0);

  // Re-derive a node's index contribution and heap entry after any event
  // that touches it.
  const auto touch = [&](std::size_t n) {
    index_->update(n, *nodes_[n].env);
    ++versions[n];
    if (const auto next = nodes_[n].env->next_event_time())
      heap.push({*next, n, versions[n]});
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) touch(i);

  std::size_t next_fault = 0;
  std::size_t lost = 0;
  std::size_t rerouted = 0;
  std::size_t domain_crashes = 0;
  std::size_t spares_activated = 0;
  constexpr double kNever = std::numeric_limits<double>::infinity();

  // Fire every event due at or before `t`, earliest first, so routing sees
  // exactly the fleet state the lockstep loop would have built at `t`.
  const auto drain_until = [&](double t) {
    for (;;) {
      while (!heap.empty() &&
             heap.top().version != versions[heap.top().node])
        heap.pop();
      const double fault_at = next_fault < fault_events_.size()
                                  ? fault_events_[next_fault].time
                                  : kNever;
      const double advance_at = heap.empty() ? kNever : heap.top().time;
      if (std::min(fault_at, advance_at) > t) return;
      if (fault_at <= advance_at) {
        const FaultEvent& ev = fault_events_[next_fault++];
        const auto spare = fire_fault_event(ev, /*clamp=*/false,
                                            domain_crashes, spares_activated,
                                            traced);
        touch(ev.node);
        if (spare) {
          index_->set_routable(*spare, true);
          touch(*spare);
        }
      } else {
        const AdvanceEntry e = heap.top();
        heap.pop();
        // Advance only to the event's own time, never to t: a later fault
        // on the same node must not be jumped over, and advance_to
        // composes, so stopping early is state-identical.
        nodes_[e.node].env->advance_to(e.time);
        touch(e.node);
      }
    }
  };

  for (const sim::Invocation& inv : trace.invocations()) {
    drain_until(inv.arrival_s);

    std::size_t target = router.route(*this, inv);
    MLCR_CHECK_MSG(target < routable_count_, "router picked an invalid node");
    if (!node_up(target)) {
      // Deterministic failover: least outstanding work among healthy nodes,
      // lowest index on ties. With every node down the invocation is lost.
      const auto best = index_->least_outstanding_healthy();
      if (!best) {
        ++lost;
        if (traced)
          tracer_->instant(
              obs::Tracer::kSimPid, static_cast<std::uint32_t>(target),
              obs::to_micros(inv.arrival_s), "invocation_lost", "fault",
              {obs::narg("seq", static_cast<std::int64_t>(inv.seq))});
        continue;
      }
      target = *best;
      ++rerouted;
      if (traced)
        tracer_->instant(
            obs::Tracer::kSimPid, static_cast<std::uint32_t>(target),
            obs::to_micros(inv.arrival_s), "reroute", "fault",
            {obs::narg("node", static_cast<std::int64_t>(target)),
             obs::narg("seq", static_cast<std::int64_t>(inv.seq))});
    }
    dispatch(inv, target, traced, router_name);
    touch(target);
  }

  index_.reset();
  return finish_run(trace, router, next_fault, lost, rerouted, domain_crashes,
                    spares_activated, injectors);
}

FleetSummary FleetEnv::run_lockstep(const sim::Trace& trace, Router& router) {
  validate_trace(trace);
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  const std::string router_name = start_episode(router, traced);
  const auto injectors = make_injectors();

  std::size_t next_fault = 0;
  std::size_t lost = 0;
  std::size_t rerouted = 0;
  std::size_t domain_crashes = 0;
  std::size_t spares_activated = 0;

  for (const sim::Invocation& inv : trace.invocations()) {
    // Fire every crash/recover transition due before this arrival, in time
    // order, so routing sees the fleet's health as of "now".
    while (next_fault < fault_events_.size() &&
           fault_events_[next_fault].time <= inv.arrival_s) {
      (void)fire_fault_event(fault_events_[next_fault++], /*clamp=*/false,
                             domain_crashes, spares_activated, traced);
    }
    // Keep every node's clock at the global arrival time before routing, so
    // the router (and the chosen node's scheduler) observe completions and
    // TTL expiry up to "now" even on nodes that received no recent traffic.
    for (Node& node : nodes_) node.env->advance_idle(inv.arrival_s);

    std::size_t target = router.route(*this, inv);
    MLCR_CHECK_MSG(target < routable_count_, "router picked an invalid node");
    if (!node_up(target)) {
      // Deterministic failover: least outstanding work among healthy
      // routable nodes, lowest index on ties. With every routable node down
      // the invocation is lost.
      std::size_t best = routable_count_;
      for (std::size_t i = 0; i < routable_count_; ++i) {
        if (!node_up(i)) continue;
        if (best == routable_count_ ||
            nodes_[i].env->busy_count() < nodes_[best].env->busy_count())
          best = i;
      }
      if (best == routable_count_) {
        ++lost;
        if (traced)
          tracer_->instant(
              obs::Tracer::kSimPid, static_cast<std::uint32_t>(target),
              obs::to_micros(inv.arrival_s), "invocation_lost", "fault",
              {obs::narg("seq", static_cast<std::int64_t>(inv.seq))});
        continue;
      }
      target = best;
      ++rerouted;
      if (traced)
        tracer_->instant(
            obs::Tracer::kSimPid, static_cast<std::uint32_t>(target),
            obs::to_micros(inv.arrival_s), "reroute", "fault",
            {obs::narg("node", static_cast<std::int64_t>(target)),
             obs::narg("seq", static_cast<std::int64_t>(inv.seq))});
    }
    dispatch(inv, target, traced, router_name);
  }

  return finish_run(trace, router, next_fault, lost, rerouted, domain_crashes,
                    spares_activated, injectors);
}

}  // namespace mlcr::fleet
