#include "fleet/fleet_env.hpp"

#include "fleet/router.hpp"
#include "obs/tracer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace mlcr::fleet {

namespace {

/// Invariant auditor for a completed fleet episode: every node's summary
/// agrees with its metrics collector, and the per-node invocation counts sum
/// to the global trace — no invocation lost or duplicated by routing.
[[maybe_unused]] void audit_fleet_run(
    const sim::Trace& trace,
    const std::vector<NodeObservation>& observations) {
  std::size_t routed = 0;
  for (const NodeObservation& obs : observations) {
    MLCR_CHECK(obs.metrics != nullptr);
    obs.metrics->audit();
    MLCR_CHECK_MSG(obs.summary.invocations == obs.metrics->invocation_count(),
                   "node summary and metrics disagree on invocation count");
    routed += obs.summary.invocations;
  }
  MLCR_CHECK_MSG(routed == trace.size(),
                 "fleet routed " << routed << " invocations of a trace of "
                                 << trace.size());
}

}  // namespace

NodeSystemFactory uniform_system(std::function<policies::SystemSpec()> make) {
  MLCR_CHECK(make != nullptr);
  return [make = std::move(make)](std::size_t node, util::Rng rng) {
    (void)node;
    (void)rng;
    return make();
  };
}

FleetEnv::FleetEnv(const sim::FunctionTable& functions,
                   const containers::PackageCatalog& catalog,
                   const sim::StartupCostModel& cost_model, FleetConfig config,
                   const NodeSystemFactory& make_system)
    : functions_(functions), catalog_(catalog), config_(config) {
  MLCR_CHECK_MSG(config_.nodes > 0, "a fleet needs at least one node");
  MLCR_CHECK(make_system != nullptr);
  util::Rng master(config_.seed);
  nodes_.reserve(config_.nodes);
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    Node node;
    node.spec = make_system(i, master.split());
    MLCR_CHECK(node.spec.scheduler != nullptr);
    MLCR_CHECK(node.spec.eviction_factory != nullptr);
    sim::EnvConfig env_cfg = config_.node_env;
    env_cfg.keep_alive_ttl_s = node.spec.keep_alive_ttl_s;
    env_cfg.reuse_semantics = node.spec.reuse_semantics;
    node.env = std::make_unique<sim::ClusterEnv>(
        functions_, catalog_, cost_model, env_cfg, node.spec.eviction_factory);
    nodes_.push_back(std::move(node));
  }
  system_name_ = nodes_.front().spec.name;
}

const sim::ClusterEnv& FleetEnv::node(std::size_t i) const {
  MLCR_CHECK(i < nodes_.size());
  return *nodes_[i].env;
}

void FleetEnv::set_tracer(obs::Tracer* tracer) noexcept {
  tracer_ = tracer;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    nodes_[i].env->set_tracer(tracer, static_cast<std::uint32_t>(i));
}

FleetSummary FleetEnv::run(const sim::Trace& trace, Router& router) {
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  std::string router_name;
  if (traced) {
    router_name = router.name();
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      tracer_->thread_name(obs::Tracer::kSimPid,
                           static_cast<std::uint32_t>(i),
                           "node" + std::to_string(i));
  }

  for (Node& node : nodes_) {
    node.env->reset_streaming();
    node.spec.scheduler->on_episode_start(*node.env);
  }
  router.on_episode_start(*this);

  for (const sim::Invocation& inv : trace.invocations()) {
    // Keep every node's clock at the global arrival time before routing, so
    // the router (and the chosen node's scheduler) observe completions and
    // TTL expiry up to "now" even on nodes that received no recent traffic.
    for (Node& node : nodes_) node.env->advance_idle(inv.arrival_s);

    const std::size_t target = router.route(*this, inv);
    MLCR_CHECK_MSG(target < nodes_.size(), "router picked an invalid node");
    Node& node = nodes_[target];
    if (traced) {
      const auto tid = static_cast<std::uint32_t>(target);
      tracer_->instant(
          obs::Tracer::kSimPid, tid, obs::to_micros(inv.arrival_s), "route",
          "fleet",
          {obs::sarg("router", router_name),
           obs::narg("node", static_cast<std::int64_t>(target)),
           obs::narg("seq", static_cast<std::int64_t>(inv.seq))});
    }
    node.env->offer(inv);
    const sim::Action action = node.spec.scheduler->decide(*node.env, inv);
    const sim::StepResult result = node.env->step(action);
    node.spec.scheduler->on_step_result(*node.env, result);
    if (traced)
      tracer_->counter(obs::Tracer::kSimPid,
                       static_cast<std::uint32_t>(target),
                       obs::to_micros(inv.arrival_s), "node_outstanding",
                       static_cast<double>(node.env->busy_count()));
  }

  std::vector<NodeObservation> observations;
  observations.reserve(nodes_.size());
  for (Node& node : nodes_) {
    node.env->finish_streaming();
    observations.push_back(
        {policies::summarize_env(*node.env, node.spec.scheduler->name()),
         &node.env->metrics()});
  }
  MLCR_AUDIT_POINT(audit_fleet_run(trace, observations));
  return aggregate_fleet(router.name(), system_name_, observations);
}

}  // namespace mlcr::fleet
