// Incrementally maintained fleet-wide routing state (DESIGN.md §10). The
// event-driven FleetEnv::run keeps one FleetIndex current so routers that
// need cluster-wide views — least-outstanding load, warm-pool match lookup,
// the failover scan — read it in O(log nodes) instead of rescanning every
// node per invocation.
//
// Two structures:
//   Load index  — ordered (busy_count, node) sets over all nodes and over
//                 healthy nodes only. The minimum element is exactly the
//                 node a linear "min busy, lowest index on ties" scan would
//                 pick, so index-based routing is bit-identical to the scan.
//   Warm index  — per match level ℓ, a map from the canonical byte key of
//                 an image's level-1..ℓ package lists to the nodes holding
//                 at least one idle container with that prefix. Package
//                 lists are kept sorted/deduplicated by ImageSpec, so key
//                 equality is exactly Table-I level-by-level set equality:
//                 a container matches a function at level >= ℓ iff their
//                 level-ℓ keys are byte-equal. No hashing, no collisions.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "containers/image.hpp"
#include "containers/matching.hpp"

namespace mlcr::sim {
class ClusterEnv;
}

namespace mlcr::fleet {

class FleetIndex {
 public:
  /// `track_warm` enables the warm index; without it update() skips the
  /// per-pool key recompute (routers that never consult warm state should
  /// not pay for it — see Router::needs_warm_index()).
  FleetIndex(std::size_t nodes, bool track_warm);

  /// Re-derive node `node`'s contributions from its environment. Called by
  /// the fleet after every event that touches the node (offer/step,
  /// completion drain, TTL expiry, crash, recover). Cost: O(log nodes) for
  /// the load sets plus O(pool) for the warm keys when tracking is on.
  void update(std::size_t node, const sim::ClusterEnv& env);

  /// Include/exclude node `node` from the load minima. Non-routable nodes
  /// (cold spares awaiting a crash event, DESIGN.md §14) are still
  /// update()d but never surfaced by the least_outstanding lookups. Every
  /// node starts routable.
  void set_routable(std::size_t node, bool routable);

  /// Node with the fewest in-flight executions over all *routable* nodes
  /// (down nodes included), lowest index on ties — the linear-scan contract
  /// of LeastOutstandingRouter and WarmAwareRouter's cold fallback.
  [[nodiscard]] std::size_t least_outstanding() const;

  /// Same, restricted to healthy routable nodes; nullopt when the whole
  /// routable fleet is down. The contract of FailoverRouter and run()'s
  /// reroute path.
  [[nodiscard]] std::optional<std::size_t> least_outstanding_healthy() const;

  /// The minimum (busy, node) load entry itself, or nullopt before any
  /// update(). The serving layer's ShardedFleetIndex merges these across
  /// shards: the lexicographic minimum over shard minima is exactly the
  /// global least_outstanding() pick.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>>
  least_outstanding_entry() const;
  [[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>>
  least_outstanding_healthy_entry() const;

  /// Per-node snapshot of the last update(): in-flight executions, health,
  /// and free pool memory — the inputs of the warm-aware tie-break, exposed
  /// so index-only readers (the serving layer) never touch the env.
  struct NodeLoad {
    std::size_t busy = 0;
    bool up = true;
    double free_mb = 0.0;
    bool seen = false;      ///< false before the node's first update()
    bool routable = true;   ///< false for spares awaiting activation
  };
  [[nodiscard]] NodeLoad node_load(std::size_t node) const;

  [[nodiscard]] bool tracks_warm() const noexcept { return track_warm_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// Nodes holding at least one idle container matching `image` at level
  /// >= `level`, as a node -> container-count map (ascending node order),
  /// or nullptr when no node has such a match. Requires tracks_warm().
  [[nodiscard]] const std::map<std::size_t, std::size_t>* nodes_matching(
      const containers::ImageSpec& image, containers::MatchLevel level) const;

  /// Canonical byte key of `image`'s level-1..level prefix ("os|lang|rt"
  /// with comma-separated package ids). Exposed for tests.
  [[nodiscard]] static std::string level_key(const containers::ImageSpec& image,
                                            containers::MatchLevel level);

 private:
  struct NodeEntry {
    std::size_t busy = 0;
    bool up = true;
    double free_mb = 0.0;
    bool in_load = false;   ///< false until the first update()
    bool routable = true;   ///< excluded from the load sets when false
    /// This node's current warm-key multiset, one map per match level.
    std::array<std::map<std::string, std::size_t>, 3> keys;
  };

  bool track_warm_;
  std::vector<NodeEntry> nodes_;
  std::set<std::pair<std::size_t, std::size_t>> load_all_;
  std::set<std::pair<std::size_t, std::size_t>> load_healthy_;
  /// level -> key -> node -> idle container count.
  std::array<std::map<std::string, std::map<std::size_t, std::size_t>>, 3>
      warm_;
};

}  // namespace mlcr::fleet
