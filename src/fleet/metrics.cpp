#include "fleet/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/audit.hpp"
#include "util/check.hpp"

namespace mlcr::fleet {

namespace {

/// Per-node metrics must sum to the fleet totals: the merged record stream
/// carries exactly the invocations the summaries counted, level by level.
[[maybe_unused]] void audit_aggregation(const FleetSummary& fs) {
  fs.merged.audit();
  MLCR_CHECK_MSG(fs.merged.invocation_count() == fs.total.invocations,
                 "merged records disagree with summed node invocations");
  MLCR_CHECK_MSG(fs.merged.cold_start_count() == fs.total.cold_starts,
                 "merged cold starts disagree with summed node cold starts");
  MLCR_CHECK_MSG(
      fs.merged.warm_starts_at(containers::MatchLevel::kL1) ==
              fs.total.warm_l1 &&
          fs.merged.warm_starts_at(containers::MatchLevel::kL2) ==
              fs.total.warm_l2 &&
          fs.merged.warm_starts_at(containers::MatchLevel::kL3) ==
              fs.total.warm_l3,
      "merged warm-start levels disagree with summed node levels");
  MLCR_CHECK_MSG(
      std::abs(fs.merged.total_latency_s() - fs.total.total_latency_s) <=
          1e-9 * std::max(1.0, fs.total.total_latency_s),
      "merged total latency disagrees with summed node latency");
  MLCR_CHECK_MSG(fs.merged.failed_count() == fs.total.failed &&
                     fs.merged.retry_count() == fs.total.retries,
                 "merged failed/retry counts disagree with summed nodes");
}

}  // namespace

FleetSummary aggregate_fleet(std::string router, std::string system,
                             const std::vector<NodeObservation>& nodes) {
  FleetSummary fs;
  fs.router = std::move(router);
  fs.system = std::move(system);
  fs.nodes = nodes.size();
  fs.total.scheduler = fs.system;

  std::size_t max_invocations = 0;
  bool all_metrics = true;
  std::vector<const sim::MetricsCollector*> parts;
  parts.reserve(nodes.size());
  for (const NodeObservation& node : nodes) {
    const policies::EpisodeSummary& s = node.summary;
    fs.per_node.push_back(s);
    fs.total.invocations += s.invocations;
    fs.total.total_latency_s += s.total_latency_s;
    fs.total.cold_starts += s.cold_starts;
    fs.total.warm_l1 += s.warm_l1;
    fs.total.warm_l2 += s.warm_l2;
    fs.total.warm_l3 += s.warm_l3;
    fs.total.peak_pool_mb += s.peak_pool_mb;
    fs.total.evictions += s.evictions;
    fs.total.rejections += s.rejections;
    fs.total.failed += s.failed;
    fs.total.retries += s.retries;
    max_invocations = std::max(max_invocations, s.invocations);
    if (node.metrics != nullptr)
      parts.push_back(node.metrics);
    else
      all_metrics = false;
  }
  // One concatenate-and-sort over all nodes; the per-node merge() fold is
  // O(nodes * records) and dominates large-fleet runs.
  fs.merged.merge_many(parts);
  if (fs.total.invocations > 0) {
    fs.total.average_latency_s =
        fs.total.total_latency_s / static_cast<double>(fs.total.invocations);
    fs.routing_imbalance =
        static_cast<double>(max_invocations) * static_cast<double>(fs.nodes) /
        static_cast<double>(fs.total.invocations);
  }
  if (all_metrics) MLCR_AUDIT_POINT(audit_aggregation(fs));
  return fs;
}

}  // namespace mlcr::fleet
