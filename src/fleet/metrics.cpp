#include "fleet/metrics.hpp"

#include <algorithm>

namespace mlcr::fleet {

FleetSummary aggregate_fleet(std::string router, std::string system,
                             const std::vector<NodeObservation>& nodes) {
  FleetSummary fs;
  fs.router = std::move(router);
  fs.system = std::move(system);
  fs.nodes = nodes.size();
  fs.total.scheduler = fs.system;

  std::size_t max_invocations = 0;
  for (const NodeObservation& node : nodes) {
    const policies::EpisodeSummary& s = node.summary;
    fs.per_node.push_back(s);
    fs.total.invocations += s.invocations;
    fs.total.total_latency_s += s.total_latency_s;
    fs.total.cold_starts += s.cold_starts;
    fs.total.warm_l1 += s.warm_l1;
    fs.total.warm_l2 += s.warm_l2;
    fs.total.warm_l3 += s.warm_l3;
    fs.total.peak_pool_mb += s.peak_pool_mb;
    fs.total.evictions += s.evictions;
    fs.total.rejections += s.rejections;
    max_invocations = std::max(max_invocations, s.invocations);
    if (node.metrics != nullptr) fs.merged.merge(*node.metrics);
  }
  if (fs.total.invocations > 0) {
    fs.total.average_latency_s =
        fs.total.total_latency_s / static_cast<double>(fs.total.invocations);
    fs.routing_imbalance =
        static_cast<double>(max_invocations) * static_cast<double>(fs.nodes) /
        static_cast<double>(fs.total.invocations);
  }
  return fs;
}

}  // namespace mlcr::fleet
