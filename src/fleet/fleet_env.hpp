// FleetEnv: a multi-node serverless cluster. Each of the N worker nodes is
// an independent ClusterEnv — its own warm pool, eviction policy and
// scheduler built from the SystemSpec registry — and a front-end Router
// assigns every invocation of a global trace to one node.
//
// The single-node decision problem of the paper (which warm container
// absorbs an invocation) is unchanged inside each node; the fleet layer adds
// the placement step that precedes it. Determinism is preserved: the trace
// is processed in arrival order, every node draws from an Rng stream split
// off the fleet seed, and a 1-node fleet reproduces run_episode() exactly
// (asserted in tests/fleet).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "fleet/fleet_index.hpp"
#include "fleet/metrics.hpp"
#include "policies/baselines.hpp"
#include "sim/env.hpp"
#include "util/rng.hpp"

namespace mlcr::faults {
class FaultInjector;
}

namespace mlcr::obs {
class Tracer;
}

namespace mlcr::fleet {

class Router;

struct FleetConfig {
  /// Number of worker nodes.
  std::size_t nodes = 1;
  /// Per-node environment knobs (pool capacity is per node, so a fixed
  /// cluster-wide budget should be divided by `nodes` by the caller).
  /// keep_alive_ttl_s / reuse_semantics are overridden per node from the
  /// SystemSpec, exactly as policies::run_system does.
  sim::EnvConfig node_env;
  /// Master seed; each node's factory receives an independent split stream.
  std::uint64_t seed = 1;
  /// Fault configuration (DESIGN.md §9). The default plan is faultless and
  /// keeps run() bit-identical to the pre-fault fleet: no injectors are
  /// attached and no crash machinery runs. With a faulted plan, every node
  /// gets a FaultInjector on its own stream split off the fleet seed, crash
  /// windows are applied in arrival order, and invocations routed at a down
  /// node fail over to the least-loaded healthy node.
  faults::FaultPlan faults;
};

/// Builds the per-node system (scheduler + eviction + TTL + reuse
/// semantics). Called once per node at construction; `node` is the node
/// index and `rng` an independent stream split from the fleet seed, for
/// stochastic schedulers.
using NodeSystemFactory =
    std::function<policies::SystemSpec(std::size_t node, util::Rng rng)>;

/// Adapts a parameterless SystemSpec factory (e.g. make_greedy_match_system)
/// to a NodeSystemFactory: every node gets an identical, independent system.
[[nodiscard]] NodeSystemFactory uniform_system(
    std::function<policies::SystemSpec()> make);

class FleetEnv {
 public:
  FleetEnv(const sim::FunctionTable& functions,
           const containers::PackageCatalog& catalog,
           const sim::StartupCostModel& cost_model, FleetConfig config,
           const NodeSystemFactory& make_system);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const sim::ClusterEnv& node(std::size_t i) const;
  /// False while node `i` is inside a crash window (routers must not place
  /// work there; FailoverRouter and run()'s re-route path consult this).
  [[nodiscard]] bool node_up(std::size_t i) const;

  /// Mutable access to node `i`'s environment / scheduler for the serving
  /// layer (src/serve), which drives the nodes' streaming episodes directly
  /// under its own shard locking. Must not be interleaved with this fleet's
  /// own run()/run_lockstep().
  [[nodiscard]] sim::ClusterEnv& node_env(std::size_t i);
  [[nodiscard]] policies::Scheduler& node_scheduler(std::size_t i);
  [[nodiscard]] const sim::FunctionTable& functions() const noexcept {
    return functions_;
  }
  [[nodiscard]] const containers::PackageCatalog& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }
  /// Name of the per-node scheduler system (node 0's; all nodes share it
  /// when built via uniform_system).
  [[nodiscard]] const std::string& system_name() const noexcept {
    return system_name_;
  }

  /// Attach a tracer: each node's lifecycle events go to its own
  /// (obs::Tracer::kSimPid, node-index) track, run() names the tracks and
  /// emits one routing-decision instant per invocation on the target node's
  /// track. The fleet does not own the tracer; nullptr detaches.
  void set_tracer(obs::Tracer* tracer) noexcept;
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Route and execute `trace`: every invocation is assigned to a node by
  /// `router` (observing current fleet state), then offered to that node's
  /// streaming episode and scheduled by the node's own scheduler. Resets
  /// all nodes.
  ///
  /// Event-driven (DESIGN.md §10): instead of advancing every node to every
  /// arrival, run() drains a time-ordered event core — per-node
  /// next-event heap entries (completions, TTL expiries) merged with the
  /// pre-sorted crash/recover list — so each event costs O(log nodes), and
  /// maintains a FleetIndex so state-aware routers read fleet-wide load and
  /// warm-pool views without rescanning nodes_. Bit-identical to
  /// run_lockstep() (asserted in tests/fleet): between arrivals nodes only
  /// interact through routing, and ClusterEnv::advance_to composes, so
  /// advancing a node event-by-event reproduces the lockstep state.
  FleetSummary run(const sim::Trace& trace, Router& router);

  /// The pre-event-core reference implementation: every node's clock is
  /// advanced to every arrival (O(nodes) per invocation) and routers scan
  /// nodes_ directly. Kept as the oracle the event-driven run() is pinned
  /// against, and as the baseline bench/fleet_throughput measures.
  FleetSummary run_lockstep(const sim::Trace& trace, Router& router);

  /// Replace the fault plan (validated against the node count) and rebuild
  /// the pre-sorted crash/recover event list. The per-node fault streams
  /// are unchanged — they were split off the fleet seed at construction —
  /// so a plan swap never shifts any other stream.
  void set_fault_plan(faults::FaultPlan faults);

  /// The routing index maintained during an event-driven run(); nullptr
  /// outside one (routers then fall back to scanning nodes_).
  [[nodiscard]] const FleetIndex* index() const noexcept {
    return index_.get();
  }

  /// The fault stream node `node` of an `nodes`-node fleet seeded with
  /// `seed` receives in run(). Exposed so a single ClusterEnv driven with
  /// an injector on this stream reproduces a 1-node fleet bit-for-bit
  /// (asserted in tests/faults).
  [[nodiscard]] static util::Rng node_fault_stream(std::uint64_t seed,
                                                   std::size_t nodes,
                                                   std::size_t node);

 private:
  struct Node {
    policies::SystemSpec spec;
    std::unique_ptr<sim::ClusterEnv> env;
  };

  /// One crash or recovery transition of the fault plan. The list is built
  /// and sorted once (construction / set_fault_plan), not per run: at equal
  /// times recoveries fire before crashes (a node's up_at may equal its
  /// next down_at, and capacity freed by a recovery should be routable
  /// before a concurrent crash removes more), then lowest node first.
  struct FaultEvent {
    double time = 0.0;
    bool is_recovery = false;
    std::size_t node = 0;
  };

  /// Validate `trace` before routing anything: arrival times must be
  /// non-decreasing and every function id known, with the offending
  /// invocation index named in the error.
  void validate_trace(const sim::Trace& trace) const;

  /// Rebuild fault_events_ from config_.faults (sorted as above).
  void rebuild_fault_events();

  /// Reset every node's streaming episode, notify schedulers and the
  /// router, and name the tracer tracks. Returns the router's name when
  /// tracing (used by the per-invocation route instants).
  std::string start_episode(Router& router, bool traced);

  /// On a faulted plan, build one injector per node on its own stream split
  /// off fault_root_ (in node order) and attach them; empty otherwise.
  [[nodiscard]] std::vector<std::unique_ptr<faults::FaultInjector>>
  make_injectors();

  /// Offer `inv` to node `target` and let the node's scheduler handle it
  /// (with the route instant / outstanding counter when traced).
  void dispatch(const sim::Invocation& inv, std::size_t target, bool traced,
                const std::string& router_name);

  /// Fire every fault event from `next_fault` on (clamped to each node's
  /// clock), drain the nodes, aggregate, and detach the injectors — the
  /// shared tail of run() and run_lockstep().
  FleetSummary finish_run(
      const sim::Trace& trace, Router& router, std::size_t next_fault,
      std::size_t lost, std::size_t rerouted,
      const std::vector<std::unique_ptr<faults::FaultInjector>>& injectors);

  const sim::FunctionTable& functions_;
  const containers::PackageCatalog& catalog_;
  FleetConfig config_;
  std::vector<Node> nodes_;
  std::string system_name_;
  obs::Tracer* tracer_ = nullptr;
  /// Split off the fleet seed in the constructor; run() copies it, so
  /// repeated runs inject identical faults.
  util::Rng fault_root_;
  /// Crash/recover transitions of config_.faults, pre-sorted (see
  /// FaultEvent) — hoisted out of run(), which used to rebuild and re-sort
  /// the list on every run of the same fleet.
  std::vector<FaultEvent> fault_events_;
  /// Live only inside an event-driven run().
  std::unique_ptr<FleetIndex> index_;
};

}  // namespace mlcr::fleet
