// FleetEnv: a multi-node serverless cluster. Each of the N worker nodes is
// an independent ClusterEnv — its own warm pool, eviction policy and
// scheduler built from the SystemSpec registry — and a front-end Router
// assigns every invocation of a global trace to one node.
//
// The single-node decision problem of the paper (which warm container
// absorbs an invocation) is unchanged inside each node; the fleet layer adds
// the placement step that precedes it. Determinism is preserved: the trace
// is processed in arrival order, every node draws from an Rng stream split
// off the fleet seed, and a 1-node fleet reproduces run_episode() exactly
// (asserted in tests/fleet).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "fleet/fleet_index.hpp"
#include "fleet/metrics.hpp"
#include "policies/baselines.hpp"
#include "sim/env.hpp"
#include "util/rng.hpp"

namespace mlcr::faults {
class FaultInjector;
}

namespace mlcr::obs {
class Tracer;
}

namespace mlcr::fleet {

class Router;

struct FleetConfig {
  /// Number of worker nodes in the initial routable set.
  std::size_t nodes = 1;
  /// Cold spare nodes built alongside the fleet but kept out of the
  /// routable set until a crash event admits them, one per crash, in index
  /// order (elastic scale-out, DESIGN.md §14). Spares start with empty
  /// pools and never leave the routable set once admitted. 0 (the default)
  /// keeps every code path bit-identical to the pre-spare fleet.
  std::size_t spare_nodes = 0;
  /// Per-node environment knobs (pool capacity is per node, so a fixed
  /// cluster-wide budget should be divided by `nodes` by the caller).
  /// keep_alive_ttl_s / reuse_semantics are overridden per node from the
  /// SystemSpec, exactly as policies::run_system does.
  sim::EnvConfig node_env;
  /// Master seed; each node's factory receives an independent split stream.
  std::uint64_t seed = 1;
  /// Fault configuration (DESIGN.md §9). The default plan is faultless and
  /// keeps run() bit-identical to the pre-fault fleet: no injectors are
  /// attached and no crash machinery runs. With a faulted plan, every node
  /// gets a FaultInjector on its own stream split off the fleet seed, crash
  /// windows are applied in arrival order, and invocations routed at a down
  /// node fail over to the least-loaded healthy node.
  faults::FaultPlan faults;
};

/// Builds the per-node system (scheduler + eviction + TTL + reuse
/// semantics). Called once per node at construction; `node` is the node
/// index and `rng` an independent stream split from the fleet seed, for
/// stochastic schedulers.
using NodeSystemFactory =
    std::function<policies::SystemSpec(std::size_t node, util::Rng rng)>;

/// Adapts a parameterless SystemSpec factory (e.g. make_greedy_match_system)
/// to a NodeSystemFactory: every node gets an identical, independent system.
[[nodiscard]] NodeSystemFactory uniform_system(
    std::function<policies::SystemSpec()> make);

class FleetEnv {
 public:
  FleetEnv(const sim::FunctionTable& functions,
           const containers::PackageCatalog& catalog,
           const sim::StartupCostModel& cost_model, FleetConfig config,
           const NodeSystemFactory& make_system);

  /// Total nodes built, spares included.
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  /// Nodes routers may currently pick from: the prefix [0, routable_count())
  /// of the fleet. Starts at config().nodes each episode and grows by one as
  /// crash events admit spares (DESIGN.md §14); without spares it equals
  /// node_count() and routing is unchanged.
  [[nodiscard]] std::size_t routable_count() const noexcept {
    return routable_count_;
  }
  /// True when node `i` is inside the routable set (spares join on demand).
  [[nodiscard]] bool node_routable(std::size_t i) const noexcept {
    return i < routable_count_;
  }
  [[nodiscard]] const sim::ClusterEnv& node(std::size_t i) const;
  /// False while node `i` is inside a crash window (routers must not place
  /// work there; FailoverRouter and run()'s re-route path consult this).
  [[nodiscard]] bool node_up(std::size_t i) const;

  /// Mutable access to node `i`'s environment / scheduler for the serving
  /// layer (src/serve), which drives the nodes' streaming episodes directly
  /// under its own shard locking. Must not be interleaved with this fleet's
  /// own run()/run_lockstep().
  [[nodiscard]] sim::ClusterEnv& node_env(std::size_t i);
  [[nodiscard]] policies::Scheduler& node_scheduler(std::size_t i);
  [[nodiscard]] const sim::FunctionTable& functions() const noexcept {
    return functions_;
  }
  [[nodiscard]] const containers::PackageCatalog& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }
  /// Name of the per-node scheduler system (node 0's; all nodes share it
  /// when built via uniform_system).
  [[nodiscard]] const std::string& system_name() const noexcept {
    return system_name_;
  }

  /// Attach a tracer: each node's lifecycle events go to its own
  /// (obs::Tracer::kSimPid, node-index) track, run() names the tracks and
  /// emits one routing-decision instant per invocation on the target node's
  /// track. The fleet does not own the tracer; nullptr detaches.
  void set_tracer(obs::Tracer* tracer) noexcept;
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Route and execute `trace`: every invocation is assigned to a node by
  /// `router` (observing current fleet state), then offered to that node's
  /// streaming episode and scheduled by the node's own scheduler. Resets
  /// all nodes.
  ///
  /// Event-driven (DESIGN.md §10): instead of advancing every node to every
  /// arrival, run() drains a time-ordered event core — per-node
  /// next-event heap entries (completions, TTL expiries) merged with the
  /// pre-sorted crash/recover list — so each event costs O(log nodes), and
  /// maintains a FleetIndex so state-aware routers read fleet-wide load and
  /// warm-pool views without rescanning nodes_. Bit-identical to
  /// run_lockstep() (asserted in tests/fleet): between arrivals nodes only
  /// interact through routing, and ClusterEnv::advance_to composes, so
  /// advancing a node event-by-event reproduces the lockstep state.
  FleetSummary run(const sim::Trace& trace, Router& router);

  /// The pre-event-core reference implementation: every node's clock is
  /// advanced to every arrival (O(nodes) per invocation) and routers scan
  /// nodes_ directly. Kept as the oracle the event-driven run() is pinned
  /// against, and as the baseline bench/fleet_throughput measures.
  FleetSummary run_lockstep(const sim::Trace& trace, Router& router);

  /// Replace the fault plan (validated against the node count) and rebuild
  /// the pre-sorted crash/recover event list. The per-node fault streams
  /// are unchanged — they were split off the fleet seed at construction —
  /// so a plan swap never shifts any other stream.
  void set_fault_plan(faults::FaultPlan faults);

  /// The routing index maintained during an event-driven run(); nullptr
  /// outside one (routers then fall back to scanning nodes_).
  [[nodiscard]] const FleetIndex* index() const noexcept {
    return index_.get();
  }

  /// The fault stream node `node` of an `nodes`-node fleet seeded with
  /// `seed` receives in run(). Exposed so a single ClusterEnv driven with
  /// an injector on this stream reproduces a 1-node fleet bit-for-bit
  /// (asserted in tests/faults). `nodes` counts spares too.
  [[nodiscard]] static util::Rng node_fault_stream(std::uint64_t seed,
                                                   std::size_t nodes,
                                                   std::size_t node);

  /// One crash or recovery transition of the fault plan. The list is built
  /// and sorted once (construction / set_fault_plan), not per run: at equal
  /// times recoveries fire before crashes (a node's up_at may equal its
  /// next down_at, and capacity freed by a recovery should be routable
  /// before a concurrent crash removes more), then lowest node first.
  struct FaultEvent {
    double time = 0.0;
    bool is_recovery = false;
    std::size_t node = 0;
    bool partial = false;  ///< partial crash: the node's warm pool survives
    /// Failure domain of the originating window; faults::kNoDomain for
    /// independent windows.
    std::size_t domain = 0;
    /// First crash of a (domain, down_at) group: counts/traces the
    /// domain-level event exactly once however many members it hit.
    bool domain_lead = false;
  };

  /// The pre-sorted crash/recover transitions of the current plan. The
  /// serving layer merges this list into its own episode loop so live
  /// serving and run_replay() fire faults in the same order (DESIGN.md §14).
  [[nodiscard]] const std::vector<FaultEvent>& fault_events() const noexcept {
    return fault_events_;
  }

  /// On a faulted plan, build one injector per node (spares included) on
  /// its own stream split off fault_root_ (in node order) and attach them;
  /// empty otherwise. Public for the serving layer, which drives the nodes'
  /// streaming episodes itself; the injectors must outlive the episode and
  /// be detached with set_fault_injector(nullptr) afterwards.
  [[nodiscard]] std::vector<std::unique_ptr<faults::FaultInjector>>
  make_injectors();

  /// Reset the routable set to the initial config().nodes prefix. The
  /// serving layer calls this at episode start; FleetEnv's own runs do it
  /// via start_episode().
  void reset_routable() noexcept { routable_count_ = config_.nodes; }

  /// Admit the next spare into the routable set (no-op when none are
  /// left); returns its index. Called on every crash event.
  [[nodiscard]] std::optional<std::size_t> activate_spare() noexcept {
    if (routable_count_ >= nodes_.size()) return std::nullopt;
    return routable_count_++;
  }

 private:
  struct Node {
    policies::SystemSpec spec;
    std::unique_ptr<sim::ClusterEnv> env;
  };

  /// Validate `trace` before routing anything: arrival times must be
  /// non-decreasing and every function id known, with the offending
  /// invocation index named in the error.
  void validate_trace(const sim::Trace& trace) const;

  /// Rebuild fault_events_ from config_.faults (sorted as above).
  void rebuild_fault_events();

  /// Reset every node's streaming episode, notify schedulers and the
  /// router, and name the tracer tracks. Returns the router's name when
  /// tracing (used by the per-invocation route instants).
  std::string start_episode(Router& router, bool traced);

  /// Offer `inv` to node `target` and let the node's scheduler handle it
  /// (with the route instant / outstanding counter when traced).
  void dispatch(const sim::Invocation& inv, std::size_t target, bool traced,
                const std::string& router_name);

  /// Apply one fault event to its node: crash (partial-aware, counting and
  /// tracing the domain event on the lead window, admitting a spare) or
  /// recover. With `clamp`, times are clamped to the node's clock and
  /// recoveries are skipped on healthy nodes (the finish_run tail).
  /// Returns the spare admitted by a crash, so run() can index-touch it.
  std::optional<std::size_t> fire_fault_event(const FaultEvent& ev, bool clamp,
                                              std::size_t& domain_crashes,
                                              std::size_t& spares_activated,
                                              bool traced);

  /// Fire every fault event from `next_fault` on (clamped to each node's
  /// clock), drain the nodes, aggregate, and detach the injectors — the
  /// shared tail of run() and run_lockstep().
  FleetSummary finish_run(
      const sim::Trace& trace, Router& router, std::size_t next_fault,
      std::size_t lost, std::size_t rerouted, std::size_t domain_crashes,
      std::size_t spares_activated,
      const std::vector<std::unique_ptr<faults::FaultInjector>>& injectors);

  const sim::FunctionTable& functions_;
  const containers::PackageCatalog& catalog_;
  FleetConfig config_;
  std::vector<Node> nodes_;
  std::string system_name_;
  obs::Tracer* tracer_ = nullptr;
  /// Split off the fleet seed in the constructor; run() copies it, so
  /// repeated runs inject identical faults.
  util::Rng fault_root_;
  /// Crash/recover transitions of config_.faults, pre-sorted (see
  /// FaultEvent) — hoisted out of run(), which used to rebuild and re-sort
  /// the list on every run of the same fleet.
  std::vector<FaultEvent> fault_events_;
  /// Size of the routable prefix: config_.nodes at episode start, +1 per
  /// crash event while spares remain.
  std::size_t routable_count_ = 0;
  /// Live only inside an event-driven run().
  std::unique_ptr<FleetIndex> index_;
};

}  // namespace mlcr::fleet
