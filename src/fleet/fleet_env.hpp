// FleetEnv: a multi-node serverless cluster. Each of the N worker nodes is
// an independent ClusterEnv — its own warm pool, eviction policy and
// scheduler built from the SystemSpec registry — and a front-end Router
// assigns every invocation of a global trace to one node.
//
// The single-node decision problem of the paper (which warm container
// absorbs an invocation) is unchanged inside each node; the fleet layer adds
// the placement step that precedes it. Determinism is preserved: the trace
// is processed in arrival order, every node draws from an Rng stream split
// off the fleet seed, and a 1-node fleet reproduces run_episode() exactly
// (asserted in tests/fleet).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "fleet/metrics.hpp"
#include "policies/baselines.hpp"
#include "sim/env.hpp"
#include "util/rng.hpp"

namespace mlcr::obs {
class Tracer;
}

namespace mlcr::fleet {

class Router;

struct FleetConfig {
  /// Number of worker nodes.
  std::size_t nodes = 1;
  /// Per-node environment knobs (pool capacity is per node, so a fixed
  /// cluster-wide budget should be divided by `nodes` by the caller).
  /// keep_alive_ttl_s / reuse_semantics are overridden per node from the
  /// SystemSpec, exactly as policies::run_system does.
  sim::EnvConfig node_env;
  /// Master seed; each node's factory receives an independent split stream.
  std::uint64_t seed = 1;
  /// Fault configuration (DESIGN.md §9). The default plan is faultless and
  /// keeps run() bit-identical to the pre-fault fleet: no injectors are
  /// attached and no crash machinery runs. With a faulted plan, every node
  /// gets a FaultInjector on its own stream split off the fleet seed, crash
  /// windows are applied in arrival order, and invocations routed at a down
  /// node fail over to the least-loaded healthy node.
  faults::FaultPlan faults;
};

/// Builds the per-node system (scheduler + eviction + TTL + reuse
/// semantics). Called once per node at construction; `node` is the node
/// index and `rng` an independent stream split from the fleet seed, for
/// stochastic schedulers.
using NodeSystemFactory =
    std::function<policies::SystemSpec(std::size_t node, util::Rng rng)>;

/// Adapts a parameterless SystemSpec factory (e.g. make_greedy_match_system)
/// to a NodeSystemFactory: every node gets an identical, independent system.
[[nodiscard]] NodeSystemFactory uniform_system(
    std::function<policies::SystemSpec()> make);

class FleetEnv {
 public:
  FleetEnv(const sim::FunctionTable& functions,
           const containers::PackageCatalog& catalog,
           const sim::StartupCostModel& cost_model, FleetConfig config,
           const NodeSystemFactory& make_system);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const sim::ClusterEnv& node(std::size_t i) const;
  /// False while node `i` is inside a crash window (routers must not place
  /// work there; FailoverRouter and run()'s re-route path consult this).
  [[nodiscard]] bool node_up(std::size_t i) const;
  [[nodiscard]] const sim::FunctionTable& functions() const noexcept {
    return functions_;
  }
  [[nodiscard]] const containers::PackageCatalog& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }
  /// Name of the per-node scheduler system (node 0's; all nodes share it
  /// when built via uniform_system).
  [[nodiscard]] const std::string& system_name() const noexcept {
    return system_name_;
  }

  /// Attach a tracer: each node's lifecycle events go to its own
  /// (obs::Tracer::kSimPid, node-index) track, run() names the tracks and
  /// emits one routing-decision instant per invocation on the target node's
  /// track. The fleet does not own the tracer; nullptr detaches.
  void set_tracer(obs::Tracer* tracer) noexcept;
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Route and execute `trace`: every invocation is assigned to a node by
  /// `router` (observing current fleet state), then offered to that node's
  /// streaming episode and scheduled by the node's own scheduler. Idle
  /// nodes' clocks advance in lockstep with the global clock, so TTL expiry
  /// and completions are visible to the router. Resets all nodes.
  FleetSummary run(const sim::Trace& trace, Router& router);

  /// The fault stream node `node` of an `nodes`-node fleet seeded with
  /// `seed` receives in run(). Exposed so a single ClusterEnv driven with
  /// an injector on this stream reproduces a 1-node fleet bit-for-bit
  /// (asserted in tests/faults).
  [[nodiscard]] static util::Rng node_fault_stream(std::uint64_t seed,
                                                   std::size_t nodes,
                                                   std::size_t node);

 private:
  struct Node {
    policies::SystemSpec spec;
    std::unique_ptr<sim::ClusterEnv> env;
  };

  /// Validate `trace` before routing anything: arrival times must be
  /// non-decreasing and every function id known, with the offending
  /// invocation index named in the error.
  void validate_trace(const sim::Trace& trace) const;

  const sim::FunctionTable& functions_;
  const containers::PackageCatalog& catalog_;
  FleetConfig config_;
  std::vector<Node> nodes_;
  std::string system_name_;
  obs::Tracer* tracer_ = nullptr;
  /// Split off the fleet seed in the constructor; run() copies it, so
  /// repeated runs inject identical faults.
  util::Rng fault_root_;
};

}  // namespace mlcr::fleet
