#include "faults/injector.hpp"

namespace mlcr::faults {

FaultInjector::FaultInjector(FaultPlan plan, util::Rng stream)
    : plan_(std::move(plan)), stream_(stream) {
  plan_.validate(static_cast<std::size_t>(-1));
}

bool FaultInjector::draw_startup_failure() noexcept {
  const bool fail = stream_.bernoulli(plan_.startup_failure_prob);
  if (fail) ++counters_.startup_failures;
  return fail;
}

bool FaultInjector::draw_repack_failure() noexcept {
  const bool fail = stream_.bernoulli(plan_.repack_failure_prob);
  if (fail) ++counters_.repack_failures;
  return fail;
}

double FaultInjector::draw_backoff(std::size_t failed_attempt) {
  ++counters_.retries;
  return plan_.retry.backoff_s(failed_attempt, stream_.uniform());
}

}  // namespace mlcr::faults
