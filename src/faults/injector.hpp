// FaultInjector: the only source of fault randomness. It owns a util::Rng
// stream split() off the episode seed (never a literal seed — the
// fault-rng-stream simlint rule enforces this) and draws every fault
// decision from it in a fixed order, so the stream position — and therefore
// every injected fault — is a pure function of (plan, stream, episode).
//
// The injector is passive: it draws and counts, the ClusterEnv / FleetEnv
// act (destroy containers, back off, re-route) and trace. It depends only
// on src/util, so src/faults sits below the simulator in the layer graph.
#pragma once

#include <cstdint>

#include "faults/fault_plan.hpp"
#include "util/rng.hpp"

namespace mlcr::faults {

/// Everything the injector saw happen, for summaries and audits.
struct FaultCounters {
  std::size_t startup_failures = 0;
  std::size_t repack_failures = 0;
  std::size_t timeouts = 0;
  std::size_t retries = 0;             ///< backoffs drawn (attempts - 1 sum)
  std::size_t failed_invocations = 0;  ///< retries exhausted or crash-killed
  std::size_t crashes = 0;          ///< all crashes, partial ones included
  std::size_t partial_crashes = 0;  ///< of crashes: warm pool survived
  std::size_t recoveries = 0;

  /// Faults injected from the stream or the deadline (not crash bookkeeping).
  [[nodiscard]] std::size_t injected() const noexcept {
    return startup_failures + repack_failures + timeouts;
  }
};

class FaultInjector {
 public:
  /// `stream` must be split() off the episode seed by the caller.
  FaultInjector(FaultPlan plan, util::Rng stream);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const FaultCounters& counters() const noexcept {
    return counters_;
  }

  /// Bernoulli draw: does this cold/repack start fail? Counts on true.
  [[nodiscard]] bool draw_startup_failure() noexcept;
  /// Bernoulli draw: does this L1/L2 repack fail? Counts on true.
  [[nodiscard]] bool draw_repack_failure() noexcept;
  /// Backoff (simulated seconds) before the retry that follows failed
  /// attempt `failed_attempt` (1-based); consumes one jitter draw and
  /// counts a retry.
  [[nodiscard]] double draw_backoff(std::size_t failed_attempt);

  // Deadline and crash faults are decided by the environment (no
  // randomness); it reports them here so the counters stay complete.
  void count_timeout() noexcept { ++counters_.timeouts; }
  void count_failed_invocation() noexcept { ++counters_.failed_invocations; }
  void count_crash(bool partial = false) noexcept {
    ++counters_.crashes;
    if (partial) ++counters_.partial_crashes;
  }
  void count_recovery() noexcept { ++counters_.recoveries; }

 private:
  FaultPlan plan_;
  util::Rng stream_;
  FaultCounters counters_;
};

}  // namespace mlcr::faults
