#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/check.hpp"

namespace mlcr::faults {

double RetryPolicy::backoff_s(std::size_t failed_attempt, double u) const {
  MLCR_CHECK_MSG(failed_attempt >= 1, "backoff is for a 1-based attempt");
  const double scaled =
      base_backoff_s *
      std::pow(backoff_multiplier, static_cast<double>(failed_attempt - 1));
  return std::min(scaled, max_backoff_s) * (1.0 + jitter_frac * u);
}

bool FaultPlan::faultless() const noexcept {
  return startup_failure_prob == 0.0 && repack_failure_prob == 0.0 &&
         !timeout_s.has_value() && crashes.empty();
}

void FaultPlan::validate(std::size_t nodes) const {
  MLCR_CHECK_MSG(
      startup_failure_prob >= 0.0 && startup_failure_prob <= 1.0,
      "startup_failure_prob must be in [0, 1]: " << startup_failure_prob);
  MLCR_CHECK_MSG(
      repack_failure_prob >= 0.0 && repack_failure_prob <= 1.0,
      "repack_failure_prob must be in [0, 1]: " << repack_failure_prob);
  if (timeout_s.has_value())
    MLCR_CHECK_MSG(*timeout_s > 0.0, "timeout_s must be positive");
  MLCR_CHECK_MSG(retry.max_attempts >= 1,
                 "retry.max_attempts must be >= 1 (1 disables retries)");
  MLCR_CHECK_MSG(retry.base_backoff_s >= 0.0 && retry.max_backoff_s >= 0.0 &&
                     retry.backoff_multiplier >= 0.0 &&
                     retry.jitter_frac >= 0.0,
                 "retry backoff parameters must be non-negative");

  // Per node: windows sorted by down_at, each window non-inverted, no
  // overlap (a node cannot crash while already down).
  std::map<std::size_t, double> last_up;
  double prev_down = 0.0;
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    const CrashWindow& w = crashes[i];
    MLCR_CHECK_MSG(w.node < nodes, "crash window " << i << " names node "
                                                   << w.node
                                                   << " outside the fleet");
    MLCR_CHECK_MSG(w.down_at >= 0.0 && w.up_at > w.down_at,
                   "crash window " << i << " is inverted or negative");
    MLCR_CHECK_MSG(i == 0 || w.down_at >= prev_down,
                   "crash windows must be sorted by down_at (window " << i
                                                                      << ")");
    prev_down = w.down_at;
    const auto it = last_up.find(w.node);
    MLCR_CHECK_MSG(it == last_up.end() || w.down_at >= it->second,
                   "crash window " << i << " overlaps an earlier window on "
                                   << "node " << w.node);
    last_up[w.node] = w.up_at;
  }
}

std::vector<CrashWindow> sample_crash_windows(std::size_t nodes, double span_s,
                                              double crashes_per_node,
                                              double mean_downtime_s,
                                              std::size_t max_concurrent_down,
                                              util::Rng& rng) {
  MLCR_CHECK(nodes > 0);
  MLCR_CHECK(span_s > 0.0);
  MLCR_CHECK(crashes_per_node >= 0.0);
  MLCR_CHECK(mean_downtime_s > 0.0);
  MLCR_CHECK_MSG(max_concurrent_down < nodes,
                 "at least one node must always stay up");

  // Candidate windows per node, then a global sweep that drops any window
  // which would push the number of simultaneously-down nodes over the cap.
  std::vector<CrashWindow> candidates;
  for (std::size_t node = 0; node < nodes; ++node) {
    const std::uint64_t count =
        crashes_per_node > 0.0 ? rng.poisson(crashes_per_node) : 0;
    std::vector<double> downs;
    for (std::uint64_t k = 0; k < count; ++k)
      downs.push_back(rng.uniform(0.0, span_s));
    std::sort(downs.begin(), downs.end());
    double earliest = 0.0;
    for (const double down_at : downs) {
      if (down_at < earliest) continue;  // would overlap this node's last
      const double downtime = rng.exponential(1.0 / mean_downtime_s);
      CrashWindow w;
      w.node = node;
      w.down_at = down_at;
      w.up_at = down_at + std::max(downtime, 1e-9);
      candidates.push_back(w);
      earliest = w.up_at;
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const CrashWindow& a, const CrashWindow& b) {
              if (a.down_at != b.down_at) return a.down_at < b.down_at;
              return a.node < b.node;
            });

  std::vector<CrashWindow> out;
  for (const CrashWindow& w : candidates) {
    std::size_t down = 0;  // accepted windows still open at w.down_at
    for (const CrashWindow& o : out)
      if (o.up_at > w.down_at) ++down;
    if (down >= max_concurrent_down) continue;
    out.push_back(w);
  }
  return out;
}

}  // namespace mlcr::faults
