#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "util/check.hpp"

namespace mlcr::faults {

namespace {

/// Names a window's domain for diagnostics: "domain 3" or "no domain".
[[nodiscard]] std::string domain_name(std::size_t domain) {
  return domain == kNoDomain ? "no domain"
                             : "domain " + std::to_string(domain);
}

/// Per-node independent candidate windows — the exact draw sequence of
/// sample_crash_windows (Poisson count, uniform downs, sorted, one
/// exponential downtime per accepted down). Factored out so the domain
/// sampler cannot drift from it: bit-identity of the inert-DomainPlan path
/// is structural, not coincidental.
[[nodiscard]] std::vector<CrashWindow> independent_candidates(
    std::size_t nodes, double span_s, double crashes_per_node,
    double mean_downtime_s, util::Rng& rng) {
  std::vector<CrashWindow> candidates;
  for (std::size_t node = 0; node < nodes; ++node) {
    const std::uint64_t count =
        crashes_per_node > 0.0 ? rng.poisson(crashes_per_node) : 0;
    std::vector<double> downs;
    for (std::uint64_t k = 0; k < count; ++k)
      downs.push_back(rng.uniform(0.0, span_s));
    std::sort(downs.begin(), downs.end());
    double earliest = 0.0;
    for (const double down_at : downs) {
      if (down_at < earliest) continue;  // would overlap this node's last
      const double downtime = rng.exponential(1.0 / mean_downtime_s);
      CrashWindow w;
      w.node = node;
      w.down_at = down_at;
      w.up_at = down_at + std::max(downtime, 1e-9);
      candidates.push_back(w);
      earliest = w.up_at;
    }
  }
  return candidates;
}

/// Global (down_at, node) sort plus the concurrency-cap sweep shared by
/// both samplers: drop any window that would push the number of
/// simultaneously-down nodes over the cap.
[[nodiscard]] std::vector<CrashWindow> cap_concurrency(
    std::vector<CrashWindow> candidates, std::size_t max_concurrent_down) {
  std::sort(candidates.begin(), candidates.end(),
            [](const CrashWindow& a, const CrashWindow& b) {
              if (a.down_at != b.down_at) return a.down_at < b.down_at;
              return a.node < b.node;
            });

  std::vector<CrashWindow> out;
  for (const CrashWindow& w : candidates) {
    std::size_t down = 0;  // accepted windows still open at w.down_at
    for (const CrashWindow& o : out)
      if (o.up_at > w.down_at) ++down;
    if (down >= max_concurrent_down) continue;
    out.push_back(w);
  }
  return out;
}

}  // namespace

double RetryPolicy::backoff_s(std::size_t failed_attempt, double u) const {
  MLCR_CHECK_MSG(failed_attempt >= 1, "backoff is for a 1-based attempt");
  const double scaled =
      base_backoff_s *
      std::pow(backoff_multiplier, static_cast<double>(failed_attempt - 1));
  return std::min(scaled, max_backoff_s) * (1.0 + jitter_frac * u);
}

void validate_domains(const std::vector<FailureDomain>& domains,
                      std::size_t nodes) {
  std::map<std::size_t, std::size_t> id_at;       // domain id -> list index
  std::map<std::size_t, std::size_t> node_owner;  // node -> domain id
  for (std::size_t i = 0; i < domains.size(); ++i) {
    const FailureDomain& d = domains[i];
    const auto [it, fresh] = id_at.emplace(d.id, i);
    MLCR_CHECK_MSG(fresh, "failure domain " << d.id << " is declared twice "
                                            << "(entries " << it->second
                                            << " and " << i << ")");
    MLCR_CHECK_MSG(!d.nodes.empty(),
                   "failure domain " << d.id << " has no member nodes");
    for (const std::size_t node : d.nodes) {
      MLCR_CHECK_MSG(node < nodes, "failure domain "
                                       << d.id << " names node " << node
                                       << " outside the fleet of " << nodes
                                       << " nodes");
      const auto [owner, taken] = node_owner.emplace(node, d.id);
      MLCR_CHECK_MSG(taken, "node " << node << " belongs to failure domains "
                                    << owner->second << " and " << d.id
                                    << " — domains must be disjoint");
    }
  }
}

bool DomainPlan::inert() const noexcept {
  return domains.empty() || correlation == 0.0 || crashes_per_domain == 0.0;
}

void DomainPlan::validate(std::size_t nodes) const {
  validate_domains(domains, nodes);
  MLCR_CHECK_MSG(correlation >= 0.0 && correlation <= 1.0,
                 "domain correlation must be in [0, 1]: " << correlation);
  MLCR_CHECK_MSG(
      partial_fraction >= 0.0 && partial_fraction <= 1.0,
      "domain partial_fraction must be in [0, 1]: " << partial_fraction);
  MLCR_CHECK_MSG(crashes_per_domain >= 0.0,
                 "crashes_per_domain must be non-negative: "
                     << crashes_per_domain);
  MLCR_CHECK_MSG(mean_downtime_s > 0.0,
                 "domain mean_downtime_s must be positive: "
                     << mean_downtime_s);
}

std::optional<double> FaultPlan::timeout_for(
    std::size_t function) const noexcept {
  for (const auto& [fn, deadline] : function_timeouts_s)
    if (fn == function) return deadline;
  return timeout_s;
}

bool FaultPlan::faultless() const noexcept {
  return startup_failure_prob == 0.0 && repack_failure_prob == 0.0 &&
         !timeout_s.has_value() && function_timeouts_s.empty() &&
         crashes.empty();
}

void FaultPlan::validate(std::size_t nodes) const {
  MLCR_CHECK_MSG(
      startup_failure_prob >= 0.0 && startup_failure_prob <= 1.0,
      "startup_failure_prob must be in [0, 1]: " << startup_failure_prob);
  MLCR_CHECK_MSG(
      repack_failure_prob >= 0.0 && repack_failure_prob <= 1.0,
      "repack_failure_prob must be in [0, 1]: " << repack_failure_prob);
  if (timeout_s.has_value())
    MLCR_CHECK_MSG(*timeout_s > 0.0, "timeout_s must be positive");
  for (std::size_t i = 0; i < function_timeouts_s.size(); ++i) {
    MLCR_CHECK_MSG(function_timeouts_s[i].second > 0.0,
                   "per-function timeout " << i << " (function "
                                           << function_timeouts_s[i].first
                                           << ") must be positive");
    for (std::size_t j = 0; j < i; ++j)
      MLCR_CHECK_MSG(
          function_timeouts_s[j].first != function_timeouts_s[i].first,
          "function " << function_timeouts_s[i].first
                      << " has two timeout overrides (entries " << j << " and "
                      << i << ")");
  }
  MLCR_CHECK_MSG(retry.max_attempts >= 1,
                 "retry.max_attempts must be >= 1 (1 disables retries)");
  MLCR_CHECK_MSG(retry.base_backoff_s >= 0.0 && retry.max_backoff_s >= 0.0 &&
                     retry.backoff_multiplier >= 0.0 &&
                     retry.jitter_frac >= 0.0,
                 "retry backoff parameters must be non-negative");

  validate_domains(domains, nodes);

  // Per node: windows sorted by down_at, each window non-inverted, no
  // overlap (a node cannot crash while already down, partially or fully),
  // and domain references resolve to a domain the node belongs to.
  std::map<std::size_t, double> last_up;
  double prev_down = 0.0;
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    const CrashWindow& w = crashes[i];
    MLCR_CHECK_MSG(w.node < nodes, "crash window " << i << " names node "
                                                   << w.node
                                                   << " outside the fleet");
    MLCR_CHECK_MSG(w.down_at >= 0.0 && w.up_at > w.down_at,
                   "crash window " << i << " on node " << w.node
                                   << " is inverted or negative ([" << w.down_at
                                   << ", " << w.up_at << "])");
    MLCR_CHECK_MSG(i == 0 || w.down_at >= prev_down,
                   "crash windows must be sorted by down_at (window " << i
                                                                      << ")");
    prev_down = w.down_at;
    const auto it = last_up.find(w.node);
    MLCR_CHECK_MSG(it == last_up.end() || w.down_at >= it->second,
                   "crash window " << i << " (" << domain_name(w.domain)
                                   << ") overlaps an earlier window on "
                                   << "node " << w.node);
    last_up[w.node] = w.up_at;
    if (w.domain == kNoDomain) continue;
    const auto owner = std::find_if(
        domains.begin(), domains.end(),
        [&](const FailureDomain& d) { return d.id == w.domain; });
    MLCR_CHECK_MSG(owner != domains.end(),
                   "crash window " << i << " on node " << w.node
                                   << " names unknown failure domain "
                                   << w.domain);
    MLCR_CHECK_MSG(std::find(owner->nodes.begin(), owner->nodes.end(),
                             w.node) != owner->nodes.end(),
                   "crash window " << i << " puts node " << w.node
                                   << " in failure domain " << w.domain
                                   << ", but the node is not a member");
  }
}

std::vector<CrashWindow> sample_crash_windows(std::size_t nodes, double span_s,
                                              double crashes_per_node,
                                              double mean_downtime_s,
                                              std::size_t max_concurrent_down,
                                              util::Rng& rng) {
  MLCR_CHECK(nodes > 0);
  MLCR_CHECK(span_s > 0.0);
  MLCR_CHECK(crashes_per_node >= 0.0);
  MLCR_CHECK(mean_downtime_s > 0.0);
  MLCR_CHECK_MSG(max_concurrent_down < nodes,
                 "at least one node must always stay up");

  // Candidate windows per node, then a global sweep that drops any window
  // which would push the number of simultaneously-down nodes over the cap.
  return cap_concurrency(
      independent_candidates(nodes, span_s, crashes_per_node, mean_downtime_s,
                             rng),
      max_concurrent_down);
}

std::vector<CrashWindow> sample_domain_crash_windows(
    std::size_t nodes, double span_s, double crashes_per_node,
    double mean_downtime_s, std::size_t max_concurrent_down,
    const DomainPlan& domains, util::Rng& rng) {
  MLCR_CHECK(nodes > 0);
  MLCR_CHECK(span_s > 0.0);
  MLCR_CHECK(crashes_per_node >= 0.0);
  MLCR_CHECK(mean_downtime_s > 0.0);
  MLCR_CHECK_MSG(max_concurrent_down < nodes,
                 "at least one node must always stay up");
  domains.validate(nodes);

  // Phase 1 — the independent candidates, with exactly the draws (and draw
  // order) of sample_crash_windows. An inert DomainPlan adds nothing after
  // this point, so its output is bit-identical to the independent sampler.
  std::vector<CrashWindow> independent = independent_candidates(
      nodes, span_s, crashes_per_node, mean_downtime_s, rng);
  if (domains.inert())
    return cap_concurrency(std::move(independent), max_concurrent_down);

  // Phase 2 — domain events, per domain in listed order. Every event draws
  // (down_at, downtime, partial) once and one participation Bernoulli per
  // member node in listed order, unconditionally — fixed draw order, so the
  // stream position never depends on which members happen to participate.
  std::vector<CrashWindow> correlated;
  for (const FailureDomain& d : domains.domains) {
    const std::uint64_t count = rng.poisson(domains.crashes_per_domain);
    std::vector<double> downs;
    for (std::uint64_t k = 0; k < count; ++k)
      downs.push_back(rng.uniform(0.0, span_s));
    std::sort(downs.begin(), downs.end());
    for (const double down_at : downs) {
      const double downtime =
          rng.exponential(1.0 / domains.mean_downtime_s);
      const bool partial = rng.bernoulli(domains.partial_fraction);
      const double up_at = down_at + std::max(downtime, 1e-9);
      for (const std::size_t node : d.nodes) {
        const bool member_down = rng.bernoulli(domains.correlation);
        if (!member_down) continue;
        CrashWindow w;
        w.node = node;
        w.down_at = down_at;
        w.up_at = up_at;
        w.partial = partial;
        w.domain = d.id;
        correlated.push_back(w);
      }
    }
  }

  // Phase 3 — per-node merge: first window wins (a node cannot crash while
  // already down), independent windows before domain windows on down_at
  // ties, then domain-list order. Ordering mirrors FaultPlan::validate's
  // non-overlap rule, so the merged set always validates.
  std::vector<CrashWindow> merged;
  for (std::size_t node = 0; node < nodes; ++node) {
    std::vector<CrashWindow> mine;
    for (const CrashWindow& w : independent)
      if (w.node == node) mine.push_back(w);
    for (const CrashWindow& w : correlated)
      if (w.node == node) mine.push_back(w);
    std::stable_sort(mine.begin(), mine.end(),
                     [](const CrashWindow& a, const CrashWindow& b) {
                       if (a.down_at != b.down_at)
                         return a.down_at < b.down_at;
                       // Independent (kNoDomain == SIZE_MAX... sorts last by
                       // id), so compare on "has a domain" explicitly.
                       return (a.domain == kNoDomain) >
                              (b.domain == kNoDomain);
                     });
    double earliest = 0.0;
    for (const CrashWindow& w : mine) {
      if (w.down_at < earliest) continue;  // absorbed by the open window
      merged.push_back(w);
      earliest = w.up_at;
    }
  }
  return cap_concurrency(std::move(merged), max_concurrent_down);
}

}  // namespace mlcr::faults
