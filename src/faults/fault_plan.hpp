// Deterministic fault model (DESIGN.md §9, §14): what can go wrong in an
// episode and how the platform is allowed to react. A FaultPlan is pure data
// — the fault *kinds* and their rates — so the same plan can drive a single
// ClusterEnv, every node of a FleetEnv, or a bench sweep, and two runs with
// the same plan and the same Rng stream inject byte-identical faults.
//
// Fault kinds:
//   startup failure — a cold or repack start dies at the end of its startup
//                     sequence (Bernoulli per risky start).
//   repack failure  — the volume swap of a Table-I L1/L2 reuse fails; the
//                     candidate container is destroyed and the start
//                     degrades to cold, paying the attempted swap.
//   timeout         — startup + execution would exceed a deadline; the
//                     container is killed at the deadline.
//   node crash      — a fleet node goes down for a window: its warm pool is
//                     lost, in-flight work is killed, offers are rejected
//                     until recovery (it rejoins with an empty pool).
//   partial crash   — the node loses compute (in-flight work killed, offers
//                     rejected) but its warm pool survives the window, so it
//                     rejoins with warm state instead of a cold-start storm.
//
// Failure domains (DESIGN.md §14): nodes share racks/zones, and a domain-
// level event crashes several members at once. Domain windows are sampled
// from the same single split stream as the independent ones, in a fixed
// draw order, so a plan's faults stay a pure function of (plan, stream).
//
// Failed starts are retried under a RetryPolicy with exponential backoff in
// *simulated* time; when attempts are exhausted the invocation fails.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace mlcr::faults {

/// How failed starts (startup failure / timeout) are retried. The defaults
/// mean "no retry": one attempt, then the invocation fails.
struct RetryPolicy {
  /// Total start attempts per invocation (>= 1); 1 disables retries.
  std::size_t max_attempts = 1;
  /// Backoff before retry k (1-based) is
  ///   min(base * multiplier^(k-1), max) * (1 + jitter_frac * u),
  /// u ~ U[0,1) from the injector's stream. Seconds of simulated time.
  double base_backoff_s = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 30.0;
  double jitter_frac = 0.1;

  /// Deterministic backoff before the retry that follows failed attempt
  /// `failed_attempt` (1-based), given jitter draw `u` in [0, 1).
  [[nodiscard]] double backoff_s(std::size_t failed_attempt, double u) const;
};

/// "This window was not caused by a failure domain" sentinel for
/// CrashWindow::domain.
inline constexpr std::size_t kNoDomain = static_cast<std::size_t>(-1);

/// One node-down window in the fleet. Half-open in spirit: the node crashes
/// at down_at and serves again from up_at (with an empty pool after a full
/// crash; with its surviving warm pool after a partial one).
struct CrashWindow {
  std::size_t node = 0;
  double down_at = 0.0;
  double up_at = 0.0;
  /// Partial crash: compute is lost (in-flight work killed, offers
  /// rejected) but the warm pool survives to recovery.
  bool partial = false;
  /// Failure-domain id that produced this window; kNoDomain for
  /// independently sampled / hand-placed windows.
  std::size_t domain = kNoDomain;

  friend bool operator==(const CrashWindow& a, const CrashWindow& b) {
    return a.node == b.node && a.down_at == b.down_at && a.up_at == b.up_at &&
           a.partial == b.partial && a.domain == b.domain;
  }
};

/// One rack/zone: a named set of member nodes that can fail together.
struct FailureDomain {
  std::size_t id = 0;
  std::vector<std::size_t> nodes;  ///< member node indices, any order
};

/// Validate a domain list against a fleet of `nodes` nodes: ids unique,
/// every domain non-empty, members inside the fleet, memberships disjoint.
/// Throws util::CheckError naming the offending domain and node.
void validate_domains(const std::vector<FailureDomain>& domains,
                      std::size_t nodes);

/// Correlated-failure sampling knobs for sample_domain_crash_windows. A
/// default-constructed plan is inert: zero correlation draws no domain
/// events, and the sampler's output is bit-identical to
/// sample_crash_windows on the same stream (the migration oracle pinned in
/// tests/faults).
struct DomainPlan {
  std::vector<FailureDomain> domains;
  /// P(a member node participates in one of its domain's events).
  double correlation = 0.0;
  /// Expected domain-level events per domain over the sampled span.
  double crashes_per_domain = 0.0;
  /// Mean exponential downtime of a domain event.
  double mean_downtime_s = 30.0;
  /// P(a domain event is a partial crash — pool survives).
  double partial_fraction = 0.0;

  /// True when no domain event can ever fire (no domains, zero correlation
  /// or zero event rate) — the sampler then draws nothing beyond the
  /// independent windows.
  [[nodiscard]] bool inert() const noexcept;

  /// Throws util::CheckError on malformed plans, naming the offending
  /// domain/node: bad memberships (see validate_domains), correlation or
  /// partial_fraction outside [0, 1], negative event rate, non-positive
  /// downtime.
  void validate(std::size_t nodes) const;
};

/// The full fault configuration of an episode. Default-constructed plans
/// are faultless, and a faultless plan leaves every simulation path
/// bit-identical to running with no injector attached.
struct FaultPlan {
  /// P(a cold or repack start fails), drawn once per attempt.
  double startup_failure_prob = 0.0;
  /// P(the volume swap of an L1/L2 repack reuse fails), drawn per repack.
  double repack_failure_prob = 0.0;
  /// Kill any attempt whose startup + execution exceeds this deadline.
  std::optional<double> timeout_s;
  /// Per-function deadline overrides (function id -> deadline), for
  /// SLO-based timeout tuning: functions absent here use timeout_s. An
  /// override with no global timeout_s applies only to the named functions.
  std::vector<std::pair<std::size_t, double>> function_timeouts_s;
  RetryPolicy retry;
  /// Node-down windows, fleet-wide. Must be sorted by down_at and
  /// non-overlapping per node (validate() checks).
  std::vector<CrashWindow> crashes;
  /// Rack/zone membership metadata: validates windows' domain references
  /// and names domains in diagnostics/traces. Carrying domains alone (no
  /// windows) injects nothing.
  std::vector<FailureDomain> domains;

  /// Effective deadline for `function`: its override, else timeout_s, else
  /// none.
  [[nodiscard]] std::optional<double> timeout_for(
      std::size_t function) const noexcept;

  [[nodiscard]] bool faultless() const noexcept;
  /// Throws util::CheckError on malformed plans: probabilities outside
  /// [0, 1], max_attempts == 0, negative backoff/timeout, crash windows
  /// unsorted, inverted, or overlapping per node, naming a node index
  /// >= `nodes` (pass SIZE_MAX when the fleet size is unknown), bad domain
  /// memberships, or windows referencing an unknown domain / a domain the
  /// window's node does not belong to. Every message names the offending
  /// window, node and domain.
  void validate(std::size_t nodes) const;
};

/// Sample crash windows for an `nodes`-node fleet over [0, span_s]:
/// `crashes_per_node` expected crashes per node (Poisson-thinned uniform
/// arrivals) with exponential downtime of mean `mean_downtime_s`. At most
/// `max_concurrent_down` nodes are ever down simultaneously (windows that
/// would exceed the cap are dropped), so benches can guarantee surviving
/// capacity and assert zero lost invocations. Result is sorted by down_at.
[[nodiscard]] std::vector<CrashWindow> sample_crash_windows(
    std::size_t nodes, double span_s, double crashes_per_node,
    double mean_downtime_s, std::size_t max_concurrent_down, util::Rng& rng);

/// Correlated-domain extension of sample_crash_windows, drawing from the
/// same single stream under a fixed draw order (DESIGN.md §14):
///   1. the independent per-node candidates, with exactly the draws of
///      sample_crash_windows (so an inert DomainPlan is bit-identical to it);
///   2. then, per domain in listed order, Poisson domain events — each
///      drawing (down_at, downtime, partial) once and one participation
///      Bernoulli per member node in listed order;
///   3. per node, overlapping later windows are dropped (first window wins,
///      independent before domain on down_at ties), then the global
///      max_concurrent_down sweep of sample_crash_windows runs unchanged.
/// Domain windows carry their domain id and partial flag.
[[nodiscard]] std::vector<CrashWindow> sample_domain_crash_windows(
    std::size_t nodes, double span_s, double crashes_per_node,
    double mean_downtime_s, std::size_t max_concurrent_down,
    const DomainPlan& domains, util::Rng& rng);

}  // namespace mlcr::faults
