// Deterministic fault model (DESIGN.md §9): what can go wrong in an episode
// and how the platform is allowed to react. A FaultPlan is pure data — the
// fault *kinds* and their rates — so the same plan can drive a single
// ClusterEnv, every node of a FleetEnv, or a bench sweep, and two runs with
// the same plan and the same Rng stream inject byte-identical faults.
//
// Fault kinds:
//   startup failure — a cold or repack start dies at the end of its startup
//                     sequence (Bernoulli per risky start).
//   repack failure  — the volume swap of a Table-I L1/L2 reuse fails; the
//                     candidate container is destroyed and the start
//                     degrades to cold, paying the attempted swap.
//   timeout         — startup + execution would exceed a deadline; the
//                     container is killed at the deadline.
//   node crash      — a fleet node goes down for a window: its warm pool is
//                     lost, in-flight work is killed, offers are rejected
//                     until recovery (it rejoins with an empty pool).
//
// Failed starts are retried under a RetryPolicy with exponential backoff in
// *simulated* time; when attempts are exhausted the invocation fails.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.hpp"

namespace mlcr::faults {

/// How failed starts (startup failure / timeout) are retried. The defaults
/// mean "no retry": one attempt, then the invocation fails.
struct RetryPolicy {
  /// Total start attempts per invocation (>= 1); 1 disables retries.
  std::size_t max_attempts = 1;
  /// Backoff before retry k (1-based) is
  ///   min(base * multiplier^(k-1), max) * (1 + jitter_frac * u),
  /// u ~ U[0,1) from the injector's stream. Seconds of simulated time.
  double base_backoff_s = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 30.0;
  double jitter_frac = 0.1;

  /// Deterministic backoff before the retry that follows failed attempt
  /// `failed_attempt` (1-based), given jitter draw `u` in [0, 1).
  [[nodiscard]] double backoff_s(std::size_t failed_attempt, double u) const;
};

/// One node-down window in the fleet. Half-open in spirit: the node crashes
/// at down_at and serves again from up_at (with an empty pool).
struct CrashWindow {
  std::size_t node = 0;
  double down_at = 0.0;
  double up_at = 0.0;
};

/// The full fault configuration of an episode. Default-constructed plans
/// are faultless, and a faultless plan leaves every simulation path
/// bit-identical to running with no injector attached.
struct FaultPlan {
  /// P(a cold or repack start fails), drawn once per attempt.
  double startup_failure_prob = 0.0;
  /// P(the volume swap of an L1/L2 repack reuse fails), drawn per repack.
  double repack_failure_prob = 0.0;
  /// Kill any attempt whose startup + execution exceeds this deadline.
  std::optional<double> timeout_s;
  RetryPolicy retry;
  /// Node-down windows, fleet-wide. Must be sorted by down_at and
  /// non-overlapping per node (validate() checks).
  std::vector<CrashWindow> crashes;

  [[nodiscard]] bool faultless() const noexcept;
  /// Throws util::CheckError on malformed plans: probabilities outside
  /// [0, 1], max_attempts == 0, negative backoff/timeout, crash windows
  /// unsorted, inverted, or overlapping per node, or naming a node index
  /// >= `nodes` (pass SIZE_MAX when the fleet size is unknown).
  void validate(std::size_t nodes) const;
};

/// Sample crash windows for an `nodes`-node fleet over [0, span_s]:
/// `crashes_per_node` expected crashes per node (Poisson-thinned uniform
/// arrivals) with exponential downtime of mean `mean_downtime_s`. At most
/// `max_concurrent_down` nodes are ever down simultaneously (windows that
/// would exceed the cap are dropped), so benches can guarantee surviving
/// capacity and assert zero lost invocations. Result is sorted by down_at.
[[nodiscard]] std::vector<CrashWindow> sample_crash_windows(
    std::size_t nodes, double span_s, double crashes_per_node,
    double mean_downtime_s, std::size_t max_concurrent_down, util::Rng& rng);

}  // namespace mlcr::faults
