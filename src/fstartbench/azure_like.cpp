#include "fstartbench/azure_like.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace mlcr::fstartbench {

using containers::Level;
using containers::PackageId;

namespace {

/// Per-function invocation count: a calibrated mixture — point masses at 1
/// and 2 plus a discrete Pareto tail for the hot functions.
[[nodiscard]] std::size_t sample_invocation_count(const AzureLikeConfig& cfg,
                                                  util::Rng& rng) {
  const double u = rng.uniform();
  if (u < cfg.p_single) return 1;
  if (u < cfg.p_single + cfg.p_double) return 2;
  // Pareto tail starting at 3: count = floor(3 * v^(-1/alpha)).
  const double v = 1.0 - rng.uniform();  // (0, 1]
  const double raw = 3.0 * std::pow(v, -1.0 / cfg.tail_alpha);
  return std::min<std::size_t>(cfg.max_invocations_per_function,
                               static_cast<std::size_t>(raw));
}

/// Heavy-tailed mean execution time: lognormal with a 1 s median, so about
/// half the functions are sub-second (Sec. II-C citation).
[[nodiscard]] double sample_mean_exec(util::Rng& rng) {
  const double log_mean = rng.normal(0.0, 1.1);
  return std::clamp(std::exp(log_mean), 0.02, 60.0);
}

}  // namespace

AzureLikeWorkload make_azure_like_workload(const AzureLikeConfig& config,
                                           util::Rng rng) {
  MLCR_CHECK(config.num_functions > 0);
  MLCR_CHECK(config.window_s > 0.0);
  MLCR_CHECK(config.p_single >= 0.0 && config.p_double >= 0.0 &&
             config.p_single + config.p_double <= 1.0);
  MLCR_CHECK(config.num_os > 0 && config.num_languages > 0);

  AzureLikeWorkload out;

  // --- Package universe: sizes follow the FStartBench calibration ranges.
  std::vector<PackageId> oses, langs, runtimes;
  for (std::size_t i = 0; i < config.num_os; ++i)
    oses.push_back(out.catalog.add("os-" + std::to_string(i), Level::kOs,
                                   rng.uniform(8.0, 220.0),
                                   rng.uniform(0.3, 1.0)));
  for (std::size_t i = 0; i < config.num_languages; ++i)
    langs.push_back(out.catalog.add("lang-" + std::to_string(i),
                                    Level::kLanguage,
                                    rng.uniform(40.0, 240.0),
                                    rng.uniform(0.5, 2.0)));
  for (std::size_t i = 0; i < config.num_runtime_packages; ++i)
    runtimes.push_back(out.catalog.add("rt-" + std::to_string(i),
                                       Level::kRuntime,
                                       rng.uniform(2.0, 120.0),
                                       rng.uniform(0.1, 1.0)));

  const util::ZipfSampler os_zipf(oses.size(), 1.4);
  const util::ZipfSampler lang_zipf(langs.size(), 1.2);
  const util::ZipfSampler rt_zipf(runtimes.size(), 1.05);

  // --- Function population.
  for (std::size_t i = 0; i < config.num_functions; ++i) {
    std::vector<PackageId> os = {oses[os_zipf.sample(rng)]};
    std::vector<PackageId> lang = {langs[lang_zipf.sample(rng)]};
    std::vector<PackageId> rt;
    const auto n_rt = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config.max_runtime_per_function)));
    for (std::size_t j = 0; j < n_rt; ++j)
      rt.push_back(runtimes[rt_zipf.sample(rng)]);

    sim::FunctionType fn;
    fn.name = "azure-fn-" + std::to_string(i);
    fn.description = "synthetic Azure-like function";
    fn.image = containers::ImageSpec(std::move(os), std::move(lang),
                                     std::move(rt));
    const bool compiled = rng.bernoulli(0.3);
    fn.language_kind = compiled ? sim::LanguageKind::kCompiled
                                : sim::LanguageKind::kInterpreted;
    fn.runtime_init_s = compiled ? rng.uniform(1.0, 4.0)
                                 : rng.uniform(0.1, 0.5);
    fn.function_init_s = rng.uniform(0.02, 0.3);
    fn.mean_exec_s = sample_mean_exec(rng);
    fn.exec_cv = 0.3;
    (void)out.functions.add(std::move(fn));
  }

  // --- Trace: per-function heavy-tailed counts, arrivals uniform in the
  // window (equivalent to a Poisson process conditioned on the count).
  std::vector<sim::Invocation> invocations;
  out.invocations_per_function.resize(config.num_functions);
  for (std::size_t i = 0; i < config.num_functions; ++i) {
    const std::size_t count = sample_invocation_count(config, rng);
    out.invocations_per_function[i] = count;
    const auto& fn = out.functions.get(static_cast<sim::FunctionTypeId>(i));
    for (std::size_t k = 0; k < count; ++k) {
      sim::Invocation inv;
      inv.function = static_cast<sim::FunctionTypeId>(i);
      inv.arrival_s = rng.uniform(0.0, config.window_s);
      inv.exec_s = std::max(0.05 * fn.mean_exec_s,
                            rng.normal(fn.mean_exec_s,
                                       fn.exec_cv * fn.mean_exec_s));
      invocations.push_back(inv);
    }
  }
  out.trace = sim::Trace(std::move(invocations));
  return out;
}

double AzureLikeWorkload::fraction_invoked_once() const {
  if (invocations_per_function.empty()) return 0.0;
  std::size_t once = 0;
  for (const std::size_t c : invocations_per_function)
    if (c == 1) ++once;
  return static_cast<double>(once) /
         static_cast<double>(invocations_per_function.size());
}

double AzureLikeWorkload::fraction_invoked_at_most(std::size_t k) const {
  if (invocations_per_function.empty()) return 0.0;
  std::size_t n = 0;
  for (const std::size_t c : invocations_per_function)
    if (c <= k) ++n;
  return static_cast<double>(n) /
         static_cast<double>(invocations_per_function.size());
}

double AzureLikeWorkload::image_size_spread(double lo_percentile,
                                            double hi_percentile) const {
  std::vector<double> sizes;
  sizes.reserve(functions.size());
  for (const auto& fn : functions.all())
    sizes.push_back(fn.image.total_size_mb(catalog));
  if (sizes.empty()) return 0.0;
  const double lo = util::percentile(sizes, lo_percentile);
  const double hi = util::percentile(sizes, hi_percentile);
  return lo > 0.0 ? hi / lo : 0.0;
}

double AzureLikeWorkload::fraction_short_running(double threshold_s) const {
  if (functions.size() == 0) return 0.0;
  std::size_t n = 0;
  for (const auto& fn : functions.all())
    if (fn.mean_exec_s < threshold_s) ++n;
  return static_cast<double>(n) / static_cast<double>(functions.size());
}

}  // namespace mlcr::fstartbench
