#include "fstartbench/benchmark.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace mlcr::fstartbench {

using containers::ImageSpec;
using containers::Level;
using containers::PackageId;
using sim::FunctionType;
using sim::LanguageKind;

namespace {

/// Registers the package universe of the 13 functions. Sizes (MB) follow the
/// corresponding Docker Hub images; install times are seconds of
/// configure/extract work on top of the pull.
struct Packages {
  PackageId alpine, debian, centos;
  PackageId java, nodejs, go, python, cpp;
  PackageId springboot, express, gin, flask;
  PackageId numpy, pandas, matplotlib, tensorflow;
  PackageId cos_sdk, sharp;

  explicit Packages(containers::PackageCatalog& c) {
    alpine = c.add("alpine:3.18", Level::kOs, 8.0, 0.3);
    debian = c.add("debian:11", Level::kOs, 120.0, 0.8);
    centos = c.add("centos:7", Level::kOs, 200.0, 1.0);

    java = c.add("openjdk-17", Level::kLanguage, 220.0, 2.0);
    nodejs = c.add("nodejs-18", Level::kLanguage, 80.0, 0.6);
    go = c.add("go-1.20", Level::kLanguage, 110.0, 0.8);
    python = c.add("python-3.9", Level::kLanguage, 50.0, 1.0);
    cpp = c.add("gcc-12", Level::kLanguage, 150.0, 1.5);

    springboot = c.add("springboot-3", Level::kRuntime, 35.0, 1.2);
    express = c.add("express-4", Level::kRuntime, 5.0, 0.2);
    gin = c.add("gin-1.9", Level::kRuntime, 10.0, 0.3);
    flask = c.add("flask-2.3", Level::kRuntime, 8.0, 0.3);
    numpy = c.add("numpy-1.24", Level::kRuntime, 30.0, 0.5);
    pandas = c.add("pandas-2.0", Level::kRuntime, 60.0, 0.8);
    matplotlib = c.add("matplotlib-3.7", Level::kRuntime, 40.0, 0.6);
    tensorflow = c.add("tensorflow-2.12", Level::kRuntime, 500.0, 3.0);
    cos_sdk = c.add("cos-sdk-cpp", Level::kRuntime, 20.0, 0.5);
    sharp = c.add("sharp-0.32", Level::kRuntime, 25.0, 0.4);
  }
};

FunctionType make_fn(std::string name, std::string desc, ImageSpec image,
                     LanguageKind kind, double runtime_init_s,
                     double function_init_s, double mean_exec_s,
                     double exec_cv = 0.25) {
  FunctionType f;
  f.name = std::move(name);
  f.description = std::move(desc);
  f.image = std::move(image);
  f.language_kind = kind;
  f.runtime_init_s = runtime_init_s;
  f.function_init_s = function_init_s;
  f.mean_exec_s = mean_exec_s;
  f.exec_cv = exec_cv;
  return f;
}

}  // namespace

Benchmark make_benchmark() {
  Benchmark b;
  const Packages p(b.catalog);

  // Paper Table II, FuncIDs 1..13 in order. Java/Springboot gets a large
  // runtime init (compiled language, Sec. II: init can reach ~45% of cold
  // start); interpreted stacks get small ones (~6%).
  b.functions.add(make_fn(
      "hello-java", "Hello", ImageSpec({p.alpine}, {p.java}, {p.springboot}),
      LanguageKind::kCompiled, 4.0, 0.10, 0.12));
  b.functions.add(make_fn(
      "hello-node", "Hello", ImageSpec({p.alpine}, {p.nodejs}, {p.express}),
      LanguageKind::kInterpreted, 0.20, 0.03, 0.08));
  b.functions.add(make_fn(
      "hello-go", "Hello", ImageSpec({p.alpine}, {p.go}, {p.gin}),
      LanguageKind::kCompiled, 0.30, 0.02, 0.05));
  b.functions.add(make_fn(
      "hello-python", "Hello", ImageSpec({p.alpine}, {p.python}, {p.flask}),
      LanguageKind::kInterpreted, 0.15, 0.05, 0.08));
  b.functions.add(make_fn(
      "hello-python-debian", "Hello",
      ImageSpec({p.debian}, {p.python}, {p.flask}),
      LanguageKind::kInterpreted, 0.15, 0.05, 0.08));
  b.functions.add(make_fn(
      "analytics-numpy", "Data analytics",
      ImageSpec({p.debian}, {p.python}, {p.flask, p.numpy}),
      LanguageKind::kInterpreted, 0.25, 0.10, 0.60));
  b.functions.add(make_fn(
      "analytics-pandas", "Data analytics",
      ImageSpec({p.debian}, {p.python}, {p.flask, p.numpy, p.pandas}),
      LanguageKind::kInterpreted, 0.35, 0.12, 0.90));
  b.functions.add(make_fn(
      "analytics-plot", "Data analytics",
      ImageSpec({p.debian}, {p.python},
                {p.flask, p.numpy, p.pandas, p.matplotlib}),
      LanguageKind::kInterpreted, 0.45, 0.15, 1.20));
  b.functions.add(make_fn(
      "object-storage-cpp", "Communication",
      ImageSpec({p.centos}, {p.cpp}, {p.cos_sdk}),
      LanguageKind::kCompiled, 0.10, 0.05, 1.00, 0.40));
  b.functions.add(make_fn(
      "alu-python", "Simple arithmetic",
      ImageSpec({p.debian}, {p.python}, {p.flask}),
      LanguageKind::kInterpreted, 0.15, 0.05, 2.00, 0.30));
  b.functions.add(make_fn(
      "web-node", "Web service",
      ImageSpec({p.alpine}, {p.nodejs}, {p.express}),
      LanguageKind::kInterpreted, 0.20, 0.05, 0.30));
  b.functions.add(make_fn(
      "image-java", "Image processing",
      ImageSpec({p.alpine}, {p.java}, {p.springboot, p.sharp}),
      LanguageKind::kCompiled, 4.0, 0.15, 1.50, 0.35));
  b.functions.add(make_fn(
      "ml-inference", "Machine learning",
      ImageSpec({p.debian}, {p.python}, {p.flask, p.tensorflow}),
      LanguageKind::kInterpreted, 1.20, 0.30, 2.50, 0.30));

  MLCR_CHECK(b.functions.size() == 13);
  return b;
}

sim::FunctionTypeId Benchmark::by_paper_id(int paper_id) const {
  MLCR_CHECK_MSG(paper_id >= 1 && paper_id <= static_cast<int>(functions.size()),
                 "paper FuncID must be 1.." << functions.size());
  return static_cast<sim::FunctionTypeId>(paper_id - 1);
}

std::vector<sim::FunctionTypeId> Benchmark::paper_ids(
    std::initializer_list<int> ids) const {
  std::vector<sim::FunctionTypeId> out;
  out.reserve(ids.size());
  for (int id : ids) out.push_back(by_paper_id(id));
  return out;
}

sim::CostModelConfig default_cost_config() {
  sim::CostModelConfig c;
  c.sandbox_create_s = 0.6;
  c.pull_bandwidth_mb_s = 30.0;
  c.pull_rtt_s = 0.04;
  return c;
}

double average_pairwise_similarity(
    const Benchmark& bench, const std::vector<sim::FunctionTypeId>& types) {
  MLCR_CHECK(types.size() >= 2);
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < types.size(); ++i) {
    for (std::size_t j = i + 1; j < types.size(); ++j) {
      total += bench.functions.get(types[i])
                   .image.jaccard(bench.functions.get(types[j]).image);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

double package_size_variance(const Benchmark& bench,
                             const std::vector<sim::FunctionTypeId>& types) {
  // Variance over the distinct packages used anywhere in the workload
  // (paper Metric 2: "the sizes of all packages in the workload").
  std::set<containers::PackageId> distinct;
  for (const auto type : types)
    for (containers::PackageId p : bench.functions.get(type).image.all_packages())
      distinct.insert(p);
  std::vector<double> sizes;
  sizes.reserve(distinct.size());
  for (containers::PackageId p : distinct)
    sizes.push_back(bench.catalog.info(p).size_mb);
  return util::population_variance(sizes);
}

}  // namespace mlcr::fstartbench
