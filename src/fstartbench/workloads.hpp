// The seven FStartBench workloads (paper Sec. V) plus the overall-evaluation
// mix (Sec. VI-A), and pool-capacity helpers (Tight / Moderate / Loose).
#pragma once

#include <string>
#include <vector>

#include "fstartbench/benchmark.hpp"
#include "sim/invocation.hpp"
#include "util/rng.hpp"

namespace mlcr::fstartbench {

/// Sample one execution duration for a function type (normal around the
/// configured mean, clipped to stay positive).
[[nodiscard]] double sample_exec_s(const sim::FunctionType& fn,
                                   util::Rng& rng);

/// Superpose one Poisson arrival process per function type, `per_type_count`
/// arrivals each with rate `lambda_per_s`, then merge.
[[nodiscard]] sim::Trace make_poisson_mix(
    const Benchmark& bench, const std::vector<sim::FunctionTypeId>& types,
    std::size_t per_type_count, double lambda_per_s, util::Rng& rng);

/// Overall-evaluation workload (Sec. VI-A): all 13 functions, `total`
/// invocations (paper: 400), each type arriving as a Poisson process whose
/// rate is drawn uniformly from (0, 5] invocations/s.
[[nodiscard]] sim::Trace make_overall_workload(const Benchmark& bench,
                                               std::size_t total,
                                               util::Rng& rng);

/// Metric-1 workloads. high=true -> HI-Sim (paper FuncIDs 1,2,3,4,11,
/// avg pairwise similarity ~0.5); high=false -> LO-Sim (1,2,5,9,13, ~0.3).
[[nodiscard]] sim::Trace make_similarity_workload(const Benchmark& bench,
                                                  bool high, std::size_t total,
                                                  util::Rng& rng);

/// Metric-2 workloads. high=true -> HI-Var (big spread of package sizes,
/// FuncIDs 1,2,5,9,13); high=false -> LO-Var (1,2,3,4,11).
/// NOTE: the paper's text lists the two sets the other way around, but the
/// variances it reports (LO-Var=54, HI-Var=769) only fit this assignment —
/// {1,2,5,9,13} spans Alpine..TensorFlow (huge spread) while {1,2,3,4,11}
/// is all small Alpine stacks. See EXPERIMENTS.md.
[[nodiscard]] sim::Trace make_variance_workload(const Benchmark& bench,
                                                bool high, std::size_t total,
                                                util::Rng& rng);

/// Metric-3 arrival patterns (FuncIDs 1,2,5,6,13; 300 functions in 6 min).
enum class ArrivalPattern { kUniform, kPeak, kRandom };
[[nodiscard]] std::string to_string(ArrivalPattern pattern);
[[nodiscard]] sim::Trace make_arrival_workload(const Benchmark& bench,
                                               ArrivalPattern pattern,
                                               std::size_t total,
                                               util::Rng& rng);

/// "Loose" pool capacity (Sec. VI-A): the peak warm-pool memory when nothing
/// is ever evicted. Estimated by replaying `trace` against an effectively
/// unbounded pool with classic same-config reuse.
[[nodiscard]] double estimate_loose_capacity_mb(const Benchmark& bench,
                                                const sim::Trace& trace);

/// Paper pool sizes: Tight = Loose/5, Moderate = Loose/2.
struct PoolSizes {
  double tight_mb = 0.0;
  double moderate_mb = 0.0;
  double loose_mb = 0.0;
};
[[nodiscard]] PoolSizes paper_pool_sizes(double loose_mb);

}  // namespace mlcr::fstartbench
