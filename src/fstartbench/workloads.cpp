#include "fstartbench/workloads.hpp"

#include <algorithm>
#include <cmath>

#include "policies/runner.hpp"
#include "util/check.hpp"

namespace mlcr::fstartbench {

double sample_exec_s(const sim::FunctionType& fn, util::Rng& rng) {
  const double sigma = fn.mean_exec_s * fn.exec_cv;
  const double sample = rng.normal(fn.mean_exec_s, sigma);
  // Clip to a sane floor; serverless functions never run for 0 time.
  return std::max(sample, 0.05 * fn.mean_exec_s);
}

sim::Trace make_poisson_mix(const Benchmark& bench,
                            const std::vector<sim::FunctionTypeId>& types,
                            std::size_t per_type_count, double lambda_per_s,
                            util::Rng& rng) {
  MLCR_CHECK(!types.empty());
  MLCR_CHECK(lambda_per_s > 0.0);
  std::vector<sim::Invocation> all;
  all.reserve(types.size() * per_type_count);
  for (const auto type : types) {
    double t = 0.0;
    for (std::size_t i = 0; i < per_type_count; ++i) {
      t += rng.exponential(lambda_per_s);
      sim::Invocation inv;
      inv.function = type;
      inv.arrival_s = t;
      inv.exec_s = sample_exec_s(bench.functions.get(type), rng);
      all.push_back(inv);
    }
  }
  return sim::Trace(std::move(all));
}

sim::Trace make_overall_workload(const Benchmark& bench, std::size_t total,
                                 util::Rng& rng) {
  const std::size_t n_types = bench.functions.size();
  MLCR_CHECK(total >= n_types);

  // Random per-type Poisson rates, with per-type counts proportional to the
  // rates so that faster processes contribute more of the `total`
  // invocations. The paper quotes rates of 0..5/s; at our calibrated
  // cold-start costs that would make >90% of invocations overlap their own
  // cold starts, so rates are scaled to keep the warm/cold mix in the
  // regime the paper reports (~40-60% cold for the baselines, Fig. 8b).
  // See EXPERIMENTS.md.
  std::vector<double> lambdas(n_types);
  double lambda_sum = 0.0;
  for (auto& l : lambdas) {
    l = rng.uniform(0.02, 0.3);
    lambda_sum += l;
  }
  std::vector<std::size_t> counts(n_types);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n_types; ++i) {
    counts[i] = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(static_cast<double>(total) * lambdas[i] /
                          lambda_sum)));
    assigned += counts[i];
  }
  // Round-robin the remainder (or trim overshoot) deterministically.
  std::size_t i = 0;
  while (assigned < total) {
    ++counts[i % n_types];
    ++assigned;
    ++i;
  }
  while (assigned > total) {
    if (counts[i % n_types] > 1) {
      --counts[i % n_types];
      --assigned;
    }
    ++i;
  }

  std::vector<sim::Invocation> all;
  all.reserve(total);
  for (std::size_t type = 0; type < n_types; ++type) {
    double t = 0.0;
    const auto id = static_cast<sim::FunctionTypeId>(type);
    for (std::size_t k = 0; k < counts[type]; ++k) {
      t += rng.exponential(lambdas[type]);
      sim::Invocation inv;
      inv.function = id;
      inv.arrival_s = t;
      inv.exec_s = sample_exec_s(bench.functions.get(id), rng);
      all.push_back(inv);
    }
  }
  return sim::Trace(std::move(all));
}

sim::Trace make_similarity_workload(const Benchmark& bench, bool high,
                                    std::size_t total, util::Rng& rng) {
  const auto types = high ? bench.paper_ids({1, 2, 3, 4, 11})
                          : bench.paper_ids({1, 2, 5, 9, 13});
  MLCR_CHECK(total % types.size() == 0);
  // Per-type rate 0.2/s -> ~1 invocation/s aggregate, i.e. 300 invocations
  // over ~5 minutes, matching the paper's 50-per-minute workload scale.
  return make_poisson_mix(bench, types, total / types.size(), 0.2, rng);
}

sim::Trace make_variance_workload(const Benchmark& bench, bool high,
                                  std::size_t total, util::Rng& rng) {
  // See header: HI-Var is the wide-size-spread set {1,2,5,9,13}.
  return make_similarity_workload(bench, /*high=*/!high, total, rng);
}

std::string to_string(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kUniform:
      return "Uniform";
    case ArrivalPattern::kPeak:
      return "Peak";
    case ArrivalPattern::kRandom:
      return "Random";
  }
  return "?";
}

sim::Trace make_arrival_workload(const Benchmark& bench,
                                 ArrivalPattern pattern, std::size_t total,
                                 util::Rng& rng) {
  const auto types = bench.paper_ids({1, 2, 5, 6, 13});
  std::vector<double> arrivals;
  arrivals.reserve(total);

  // 300 invocations in a 6-minute window (Sec. V Metric 3), scaled
  // proportionally for other totals.
  const double window_s = 360.0 * static_cast<double>(total) / 300.0;
  switch (pattern) {
    case ArrivalPattern::kUniform: {
      const double gap = window_s / static_cast<double>(total);
      for (std::size_t i = 0; i < total; ++i)
        arrivals.push_back(static_cast<double>(i) * gap);
      break;
    }
    case ArrivalPattern::kPeak: {
      // Alternating one-minute high (80/min) and low (20/min) periods, each
      // minute's invocations evenly spaced within it.
      std::size_t produced = 0;
      for (std::size_t minute = 0; produced < total; ++minute) {
        const std::size_t per_minute = (minute % 2 == 0) ? 80 : 20;
        const std::size_t n = std::min(per_minute, total - produced);
        const double gap = 60.0 / static_cast<double>(per_minute);
        for (std::size_t k = 0; k < n; ++k)
          arrivals.push_back(static_cast<double>(minute) * 60.0 +
                             static_cast<double>(k) * gap);
        produced += n;
      }
      break;
    }
    case ArrivalPattern::kRandom: {
      // Poisson process at the same average rate as Uniform.
      const double rate = static_cast<double>(total) / window_s;
      double t = 0.0;
      for (std::size_t i = 0; i < total; ++i) {
        t += rng.exponential(rate);
        arrivals.push_back(t);
      }
      break;
    }
  }

  std::vector<sim::Invocation> all;
  all.reserve(total);
  for (double at : arrivals) {
    const auto type = types[rng.uniform_index(types.size())];
    sim::Invocation inv;
    inv.function = type;
    inv.arrival_s = at;
    inv.exec_s = sample_exec_s(bench.functions.get(type), rng);
    all.push_back(inv);
  }
  return sim::Trace(std::move(all));
}

double estimate_loose_capacity_mb(const Benchmark& bench,
                                  const sim::Trace& trace) {
  const sim::StartupCostModel cost(bench.catalog, default_cost_config());
  const auto spec = policies::make_lru_system();
  constexpr double kUnbounded = 1e9;
  const auto summary = policies::run_system(
      spec, bench.functions, bench.catalog, cost, kUnbounded, trace);
  MLCR_CHECK(summary.evictions == 0);
  return summary.peak_pool_mb;
}

PoolSizes paper_pool_sizes(double loose_mb) {
  MLCR_CHECK(loose_mb > 0.0);
  return PoolSizes{loose_mb / 5.0, loose_mb / 2.0, loose_mb};
}

}  // namespace mlcr::fstartbench
