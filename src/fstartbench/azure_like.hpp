// Azure-like synthetic workload (substitution for the proprietary Azure
// Functions trace the paper cites). The paper's motivation rests on three
// production statistics (Shahrad et al., ATC'20):
//   * ~19% of functions are invoked exactly once (keep-alive never helps),
//   * >40% of functions are invoked no more than twice per day,
//   * per-function memory/footprint varies by ~4x and half the functions
//     run for under a second.
// This generator emits a function *population* (with three-level images
// sampled from Zipf-popular packages, mirroring the Fig. 3 registry) plus an
// invocation trace whose per-function counts follow a calibrated heavy-tail
// so those statistics hold by construction.
#pragma once

#include "containers/package.hpp"
#include "sim/invocation.hpp"
#include "util/rng.hpp"

namespace mlcr::fstartbench {

struct AzureLikeConfig {
  std::size_t num_functions = 200;  ///< distinct function types
  double window_s = 7200.0;         ///< trace window (scaled-down "day")
  /// Invocation-count distribution knobs (defaults reproduce the cited
  /// statistics): P(count = 1), P(count = 2), and the Pareto tail exponent
  /// for counts > 2.
  double p_single = 0.19;
  double p_double = 0.21;
  double tail_alpha = 0.7;
  std::size_t max_invocations_per_function = 500;
  /// Package universe (Zipf-popular, like the Fig. 3 registry).
  std::size_t num_os = 6;
  std::size_t num_languages = 8;
  std::size_t num_runtime_packages = 60;
  std::size_t max_runtime_per_function = 4;
};

/// The generated world: catalog + function population + one trace.
struct AzureLikeWorkload {
  containers::PackageCatalog catalog;
  sim::FunctionTable functions;
  sim::Trace trace;
  std::vector<std::size_t> invocations_per_function;

  /// Fraction of function types invoked exactly once.
  [[nodiscard]] double fraction_invoked_once() const;
  /// Fraction of function types invoked at most `k` times.
  [[nodiscard]] double fraction_invoked_at_most(std::size_t k) const;
  /// Ratio of the 95th to 5th percentile of function image sizes
  /// (the paper cites a ~4x spread of memory usage).
  [[nodiscard]] double image_size_spread(
      double lo_percentile = 5.0, double hi_percentile = 95.0) const;
  /// Fraction of function types with mean execution below `threshold_s`.
  [[nodiscard]] double fraction_short_running(double threshold_s = 1.0) const;
};

[[nodiscard]] AzureLikeWorkload make_azure_like_workload(
    const AzureLikeConfig& config, util::Rng rng);

}  // namespace mlcr::fstartbench
