// FStartBench (paper Sec. V): 13 functions covering five application
// categories, each with full three-level package metadata, so different
// cold-start solutions can be compared fairly. Paper Table II reproduced
// verbatim; package sizes/install times are calibrated so the simulator
// matches the paper's measured cost structure (Sec. II).
#pragma once

#include <vector>

#include "containers/package.hpp"
#include "sim/cost_model.hpp"
#include "sim/function_type.hpp"

namespace mlcr::fstartbench {

/// The benchmark: catalog of packages + the 13 function types.
struct Benchmark {
  containers::PackageCatalog catalog;
  sim::FunctionTable functions;

  /// Map the paper's 1-based FuncID (Table II) to our FunctionTypeId.
  [[nodiscard]] sim::FunctionTypeId by_paper_id(int paper_id) const;

  /// Convenience: translate a list of paper FuncIDs.
  [[nodiscard]] std::vector<sim::FunctionTypeId> paper_ids(
      std::initializer_list<int> ids) const;
};

/// Build the 13-function FStartBench suite.
[[nodiscard]] Benchmark make_benchmark();

/// Cost-model knobs calibrated against the paper's measurements.
[[nodiscard]] sim::CostModelConfig default_cost_config();

/// Average pairwise Jaccard similarity over the given function types
/// (paper Metric 1; LO-Sim = 0.29, HI-Sim = 0.52).
[[nodiscard]] double average_pairwise_similarity(
    const Benchmark& bench, const std::vector<sim::FunctionTypeId>& types);

/// Population variance of the package sizes used by the given function types
/// (paper Metric 2; LO-Var = 54, HI-Var = 769).
[[nodiscard]] double package_size_variance(
    const Benchmark& bench, const std::vector<sim::FunctionTypeId>& types);

}  // namespace mlcr::fstartbench
