#include "util/thread_pool.hpp"

#include <algorithm>

namespace mlcr::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(submit([&fn, i] { fn(i); }));
  // Drain every future before propagating: tasks capture `fn` by reference,
  // so returning (via throw) while later tasks are still queued or running
  // would leave them racing against a dead reference.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

}  // namespace mlcr::util
