// Compile-time gate for the cross-structure invariant auditor.
//
// The auditor re-validates structural invariants (pool byte accounting,
// busy/idle disjointness, metrics sums, action-mask validity) after every
// state transition. The audit methods themselves (WarmPool::audit,
// ClusterEnv::audit, MetricsCollector::audit, StateEncoder::audit) are always
// compiled — tests call them directly — but the per-event call sites are
// wrapped in MLCR_AUDIT_POINT, which compiles away in optimized builds:
//
//   - Debug builds (NDEBUG undefined): auditor on.
//   - RelWithDebInfo / Release: auditor off, unless the build was configured
//     with -DMLCR_AUDIT=ON (which defines MLCR_AUDIT_FORCE).
//
// Audit failures throw util::CheckError via MLCR_CHECK, so tests can assert
// on corrupted state instead of aborting.
#pragma once

#if defined(MLCR_AUDIT_FORCE) || !defined(NDEBUG)
#define MLCR_AUDIT_ENABLED 1
#else
#define MLCR_AUDIT_ENABLED 0
#endif

#if MLCR_AUDIT_ENABLED
#define MLCR_AUDIT_POINT(expr) \
  do {                         \
    expr;                      \
  } while (0)
#else
#define MLCR_AUDIT_POINT(expr) \
  do {                         \
  } while (0)
#endif
