// Lightweight precondition / invariant checking.
//
// MLCR_CHECK is always on (simulator correctness depends on it); failures throw
// mlcr::util::CheckError so tests can assert on violations instead of aborting.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mlcr::util {

/// Thrown when a MLCR_CHECK condition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace mlcr::util

#define MLCR_CHECK(cond)                                                 \
  do {                                                                   \
    if (!(cond))                                                         \
      ::mlcr::util::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define MLCR_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream mlcr_check_os_;                               \
      mlcr_check_os_ << msg;                                           \
      ::mlcr::util::detail::check_failed(#cond, __FILE__, __LINE__,    \
                                         mlcr_check_os_.str());        \
    }                                                                  \
  } while (0)
