#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace mlcr::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::exponential(double lambda) noexcept {
  // uniform() can return 0; 1 - u is in (0, 1].
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::normal() noexcept {
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    const double x = normal(lambda, std::sqrt(lambda));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }
  // Knuth's multiplication method.
  const double limit = std::exp(-lambda);
  std::uint64_t k = 0;
  double product = uniform();
  while (product > limit) {
    ++k;
    product *= uniform();
  }
  return k;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  MLCR_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MLCR_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  MLCR_CHECK_MSG(total > 0.0, "weights must not all be zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fall back to last index
}

Rng Rng::split() noexcept { return Rng(next()); }

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  MLCR_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  // Binary search for first cdf >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

double ZipfSampler::probability(std::size_t rank) const {
  MLCR_CHECK(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace mlcr::util
