// Fixed-width console table writer used by the bench binaries to print the
// paper-style rows (Fig. 8 latency tables, Fig. 11 box summaries, ...).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mlcr::util {

/// Accumulates rows of strings and prints them with aligned columns.
/// Numeric cells are right-aligned, text cells left-aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double value, int precision = 2);
  [[nodiscard]] static std::string num(std::size_t value);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Write rows as CSV (comma-separated, minimal quoting) to a stream.
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
  std::size_t arity_;
};

}  // namespace mlcr::util
