// Runtime lock-order validator — the dynamic half of the concurrency
// contract (DESIGN.md §12). The static half is simlint's lock-discipline
// checker (tools/simlint/locks.hpp); both encode the same declared order:
//
//   service shard mutexes (ascending shard)  rank 1'000'000 + shard
//   inference mutex                          rank 2'000'000
//   index shard locks                        rank 3'000'000 + shard
//   telemetry window/trace mutex             rank 4'000'000
//   metrics registry slot locks (leaves)     rank 5'000'000 + slot
//
// Every thread keeps a thread-local stack of held ranks. An acquisition must
// carry a rank strictly greater than everything the thread already holds —
// equal is a double-acquisition, smaller is an ordering inversion; either
// throws util::CheckError via MLCR_CHECK_MSG so tests can assert on it.
// Releases may happen in any order (dispatch_wave's guard vector is
// destroyed front-to-back), so released() erases by value, not by popping.
//
// The validator methods are always compiled — tests drive them directly —
// but instrumentation call sites go through LockRankScope, whose body
// compiles away unless MLCR_AUDIT_ENABLED (Debug builds, or MLCR_AUDIT=ON;
// CI's TSan job runs the serve suite with the validator live). Validation is
// purely thread-local: no atomics, no shared state, no interference with the
// locking it observes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/audit.hpp"
#include "util/check.hpp"

namespace mlcr::util {

namespace lock_ranks {

inline constexpr std::uint64_t kServiceShardBase = 1'000'000;
inline constexpr std::uint64_t kInference = 2'000'000;
inline constexpr std::uint64_t kIndexShardBase = 3'000'000;
inline constexpr std::uint64_t kTelemetry = 4'000'000;
inline constexpr std::uint64_t kRegistrySlotBase = 5'000'000;

/// Rank of SchedulerService's dispatch mutex for `shard` (ascending-index
/// acquisition across a wave maps to ascending ranks).
[[nodiscard]] constexpr std::uint64_t service_shard(std::size_t shard) {
  return kServiceShardBase + shard;
}

/// Rank of ShardedFleetIndex's per-shard lock. Nothing in the serving path
/// is acquired while one is held.
[[nodiscard]] constexpr std::uint64_t index_shard(std::size_t shard) {
  return kIndexShardBase + shard;
}

/// Rank of ConcurrentMetricsRegistry's per-slot lock — the leaves: with the
/// top rank band, acquiring anything on top of one is an inversion by
/// construction. The telemetry mutex (kTelemetry) sits just below so the
/// snapshot path may merge slots while holding it.
[[nodiscard]] constexpr std::uint64_t registry_slot(std::size_t slot) {
  return kRegistrySlotBase + slot;
}

}  // namespace lock_ranks

/// Thread-local acquisition-stack validator. Static methods only; the held
/// stack lives per thread.
class LockOrderValidator {
 public:
  /// Record an acquisition. Throws CheckError if `rank` is not strictly
  /// greater than every rank this thread already holds.
  static void acquired(std::uint64_t rank, const char* name) {
    std::vector<std::uint64_t>& stack = held();
    for (const std::uint64_t h : stack) {
      MLCR_CHECK_MSG(h != rank, "lock-order audit: '"
                                    << name << "' (rank " << rank
                                    << ") acquired twice on one thread");
      MLCR_CHECK_MSG(h < rank, "lock-order audit: '"
                                   << name << "' (rank " << rank
                                   << ") acquired while holding rank " << h
                                   << "; the declared order is service shard "
                                      "mutexes (ascending) < inference mutex "
                                      "< index shard locks < telemetry mutex "
                                      "< registry slot locks");
    }
    stack.push_back(rank);
  }

  /// Record a release. Out-of-LIFO release is legal (guard vectors destroy
  /// front-to-back); releasing a rank that is not held is ignored so scope
  /// teardown stays noexcept.
  static void released(std::uint64_t rank) noexcept {
    std::vector<std::uint64_t>& stack = held();
    const auto it = std::find(stack.rbegin(), stack.rend(), rank);
    if (it != stack.rend()) stack.erase(std::next(it).base());
  }

  /// Number of ranks the calling thread currently holds (for tests).
  [[nodiscard]] static std::size_t held_count() { return held().size(); }

  /// Drop all record for the calling thread (test isolation after a thrown
  /// CheckError left ranks registered).
  static void reset() { held().clear(); }

 private:
  [[nodiscard]] static std::vector<std::uint64_t>& held() {
    thread_local std::vector<std::uint64_t> stack;
    return stack;
  }
};

/// RAII companion for an already-taken guard: declare one right after the
/// lock it shadows. Compiles to nothing unless the auditor is enabled.
class LockRankScope {
 public:
  LockRankScope(std::uint64_t rank, const char* name) : rank_(rank) {
#if MLCR_AUDIT_ENABLED
    LockOrderValidator::acquired(rank_, name);
    armed_ = true;
#else
    (void)name;
#endif
  }

  LockRankScope(LockRankScope&& other) noexcept
      : rank_(other.rank_), armed_(other.armed_) {
    other.armed_ = false;
  }

  LockRankScope(const LockRankScope&) = delete;
  LockRankScope& operator=(const LockRankScope&) = delete;
  LockRankScope& operator=(LockRankScope&&) = delete;

  ~LockRankScope() {
#if MLCR_AUDIT_ENABLED
    if (armed_) LockOrderValidator::released(rank_);
#endif
  }

 private:
  std::uint64_t rank_;
  bool armed_ = false;
};

}  // namespace mlcr::util
