// Deterministic random number generation for the simulator and workloads.
//
// Everything stochastic in this repository draws from an explicitly seeded Rng
// so that a (seed, configuration) pair reproduces results bit-for-bit. The
// engine is xoshiro256** seeded via splitmix64, which is fast, has a 256-bit
// state and passes BigCrush; we avoid std::mt19937 mainly because its
// distributions are not portable across standard libraries, while all
// distribution code here is our own.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mlcr::util {

/// splitmix64 step; used to expand a single 64-bit seed into engine state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic pseudo-random generator (xoshiro256**) with portable
/// distribution helpers. Copyable: copies continue the sequence independently.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC0FFEEULL) noexcept;

  /// Raw 64 random bits (UniformRandomBitGenerator interface).
  [[nodiscard]] result_type operator()() noexcept { return next(); }
  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~result_type{0};
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;
  /// Exponential with rate lambda (> 0); mean 1/lambda.
  [[nodiscard]] double exponential(double lambda) noexcept;
  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Poisson-distributed count with mean lambda (Knuth for small lambda,
  /// normal approximation above 64).
  [[nodiscard]] std::uint64_t poisson(double lambda) noexcept;
  /// Bernoulli trial with probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Index sampled according to non-negative weights (sum > 0).
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);
  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// Derive an independent child generator (for parallel replications).
  [[nodiscard]] Rng split() noexcept;

 private:
  [[nodiscard]] std::uint64_t next() noexcept;
  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s, n) sampler over ranks 1..n via inverse-CDF table; models package
/// popularity on Docker Hub (paper Fig. 3: a few images dominate pulls).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Rank in [0, n), rank 0 most popular.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  /// Probability of rank k.
  [[nodiscard]] double probability(std::size_t rank) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace mlcr::util
