#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mlcr::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return n_ ? min_ : 0.0; }

double RunningStats::max() const noexcept { return n_ ? max_ : 0.0; }

double percentile_inplace(std::vector<double>& values, double p) {
  MLCR_CHECK(!values.empty());
  MLCR_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double percentile(std::vector<double> values, double p) {
  return percentile_inplace(values, p);
}

BoxStats box_stats(std::vector<double> values) {
  MLCR_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  BoxStats b;
  b.count = values.size();
  b.min = values.front();
  b.max = values.back();
  b.q1 = percentile_inplace(values, 25.0);
  b.median = percentile_inplace(values, 50.0);
  b.q3 = percentile_inplace(values, 75.0);
  double sum = 0.0;
  for (double v : values) sum += v;
  b.mean = sum / static_cast<double>(values.size());
  return b;
}

double population_variance(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  return var / static_cast<double>(values.size());
}

}  // namespace mlcr::util
