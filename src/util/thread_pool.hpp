// Minimal work-stealing-free thread pool used to run independent simulation
// replications in parallel (each replication owns a split Rng, so results are
// identical regardless of scheduling order).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mlcr::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace mlcr::util
