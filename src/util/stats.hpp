// Streaming and batch summary statistics used by the metrics collector and the
// benchmark harnesses (the paper reports averages over 50 repetitions and
// box-plot distributions in Fig. 11).
#pragma once

#include <cstddef>
#include <vector>

namespace mlcr::util {

/// Welford online mean/variance accumulator. O(1) memory, numerically stable.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number summary plus mean, as used for the paper's box charts.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

/// Linear-interpolation percentile of a sample set, p in [0, 100].
/// The input vector is copied; use percentile_inplace to avoid the copy.
[[nodiscard]] double percentile(std::vector<double> values, double p);
/// As percentile(), but sorts `values` in place.
[[nodiscard]] double percentile_inplace(std::vector<double>& values, double p);

/// Compute the box summary of a sample set. Requires at least one sample.
[[nodiscard]] BoxStats box_stats(std::vector<double> values);

/// Population variance of a sample set (the paper's package-size "Var" metric
/// in Sec. V uses plain variance over package sizes). Returns 0 when empty.
[[nodiscard]] double population_variance(const std::vector<double>& values);

}  // namespace mlcr::util
