// Wall-clock reads for bench self-profiling. src/util is the single zone
// where simlint permits clock access (DESIGN.md §6): simulator layers must
// never observe wall time, and the obs layer only timestamps events with
// caller-supplied values — so the only legitimate producer of wall-time
// timestamps (obs::Tracer::kBenchPid tracks) is this header, used from
// bench/.
#pragma once

#include <chrono>
#include <cstdint>

namespace mlcr::util {

/// Monotonic wall time, microseconds since an arbitrary (per-process)
/// epoch. Subtract two reads for a duration.
[[nodiscard]] inline std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace mlcr::util
