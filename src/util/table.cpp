#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace mlcr::util {

namespace {
[[nodiscard]] bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

[[nodiscard]] std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MLCR_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  MLCR_CHECK_MSG(cells.size() == headers_.size(),
                 "row arity " << cells.size() << " != header arity "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::num(std::size_t value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_sep = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| ";
      const bool right = looks_numeric(row[c]);
      if (right)
        os << std::setw(static_cast<int>(widths[c])) << std::right << row[c];
      else
        os << std::setw(static_cast<int>(widths[c])) << std::left << row[c];
      os << ' ';
    }
    os << "|\n";
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> headers)
    : os_(os), arity_(headers.size()) {
  MLCR_CHECK(arity_ > 0);
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(headers[i]);
  }
  os_ << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  MLCR_CHECK(cells.size() == arity_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(cells[i]);
  }
  os_ << '\n';
}

}  // namespace mlcr::util
