// Fig. 3 reproduction: pull-count concentration among the top-1000 images of
// a Docker-Hub-like registry. The paper observes that a few base (OS) images
// dominate — the four most popular account for 77% of pulls — and that
// language packages are similarly concentrated. We reproduce the analysis on
// the synthetic Zipf registry (the substitution for crawling Docker Hub).
#include <iostream>

#include "common.hpp"
#include "containers/registry.hpp"

int main() {
  using namespace mlcr;

  // A catalog shaped like the Docker Hub ecosystem: a handful of bases and
  // languages, a long tail of runtime packages.
  containers::PackageCatalog catalog;
  const char* oses[] = {"ubuntu", "alpine", "busybox", "centos", "debian",
                        "fedora", "archlinux", "opensuse"};
  for (const char* os : oses)
    (void)catalog.add(os, containers::Level::kOs, 100.0);
  const char* langs[] = {"python", "openjdk", "golang", "node", "ruby",
                         "php", "rust", "dotnet", "erlang", "perl"};
  for (const char* lang : langs)
    (void)catalog.add(lang, containers::Level::kLanguage, 80.0);
  for (int i = 0; i < 60; ++i)
    (void)catalog.add("runtime-" + std::to_string(i),
                      containers::Level::kRuntime, 20.0);

  containers::RegistryConfig cfg;  // 1000 images, Zipf popularity
  const containers::SyntheticRegistry registry(catalog, cfg, util::Rng(2024));

  std::cout << "=== Fig. 3: top-1000 most popular images, pull concentration "
               "===\n";
  for (const auto level :
       {containers::Level::kOs, containers::Level::kLanguage}) {
    util::Table table({"rank", std::string(containers::to_string(level)),
                       "pulls (M)", "share %", "cumulative %"});
    const auto pop = registry.popularity(level);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < std::min<std::size_t>(8, pop.size()); ++i) {
      cumulative += pop[i].share;
      table.add_row({std::to_string(i + 1), pop[i].name,
                     util::Table::num(
                         static_cast<double>(pop[i].pull_count) / 1e6, 1),
                     util::Table::num(100.0 * pop[i].share, 1),
                     util::Table::num(100.0 * cumulative, 1)});
    }
    table.print(std::cout);
  }
  std::cout << "top-4 base image share: "
            << util::Table::num(
                   100.0 * registry.top_k_share(containers::Level::kOs, 4), 1)
            << "% (paper: 77%)\n";
  std::cout << "top-3 language share:   "
            << util::Table::num(
                   100.0 * registry.top_k_share(containers::Level::kLanguage,
                                                3),
                   1)
            << "%\n";
  return 0;
}
