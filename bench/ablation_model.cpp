// Ablation of the two DQN optimizations the paper motivates in Sec. IV-C:
//   1. multi-head attention (vs a per-token MLP of the same depth), and
//   2. the action mask (vs exploring and selecting over the full action set).
// Each variant is trained identically on the overall workload and evaluated
// at the Moderate pool size, alongside Greedy-Match and Random floors.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;

  const benchtools::TraceFactory factory = [&](util::Rng& rng) {
    return fstartbench::make_overall_workload(suite.bench, 400, rng);
  };
  util::Rng ref_rng(1000);
  const sim::Trace reference = factory(ref_rng);
  const double loose =
      fstartbench::estimate_loose_capacity_mb(suite.bench, reference);
  const auto pools = fstartbench::paper_pool_sizes(loose);
  const std::vector<double> train_pools = {pools.tight_mb, pools.moderate_mb,
                                           pools.loose_mb};

  struct Variant {
    std::string label;
    std::string tag;
    core::MlcrConfig cfg;
  };
  std::vector<Variant> variants;
  {
    Variant full{"MLCR (attention + mask)", "bench_overall",
                 core::make_default_mlcr_config()};
    variants.push_back(full);

    Variant no_attn = full;
    no_attn.label = "MLCR w/o attention (MLP)";
    no_attn.tag = "bench_ablation_mlp";
    no_attn.cfg.dqn.network.use_attention = false;
    variants.push_back(no_attn);

    Variant no_mask = full;
    no_mask.label = "MLCR w/o action mask";
    no_mask.tag = "bench_ablation_nomask";
    no_mask.cfg.encoder.mask_invalid_actions = false;
    variants.push_back(no_mask);
  }

  util::Table table({"variant", "total latency (s)", "cold starts"});
  for (const auto& v : variants) {
    const auto agent = benchtools::trained_agent(suite, v.tag, factory,
                                                 train_pools, v.cfg, options);
    const auto stats = benchtools::run_replications(
        suite, benchtools::mlcr_system_factory(agent, v.cfg.encoder), factory,
        pools.moderate_mb, options.reps, options.threads);
    table.add_row({v.label, util::Table::num(stats.total_latency_s.mean(), 1),
                   util::Table::num(stats.cold_starts.mean(), 1)});
  }
  const std::vector<benchtools::NamedSystem> baselines = {
      {"Greedy-Match", [] { return policies::make_greedy_match_system(); }},
      {"Random", [] { return policies::make_random_system(); }}};
  for (const auto& system : baselines) {
    const auto stats = benchtools::run_replications(
        suite, system.make, factory, pools.moderate_mb, options.reps,
        options.threads);
    table.add_row({system.name,
                   util::Table::num(stats.total_latency_s.mean(), 1),
                   util::Table::num(stats.cold_starts.mean(), 1)});
  }

  std::cout << "=== Ablation (Sec. IV-C): attention and mask contributions, "
               "Moderate pool, "
            << options.reps << " reps ===\n";
  table.print(std::cout);
  std::cout << "(expected shape: full MLCR <= either ablation <= Random; the "
               "mask chiefly accelerates training, the attention layers "
               "capture cross-container/workload structure)\n";
  return 0;
}
