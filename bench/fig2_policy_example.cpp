// Fig. 2 reproduction: the best-effort policy (Policy1, greedy matching) is
// not optimal for a stream of invocations. Two warm containers exist; the
// first arrival has a "best" container that a later arrival needs more.
// Policy2 is the exhaustive oracle plan.
#include <iostream>

#include "common.hpp"
#include "policies/oracle.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  const auto bench_options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;
  benchtools::ObsSession obs_session(bench_options);
  const auto& bench = suite.bench;

  // Prologue (t=0, t=1): F5 (debian/python/flask) and F6 (…+numpy) cold-start
  // and park their containers: these are the paper's C2 and C1.
  // Interesting arrivals: F7 (…+numpy+pandas) at t=60 and F6 again at t=65.
  // Greedy matches F7 to the most-recently-idle L2 container — C1, F6's —
  // destroying the full match F6 needed five seconds later.
  const auto f5 = bench.by_paper_id(5);
  const auto f6 = bench.by_paper_id(6);
  const auto f7 = bench.by_paper_id(7);
  std::vector<sim::Invocation> invs;
  auto push = [&](sim::FunctionTypeId fn, double at) {
    sim::Invocation inv;
    inv.function = fn;
    inv.arrival_s = at;
    inv.exec_s = 0.5;
    invs.push_back(inv);
  };
  push(f5, 0.0);
  push(f6, 1.0);
  push(f7, 60.0);
  push(f6, 65.0);
  const sim::Trace trace{std::move(invs)};

  sim::EnvConfig cfg;
  cfg.pool_capacity_mb = 4096.0;
  const auto lru_factory = [] {
    return std::make_unique<containers::LruEviction>();
  };

  // The greedy episode doubles as the CI trace-smoke workload: with --trace
  // it emits the full lifecycle (match / repack / startup / exec, pool
  // events) for these four invocations — two warm reuses included.
  const benchtools::NamedSystem greedy_system{
      "Greedy-Match", [] { return policies::make_greedy_match_system(); }};
  const auto greedy = benchtools::trace_episode(
      obs_session, suite, greedy_system,
      [&](util::Rng&) { return trace; }, cfg.pool_capacity_mb);
  const auto oracle = policies::exhaustive_best_plan(
      bench.functions, bench.catalog, suite.cost, cfg, lru_factory, trace);

  // Reference costs for the paper-style options table.
  const auto& fn7 = bench.functions.get(f7);
  const auto& fn6 = bench.functions.get(f6);
  util::Table options({"invocation", "cold (s)", "warm via C1=F6 cont. (s)",
                       "warm via C2=F5 cont. (s)"});
  options.add_row(
      {"F7", util::Table::num(suite.cost.cold_start(fn7).total(), 2),
       util::Table::num(
           suite.cost.warm_start(fn7, containers::MatchLevel::kL2).total(), 2),
       util::Table::num(
           suite.cost.warm_start(fn7, containers::MatchLevel::kL2).total(),
           2)});
  options.add_row(
      {"F6", util::Table::num(suite.cost.cold_start(fn6).total(), 2),
       util::Table::num(
           suite.cost.warm_start(fn6, containers::MatchLevel::kL3).total(), 2),
       util::Table::num(
           suite.cost.warm_start(fn6, containers::MatchLevel::kL2).total(),
           2)});

  std::cout << "=== Fig. 2: greedy best-effort vs globally optimal ===\n";
  options.print(std::cout);

  util::Table totals({"policy", "total startup latency (s)"});
  totals.add_row({"Policy1 (Greedy-Match)",
                  util::Table::num(greedy.total_latency_s, 2)});
  totals.add_row({"Policy2 (oracle plan)",
                  util::Table::num(oracle.total_latency_s, 2)});
  totals.print(std::cout);
  std::cout << "oracle explored " << oracle.nodes_explored
            << " plan nodes; greedy is "
            << util::Table::num(
                   greedy.total_latency_s - oracle.total_latency_s, 2)
            << " s worse (paper: Policy1 suboptimal by construction)\n";

  obs_session.finish();
  if (!bench_options.trace_path.empty())
    std::cout << "trace written to " << bench_options.trace_path << "\n";
  if (!bench_options.metrics_path.empty())
    std::cout << "metrics written to " << bench_options.metrics_path << "\n";
  return greedy.total_latency_s + 1e-9 < oracle.total_latency_s ? 1 : 0;
}
