// Shared plumbing for the figure/table reproduction binaries: suite setup,
// command-line knobs, replication running, and MLCR model training with an
// on-disk cache so consecutive bench binaries reuse one trained model.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/mlcr.hpp"
#include "core/trainer.hpp"
#include "fstartbench/workloads.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/schema_check.hpp"
#include "obs/sink.hpp"
#include "obs/tracer.hpp"
#include "policies/runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/wall_clock.hpp"

namespace mlcr::benchtools {

/// Everything a bench needs: the 13 functions and the calibrated cost model.
struct Suite {
  fstartbench::Benchmark bench = fstartbench::make_benchmark();
  sim::StartupCostModel cost{bench.catalog, fstartbench::default_cost_config()};
};

/// Command-line knobs shared by the figure benches:
///   --reps N       replications per configuration (default 7; paper: 50)
///   --episodes N   MLCR training episodes (default 30)
///   --threads N    worker threads for the replication loop (default 1;
///                  0 = hardware concurrency). Results are bit-identical
///                  for any thread count: every rep owns a split Rng and a
///                  fresh system instance.
///   --fresh        ignore cached models, retrain
///   --trace F      write a Chrome trace_event JSON (Perfetto-loadable) of
///                  one traced episode per system to F
///   --metrics F    write the metrics registry (latency histograms with
///                  p50/p95/p99/p999, counters) as CSV to F
///   --json F       write a machine-readable result summary (the stable
///                  bench schema obs::check_bench_json validates and
///                  tools/benchdiff compares) to F
///   --snapshots F  write flight-recorder telemetry snapshots (the JSONL
///                  schema obs::check_snapshot_jsonl validates and
///                  tools/obsreport renders) to F — serving benches only
///   --replay-only  skip the wall-clock measurement phases and run only the
///                  deterministic SimClock replay — serving benches only
struct BenchOptions {
  std::size_t reps = 7;
  std::size_t episodes = 30;
  std::size_t threads = 1;
  bool fresh = false;
  bool replay_only = false;
  std::string trace_path;
  std::string metrics_path;
  std::string json_path;
  std::string snapshots_path;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::size_t {
        return i + 1 < argc ? static_cast<std::size_t>(std::atoll(argv[++i]))
                            : 0;
      };
      auto next_str = [&]() -> std::string {
        return i + 1 < argc ? std::string(argv[++i]) : std::string();
      };
      if (arg == "--reps")
        o.reps = next();
      else if (arg == "--episodes")
        o.episodes = next();
      else if (arg == "--threads")
        o.threads = next();
      else if (arg == "--fresh")
        o.fresh = true;
      else if (arg == "--replay-only")
        o.replay_only = true;
      else if (arg == "--trace")
        o.trace_path = next_str();
      else if (arg == "--metrics")
        o.metrics_path = next_str();
      else if (arg == "--json")
        o.json_path = next_str();
      else if (arg == "--snapshots")
        o.snapshots_path = next_str();
      else
        std::cerr << "ignoring unknown flag: " << arg << "\n";
    }
    if (o.reps == 0) o.reps = 1;
    return o;
  }
};

/// Machine-readable result summary of one bench run, in the small stable
/// schema obs::check_bench_json validates and tools/benchdiff compares:
///   {"bench": ..., "config": {...}, "wall_ms": ..., "events_per_sec": ...,
///    "metrics": {...}}
/// Keys keep insertion order, so output is deterministic. write() validates
/// the emitted document against the schema checker before it touches disk —
/// a bench can never check in a malformed baseline.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : bench_(std::move(bench_name)) {}

  void config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, obs::json_quote(value));
  }
  void config(const std::string& key, double value) {
    config_.emplace_back(key, format_number(value));
  }
  void config(const std::string& key, std::size_t value) {
    config_.emplace_back(key, std::to_string(value));
  }
  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, format_number(value));
  }
  void wall_ms(double value) { wall_ms_ = value; }
  void events_per_sec(double value) { events_per_sec_ = value; }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{\n  \"bench\": " + obs::json_quote(bench_) +
                      ",\n  \"config\": {";
    out += join(config_);
    out += "},\n  \"wall_ms\": " + format_number(wall_ms_);
    out += ",\n  \"events_per_sec\": " + format_number(events_per_sec_);
    out += ",\n  \"metrics\": {";
    out += join(metrics_);
    out += "}\n}\n";
    return out;
  }

  /// Validate against obs::check_bench_json and write to `path`. Returns
  /// false (with a message on stderr) when validation or IO fails.
  bool write(const std::string& path) const {
    const std::string text = to_json();
    const auto errors = obs::check_bench_json(text);
    if (!errors.empty()) {
      std::cerr << "[bench] --json output failed schema check:\n";
      for (const auto& e : errors) std::cerr << "  " << e << "\n";
      return false;
    }
    std::ofstream out(path);
    if (!out) {
      std::cerr << "[bench] cannot write " << path << "\n";
      return false;
    }
    out << text;
    std::cerr << "[bench] wrote " << path << "\n";
    return true;
  }

 private:
  [[nodiscard]] static std::string format_number(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  [[nodiscard]] static std::string join(
      const std::vector<std::pair<std::string, std::string>>& fields) {
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    " + obs::json_quote(fields[i].first) + ": " +
             fields[i].second;
    }
    if (!fields.empty()) out += "\n  ";
    return out;
  }

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, std::string>> metrics_;
  double wall_ms_ = 0.0;
  double events_per_sec_ = 0.0;
};

/// The observability handles of one bench run: a tracer (with a Chrome JSON
/// sink when --trace was given) and a metrics registry (dumped as CSV when
/// --metrics was given). With neither flag the tracer has no sinks, so every
/// instrumentation site in the stack stays on its null fast path.
struct ObsSession {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;

  explicit ObsSession(const BenchOptions& options)
      : metrics_path_(options.metrics_path) {
    if (!options.trace_path.empty()) {
      tracer.add_sink(
          std::make_shared<obs::ChromeTraceSink>(options.trace_path));
      tracer.process_name(obs::Tracer::kSimPid, "simulated-cluster");
      tracer.process_name(obs::Tracer::kTrainPid, "training");
      tracer.process_name(obs::Tracer::kBenchPid, "bench");
    }
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession() { finish(); }

  [[nodiscard]] bool tracing() const noexcept { return tracer.enabled(); }

  /// Close the trace and dump the metrics CSV. Idempotent; the destructor
  /// calls it, but benches call it explicitly to report the output paths.
  void finish() {
    if (finished_) return;
    finished_ = true;
    tracer.close();
    if (!metrics_path_.empty()) metrics.write_csv(metrics_path_);
  }

 private:
  std::string metrics_path_;
  bool finished_ = false;
};

/// RAII wall-time span on the bench self-profiling track
/// (obs::Tracer::kBenchPid). Wall time comes from util::wall_now_us — the
/// src/util allowed zone — and never touches simulator tracks.
class BenchSpan {
 public:
  BenchSpan(ObsSession& session, std::string name, std::uint32_t tid = 0)
      : session_(session),
        name_(std::move(name)),
        tid_(tid),
        start_us_(session.tracing() ? util::wall_now_us() : 0) {}
  BenchSpan(const BenchSpan&) = delete;
  BenchSpan& operator=(const BenchSpan&) = delete;
  ~BenchSpan() {
    if (!session_.tracing()) return;
    const std::int64_t end_us = util::wall_now_us();
    session_.tracer.span(obs::Tracer::kBenchPid, tid_, start_us_,
                         end_us - start_us_, std::move(name_), "bench");
  }

 private:
  ObsSession& session_;
  std::string name_;
  std::uint32_t tid_;
  std::int64_t start_us_;
};

/// Fold one episode's per-invocation outcomes into the session's registry:
/// a startup-latency histogram plus invocation/cold-start counters, all
/// keyed by system name.
inline void record_episode_metrics(ObsSession& session,
                                   const std::string& system,
                                   const sim::MetricsCollector& collected) {
  obs::Histogram& latency =
      session.metrics.histogram("startup_latency_s/" + system);
  for (const double v : collected.latencies()) latency.add(v);
  session.metrics.counter("invocations/" + system)
      .add(collected.invocation_count());
  session.metrics.counter("cold_starts/" + system)
      .add(collected.cold_start_count());
}

/// Generates a fresh trace of one workload family from a seeded stream.
using TraceFactory = std::function<sim::Trace(util::Rng&)>;

/// Train an MLCR agent for `factory`'s workload family across the given pool
/// capacities, or load it from `cache_tag`.model if present (and !fresh).
inline std::shared_ptr<rl::DqnAgent> trained_agent(
    const Suite& suite, const std::string& cache_tag,
    const TraceFactory& factory, const std::vector<double>& pool_sizes_mb,
    const core::MlcrConfig& cfg, const BenchOptions& options,
    std::uint64_t seed = 42) {
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(seed));
  const std::string path = cache_tag + ".model";
  if (options.fresh) std::remove(path.c_str());

  const auto train = [&] {
    std::cerr << "[bench] training MLCR model '" << cache_tag << "' ("
              << options.episodes << " episodes, "
              << pool_sizes_mb.size() << " pool sizes)...\n";
    util::Rng trace_rng(seed + 1);
    std::vector<sim::Trace> traces;
    for (int i = 0; i < 4; ++i) traces.push_back(factory(trace_rng));
    std::vector<const sim::Trace*> trace_ptrs;
    for (const auto& t : traces) trace_ptrs.push_back(&t);

    std::vector<std::unique_ptr<sim::ClusterEnv>> envs;
    std::vector<sim::ClusterEnv*> env_ptrs;
    for (const double mb : pool_sizes_mb) {
      sim::EnvConfig env_cfg;
      env_cfg.pool_capacity_mb = mb;
      envs.push_back(std::make_unique<sim::ClusterEnv>(
          suite.bench.functions, suite.bench.catalog, suite.cost, env_cfg,
          [] { return std::make_unique<containers::LruEviction>(); }));
      env_ptrs.push_back(envs.back().get());
    }

    const core::StateEncoder encoder(cfg.encoder);
    core::TrainerConfig tc;
    tc.episodes = options.episodes;
    tc.seed = seed + 2;
    const auto report = core::train_agent(*agent, encoder, cfg.reward_scale_s,
                                          env_ptrs, trace_ptrs, tc);
    std::cerr << "[bench] trained: episode latency "
              << util::Table::num(report.episode_total_latency_s.front(), 1)
              << "s -> "
              << util::Table::num(report.episode_total_latency_s.back(), 1)
              << "s over " << report.train_steps << " gradient steps\n";
  };
  if (core::load_or_train(*agent, path, train))
    std::cerr << "[bench] loaded cached model " << path << "\n";
  return agent;
}

/// Builds a fresh, fully independent SystemSpec. Replications call this once
/// per rep so no mutable scheduler state (Rngs, DQN caches) is shared across
/// reps — the requirement for running reps on the thread pool and for
/// bit-identical results regardless of execution order.
using SystemFactory = std::function<policies::SystemSpec()>;

struct NamedSystem {
  std::string name;
  SystemFactory make;
};

/// Snapshot a trained agent's weights and return a factory that builds a
/// fresh agent carrying those weights. Inference is identical to sharing the
/// original agent (greedy actions depend only on the weights), but every
/// caller gets its own network buffers, so factories built on top of this
/// are safe to invoke from the replication thread pool.
inline std::function<std::shared_ptr<rl::DqnAgent>()> agent_cloner(
    const std::shared_ptr<rl::DqnAgent>& trained) {
  const auto weights = trained->snapshot_weights();
  const rl::DqnConfig cfg = trained->config();
  return [weights, cfg] {
    auto agent = std::make_shared<rl::DqnAgent>(cfg, util::Rng(0));
    agent->restore_weights(weights);
    return agent;
  };
}

/// SystemFactory for MLCR backed by a trained agent (cloned per rep).
inline SystemFactory mlcr_system_factory(
    const std::shared_ptr<rl::DqnAgent>& trained,
    const core::StateEncoderConfig& encoder) {
  return [clone = agent_cloner(trained), encoder] {
    return core::make_mlcr_system(clone(), encoder);
  };
}

/// The paper's five systems. MLCR is included only when an agent is given.
inline std::vector<NamedSystem> paper_systems(
    const std::shared_ptr<rl::DqnAgent>& mlcr_agent = nullptr,
    const core::StateEncoderConfig* encoder = nullptr) {
  std::vector<NamedSystem> systems;
  systems.push_back({"LRU", [] { return policies::make_lru_system(); }});
  systems.push_back(
      {"FaasCache", [] { return policies::make_faascache_system(); }});
  systems.push_back(
      {"KeepAlive", [] { return policies::make_keepalive_system(); }});
  systems.push_back(
      {"Greedy-Match", [] { return policies::make_greedy_match_system(); }});
  if (mlcr_agent != nullptr && encoder != nullptr)
    systems.push_back({"MLCR", mlcr_system_factory(mlcr_agent, *encoder)});
  return systems;
}

/// Aggregated replication results for one (system, configuration) cell.
struct RepStats {
  util::RunningStats total_latency_s;
  util::RunningStats cold_starts;
  util::RunningStats peak_pool_mb;
  util::RunningStats evictions;
  std::vector<double> totals;  ///< raw per-rep totals, for box stats
};

/// Run a fresh system (one per rep, from `make_system`) over `reps` freshly
/// generated traces at the given pool size. Each rep owns an Rng split off
/// the trace seed in rep order, so running the reps on `threads` workers
/// (0 = hardware concurrency) produces bit-identical statistics to the
/// serial loop — results are folded in rep order after all reps finish.
inline RepStats run_replications(const Suite& suite,
                                 const SystemFactory& make_system,
                                 const TraceFactory& factory,
                                 double pool_capacity_mb, std::size_t reps,
                                 std::size_t threads = 1,
                                 std::uint64_t trace_seed = 9000) {
  std::vector<util::Rng> rep_rngs;
  rep_rngs.reserve(reps);
  util::Rng root(trace_seed);
  for (std::size_t r = 0; r < reps; ++r) rep_rngs.push_back(root.split());

  std::vector<policies::EpisodeSummary> results(reps);
  const auto run_one = [&](std::size_t r) {
    util::Rng rng = rep_rngs[r];
    const policies::SystemSpec spec = make_system();
    const sim::Trace trace = factory(rng);
    results[r] =
        policies::run_system(spec, suite.bench.functions, suite.bench.catalog,
                             suite.cost, pool_capacity_mb, trace);
  };
  if (threads == 1) {
    for (std::size_t r = 0; r < reps; ++r) run_one(r);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(reps, run_one);
  }

  RepStats stats;
  for (const auto& s : results) {
    stats.total_latency_s.add(s.total_latency_s);
    stats.cold_starts.add(static_cast<double>(s.cold_starts));
    stats.peak_pool_mb.add(s.peak_pool_mb);
    stats.evictions.add(static_cast<double>(s.evictions));
    stats.totals.push_back(s.total_latency_s);
  }
  return stats;
}

/// Run ONE fully-traced episode of `system`: lifecycle spans go to the
/// session tracer on sim track `track` (named after the system), a wall-time
/// "episode:<name>" span brackets it on the bench track, every MLCR
/// scheduling decision gets a wall-time "dqn_inference" span, and the
/// latency distribution lands in the session metrics. Kept separate from
/// run_replications: the stats loop may be threaded and stays untraced,
/// while this single episode owns the tracer.
inline policies::EpisodeSummary trace_episode(ObsSession& session,
                                              const Suite& suite,
                                              const NamedSystem& system,
                                              const TraceFactory& factory,
                                              double pool_capacity_mb,
                                              std::uint32_t track = 0,
                                              std::uint64_t trace_seed = 9000) {
  util::Rng rng(trace_seed);
  const sim::Trace trace = factory(rng);
  const policies::SystemSpec spec = system.make();

  sim::EnvConfig config;
  config.pool_capacity_mb = pool_capacity_mb;
  config.keep_alive_ttl_s = spec.keep_alive_ttl_s;
  config.reuse_semantics = spec.reuse_semantics;
  sim::ClusterEnv env(suite.bench.functions, suite.bench.catalog, suite.cost,
                      config, spec.eviction_factory);
  env.set_tracer(&session.tracer, track);
  session.tracer.thread_name(obs::Tracer::kSimPid, track, system.name);

  const bool profile_inference = system.name == "MLCR";
  BenchSpan episode_span(session, "episode:" + system.name, track);
  env.reset(trace);
  spec.scheduler->on_episode_start(env);
  while (!env.done()) {
    const sim::Invocation& inv = env.current();
    sim::Action action;
    if (profile_inference) {
      BenchSpan infer(session, "dqn_inference", track);
      action = spec.scheduler->decide(env, inv);
    } else {
      action = spec.scheduler->decide(env, inv);
    }
    const sim::StepResult result = env.step(action);
    spec.scheduler->on_step_result(env, result);
  }
  record_episode_metrics(session, system.name, env.metrics());
  return policies::summarize_env(env, spec.scheduler->name());
}

/// Format a BoxStats as "median [q1, q3]".
inline std::string box_cell(const util::BoxStats& b) {
  return util::Table::num(b.median, 1) + " [" + util::Table::num(b.q1, 1) +
         ", " + util::Table::num(b.q3, 1) + "]";
}

/// One Fig. 11 workload family: a name, a model-cache tag, and a trace
/// factory.
struct WorkloadFamily {
  std::string name;
  std::string cache_tag;
  TraceFactory factory;
};

/// The Fig. 11 protocol (Sec. VI-C): for each family, train MLCR across pool
/// sizes, then report the distribution (median [q1, q3]) of the total
/// startup latency of every system at 25/50/75/100% of the Loose capacity.
inline void run_fig11(const Suite& suite, const BenchOptions& options,
                      const std::vector<WorkloadFamily>& families,
                      const char* figure_name) {
  const core::MlcrConfig cfg = core::make_default_mlcr_config();
  for (const auto& family : families) {
    util::Rng ref_rng(1000);
    const sim::Trace reference = family.factory(ref_rng);
    const double loose =
        fstartbench::estimate_loose_capacity_mb(suite.bench, reference);

    const auto agent =
        trained_agent(suite, family.cache_tag, family.factory,
                      {loose * 0.25, loose * 0.5, loose}, cfg, options);

    util::Table table({"system", "25% pool (s)", "50% pool (s)",
                       "75% pool (s)", "100% pool (s)"});
    for (const auto& system : paper_systems(agent, &cfg.encoder)) {
      std::vector<std::string> cells = {system.name};
      for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
        auto stats = run_replications(suite, system.make, family.factory,
                                      loose * frac, options.reps,
                                      options.threads);
        cells.push_back(box_cell(util::box_stats(std::move(stats.totals))));
      }
      table.add_row(std::move(cells));
    }
    std::cout << "\n=== " << figure_name << ": " << family.name
              << " (Loose = " << util::Table::num(loose, 0) << " MB, "
              << options.reps << " reps, cells: median [q1, q3] of total "
              << "startup latency) ===\n";
    table.print(std::cout);
  }
}

}  // namespace mlcr::benchtools
