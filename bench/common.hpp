// Shared plumbing for the figure/table reproduction binaries: suite setup,
// command-line knobs, replication running, and MLCR model training with an
// on-disk cache so consecutive bench binaries reuse one trained model.
#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/mlcr.hpp"
#include "core/trainer.hpp"
#include "fstartbench/workloads.hpp"
#include "policies/runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mlcr::benchtools {

/// Everything a bench needs: the 13 functions and the calibrated cost model.
struct Suite {
  fstartbench::Benchmark bench = fstartbench::make_benchmark();
  sim::StartupCostModel cost{bench.catalog, fstartbench::default_cost_config()};
};

/// Command-line knobs shared by the figure benches:
///   --reps N       replications per configuration (default 7; paper: 50)
///   --episodes N   MLCR training episodes (default 30)
///   --fresh        ignore cached models, retrain
struct BenchOptions {
  std::size_t reps = 7;
  std::size_t episodes = 30;
  bool fresh = false;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::size_t {
        return i + 1 < argc ? static_cast<std::size_t>(std::atoll(argv[++i]))
                            : 0;
      };
      if (arg == "--reps")
        o.reps = next();
      else if (arg == "--episodes")
        o.episodes = next();
      else if (arg == "--fresh")
        o.fresh = true;
      else
        std::cerr << "ignoring unknown flag: " << arg << "\n";
    }
    if (o.reps == 0) o.reps = 1;
    return o;
  }
};

/// Generates a fresh trace of one workload family from a seeded stream.
using TraceFactory = std::function<sim::Trace(util::Rng&)>;

/// Train an MLCR agent for `factory`'s workload family across the given pool
/// capacities, or load it from `cache_tag`.model if present (and !fresh).
inline std::shared_ptr<rl::DqnAgent> trained_agent(
    const Suite& suite, const std::string& cache_tag,
    const TraceFactory& factory, const std::vector<double>& pool_sizes_mb,
    const core::MlcrConfig& cfg, const BenchOptions& options,
    std::uint64_t seed = 42) {
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(seed));
  const std::string path = cache_tag + ".model";
  if (options.fresh) std::remove(path.c_str());

  const auto train = [&] {
    std::cerr << "[bench] training MLCR model '" << cache_tag << "' ("
              << options.episodes << " episodes, "
              << pool_sizes_mb.size() << " pool sizes)...\n";
    util::Rng trace_rng(seed + 1);
    std::vector<sim::Trace> traces;
    for (int i = 0; i < 4; ++i) traces.push_back(factory(trace_rng));
    std::vector<const sim::Trace*> trace_ptrs;
    for (const auto& t : traces) trace_ptrs.push_back(&t);

    std::vector<std::unique_ptr<sim::ClusterEnv>> envs;
    std::vector<sim::ClusterEnv*> env_ptrs;
    for (const double mb : pool_sizes_mb) {
      sim::EnvConfig env_cfg;
      env_cfg.pool_capacity_mb = mb;
      envs.push_back(std::make_unique<sim::ClusterEnv>(
          suite.bench.functions, suite.bench.catalog, suite.cost, env_cfg,
          [] { return std::make_unique<containers::LruEviction>(); }));
      env_ptrs.push_back(envs.back().get());
    }

    const core::StateEncoder encoder(cfg.encoder);
    core::TrainerConfig tc;
    tc.episodes = options.episodes;
    tc.seed = seed + 2;
    const auto report = core::train_agent(*agent, encoder, cfg.reward_scale_s,
                                          env_ptrs, trace_ptrs, tc);
    std::cerr << "[bench] trained: episode latency "
              << util::Table::num(report.episode_total_latency_s.front(), 1)
              << "s -> "
              << util::Table::num(report.episode_total_latency_s.back(), 1)
              << "s over " << report.train_steps << " gradient steps\n";
  };
  if (core::load_or_train(*agent, path, train))
    std::cerr << "[bench] loaded cached model " << path << "\n";
  return agent;
}

/// The paper's five systems. MLCR is included only when an agent is given.
inline std::vector<policies::SystemSpec> paper_systems(
    std::shared_ptr<rl::DqnAgent> mlcr_agent = nullptr,
    const core::StateEncoderConfig* encoder = nullptr) {
  std::vector<policies::SystemSpec> systems;
  systems.push_back(policies::make_lru_system());
  systems.push_back(policies::make_faascache_system());
  systems.push_back(policies::make_keepalive_system());
  systems.push_back(policies::make_greedy_match_system());
  if (mlcr_agent != nullptr && encoder != nullptr)
    systems.push_back(core::make_mlcr_system(std::move(mlcr_agent), *encoder));
  return systems;
}

/// Aggregated replication results for one (system, configuration) cell.
struct RepStats {
  util::RunningStats total_latency_s;
  util::RunningStats cold_starts;
  util::RunningStats peak_pool_mb;
  util::RunningStats evictions;
  std::vector<double> totals;  ///< raw per-rep totals, for box stats
};

/// Run `spec` over `reps` freshly generated traces at the given pool size.
inline RepStats run_replications(const Suite& suite,
                                 const policies::SystemSpec& spec,
                                 const TraceFactory& factory,
                                 double pool_capacity_mb, std::size_t reps,
                                 std::uint64_t trace_seed = 9000) {
  RepStats stats;
  util::Rng rng(trace_seed);
  for (std::size_t r = 0; r < reps; ++r) {
    const sim::Trace trace = factory(rng);
    const auto s =
        policies::run_system(spec, suite.bench.functions, suite.bench.catalog,
                             suite.cost, pool_capacity_mb, trace);
    stats.total_latency_s.add(s.total_latency_s);
    stats.cold_starts.add(static_cast<double>(s.cold_starts));
    stats.peak_pool_mb.add(s.peak_pool_mb);
    stats.evictions.add(static_cast<double>(s.evictions));
    stats.totals.push_back(s.total_latency_s);
  }
  return stats;
}

/// Format a BoxStats as "median [q1, q3]".
inline std::string box_cell(const util::BoxStats& b) {
  return util::Table::num(b.median, 1) + " [" + util::Table::num(b.q1, 1) +
         ", " + util::Table::num(b.q3, 1) + "]";
}

/// One Fig. 11 workload family: a name, a model-cache tag, and a trace
/// factory.
struct WorkloadFamily {
  std::string name;
  std::string cache_tag;
  TraceFactory factory;
};

/// The Fig. 11 protocol (Sec. VI-C): for each family, train MLCR across pool
/// sizes, then report the distribution (median [q1, q3]) of the total
/// startup latency of every system at 25/50/75/100% of the Loose capacity.
inline void run_fig11(const Suite& suite, const BenchOptions& options,
                      const std::vector<WorkloadFamily>& families,
                      const char* figure_name) {
  const core::MlcrConfig cfg = core::make_default_mlcr_config();
  for (const auto& family : families) {
    util::Rng ref_rng(1000);
    const sim::Trace reference = family.factory(ref_rng);
    const double loose =
        fstartbench::estimate_loose_capacity_mb(suite.bench, reference);

    const auto agent =
        trained_agent(suite, family.cache_tag, family.factory,
                      {loose * 0.25, loose * 0.5, loose}, cfg, options);

    util::Table table({"system", "25% pool (s)", "50% pool (s)",
                       "75% pool (s)", "100% pool (s)"});
    for (const auto& spec : paper_systems(agent, &cfg.encoder)) {
      std::vector<std::string> cells = {spec.name};
      for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
        auto stats = run_replications(suite, spec, family.factory,
                                      loose * frac, options.reps);
        cells.push_back(box_cell(util::box_stats(std::move(stats.totals))));
      }
      table.add_row(std::move(cells));
    }
    std::cout << "\n=== " << figure_name << ": " << family.name
              << " (Loose = " << util::Table::num(loose, 0) << " MB, "
              << options.reps << " reps, cells: median [q1, q3] of total "
              << "startup latency) ===\n";
    table.print(std::cout);
  }
}

}  // namespace mlcr::benchtools
