// Fig. 9 reproduction: cumulative total startup latency and cold starts
// along the arrival sequence, MLCR vs Greedy-Match, under the Loose pool.
// The paper's observation: Greedy-Match accumulates fewer cold starts but a
// higher total latency — local best-effort matches spend containers that
// MLCR preserves for more valuable future reuse.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  const auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;

  const benchtools::TraceFactory factory = [&](util::Rng& rng) {
    return fstartbench::make_overall_workload(suite.bench, 400, rng);
  };
  util::Rng ref_rng(1000);
  const sim::Trace reference = factory(ref_rng);
  const double loose =
      fstartbench::estimate_loose_capacity_mb(suite.bench, reference);

  const core::MlcrConfig cfg = core::make_default_mlcr_config();
  const auto pools = fstartbench::paper_pool_sizes(loose);
  const auto agent = benchtools::trained_agent(
      suite, "bench_overall", factory,
      {pools.tight_mb, pools.moderate_mb, pools.loose_mb}, cfg, options);

  // One evaluation trace, same for both systems.
  util::Rng eval_rng(9000);
  const sim::Trace trace = factory(eval_rng);

  auto run_series = [&](const policies::SystemSpec& spec) {
    sim::EnvConfig env_cfg;
    env_cfg.pool_capacity_mb = loose;
    env_cfg.keep_alive_ttl_s = spec.keep_alive_ttl_s;
    sim::ClusterEnv env(suite.bench.functions, suite.bench.catalog, suite.cost,
                        env_cfg, spec.eviction_factory);
    (void)policies::run_episode(env, *spec.scheduler, trace);
    return std::pair(env.metrics().cumulative_latency(),
                     env.metrics().cumulative_cold_starts());
  };

  const auto greedy_spec = policies::make_greedy_match_system();
  const auto mlcr_spec = core::make_mlcr_system(agent, cfg.encoder);
  const auto [g_lat, g_cold] = run_series(greedy_spec);
  const auto [m_lat, m_cold] = run_series(*&mlcr_spec);

  util::Table table({"invocation", "Greedy latency (s)", "MLCR latency (s)",
                     "Greedy cold", "MLCR cold"});
  for (std::size_t i = 24; i < trace.size(); i += 25) {
    table.add_row({std::to_string(i + 1), util::Table::num(g_lat[i], 1),
                   util::Table::num(m_lat[i], 1), std::to_string(g_cold[i]),
                   std::to_string(m_cold[i])});
  }
  std::cout << "=== Fig. 9: cumulative startup latency and cold starts "
               "(Loose pool) ===\n";
  table.print(std::cout);
  std::cout << "final: Greedy-Match " << util::Table::num(g_lat.back(), 1)
            << " s / " << g_cold.back() << " cold; MLCR "
            << util::Table::num(m_lat.back(), 1) << " s / " << m_cold.back()
            << " cold\n"
            << "(paper shape: MLCR ends with lower total latency even where "
               "Greedy-Match has fewer cold starts)\n";
  return 0;
}
