// Fig. 11a reproduction: startup latency under HI-Sim vs LO-Sim workloads
// (function similarity, paper Metric 1). Expected shape: every system does
// better on HI-Sim; MLCR's edge over Greedy-Match is larger on LO-Sim.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  const auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;

  const std::vector<benchtools::WorkloadFamily> families = {
      {"HI-Sim (FuncIDs 1,2,3,4,11)", "bench_sim_hi",
       [&](util::Rng& rng) {
         return fstartbench::make_similarity_workload(suite.bench, true, 300,
                                                      rng);
       }},
      {"LO-Sim (FuncIDs 1,2,5,9,13)", "bench_sim_lo",
       [&](util::Rng& rng) {
         return fstartbench::make_similarity_workload(suite.bench, false, 300,
                                                      rng);
       }},
  };
  benchtools::run_fig11(suite, options, families, "Fig. 11a");
  return 0;
}
