// Sec. VI-D reproduction: the runtime overhead MLCR adds per scheduling
// decision. The paper reports 3-4 ms per inference on a V100; our scaled-down
// CPU network must land in the same "negligible against multi-second cold
// starts" regime. Also measures state encoding, Table-I matching, a DQN
// gradient step, and raw simulator throughput.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "containers/matching.hpp"

namespace {

using namespace mlcr;

struct OverheadFixture {
  benchtools::Suite suite;
  core::MlcrConfig cfg = core::make_default_mlcr_config();
  core::StateEncoder encoder{cfg.encoder};
  std::shared_ptr<rl::DqnAgent> agent =
      std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(1));
  sim::Trace trace;
  std::unique_ptr<sim::ClusterEnv> env;

  OverheadFixture() {
    util::Rng rng(7);
    trace = fstartbench::make_overall_workload(suite.bench, 200, rng);
    sim::EnvConfig env_cfg;
    env_cfg.pool_capacity_mb = 8192.0;
    env = std::make_unique<sim::ClusterEnv>(
        suite.bench.functions, suite.bench.catalog, suite.cost, env_cfg,
        [] { return std::make_unique<containers::LruEviction>(); });
    // Park some containers so states are representative.
    env->reset(trace);
    policies::GreedyMatchScheduler greedy;
    for (int i = 0; i < 60 && !env->done(); ++i)
      (void)env->step(greedy.decide(*env, env->current()));
  }
};

OverheadFixture& fixture() {
  static OverheadFixture f;
  return f;
}

void BM_DqnInference(benchmark::State& state) {
  auto& f = fixture();
  const auto encoded = f.encoder.encode(*f.env, f.env->current(), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.agent->greedy_action(encoded.tokens, encoded.mask));
  }
}
BENCHMARK(BM_DqnInference)->Unit(benchmark::kMicrosecond);

void BM_StateEncode(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.encoder.encode(*f.env, f.env->current(), 0.0));
  }
}
BENCHMARK(BM_StateEncode)->Unit(benchmark::kMicrosecond);

void BM_FullDecision(benchmark::State& state) {
  // encode + inference + action mapping: the end-to-end per-invocation cost
  // the paper's 3-4 ms figure corresponds to.
  auto& f = fixture();
  core::MlcrScheduler scheduler(f.agent, f.encoder);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.decide(*f.env, f.env->current()));
  }
}
BENCHMARK(BM_FullDecision)->Unit(benchmark::kMicrosecond);

void BM_TableOneMatch(benchmark::State& state) {
  auto& f = fixture();
  const auto& a = f.suite.bench.functions.get(0).image;
  const auto& b = f.suite.bench.functions.get(7).image;
  for (auto _ : state) {
    benchmark::DoNotOptimize(containers::match(a, b));
  }
}
BENCHMARK(BM_TableOneMatch)->Unit(benchmark::kNanosecond);

void BM_DqnTrainStep(benchmark::State& state) {
  auto& f = fixture();
  rl::DqnAgent agent(f.cfg.dqn, util::Rng(3));
  util::Rng rng(4);
  // Fill replay with representative transitions.
  const auto encoded = f.encoder.encode(*f.env, f.env->current(), 0.0);
  for (std::size_t i = 0; i < f.cfg.dqn.min_replay; ++i) {
    rl::Transition t;
    t.state = encoded.tokens;
    t.action = f.cfg.encoder.num_slots;  // cold
    t.reward = -0.5F;
    t.next_state = encoded.tokens;
    t.next_mask = encoded.mask;
    agent.observe(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.train_step(rng));
  }
}
BENCHMARK(BM_DqnTrainStep)->Unit(benchmark::kMillisecond);

void BM_SimulatorEpisodeGreedy(benchmark::State& state) {
  // Throughput floor: a full 200-invocation episode with the greedy
  // scheduler (no neural network).
  auto& f = fixture();
  sim::EnvConfig env_cfg;
  env_cfg.pool_capacity_mb = 8192.0;
  sim::ClusterEnv env(f.suite.bench.functions, f.suite.bench.catalog,
                      f.suite.cost, env_cfg,
                      [] { return std::make_unique<containers::LruEviction>(); });
  policies::GreedyMatchScheduler greedy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policies::run_episode(env, greedy, f.trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.trace.size()));
}
BENCHMARK(BM_SimulatorEpisodeGreedy)->Unit(benchmark::kMillisecond);

void BM_SimulatorEpisodeNullTracer(benchmark::State& state) {
  // The ISSUE's "zero overhead when no sink attached" claim: identical to
  // BM_SimulatorEpisodeGreedy except a sink-less tracer is attached, so
  // every instrumentation site takes its guarded-pointer fast path. Compare
  // against BM_SimulatorEpisodeGreedy; the gap must stay within noise
  // (acceptance bound: <= 1%).
  auto& f = fixture();
  sim::EnvConfig env_cfg;
  env_cfg.pool_capacity_mb = 8192.0;
  sim::ClusterEnv env(f.suite.bench.functions, f.suite.bench.catalog,
                      f.suite.cost, env_cfg,
                      [] { return std::make_unique<containers::LruEviction>(); });
  obs::Tracer tracer;  // no sinks: enabled() == false
  env.set_tracer(&tracer);
  policies::GreedyMatchScheduler greedy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policies::run_episode(env, greedy, f.trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.trace.size()));
}
BENCHMARK(BM_SimulatorEpisodeNullTracer)->Unit(benchmark::kMillisecond);

void BM_SimulatorEpisodeTraced(benchmark::State& state) {
  // Upper bound: full lifecycle tracing into an in-memory Chrome sink. This
  // is the price of --trace, not of default runs.
  auto& f = fixture();
  sim::EnvConfig env_cfg;
  env_cfg.pool_capacity_mb = 8192.0;
  sim::ClusterEnv env(f.suite.bench.functions, f.suite.bench.catalog,
                      f.suite.cost, env_cfg,
                      [] { return std::make_unique<containers::LruEviction>(); });
  policies::GreedyMatchScheduler greedy;
  for (auto _ : state) {
    state.PauseTiming();
    std::ostringstream out;
    obs::Tracer tracer;
    tracer.add_sink(std::make_shared<obs::ChromeTraceSink>(out));
    env.set_tracer(&tracer);
    state.ResumeTiming();
    benchmark::DoNotOptimize(policies::run_episode(env, greedy, f.trace));
  }
  env.set_tracer(nullptr);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.trace.size()));
}
BENCHMARK(BM_SimulatorEpisodeTraced)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
