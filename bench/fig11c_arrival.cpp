// Fig. 11c reproduction: startup latency under Uniform / Peak / Random
// arrival patterns (paper Metric 3; FuncIDs 1,2,5,6,13; 300 invocations in a
// 6-minute window). Expected shape: Peak is the hardest for every system;
// MLCR consistently wins, with its largest margin under Peak.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  const auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;

  std::vector<benchtools::WorkloadFamily> families;
  for (const auto pattern :
       {fstartbench::ArrivalPattern::kUniform,
        fstartbench::ArrivalPattern::kPeak,
        fstartbench::ArrivalPattern::kRandom}) {
    const std::string name = fstartbench::to_string(pattern);
    families.push_back(
        {name + " arrivals (FuncIDs 1,2,5,6,13)", "bench_arrival_" + name,
         [&suite, pattern](util::Rng& rng) {
           return fstartbench::make_arrival_workload(suite.bench, pattern, 300,
                                                     rng);
         }});
  }
  benchtools::run_fig11(suite, options, families, "Fig. 11c");
  return 0;
}
