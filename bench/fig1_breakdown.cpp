// Fig. 1 reproduction: startup-time breakdown under the two container-reuse
// modes the paper contrasts —
//   C: the warm container is used only for the exact same configuration
//      (every mismatched function cold-starts), and
//   W: the warm container is always adopted and the function pulls/installs
//      only what is missing (our multi-level warm start).
//
// The paper warms one container and invokes four other functions; our package
// granularity maps its "codes already exist in the warm container" case to
// concrete match levels, so each row states the warm container, the invoked
// function, and the Table-I match that W exploits. The headline shape — W
// accelerates startups by up to ~14x, dominated by eliminated PullCode — is
// what this bench checks.
#include <iostream>

#include "common.hpp"
#include "containers/matching.hpp"

int main() {
  using namespace mlcr;
  const benchtools::Suite suite;
  const auto& bench = suite.bench;

  struct Case {
    int warm_paper_id;     // container image of this function is warm
    int invoked_paper_id;  // this function arrives
  };
  // Covers every match level: L2 within the Debian/Python analytics family,
  // L3 between identically-imaged functions, L1 across languages on Alpine,
  // and a no-match pair (different OS) where W degrades to a cold start.
  const Case cases[] = {
      {8, 5}, {8, 6}, {8, 7}, {8, 13},  // L2: runtime differs
      {5, 10},                          // L3: identical image
      {4, 2}, {4, 3},                   // L1: language differs
      {4, 9},                           // no match: different OS
  };

  util::Table table({"warm", "invoked", "match", "C total (s)", "W total (s)",
                     "speedup", "W pull (s)", "W install (s)", "W init (s)"});
  double max_speedup = 0.0;
  for (const Case& c : cases) {
    const auto& warm_fn = bench.functions.get(bench.by_paper_id(c.warm_paper_id));
    const auto& fn = bench.functions.get(bench.by_paper_id(c.invoked_paper_id));
    const auto level = containers::match(fn.image, warm_fn.image);
    const auto cold = suite.cost.cold_start(fn);
    const auto warm = suite.cost.start_cost(fn, level);
    const double speedup = cold.total() / warm.total();
    if (containers::reusable(level)) max_speedup = std::max(max_speedup, speedup);
    table.add_row({"F" + std::to_string(c.warm_paper_id),
                   "F" + std::to_string(c.invoked_paper_id) + " (" + fn.name + ")",
                   std::string(containers::to_string(level)),
                   util::Table::num(cold.total(), 2),
                   util::Table::num(warm.total(), 2),
                   util::Table::num(speedup, 1) + "x",
                   util::Table::num(warm.pull_s, 2),
                   util::Table::num(warm.install_s, 2),
                   util::Table::num(warm.runtime_init_s + warm.function_init_s, 2)});
  }

  std::cout << "=== Fig. 1: startup breakdown, C (same-config only) vs W "
               "(multi-level reuse) ===\n";
  table.print(std::cout);
  std::cout << "max W speedup over C: " << util::Table::num(max_speedup, 1)
            << "x (paper: up to 14x)\n\n";

  // Cold-start component shares (the paper's Sec. II observations).
  util::Table shares({"function", "cold total (s)", "sandbox %", "pull %",
                      "install %", "init %", "cold/exec"});
  for (const auto& fn : bench.functions.all()) {
    const auto b = suite.cost.cold_start(fn);
    const double t = b.total();
    shares.add_row(
        {fn.name, util::Table::num(t, 2),
         util::Table::num(100.0 * b.sandbox_s / t, 0),
         util::Table::num(100.0 * b.pull_s / t, 0),
         util::Table::num(100.0 * b.install_s / t, 0),
         util::Table::num(100.0 * (b.runtime_init_s + b.function_init_s) / t, 0),
         util::Table::num(t / fn.mean_exec_s, 1) + "x"});
  }
  std::cout << "=== Sec. II calibration: cold-start composition ===\n";
  shares.print(std::cout);
  std::cout << "paper: pull 47-89% of cold start; cold start 1.3x-166x of "
               "execution; init ~6% interpreted, up to ~45% compiled\n";
  return 0;
}
