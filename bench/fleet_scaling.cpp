// Fleet scaling study: node count × router policy on the FStartBench
// overall workload. The cluster-wide warm memory budget is fixed (Moderate,
// Sec. VI-A) and divided evenly across nodes, so adding nodes fragments the
// warm pool: whether multi-level reuse survives depends entirely on the
// router. Expected shape: package-affinity (Hash-Affinity) and Warm-Aware
// routing keep invocations near compatible containers and degrade slowly,
// while Random/Round-Robin scatter them and destroy the reuse the paper's
// Table-I matching makes possible.
#include <iostream>

#include "common.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  const auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;

  const benchtools::TraceFactory factory = [&](util::Rng& rng) {
    return fstartbench::make_overall_workload(suite.bench, 400, rng);
  };
  util::Rng ref_rng(1000);
  const sim::Trace reference = factory(ref_rng);
  const double loose =
      fstartbench::estimate_loose_capacity_mb(suite.bench, reference);
  const auto pools = fstartbench::paper_pool_sizes(loose);
  const double cluster_mb = pools.moderate_mb;

  const std::vector<std::size_t> node_counts = {1, 2, 4, 8};
  const auto routers = fleet::standard_routers(/*seed=*/7);

  std::cout << "=== fleet scaling: Greedy-Match nodes, cluster budget "
            << util::Table::num(cluster_mb, 0) << " MB split across nodes, "
            << options.reps << " reps ===\n";

  // mean total latency per (router, node count), for the closing comparison
  std::vector<std::vector<double>> latency_grid(routers.size());

  for (const std::size_t nodes : node_counts) {
    util::Table table({"router", "total latency (s)", "cold", "L1", "L2",
                       "L3", "imbalance"});
    for (std::size_t ri = 0; ri < routers.size(); ++ri) {
      const auto& router_spec = routers[ri];

      // Replications: one split Rng per rep, fresh fleet + router per rep,
      // folded in rep order (same discipline as run_replications).
      std::vector<util::Rng> rep_rngs;
      util::Rng root(9000);
      for (std::size_t r = 0; r < options.reps; ++r)
        rep_rngs.push_back(root.split());
      std::vector<fleet::FleetSummary> results(options.reps);
      const auto run_one = [&](std::size_t r) {
        util::Rng rng = rep_rngs[r];
        const sim::Trace trace = factory(rng);
        fleet::FleetConfig cfg;
        cfg.nodes = nodes;
        cfg.node_env.pool_capacity_mb =
            cluster_mb / static_cast<double>(nodes);
        cfg.seed = 100 + r;
        fleet::FleetEnv env(
            suite.bench.functions, suite.bench.catalog, suite.cost, cfg,
            fleet::uniform_system(policies::make_greedy_match_system));
        const auto router = router_spec.make();
        results[r] = env.run(trace, *router);
      };
      if (options.threads == 1) {
        for (std::size_t r = 0; r < options.reps; ++r) run_one(r);
      } else {
        util::ThreadPool pool(options.threads);
        pool.parallel_for(options.reps, run_one);
      }

      util::RunningStats latency, cold, l1, l2, l3, imbalance;
      for (const auto& fs : results) {
        latency.add(fs.total.total_latency_s);
        cold.add(static_cast<double>(fs.total.cold_starts));
        l1.add(static_cast<double>(fs.total.warm_l1));
        l2.add(static_cast<double>(fs.total.warm_l2));
        l3.add(static_cast<double>(fs.total.warm_l3));
        imbalance.add(fs.routing_imbalance);
      }
      latency_grid[ri].push_back(latency.mean());
      table.add_row({router_spec.name, util::Table::num(latency.mean(), 1),
                     util::Table::num(cold.mean(), 1),
                     util::Table::num(l1.mean(), 1),
                     util::Table::num(l2.mean(), 1),
                     util::Table::num(l3.mean(), 1),
                     util::Table::num(imbalance.mean(), 2)});
    }
    std::cout << "\n--- " << nodes << " node(s), "
              << util::Table::num(cluster_mb / static_cast<double>(nodes), 0)
              << " MB per node ---\n";
    table.print(std::cout);
  }

  // Closing comparison at the largest fleet: how much of random routing's
  // startup latency do the reuse-aware policies shave off?
  const std::size_t last = node_counts.size() - 1;
  const double random_latency = latency_grid[0][last];
  std::cout << "\nat " << node_counts[last] << " nodes vs Random routing:\n";
  for (std::size_t ri = 1; ri < routers.size(); ++ri) {
    const double pct = 100.0 * (1.0 - latency_grid[ri][last] / random_latency);
    std::cout << "  " << routers[ri].name << ": "
              << util::Table::num(pct, 0) << "% lower total startup latency\n";
  }
  return 0;
}
