// Fig. 11b reproduction: startup latency under LO-Var vs HI-Var workloads
// (package-size variance, paper Metric 2). Expected shape: every system does
// better on LO-Var; MLCR's advantage grows under HI-Var. The two families
// reuse the Fig. 11a model caches because the paper composes them from the
// same function sets (see workloads.hpp for the set-assignment note).
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  const auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;

  const std::vector<benchtools::WorkloadFamily> families = {
      {"LO-Var (small, similar package sizes)", "bench_sim_hi",
       [&](util::Rng& rng) {
         return fstartbench::make_variance_workload(suite.bench, false, 300,
                                                    rng);
       }},
      {"HI-Var (Alpine hellos .. TensorFlow)", "bench_sim_lo",
       [&](util::Rng& rng) {
         return fstartbench::make_variance_workload(suite.bench, true, 300,
                                                    rng);
       }},
  };
  benchtools::run_fig11(suite, options, families, "Fig. 11b");
  return 0;
}
