// Fleet event-core throughput: invocations/sec vs node count for the
// event-driven FleetEnv::run against the lockstep oracle it replaced.
// The lockstep loop advances every node on every arrival (O(nodes) per
// event); the event core pops one node off a time-ordered heap
// (O(log nodes)), so the gap widens with fleet size. The sweep runs
// 1 -> 1000 nodes; the lockstep comparison is limited to the sizes where
// it is still affordable, and the headline metric is the speedup at the
// largest compared fleet. With --json the largest-fleet row is written as
// a BENCH_fleet_throughput.json perf-trajectory point for benchdiff.
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "util/wall_clock.hpp"

namespace {

struct SweepPoint {
  std::size_t nodes = 0;
  double event_ms = 0.0;
  double lockstep_ms = 0.0;  // 0 when lockstep was skipped at this size
  double events_per_sec = 0.0;
  double speedup = 0.0;
  std::size_t lost = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mlcr;
  // --stress: append a 10M-invocation, 1000-node pass — the second
  // perf-trajectory point in BENCH_fleet_throughput.json. Stripped before
  // BenchOptions::parse (it is specific to this bench).
  bool stress = false;
  std::vector<char*> args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--stress")
      stress = true;
    else
      args.push_back(argv[i]);
  }
  const auto options =
      benchtools::BenchOptions::parse(static_cast<int>(args.size()),
                                      args.data());
  const benchtools::Suite suite;

  // Workload scales with --reps so the tiny CI smoke run stays cheap:
  // reps=1 -> 2k invocations, the default reps=5 -> 10k.
  const std::size_t invocations = 2000 * options.reps;
  util::Rng trace_rng(1000);
  const sim::Trace trace = fstartbench::make_overall_workload(
      suite.bench, invocations, trace_rng);
  const double loose =
      fstartbench::estimate_loose_capacity_mb(suite.bench, trace);
  const double cluster_mb = fstartbench::paper_pool_sizes(loose).moderate_mb;

  const std::vector<std::size_t> node_counts = {1, 10, 100, 1000};
  // Lockstep is O(nodes) per arrival; cap the oracle runs so the sweep
  // finishes quickly while still covering the headline 1000-node point.
  const std::size_t lockstep_cap = 1000;
  const std::string router_name = "Least-Outstanding";

  const auto make_env = [&](std::size_t nodes) {
    fleet::FleetConfig cfg;
    cfg.nodes = nodes;
    cfg.node_env.pool_capacity_mb = cluster_mb / static_cast<double>(nodes);
    cfg.seed = 100;
    return fleet::FleetEnv(
        suite.bench.functions, suite.bench.catalog, suite.cost, cfg,
        fleet::uniform_system(policies::make_greedy_match_system));
  };

  std::cout << "=== fleet throughput: event-driven run vs lockstep oracle, "
            << invocations << " invocations, " << router_name
            << " routing ===\n";
  util::Table table({"nodes", "event (ms)", "lockstep (ms)", "inv/sec",
                     "speedup", "lost"});
  std::vector<SweepPoint> points;

  for (const std::size_t nodes : node_counts) {
    SweepPoint p;
    p.nodes = nodes;

    {
      fleet::FleetEnv env = make_env(nodes);
      fleet::LeastOutstandingRouter router;
      // Warm-up pass so first-touch allocation noise lands outside the
      // timed run; the timed pass repeats the identical deterministic run.
      env.run(trace, router);
      const std::int64_t t0 = util::wall_now_us();
      const fleet::FleetSummary summary = env.run(trace, router);
      const std::int64_t t1 = util::wall_now_us();
      p.event_ms = static_cast<double>(t1 - t0) / 1000.0;
      p.lost = summary.lost;
    }
    if (nodes <= lockstep_cap) {
      fleet::FleetEnv env = make_env(nodes);
      fleet::LeastOutstandingRouter router;
      env.run_lockstep(trace, router);
      const std::int64_t t0 = util::wall_now_us();
      env.run_lockstep(trace, router);
      const std::int64_t t1 = util::wall_now_us();
      p.lockstep_ms = static_cast<double>(t1 - t0) / 1000.0;
    }

    p.events_per_sec =
        p.event_ms > 0.0
            ? 1000.0 * static_cast<double>(invocations) / p.event_ms
            : 0.0;
    p.speedup = (p.event_ms > 0.0 && p.lockstep_ms > 0.0)
                    ? p.lockstep_ms / p.event_ms
                    : 0.0;
    points.push_back(p);

    table.add_row({std::to_string(nodes), util::Table::num(p.event_ms, 2),
                   p.lockstep_ms > 0.0 ? util::Table::num(p.lockstep_ms, 2)
                                       : std::string("-"),
                   util::Table::num(p.events_per_sec, 0),
                   p.speedup > 0.0 ? util::Table::num(p.speedup, 1) + "x"
                                   : std::string("-"),
                   std::to_string(p.lost)});
  }
  table.print(std::cout);

  const SweepPoint& last = points.back();
  if (last.speedup > 0.0)
    std::cout << "\nat " << last.nodes << " nodes the event core is "
              << util::Table::num(last.speedup, 1)
              << "x faster than the lockstep loop\n";

  // Stress pass: one event-driven run of 10M invocations over 1000 nodes.
  // CI's perf-smoke never runs it (the checked-in baseline carries the
  // stress_* metrics; benchdiff skips metrics absent from the candidate),
  // but the numbers pin the large-scale trajectory point deliberately.
  SweepPoint stress_point;
  if (stress) {
    const std::size_t stress_invocations = 10'000'000;
    const std::size_t stress_nodes = 1000;
    std::cout << "\n=== stress: " << stress_invocations << " invocations, "
              << stress_nodes << " nodes ===\n";
    util::Rng stress_rng(2000);
    const sim::Trace stress_trace = fstartbench::make_overall_workload(
        suite.bench, stress_invocations, stress_rng);
    const double stress_loose =
        fstartbench::estimate_loose_capacity_mb(suite.bench, stress_trace);
    fleet::FleetConfig cfg;
    cfg.nodes = stress_nodes;
    cfg.node_env.pool_capacity_mb =
        fstartbench::paper_pool_sizes(stress_loose).moderate_mb /
        static_cast<double>(stress_nodes);
    cfg.seed = 100;
    fleet::FleetEnv env(suite.bench.functions, suite.bench.catalog,
                        suite.cost, cfg,
                        fleet::uniform_system(
                            policies::make_greedy_match_system));
    fleet::LeastOutstandingRouter router;
    const std::int64_t t0 = util::wall_now_us();
    const fleet::FleetSummary summary = env.run(stress_trace, router);
    const std::int64_t t1 = util::wall_now_us();
    stress_point.nodes = stress_nodes;
    stress_point.event_ms = static_cast<double>(t1 - t0) / 1000.0;
    stress_point.events_per_sec =
        1000.0 * static_cast<double>(stress_invocations) /
        stress_point.event_ms;
    stress_point.lost = summary.lost;
    std::cout << util::Table::num(stress_point.event_ms, 0) << " ms, "
              << util::Table::num(stress_point.events_per_sec, 0)
              << " inv/sec, lost " << stress_point.lost << "\n";
  }

  if (!options.json_path.empty()) {
    benchtools::BenchJson out("fleet_throughput");
    out.config("nodes", last.nodes);
    out.config("invocations", invocations);
    out.config("router", router_name);
    out.wall_ms(last.event_ms);
    out.events_per_sec(last.events_per_sec);
    if (last.speedup > 0.0) out.metric("speedup_vs_lockstep", last.speedup);
    out.metric("lost", static_cast<double>(last.lost));
    if (stress) {
      out.metric("stress_invocations", 10'000'000.0);
      out.metric("stress_nodes", static_cast<double>(stress_point.nodes));
      out.metric("stress_events_per_sec", stress_point.events_per_sec);
      out.metric("stress_lost", static_cast<double>(stress_point.lost));
    }
    if (!out.write(options.json_path)) return 1;
    std::cout << "wrote " << options.json_path << "\n";
  }
  return 0;
}
