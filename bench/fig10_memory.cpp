// Fig. 10 reproduction: peak warm-pool memory consumption and eviction
// counts under the Loose pool size. The paper's observation: the
// same-config baselines exhaust the pool and evict repeatedly, while the
// multi-level systems (Greedy-Match, MLCR) serve the same workload within a
// fraction of the pool because containers are repacked instead of
// accumulated.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  const auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;

  const benchtools::TraceFactory factory = [&](util::Rng& rng) {
    return fstartbench::make_overall_workload(suite.bench, 400, rng);
  };
  util::Rng ref_rng(1000);
  const sim::Trace reference = factory(ref_rng);
  const double loose =
      fstartbench::estimate_loose_capacity_mb(suite.bench, reference);
  const auto pools = fstartbench::paper_pool_sizes(loose);

  const core::MlcrConfig cfg = core::make_default_mlcr_config();
  const auto agent = benchtools::trained_agent(
      suite, "bench_overall", factory,
      {pools.tight_mb, pools.moderate_mb, pools.loose_mb}, cfg, options);

  util::Table table({"system", "peak pool (MB)", "peak / Loose %",
                     "evictions", "total latency (s)"});
  for (const auto& system : benchtools::paper_systems(agent, &cfg.encoder)) {
    const auto stats = benchtools::run_replications(
        suite, system.make, factory, loose, options.reps, options.threads);
    table.add_row({system.name,
                   util::Table::num(stats.peak_pool_mb.mean(), 0),
                   util::Table::num(100.0 * stats.peak_pool_mb.mean() / loose,
                                    0),
                   util::Table::num(stats.evictions.mean(), 1),
                   util::Table::num(stats.total_latency_s.mean(), 1)});
  }

  std::cout << "=== Fig. 10: warm resource consumption under Loose pool ("
            << util::Table::num(loose, 0) << " MB, " << options.reps
            << " reps) ===\n";
  table.print(std::cout);
  std::cout << "(paper shape: LRU/FaasCache/KeepAlive fill the pool and "
               "evict; Greedy-Match uses the least memory; MLCR uses more "
               "than Greedy-Match but delivers the lowest latency)\n";
  return 0;
}
