// Chaos study (DESIGN.md §9): P99 startup latency and goodput of the five
// systems as the fault rate rises, at 1 and 8 nodes on the overall workload.
// The fault rate f maps to startup failures (P = f per risky start), repack
// failures (P = f/2 per volume swap) and — on multi-node fleets — sampled
// node-crash windows capped below the fleet size, so surviving capacity
// always exists and, with retries enabled, no invocation may be lost (the
// bench asserts this). Rate 0 runs the exact pre-fault code path, so the
// faultless rows double as a bit-identity baseline.
//
// With --trace, one additional 2-node Greedy-Match episode runs under an
// explicit crash window and an aggressive fault plan, so the emitted Chrome
// trace is guaranteed to carry fault_injected / retry_attempt / node_crash /
// node_recover events for tracecheck (the chaos-smoke CI job).
#include <iostream>

#include "common.hpp"
#include "faults/fault_plan.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "util/check.hpp"

namespace {

using namespace mlcr;

/// Fault plan for one swept cell. Crash windows are sampled only when the
/// fleet has nodes to spare: the concurrency cap of nodes/2 guarantees
/// surviving capacity, which is what lets the bench demand zero loss.
faults::FaultPlan make_plan(double rate, std::size_t nodes, double span_s,
                            util::Rng& rng) {
  faults::FaultPlan plan;
  plan.startup_failure_prob = rate;
  plan.repack_failure_prob = rate / 2.0;
  plan.retry.max_attempts = 3;
  if (rate > 0.0 && nodes > 1) {
    plan.crashes = faults::sample_crash_windows(
        nodes, span_s, /*crashes_per_node=*/rate * 10.0,
        /*mean_downtime_s=*/span_s / 20.0,
        /*max_concurrent_down=*/nodes / 2, rng);
  }
  return plan;
}

/// One traced 2-node episode with hand-placed faults, so the Chrome trace
/// always contains every fault-path event kind tracecheck requires.
void traced_chaos_episode(benchtools::ObsSession& session,
                          const benchtools::Suite& suite,
                          const benchtools::TraceFactory& factory,
                          double node_mb) {
  util::Rng rng(4242);
  const sim::Trace trace = factory(rng);
  faults::FaultPlan plan;
  plan.startup_failure_prob = 0.5;  // cold starts abound: failures certain
  plan.repack_failure_prob = 0.25;
  plan.retry.max_attempts = 3;
  const double span = trace.span_s();
  plan.crashes.push_back({0, span * 0.3, span * 0.6});

  fleet::FleetConfig cfg;
  cfg.nodes = 2;
  cfg.seed = 4243;
  cfg.node_env.pool_capacity_mb = node_mb;
  cfg.faults = plan;
  fleet::FleetEnv env(suite.bench.functions, suite.bench.catalog, suite.cost,
                      cfg, fleet::uniform_system(
                               policies::make_greedy_match_system));
  env.set_tracer(&session.tracer);
  fleet::FailoverRouter router(std::make_unique<fleet::WarmAwareRouter>());
  const fleet::FleetSummary fs = env.run(trace, router);
  MLCR_CHECK_MSG(fs.node_crashes == 1 && fs.node_recoveries == 1,
                 "traced chaos episode must exercise the crash window");
  MLCR_CHECK_MSG(fs.total.retries > 0,
                 "traced chaos episode must exercise the retry path");
  benchtools::record_episode_metrics(session, "chaos:Greedy-Match",
                                     fs.merged);
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;
  benchtools::ObsSession obs_session(options);

  const benchtools::TraceFactory factory = [&](util::Rng& rng) {
    return fstartbench::make_overall_workload(suite.bench, 400, rng);
  };
  util::Rng ref_rng(1000);
  const sim::Trace reference = factory(ref_rng);
  const double loose =
      fstartbench::estimate_loose_capacity_mb(suite.bench, reference);
  const double cluster_mb = fstartbench::paper_pool_sizes(loose).moderate_mb;
  const double span_s = reference.span_s();

  const core::MlcrConfig cfg = core::make_default_mlcr_config();
  const auto agent = benchtools::trained_agent(
      suite, "bench_overall", factory, {cluster_mb}, cfg, options);
  const auto systems = benchtools::paper_systems(agent, &cfg.encoder);

  const std::vector<std::size_t> node_counts = {1, 8};
  const std::vector<double> fault_rates = {0.0, 0.05, 0.2};

  std::cout << "=== chaos recovery: Failover(Warm-Aware) routing, cluster "
            << "budget " << util::Table::num(cluster_mb, 0)
            << " MB, retries x3, " << options.reps << " reps ===\n";

  // P99 per (system, nodes, rate) for the closing MLCR-vs-baseline line.
  std::vector<std::vector<double>> p99_grid(systems.size());

  for (const std::size_t nodes : node_counts) {
    for (const double rate : fault_rates) {
      util::Table table({"system", "P99 (s)", "goodput", "failed", "retries",
                         "lost", "rerouted", "total latency (s)"});
      for (std::size_t si = 0; si < systems.size(); ++si) {
        const auto& system = systems[si];
        benchtools::BenchSpan sweep(
            obs_session, "chaos:" + system.name + ":" +
                             std::to_string(nodes) + "n");

        std::vector<util::Rng> rep_rngs;
        util::Rng root(9000);
        for (std::size_t r = 0; r < options.reps; ++r)
          rep_rngs.push_back(root.split());
        std::vector<fleet::FleetSummary> results(options.reps);
        const auto run_one = [&](std::size_t r) {
          util::Rng rng = rep_rngs[r];
          const sim::Trace trace = factory(rng);
          fleet::FleetConfig fleet_cfg;
          fleet_cfg.nodes = nodes;
          fleet_cfg.node_env.pool_capacity_mb =
              cluster_mb / static_cast<double>(nodes);
          fleet_cfg.seed = 100 + r;
          util::Rng window_rng = rng.split();
          fleet_cfg.faults = make_plan(rate, nodes, span_s, window_rng);
          fleet::FleetEnv env(suite.bench.functions, suite.bench.catalog,
                              suite.cost, fleet_cfg,
                              fleet::uniform_system(system.make));
          fleet::FailoverRouter router(
              std::make_unique<fleet::WarmAwareRouter>());
          results[r] = env.run(trace, router);
        };
        if (options.threads == 1) {
          for (std::size_t r = 0; r < options.reps; ++r) run_one(r);
        } else {
          util::ThreadPool pool(options.threads);
          pool.parallel_for(options.reps, run_one);
        }

        util::RunningStats p99, goodput, failed, retries, lost, rerouted,
            latency;
        for (const auto& fs : results) {
          // Crash windows never cover the whole fleet (cap = nodes/2) and
          // 1-node sweeps sample none, so with retries on, capacity always
          // remains and nothing may be dropped.
          MLCR_CHECK_MSG(fs.lost == 0,
                         "invocations lost despite surviving capacity");
          p99.add(fs.merged.latency_p99());
          goodput.add(fs.goodput());
          failed.add(static_cast<double>(fs.total.failed));
          retries.add(static_cast<double>(fs.total.retries));
          lost.add(static_cast<double>(fs.lost));
          rerouted.add(static_cast<double>(fs.rerouted));
          latency.add(fs.total.total_latency_s);
        }
        p99_grid[si].push_back(p99.mean());
        table.add_row({system.name, util::Table::num(p99.mean(), 2),
                       util::Table::num(goodput.mean(), 4),
                       util::Table::num(failed.mean(), 1),
                       util::Table::num(retries.mean(), 1),
                       util::Table::num(lost.mean(), 1),
                       util::Table::num(rerouted.mean(), 1),
                       util::Table::num(latency.mean(), 1)});
      }
      std::cout << "\n--- " << nodes << " node(s), fault rate "
                << util::Table::num(rate, 2) << " ---\n";
      table.print(std::cout);
    }
  }

  // Closing comparison: the hardest cell (8 nodes, highest rate) is where
  // multi-level reuse has the most rebuilt state to protect.
  const std::size_t last_cell = node_counts.size() * fault_rates.size() - 1;
  std::cout << "\nat 8 nodes, fault rate "
            << util::Table::num(fault_rates.back(), 2) << ":\n";
  for (std::size_t si = 0; si < systems.size(); ++si)
    std::cout << "  " << systems[si].name << ": P99 "
              << util::Table::num(p99_grid[si][last_cell], 2) << " s\n";

  if (obs_session.tracing())
    traced_chaos_episode(obs_session, suite, factory, cluster_mb / 2.0);
  obs_session.finish();
  if (!options.trace_path.empty())
    std::cout << "\ntrace written to " << options.trace_path << "\n";
  return 0;
}
