// Chaos study (DESIGN.md §9): P99 startup latency and goodput of the five
// systems as the fault rate rises, at 1 and 8 nodes on the overall workload.
// The fault rate f maps to startup failures (P = f per risky start), repack
// failures (P = f/2 per volume swap) and — on multi-node fleets — sampled
// node-crash windows capped below the fleet size, so surviving capacity
// always exists and, with retries enabled, no invocation may be lost (the
// bench asserts this). Rate 0 runs the exact pre-fault code path, so the
// faultless rows double as a bit-identity baseline.
//
// The correlated-domain study (DESIGN.md §14) then scales the chaos to a
// rack-structured fleet: 12 primary nodes in 3 failure domains plus 2 cold
// spares, domain crash windows sampled with high correlation, per-function
// SLO deadlines derived from each function's cold-start ceiling, and the
// health-aware router measured against the health-blind failover baseline
// at equal capacity — on both the Greedy-Match and the MLCR (DQN) system,
// the latter with and without the encoder's node-health block. The bench
// asserts the health-aware variants drop strictly fewer invocations and
// records the study in BENCH_chaos_recovery.json (--json) for benchdiff.
//
// With --trace, two additional traced episodes run: the 2-node retry
// episode below, and a 6-node rack-failure episode with hand-placed domain
// windows, so the emitted Chrome trace is guaranteed to carry
// fault_injected / retry_attempt / node_crash / node_recover /
// pool_invalidate / domain_crash / spare_activated / reroute events for
// tracecheck (the chaos-smoke CI job). With --snapshots, a serving-plane
// replay of the correlated scenario writes flight-recorder snapshots so
// obsreport can gate goodput / loss rate / retry pressure.
#include <iostream>
#include <memory>

#include "common.hpp"
#include "faults/fault_plan.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "serve/policy.hpp"
#include "serve/service.hpp"
#include "serve/telemetry.hpp"
#include "util/check.hpp"

namespace {

using namespace mlcr;

/// Fault plan for one swept cell. Crash windows are sampled only when the
/// fleet has nodes to spare: the concurrency cap of nodes/2 guarantees
/// surviving capacity, which is what lets the bench demand zero loss.
faults::FaultPlan make_plan(double rate, std::size_t nodes, double span_s,
                            util::Rng& rng) {
  faults::FaultPlan plan;
  plan.startup_failure_prob = rate;
  plan.repack_failure_prob = rate / 2.0;
  plan.retry.max_attempts = 3;
  if (rate > 0.0 && nodes > 1) {
    plan.crashes = faults::sample_crash_windows(
        nodes, span_s, /*crashes_per_node=*/rate * 10.0,
        /*mean_downtime_s=*/span_s / 20.0,
        /*max_concurrent_down=*/nodes / 2, rng);
  }
  return plan;
}

// --- Correlated failure domains (DESIGN.md §14) -------------------------

constexpr std::size_t kStudyNodes = 12;   ///< primary routable nodes
constexpr std::size_t kStudySpares = 2;   ///< cold spares (elastic scale-out)
constexpr std::size_t kStudyDomains = 3;  ///< racks of 4 nodes each
constexpr double kStudyCorrelation = 0.9;
constexpr double kStudyCrashesPerDomain = 3.0;
constexpr double kStudyPartialFraction = 0.5;
/// Per-function SLO deadline = factor x (cold-start ceiling + mean exec).
constexpr double kSloFactor = 3.0;
/// Health-aware EWMA knobs: a slow filter (alpha 0.05) keeps a recovered
/// rack's failure estimate above the 0.3 steering threshold for ~20 routing
/// decisions — long enough to ride out the next correlated window instead
/// of replaying the load into it.
constexpr double kStudyEwmaAlpha = 0.05;
constexpr double kStudyEwmaThreshold = 0.3;

/// Rack layout + correlated-sampling knobs for the study: kStudyDomains
/// contiguous racks over the primary nodes, crashing together most of the
/// time (correlation 0.9) with a 40% chance the rack's pools survive.
faults::DomainPlan make_domain_layout(double span_s) {
  faults::DomainPlan dp;
  const std::size_t per_rack = kStudyNodes / kStudyDomains;
  for (std::size_t d = 0; d < kStudyDomains; ++d) {
    faults::FailureDomain rack;
    rack.id = d;
    for (std::size_t i = 0; i < per_rack; ++i)
      rack.nodes.push_back(d * per_rack + i);
    dp.domains.push_back(std::move(rack));
  }
  dp.correlation = kStudyCorrelation;
  dp.crashes_per_domain = kStudyCrashesPerDomain;
  dp.mean_downtime_s = span_s / 12.0;
  dp.partial_fraction = kStudyPartialFraction;
  return dp;
}

/// Fault plan for one correlated-study rep: sampled domain windows layered
/// over a sparse independent background, retries x3, and an SLO-derived
/// deadline per function — kSloFactor times its no-contention ceiling
/// (cold start + mean exec), so timeouts fire exactly when faults push an
/// invocation far past what a healthy node would have delivered.
faults::FaultPlan make_study_plan(const benchtools::Suite& suite,
                                  double span_s, util::Rng& rng) {
  faults::FaultPlan plan;
  plan.startup_failure_prob = 0.05;
  plan.repack_failure_prob = 0.025;
  plan.retry.max_attempts = 3;
  for (std::size_t f = 0; f < suite.bench.functions.size(); ++f) {
    const sim::FunctionType& fn = suite.bench.functions.get(f);
    plan.function_timeouts_s.push_back(
        {f,
         kSloFactor * (suite.cost.cold_start(fn).total() + fn.mean_exec_s)});
  }
  const faults::DomainPlan dp = make_domain_layout(span_s);
  plan.crashes = faults::sample_domain_crash_windows(
      kStudyNodes, span_s, /*crashes_per_node=*/0.25,
      /*mean_downtime_s=*/span_s / 20.0,
      /*max_concurrent_down=*/kStudyNodes / 2, dp, rng);
  plan.domains = dp.domains;
  return plan;
}

/// Rep-summed outcome of one (system, router) study cell. `dropped` is the
/// headline: invocations lost at routing plus invocations that died on a
/// node (crash-killed, retries exhausted, SLO timeout).
struct StudyCell {
  std::string name;
  double p99 = 0.0;      ///< mean over reps
  double goodput = 0.0;  ///< mean over reps
  std::size_t dropped = 0;
  std::size_t lost = 0;
  std::size_t failed = 0;
  std::size_t rerouted = 0;
  std::size_t domain_crashes = 0;
  std::size_t partial_crashes = 0;
  std::size_t spares_activated = 0;
  std::size_t invocations = 0;
};

/// Run one study cell: options.reps paired replications (every cell sees
/// the same traces, the same fleet seeds and the same sampled domain
/// windows — only the system/router under test differs).
StudyCell run_study_cell(const std::string& name,
                         const benchtools::SystemFactory& system,
                         const std::function<std::unique_ptr<fleet::Router>()>&
                             make_router,
                         const benchtools::Suite& suite,
                         const benchtools::TraceFactory& factory,
                         const benchtools::BenchOptions& options,
                         double cluster_mb, double span_s) {
  std::vector<util::Rng> rep_rngs;
  util::Rng root(9700);
  for (std::size_t r = 0; r < options.reps; ++r)
    rep_rngs.push_back(root.split());
  std::vector<fleet::FleetSummary> results(options.reps);
  const auto run_one = [&](std::size_t r) {
    util::Rng rng = rep_rngs[r];
    const sim::Trace trace = factory(rng);
    fleet::FleetConfig fleet_cfg;
    fleet_cfg.nodes = kStudyNodes;
    fleet_cfg.spare_nodes = kStudySpares;
    fleet_cfg.node_env.pool_capacity_mb =
        cluster_mb / static_cast<double>(kStudyNodes);
    fleet_cfg.seed = 500 + r;
    util::Rng window_rng = rng.split();
    fleet_cfg.faults = make_study_plan(suite, span_s, window_rng);
    fleet::FleetEnv env(suite.bench.functions, suite.bench.catalog,
                        suite.cost, fleet_cfg,
                        fleet::uniform_system(system));
    const std::unique_ptr<fleet::Router> router = make_router();
    results[r] = env.run(trace, *router);
  };
  if (options.threads == 1) {
    for (std::size_t r = 0; r < options.reps; ++r) run_one(r);
  } else {
    util::ThreadPool pool(options.threads);
    pool.parallel_for(options.reps, run_one);
  }

  StudyCell cell;
  cell.name = name;
  util::RunningStats p99, goodput;
  for (const auto& fs : results) {
    p99.add(fs.merged.latency_p99());
    goodput.add(fs.goodput());
    cell.dropped += fs.lost + fs.total.failed;
    cell.lost += fs.lost;
    cell.failed += fs.total.failed;
    cell.rerouted += fs.rerouted;
    cell.domain_crashes += fs.domain_crashes;
    cell.partial_crashes += fs.partial_crashes;
    cell.spares_activated += fs.spares_activated;
    cell.invocations += fs.total.invocations;
  }
  cell.p99 = p99.mean();
  cell.goodput = goodput.mean();
  return cell;
}

/// One traced 6-node rack-failure episode: a whole 3-node domain goes down
/// together mid-episode (one member partially), admitting the single cold
/// spare. The bare Warm-Aware router keeps steering into the downed rack —
/// its surviving partial-crash pool stays the best Table-I match — so the
/// fleet's reroute path (and its trace instants) is guaranteed to fire.
void traced_domain_episode(benchtools::ObsSession& session,
                           const benchtools::Suite& suite,
                           const benchtools::TraceFactory& factory,
                           double node_mb) {
  util::Rng rng(5252);
  const sim::Trace trace = factory(rng);
  const double span = trace.span_s();
  faults::FaultPlan plan;
  plan.startup_failure_prob = 0.3;
  plan.retry.max_attempts = 3;
  faults::FailureDomain rack;
  rack.id = 0;
  rack.nodes = {0, 1, 2};
  plan.domains.push_back(rack);
  plan.crashes.push_back({0, span * 0.3, span * 0.55, false, 0});
  plan.crashes.push_back({1, span * 0.3, span * 0.5, false, 0});
  plan.crashes.push_back({2, span * 0.3, span * 0.45, true, 0});

  fleet::FleetConfig cfg;
  cfg.nodes = 6;
  cfg.spare_nodes = 1;
  cfg.seed = 5253;
  cfg.node_env.pool_capacity_mb = node_mb;
  cfg.faults = plan;
  fleet::FleetEnv env(suite.bench.functions, suite.bench.catalog, suite.cost,
                      cfg, fleet::uniform_system(
                               policies::make_greedy_match_system));
  env.set_tracer(&session.tracer);
  fleet::WarmAwareRouter router;  // bare: the env performs the failover
  const fleet::FleetSummary fs = env.run(trace, router);
  MLCR_CHECK_MSG(fs.domain_crashes == 1 && fs.node_crashes == 3,
                 "traced domain episode must crash the whole rack once");
  MLCR_CHECK_MSG(fs.partial_crashes == 1,
                 "traced domain episode must exercise a partial crash");
  MLCR_CHECK_MSG(fs.spares_activated == 1,
                 "traced domain episode must admit the cold spare");
  MLCR_CHECK_MSG(fs.rerouted > 0,
                 "traced domain episode must exercise the reroute path");
  benchtools::record_episode_metrics(session, "chaos:domain:Greedy-Match",
                                     fs.merged);
}

/// Serving-plane replay of the correlated scenario with the full telemetry
/// plane attached: run_replay merges the sampled domain windows into the
/// deterministic schedule and the flight recorder captures goodput, loss
/// rate and retry pressure per window — the snapshots obsreport gates in
/// the chaos-smoke CI job.
void serve_goodput_snapshots(const benchtools::Suite& suite,
                             const benchtools::TraceFactory& factory,
                             const benchtools::BenchOptions& options,
                             double cluster_mb, double span_s) {
  util::Rng rng(6363);
  const sim::Trace trace = factory(rng);
  util::Rng window_rng = rng.split();
  fleet::FleetConfig cfg;
  cfg.nodes = kStudyNodes;
  cfg.spare_nodes = kStudySpares;
  cfg.seed = 6364;
  cfg.node_env.pool_capacity_mb =
      cluster_mb / static_cast<double>(kStudyNodes);
  cfg.faults = make_study_plan(suite, span_s, window_rng);
  fleet::FleetEnv fleet(suite.bench.functions, suite.bench.catalog,
                        suite.cost, cfg,
                        fleet::uniform_system(
                            policies::make_greedy_match_system));

  serve::SimClock clock;
  serve::TelemetryConfig tcfg;
  tcfg.snapshot_path = options.snapshots_path;
  tcfg.snapshot_period_s = span_s / 50.0;
  tcfg.slo.window_s = span_s / 10.0;
  tcfg.registry_slots = 2;
  serve::Telemetry telemetry(tcfg);
  serve::ServeConfig scfg;
  scfg.workers = 1;
  scfg.shards = 4;
  serve::SchedulerService service(fleet, clock,
                                  std::make_unique<serve::WarmAwarePolicy>(),
                                  scfg);
  service.set_telemetry(&telemetry);
  const serve::ServeSummary replayed = service.run_replay(trace);
  std::cout << "\nserve replay of the correlated scenario: routed "
            << replayed.stats.routed << ", lost " << replayed.stats.lost
            << ", rerouted " << replayed.stats.rerouted << ", node crashes "
            << replayed.stats.node_crashes << ", snapshots "
            << telemetry.snapshot_count() << " -> "
            << options.snapshots_path << "\n";
}

/// One traced 2-node episode with hand-placed faults, so the Chrome trace
/// always contains every fault-path event kind tracecheck requires.
void traced_chaos_episode(benchtools::ObsSession& session,
                          const benchtools::Suite& suite,
                          const benchtools::TraceFactory& factory,
                          double node_mb) {
  util::Rng rng(4242);
  const sim::Trace trace = factory(rng);
  faults::FaultPlan plan;
  plan.startup_failure_prob = 0.5;  // cold starts abound: failures certain
  plan.repack_failure_prob = 0.25;
  plan.retry.max_attempts = 3;
  const double span = trace.span_s();
  plan.crashes.push_back({0, span * 0.3, span * 0.6});

  fleet::FleetConfig cfg;
  cfg.nodes = 2;
  cfg.seed = 4243;
  cfg.node_env.pool_capacity_mb = node_mb;
  cfg.faults = plan;
  fleet::FleetEnv env(suite.bench.functions, suite.bench.catalog, suite.cost,
                      cfg, fleet::uniform_system(
                               policies::make_greedy_match_system));
  env.set_tracer(&session.tracer);
  fleet::FailoverRouter router(std::make_unique<fleet::WarmAwareRouter>());
  const fleet::FleetSummary fs = env.run(trace, router);
  MLCR_CHECK_MSG(fs.node_crashes == 1 && fs.node_recoveries == 1,
                 "traced chaos episode must exercise the crash window");
  MLCR_CHECK_MSG(fs.total.retries > 0,
                 "traced chaos episode must exercise the retry path");
  benchtools::record_episode_metrics(session, "chaos:Greedy-Match",
                                     fs.merged);
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;
  benchtools::ObsSession obs_session(options);

  const benchtools::TraceFactory factory = [&](util::Rng& rng) {
    return fstartbench::make_overall_workload(suite.bench, 400, rng);
  };
  util::Rng ref_rng(1000);
  const sim::Trace reference = factory(ref_rng);
  const double loose =
      fstartbench::estimate_loose_capacity_mb(suite.bench, reference);
  const double cluster_mb = fstartbench::paper_pool_sizes(loose).moderate_mb;
  const double span_s = reference.span_s();

  const core::MlcrConfig cfg = core::make_default_mlcr_config();
  const auto agent = benchtools::trained_agent(
      suite, "bench_overall", factory, {cluster_mb}, cfg, options);
  const auto systems = benchtools::paper_systems(agent, &cfg.encoder);

  const std::vector<std::size_t> node_counts = {1, 8};
  const std::vector<double> fault_rates = {0.0, 0.05, 0.2};

  std::cout << "=== chaos recovery: Failover(Warm-Aware) routing, cluster "
            << "budget " << util::Table::num(cluster_mb, 0)
            << " MB, retries x3, " << options.reps << " reps ===\n";

  // P99 per (system, nodes, rate) for the closing MLCR-vs-baseline line.
  std::vector<std::vector<double>> p99_grid(systems.size());

  for (const std::size_t nodes : node_counts) {
    for (const double rate : fault_rates) {
      util::Table table({"system", "P99 (s)", "goodput", "failed", "retries",
                         "lost", "rerouted", "total latency (s)"});
      for (std::size_t si = 0; si < systems.size(); ++si) {
        const auto& system = systems[si];
        benchtools::BenchSpan sweep(
            obs_session, "chaos:" + system.name + ":" +
                             std::to_string(nodes) + "n");

        std::vector<util::Rng> rep_rngs;
        util::Rng root(9000);
        for (std::size_t r = 0; r < options.reps; ++r)
          rep_rngs.push_back(root.split());
        std::vector<fleet::FleetSummary> results(options.reps);
        const auto run_one = [&](std::size_t r) {
          util::Rng rng = rep_rngs[r];
          const sim::Trace trace = factory(rng);
          fleet::FleetConfig fleet_cfg;
          fleet_cfg.nodes = nodes;
          fleet_cfg.node_env.pool_capacity_mb =
              cluster_mb / static_cast<double>(nodes);
          fleet_cfg.seed = 100 + r;
          util::Rng window_rng = rng.split();
          fleet_cfg.faults = make_plan(rate, nodes, span_s, window_rng);
          fleet::FleetEnv env(suite.bench.functions, suite.bench.catalog,
                              suite.cost, fleet_cfg,
                              fleet::uniform_system(system.make));
          fleet::FailoverRouter router(
              std::make_unique<fleet::WarmAwareRouter>());
          results[r] = env.run(trace, router);
        };
        if (options.threads == 1) {
          for (std::size_t r = 0; r < options.reps; ++r) run_one(r);
        } else {
          util::ThreadPool pool(options.threads);
          pool.parallel_for(options.reps, run_one);
        }

        util::RunningStats p99, goodput, failed, retries, lost, rerouted,
            latency;
        for (const auto& fs : results) {
          // Crash windows never cover the whole fleet (cap = nodes/2) and
          // 1-node sweeps sample none, so with retries on, capacity always
          // remains and nothing may be dropped.
          MLCR_CHECK_MSG(fs.lost == 0,
                         "invocations lost despite surviving capacity");
          p99.add(fs.merged.latency_p99());
          goodput.add(fs.goodput());
          failed.add(static_cast<double>(fs.total.failed));
          retries.add(static_cast<double>(fs.total.retries));
          lost.add(static_cast<double>(fs.lost));
          rerouted.add(static_cast<double>(fs.rerouted));
          latency.add(fs.total.total_latency_s);
        }
        p99_grid[si].push_back(p99.mean());
        table.add_row({system.name, util::Table::num(p99.mean(), 2),
                       util::Table::num(goodput.mean(), 4),
                       util::Table::num(failed.mean(), 1),
                       util::Table::num(retries.mean(), 1),
                       util::Table::num(lost.mean(), 1),
                       util::Table::num(rerouted.mean(), 1),
                       util::Table::num(latency.mean(), 1)});
      }
      std::cout << "\n--- " << nodes << " node(s), fault rate "
                << util::Table::num(rate, 2) << " ---\n";
      table.print(std::cout);
    }
  }

  // Closing comparison: the hardest cell (8 nodes, highest rate) is where
  // multi-level reuse has the most rebuilt state to protect.
  const std::size_t last_cell = node_counts.size() * fault_rates.size() - 1;
  std::cout << "\nat 8 nodes, fault rate "
            << util::Table::num(fault_rates.back(), 2) << ":\n";
  for (std::size_t si = 0; si < systems.size(); ++si)
    std::cout << "  " << systems[si].name << ": P99 "
              << util::Table::num(p99_grid[si][last_cell], 2) << " s\n";

  // --- Correlated failure domains (DESIGN.md §14) -----------------------
  std::cout << "\n=== correlated failure domains: " << kStudyNodes
            << " nodes in " << kStudyDomains << " racks + " << kStudySpares
            << " cold spares, correlation "
            << util::Table::num(kStudyCorrelation, 2) << ", SLO deadlines x"
            << util::Table::num(kSloFactor, 1) << " ===\n";

  core::StateEncoderConfig health_encoder = cfg.encoder;
  health_encoder.encode_health = true;
  const auto blind_router = [] {
    return std::unique_ptr<fleet::Router>(
        std::make_unique<fleet::FailoverRouter>(
            std::make_unique<fleet::WarmAwareRouter>()));
  };
  const auto health_router = [] {
    return std::unique_ptr<fleet::Router>(
        std::make_unique<fleet::HealthAwareRouter>(
            std::make_unique<fleet::WarmAwareRouter>(), kStudyEwmaAlpha,
            kStudyEwmaThreshold));
  };
  const benchtools::SystemFactory greedy = [] {
    return policies::make_greedy_match_system();
  };

  const std::int64_t study_t0 = util::wall_now_us();
  const StudyCell blind = run_study_cell(
      "Greedy-Match + Failover (blind)", greedy, blind_router, suite, factory,
      options, cluster_mb, span_s);
  const StudyCell health = run_study_cell(
      "Greedy-Match + Health-Aware", greedy, health_router, suite, factory,
      options, cluster_mb, span_s);
  const StudyCell mlcr_blind = run_study_cell(
      "MLCR + Failover (blind)",
      benchtools::mlcr_system_factory(agent, cfg.encoder), blind_router,
      suite, factory, options, cluster_mb, span_s);
  const StudyCell mlcr_health = run_study_cell(
      "MLCR[health] + Health-Aware",
      benchtools::mlcr_system_factory(agent, health_encoder), health_router,
      suite, factory, options, cluster_mb, span_s);
  const std::int64_t study_t1 = util::wall_now_us();

  util::Table study({"configuration", "P99 (s)", "goodput", "dropped", "lost",
                     "failed", "rerouted", "domain crashes", "spares"});
  for (const StudyCell* cell : {&blind, &health, &mlcr_blind, &mlcr_health})
    study.add_row({cell->name, util::Table::num(cell->p99, 2),
                   util::Table::num(cell->goodput, 4),
                   std::to_string(cell->dropped), std::to_string(cell->lost),
                   std::to_string(cell->failed),
                   std::to_string(cell->rerouted),
                   std::to_string(cell->domain_crashes),
                   std::to_string(cell->spares_activated)});
  study.print(std::cout);

  // The acceptance bar: at equal capacity, on paired traces and identical
  // sampled domain windows, health-aware recovery must lose strictly fewer
  // invocations than the health-blind baseline — on both systems. The
  // blind failover wrapper dumps load back onto a just-recovered rack the
  // moment it is up, exactly where a correlated plan's next window lands;
  // the EWMA keeps load off until the failure estimate decays.
  MLCR_CHECK_MSG(health.dropped < blind.dropped,
                 "health-aware routing must drop strictly fewer invocations "
                 "than blind failover ("
                     << health.dropped << " vs " << blind.dropped << ")");
  MLCR_CHECK_MSG(mlcr_health.dropped < mlcr_blind.dropped,
                 "health-encoded MLCR must drop strictly fewer invocations "
                 "than its health-blind twin ("
                     << mlcr_health.dropped << " vs " << mlcr_blind.dropped
                     << ")");
  std::cout << "\nhealth-aware recovery dropped " << health.dropped << " vs "
            << blind.dropped << " blind (Greedy-Match), "
            << mlcr_health.dropped << " vs " << mlcr_blind.dropped
            << " (MLCR)\n";

  if (!options.json_path.empty()) {
    benchtools::BenchJson out("chaos_recovery");
    out.config("reps", options.reps);
    out.config("nodes", kStudyNodes);
    out.config("spares", kStudySpares);
    out.config("domains", kStudyDomains);
    out.config("correlation", kStudyCorrelation);
    out.config("crashes_per_domain", kStudyCrashesPerDomain);
    out.config("partial_fraction", kStudyPartialFraction);
    out.config("slo_factor", kSloFactor);
    const auto cell_metrics = [&](const std::string& prefix,
                                  const StudyCell& cell) {
      out.metric(prefix + "_dropped", static_cast<double>(cell.dropped));
      out.metric(prefix + "_lost", static_cast<double>(cell.lost));
      out.metric(prefix + "_failed", static_cast<double>(cell.failed));
      out.metric(prefix + "_p99_s", cell.p99);
      out.metric(prefix + "_goodput", cell.goodput);
    };
    cell_metrics("blind", blind);
    cell_metrics("health", health);
    cell_metrics("mlcr_blind", mlcr_blind);
    cell_metrics("mlcr_health", mlcr_health);
    out.metric("domain_crashes", static_cast<double>(blind.domain_crashes));
    out.metric("partial_crashes", static_cast<double>(blind.partial_crashes));
    out.metric("spares_activated",
               static_cast<double>(blind.spares_activated));
    const double study_secs =
        static_cast<double>(study_t1 - study_t0) / 1e6;
    const std::size_t study_events = blind.invocations + health.invocations +
                                     mlcr_blind.invocations +
                                     mlcr_health.invocations;
    out.wall_ms(1000.0 * study_secs);
    out.events_per_sec(study_secs > 0.0
                           ? static_cast<double>(study_events) / study_secs
                           : 0.0);
    MLCR_CHECK_MSG(out.write(options.json_path),
                   "--json output must validate and write");
  }

  if (!options.snapshots_path.empty())
    serve_goodput_snapshots(suite, factory, options, cluster_mb, span_s);
  if (obs_session.tracing()) {
    traced_chaos_episode(obs_session, suite, factory, cluster_mb / 2.0);
    traced_domain_episode(obs_session, suite, factory, cluster_mb / 12.0);
  }
  obs_session.finish();
  if (!options.trace_path.empty())
    std::cout << "\ntrace written to " << options.trace_path << "\n";
  return 0;
}
