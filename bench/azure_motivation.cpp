// Motivation bench (paper Secs. I-II): on an Azure-like production workload
// — where ~19% of functions are invoked once and >40% at most twice —
// same-config keep-alive rarely finds a matching warm container, while
// multi-level reuse still benefits from the shared OS/language stacks. This
// bench (a) validates the generated trace reproduces the cited statistics
// and (b) quantifies the multi-level advantage, including the predictive
// keep-alive baseline from the pre-warming literature.
#include <iostream>

#include "common.hpp"
#include "fstartbench/azure_like.hpp"
#include "policies/prewarm.hpp"
#include "policies/zygote.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  const auto options = benchtools::BenchOptions::parse(argc, argv);

  fstartbench::AzureLikeConfig cfg;
  cfg.num_functions = 250;
  cfg.window_s = 3600.0;

  // Statistics of one representative world.
  const auto world = fstartbench::make_azure_like_workload(cfg, util::Rng(7));
  util::Table stats({"statistic", "generated", "cited (Azure trace)"});
  stats.add_row({"functions invoked once",
                 util::Table::num(100.0 * world.fraction_invoked_once(), 1) +
                     "%",
                 "~19%"});
  stats.add_row({"functions invoked <= 2x",
                 util::Table::num(
                     100.0 * world.fraction_invoked_at_most(2), 1) + "%",
                 ">40%"});
  stats.add_row({"functions with mean exec < 1 s",
                 util::Table::num(
                     100.0 * world.fraction_short_running(1.0), 1) + "%",
                 "~50%"});
  stats.add_row({"p95/p5 image size spread",
                 util::Table::num(world.image_size_spread(), 1) + "x",
                 "~4x (memory)"});
  std::cout << "=== Azure-like workload statistics ===\n";
  stats.print(std::cout);

  // System comparison over replicated worlds.
  const sim::StartupCostModel cost(world.catalog);
  util::Table table({"system", "mean total (s)", "mean cold", "warm L1+L2",
                     "warm L3"});
  util::Rng world_rng(100);
  std::vector<fstartbench::AzureLikeWorkload> worlds;
  for (std::size_t r = 0; r < options.reps; ++r)
    worlds.push_back(
        fstartbench::make_azure_like_workload(cfg, world_rng.split()));

  auto systems = benchtools::paper_systems();
  systems.push_back(
      {"Prewarm", [] { return policies::make_prewarm_system(); }});
  systems.push_back({"Zygote", [] { return policies::make_zygote_system(); }});
  for (const auto& system : systems) {
    // One spec across all worlds, matching the pre-factory behaviour
    // (scheduler state carries between worlds, as a live deployment's would).
    const auto spec = system.make();
    util::RunningStats total, cold, partial, full;
    for (const auto& w : worlds) {
      const sim::StartupCostModel w_cost(w.catalog);
      const auto s = policies::run_system(spec, w.functions, w.catalog,
                                          w_cost, 8192.0, w.trace);
      total.add(s.total_latency_s);
      cold.add(static_cast<double>(s.cold_starts));
      partial.add(static_cast<double>(s.warm_l1 + s.warm_l2));
      full.add(static_cast<double>(s.warm_l3));
    }
    table.add_row({system.name, util::Table::num(total.mean(), 1),
                   util::Table::num(cold.mean(), 1),
                   util::Table::num(partial.mean(), 1),
                   util::Table::num(full.mean(), 1)});
  }
  std::cout << "\n=== systems on the Azure-like trace (8 GB pool, "
            << options.reps << " worlds) ===\n";
  table.print(std::cout);
  std::cout << "(motivation shape: same-config systems leave most "
               "invocations cold because functions repeat rarely; "
               "multi-level matching converts them into L1/L2 warm starts)\n";
  return 0;
}
