// Extension bench (beyond the paper's comparison set): adds the
// prediction-driven keep-alive baseline (policies::make_prewarm_system, in
// the spirit of Shahrad et al.'s pre-warming) and online-fine-tuned MLCR to
// the Fig. 8 protocol at the Moderate pool size. The paper argues that
// prediction-based schemes are brittle under hard-to-predict arrivals and
// that MLCR "does not rely on workload prediction"; this bench puts a
// concrete predictive baseline next to it, on both the smooth overall
// workload and the bursty Peak workload.
#include <iostream>

#include "common.hpp"
#include "core/online.hpp"
#include "policies/prewarm.hpp"
#include "policies/zygote.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  const auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;

  struct Family {
    std::string name;
    std::string tag;
    benchtools::TraceFactory factory;
  };
  const std::vector<Family> families = {
      {"overall (Poisson mix)", "bench_overall",
       [&](util::Rng& rng) {
         return fstartbench::make_overall_workload(suite.bench, 400, rng);
       }},
      {"Peak arrivals", "bench_arrival_Peak",
       [&](util::Rng& rng) {
         return fstartbench::make_arrival_workload(
             suite.bench, fstartbench::ArrivalPattern::kPeak, 300, rng);
       }},
  };

  const core::MlcrConfig cfg = core::make_default_mlcr_config();
  for (const auto& family : families) {
    util::Rng ref_rng(1000);
    const sim::Trace reference = family.factory(ref_rng);
    const double loose =
        fstartbench::estimate_loose_capacity_mb(suite.bench, reference);
    const auto pools = fstartbench::paper_pool_sizes(loose);
    const auto agent = benchtools::trained_agent(
        suite, family.tag, family.factory,
        {pools.tight_mb, pools.moderate_mb, pools.loose_mb}, cfg, options);

    const auto clone = benchtools::agent_cloner(agent);
    std::vector<benchtools::NamedSystem> systems;
    systems.push_back({"LRU", [] { return policies::make_lru_system(); }});
    systems.push_back(
        {"Prewarm", [] { return policies::make_prewarm_system(); }});
    systems.push_back(
        {"Zygote", [] { return policies::make_zygote_system(); }});
    systems.push_back(
        {"Greedy-Match", [] { return policies::make_greedy_match_system(); }});
    systems.push_back({"MLCR", benchtools::mlcr_system_factory(agent,
                                                               cfg.encoder)});
    systems.push_back({"MLCR-online", [clone, &cfg] {
                         return core::make_online_mlcr_system(
                             clone(), cfg.encoder, cfg.reward_scale_s);
                       }});

    util::Table table({"system", "Tight total (s)", "Tight cold",
                       "Moderate total (s)", "Moderate cold",
                       "Moderate peak pool (MB)"});
    for (const auto& system : systems) {
      const auto tight = benchtools::run_replications(
          suite, system.make, family.factory, pools.tight_mb, options.reps,
          options.threads);
      const auto moderate = benchtools::run_replications(
          suite, system.make, family.factory, pools.moderate_mb, options.reps,
          options.threads);
      table.add_row({system.name,
                     util::Table::num(tight.total_latency_s.mean(), 1),
                     util::Table::num(tight.cold_starts.mean(), 1),
                     util::Table::num(moderate.total_latency_s.mean(), 1),
                     util::Table::num(moderate.cold_starts.mean(), 1),
                     util::Table::num(moderate.peak_pool_mb.mean(), 0)});
    }
    std::cout << "\n=== extended baselines on " << family.name << " ("
              << options.reps << " reps) ===\n";
    table.print(std::cout);
  }
  std::cout
      << "(shapes to expect: zygotes shine when memory is plentiful but "
         "their union containers bloat the pool as it tightens; inter-"
         "arrival prediction only pays off for near-periodic per-function "
         "arrivals — superposed Poisson mixes and Peak bursts defeat it; "
         "MLCR-online tracks offline MLCR within exploration noise)\n";
  return 0;
}
