// Serving front-end throughput (DESIGN.md §11): how fast the concurrent
// scheduler service makes routing decisions over the sharded fleet index,
// and how fast the full ingest -> route -> dispatch path serves requests.
//
// Phase 1 (route-only): worker threads hammer RoutePolicy::route() against a
// pre-seeded ShardedFleetIndex — no dispatch, no queues — sweeping thread
// count x shard count. This isolates the read path the sharding exists for:
// at 1 shard every reader serializes on one shared_mutex, at 8 shards reads
// spread across locks. The headline events_per_sec is the Least-Outstanding
// decision rate at the widest cell (max threads, max shards).
//
// Phase 2 (full service): producer threads submit() into a started
// SchedulerService over a 64-node greedy-match fleet on the wall clock,
// retrying rejected pushes, and the end-to-end served rate is reported. The
// telemetry plane (DESIGN.md §13) rides along in metrics-only mode, and its
// route/e2e latency percentiles land in the JSON metrics block.
//
// Phase 3 (deterministic replay): the same workload through run_replay on a
// SimClock with the full telemetry plane attached — Chrome trace with
// request flow events (--trace), flight-recorder snapshot JSONL
// (--snapshots). Byte-identical across runs; CI's serve-telemetry-smoke job
// runs it with --replay-only, which skips the wall-clock phases entirely.
//
// With --json the headline cell plus per-policy, service, and replay rates
// are written in the stable bench schema for tools/benchdiff / CI
// perf-smoke.
#include <atomic>
#include <cctype>
#include <cstddef>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "fleet/fleet_env.hpp"
#include "serve/clock.hpp"
#include "serve/policy.hpp"
#include "serve/service.hpp"
#include "serve/sharded_index.hpp"
#include "serve/telemetry.hpp"
#include "util/wall_clock.hpp"

namespace {

using namespace mlcr;

constexpr std::size_t kNodes = 64;

fleet::FleetEnv make_fleet(const benchtools::Suite& suite) {
  fleet::FleetConfig cfg;
  cfg.nodes = kNodes;
  cfg.node_env.pool_capacity_mb = 1024.0;
  cfg.seed = 100;
  return fleet::FleetEnv(suite.bench.functions, suite.bench.catalog,
                         suite.cost,
                         cfg, fleet::uniform_system(
                                  policies::make_greedy_match_system));
}

/// Put every node into a streaming episode and run a few invocations through
/// it so the index (including the warm side) reflects a working fleet, not
/// an empty one. Executions are drained so the containers sit idle-warm.
void prewarm(fleet::FleetEnv& fleet, const sim::Trace& trace) {
  const std::size_t kPrewarm = 4;
  for (std::size_t n = 0; n < fleet.node_count(); ++n) {
    sim::ClusterEnv& env = fleet.node_env(n);
    policies::Scheduler& scheduler = fleet.node_scheduler(n);
    env.reset_streaming();
    scheduler.on_episode_start(env);
    double last_arrival = 0.0;
    for (std::size_t i = 0; i < kPrewarm && i < trace.size(); ++i) {
      const sim::Invocation& inv = trace.at(i);
      env.offer(inv);
      const sim::StepResult result = env.step(scheduler.decide(env, inv));
      scheduler.on_step_result(env, result);
      last_arrival = inv.arrival_s;
    }
    env.advance_idle(last_arrival + 1.0);
  }
}

/// Fresh index over the (pre-warmed) fleet at the given shard count.
serve::ShardedFleetIndex make_index(fleet::FleetEnv& fleet, std::size_t shards,
                                    bool track_warm) {
  serve::ShardedFleetIndex index(fleet.node_count(), shards, track_warm);
  for (std::size_t n = 0; n < fleet.node_count(); ++n)
    index.update(n, fleet.node_env(n));
  return index;
}

/// Run `decisions` route() calls split across `threads` threads against a
/// shared policy instance; returns decisions per second. The picked node
/// indices feed an atomic sink so the calls cannot be optimized away.
double measure_route(serve::RoutePolicy& policy,
                     const serve::ShardedFleetIndex& index,
                     const sim::FunctionTable& functions,
                     const sim::Trace& trace, std::size_t threads,
                     std::size_t decisions) {
  std::atomic<std::size_t> sink{0};
  const std::size_t per_thread = decisions / threads;
  const auto worker = [&](std::size_t tid) {
    const auto& invs = trace.invocations();
    std::size_t local = 0;
    std::size_t cursor = tid * 131;  // decorrelate the per-thread streams
    for (std::size_t i = 0; i < per_thread; ++i, ++cursor)
      local += policy.route(index, functions, invs[cursor % invs.size()]);
    sink.fetch_add(local, std::memory_order_relaxed);
  };

  const std::int64_t t0 = util::wall_now_us();
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> team;
    team.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) team.emplace_back(worker, t);
    for (auto& thread : team) thread.join();
  }
  const std::int64_t t1 = util::wall_now_us();
  (void)sink.load();
  const double secs = static_cast<double>(t1 - t0) / 1e6;
  return secs > 0.0 ? static_cast<double>(per_thread * threads) / secs : 0.0;
}

/// Route/e2e latency percentiles from a telemetry registry into the JSON
/// metrics block as `<prefix>{route,e2e}_p{50,95,99}_s`.
void latency_metrics(benchtools::BenchJson& out, const std::string& prefix,
                     const obs::MetricsRegistry& registry) {
  const auto add = [&](const char* key, const char* histogram) {
    const auto it = registry.histograms().find(histogram);
    if (it == registry.histograms().end()) return;
    out.metric(prefix + std::string(key) + "_p50_s", it->second.p50());
    out.metric(prefix + std::string(key) + "_p95_s", it->second.p95());
    out.metric(prefix + std::string(key) + "_p99_s", it->second.p99());
  };
  add("route", "serve.route_latency_s");
  add("e2e", "serve.e2e_latency_s");
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;

  // Workload scales with --reps (default 7 -> 280k decisions per cell).
  const std::size_t decisions = 40000 * options.reps;
  const std::size_t requests = 2000 * options.reps;
  util::Rng trace_rng(1000);
  const sim::Trace trace =
      fstartbench::make_overall_workload(suite.bench, 4096, trace_rng);

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  const std::vector<std::size_t> shard_counts = {1, 4, 8};
  const std::size_t max_threads = thread_counts.back();
  const std::size_t max_shards = shard_counts.back();

  serve::ServeConfig serve_cfg;
  serve_cfg.workers = 4;
  serve_cfg.shards = max_shards;
  serve_cfg.queue_capacity = 8192;
  serve_cfg.batch = 32;
  constexpr std::size_t kProducers = 2;

  double headline_per_sec = 0.0;
  double route_1t_max_shards = 0.0;
  double route_maxt_1shard = 0.0;
  std::vector<std::pair<std::string, double>> policy_rates;
  double svc_per_sec = 0.0;
  serve::ServeSummary summary;
  obs::MetricsRegistry live_metrics;

  if (!options.replay_only) {
    fleet::FleetEnv fleet = make_fleet(suite);
    prewarm(fleet, trace);

    // --- Phase 1: route-only grid, Least-Outstanding ------------------
    std::cout << "=== serve route-only throughput: " << kNodes << " nodes, "
              << decisions << " Least-Outstanding decisions per cell ===\n";
    util::Table grid({"threads", "1 shard (dec/s)", "4 shards (dec/s)",
                      "8 shards (dec/s)"});
    serve::LeastOutstandingPolicy lo;
    lo.on_episode_start(kNodes);
    {  // warm-up pass so first-touch noise lands outside the timed cells
      serve::ShardedFleetIndex warm = make_index(fleet, 1, false);
      (void)measure_route(lo, warm, suite.bench.functions, trace, 1,
                          decisions / 4);
    }
    for (const std::size_t threads : thread_counts) {
      std::vector<std::string> cells = {std::to_string(threads)};
      for (const std::size_t shards : shard_counts) {
        const serve::ShardedFleetIndex index =
            make_index(fleet, shards, false);
        const double per_sec = measure_route(lo, index, suite.bench.functions,
                                             trace, threads, decisions);
        cells.push_back(util::Table::num(per_sec, 0));
        if (threads == max_threads && shards == max_shards)
          headline_per_sec = per_sec;
        if (threads == 1 && shards == max_shards)
          route_1t_max_shards = per_sec;
        if (threads == max_threads && shards == 1)
          route_maxt_1shard = per_sec;
      }
      grid.add_row(std::move(cells));
    }
    grid.print(std::cout);

    // --- Phase 1b: every standard policy at the widest cell -----------
    std::cout << "\n=== per-policy decision rate (" << max_threads
              << " threads, " << max_shards << " shards) ===\n";
    util::Table per_policy({"policy", "decisions/sec"});
    const serve::ShardedFleetIndex plain =
        make_index(fleet, max_shards, false);
    const serve::ShardedFleetIndex warm = make_index(fleet, max_shards, true);
    for (const serve::PolicySpec& spec : serve::standard_policies()) {
      const std::unique_ptr<serve::RoutePolicy> policy = spec.make();
      policy->on_episode_start(kNodes);
      const auto& index = policy->needs_warm_index() ? warm : plain;
      const double per_sec = measure_route(*policy, index,
                                           suite.bench.functions, trace,
                                           max_threads, decisions);
      policy_rates.emplace_back(spec.name, per_sec);
      per_policy.add_row({spec.name, util::Table::num(per_sec, 0)});
    }
    per_policy.print(std::cout);

    // --- Phase 2: full ingest -> route -> dispatch path ---------------
    fleet::FleetEnv service_fleet = make_fleet(suite);
    serve::WallClock clock;
    serve::TelemetryConfig live_tcfg;  // metrics-only: no tracer, no snapshots
    live_tcfg.registry_slots = serve_cfg.workers + kProducers;
    serve::Telemetry live_telemetry(live_tcfg);
    serve::SchedulerService service(
        service_fleet, clock,
        std::make_unique<serve::LeastOutstandingPolicy>(), serve_cfg);
    service.set_telemetry(&live_telemetry);
    service.begin_episode();
    service.start();

    const std::int64_t svc_t0 = util::wall_now_us();
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        const auto& invs = trace.invocations();
        for (std::size_t i = 0; i < requests / kProducers; ++i) {
          sim::Invocation inv = invs[(p * 131 + i) % invs.size()];
          inv.seq = p * (requests / kProducers) + i;
          inv.arrival_s = clock.now_s();
          inv.exec_s = 0.005;
          while (!service.submit(inv)) std::this_thread::yield();
        }
      });
    }
    for (auto& producer : producers) producer.join();
    summary = service.finish_episode();
    const std::int64_t svc_t1 = util::wall_now_us();
    const double svc_secs = static_cast<double>(svc_t1 - svc_t0) / 1e6;
    svc_per_sec =
        svc_secs > 0.0 ? static_cast<double>(summary.stats.routed) / svc_secs
                       : 0.0;
    live_metrics = live_telemetry.metrics();
    const obs::SloReport live_slo = live_telemetry.slo_report();

    std::cout << "\n=== full service path: " << requests << " requests, "
              << serve_cfg.workers << " workers, " << kProducers
              << " producers ===\n"
              << "served " << summary.stats.routed << " ("
              << util::Table::num(svc_per_sec, 0) << " req/s), rejected "
              << summary.stats.rejected << ", lost " << summary.stats.lost
              << ", cold starts " << summary.fleet.total.cold_starts << "\n"
              << "telemetry: e2e p99 "
              << util::Table::num(1000.0 * live_slo.e2e_p99_s, 2)
              << " ms, goodput " << util::Table::num(live_slo.goodput, 3)
              << ", max queue depth "
              << util::Table::num(live_slo.queue_depth_max, 0) << "\n";

    std::cout << "\nheadline: " << util::Table::num(headline_per_sec, 0)
              << " routing decisions/sec at " << max_threads << " threads, "
              << max_shards << " shards\n";
  }

  // --- Phase 3: deterministic replay with the full telemetry plane ----
  obs::Tracer tracer;
  if (!options.trace_path.empty())
    tracer.add_sink(std::make_shared<obs::ChromeTraceSink>(options.trace_path));
  fleet::FleetEnv replay_fleet = make_fleet(suite);
  serve::SimClock sim_clock;
  serve::TelemetryConfig replay_tcfg;
  replay_tcfg.snapshot_path = options.snapshots_path;
  replay_tcfg.snapshot_period_s = 10.0;
  replay_tcfg.registry_slots = serve_cfg.workers;
  serve::Telemetry replay_telemetry(replay_tcfg, &tracer);
  serve::SchedulerService replay_service(
      replay_fleet, sim_clock,
      std::make_unique<serve::LeastOutstandingPolicy>(), serve_cfg);
  replay_service.set_telemetry(&replay_telemetry);

  const std::int64_t rp_t0 = util::wall_now_us();
  const serve::ServeSummary replayed = replay_service.run_replay(trace);
  const std::int64_t rp_t1 = util::wall_now_us();
  tracer.close();
  if (!options.metrics_path.empty())
    replay_telemetry.metrics().write_csv(options.metrics_path);

  const double rp_secs = static_cast<double>(rp_t1 - rp_t0) / 1e6;
  const double rp_per_sec =
      rp_secs > 0.0 ? static_cast<double>(replayed.stats.routed) / rp_secs
                    : 0.0;
  const obs::MetricsRegistry replay_metrics = replay_telemetry.metrics();

  std::cout << "\n=== deterministic replay (SimClock): " << trace.size()
            << " invocations ===\n"
            << "replayed " << replayed.stats.routed << " ("
            << util::Table::num(rp_per_sec, 0) << " req/s wall), lost "
            << replayed.stats.lost << ", cold starts "
            << replayed.fleet.total.cold_starts << ", snapshots "
            << replay_telemetry.snapshot_count() << "\n";

  if (!options.json_path.empty()) {
    benchtools::BenchJson out("serve_throughput");
    out.config("nodes", kNodes);
    out.config("threads", max_threads);
    out.config("shards", max_shards);
    out.config("route_decisions", decisions);
    out.config("service_requests", requests);
    out.config("policy", std::string("Least-Outstanding"));
    out.config("replay_only",
               static_cast<std::size_t>(options.replay_only ? 1 : 0));
    if (options.replay_only) {
      out.wall_ms(1000.0 * rp_secs);
      out.events_per_sec(rp_per_sec);
    } else {
      out.wall_ms(1000.0 * static_cast<double>(decisions) /
                  (headline_per_sec > 0.0 ? headline_per_sec : 1.0));
      out.events_per_sec(headline_per_sec);
      out.metric("route_1t_8shard_per_sec", route_1t_max_shards);
      out.metric("route_8t_1shard_per_sec", route_maxt_1shard);
      for (const auto& [name, per_sec] : policy_rates) {
        std::string key = "route_" + name + "_per_sec";
        for (char& c : key) {
          if (c == '-') c = '_';
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        out.metric(key, per_sec);
      }
      out.metric("service_requests_per_sec", svc_per_sec);
      out.metric("service_rejected",
                 static_cast<double>(summary.stats.rejected));
      out.metric("service_lost", static_cast<double>(summary.stats.lost));
      latency_metrics(out, "service_", live_metrics);
    }
    out.metric("replay_requests_per_sec", rp_per_sec);
    out.metric("replay_lost", static_cast<double>(replayed.stats.lost));
    latency_metrics(out, "replay_", replay_metrics);
    if (!out.write(options.json_path)) return 1;
    std::cout << "wrote " << options.json_path << "\n";
  }
  return 0;
}
