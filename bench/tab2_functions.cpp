// Table II reproduction: the 13 FStartBench functions with their OS,
// language, and runtime packages, plus the derived workload metrics the
// paper quotes in Sec. V (pairwise similarity, package-size variance).
#include <iostream>

#include "common.hpp"
#include "containers/matching.hpp"

int main() {
  using namespace mlcr;
  const benchtools::Suite suite;
  const auto& bench = suite.bench;

  util::Table table({"FuncID", "OS", "Language", "Runtime", "Description",
                     "image (MB)", "mean exec (s)"});
  for (int id = 1; id <= 13; ++id) {
    const auto& fn = bench.functions.get(bench.by_paper_id(id));
    auto names = [&](containers::Level level) {
      std::string out;
      for (const auto pkg : fn.image.level(level)) {
        if (!out.empty()) out += " + ";
        out += bench.catalog.info(pkg).name;
      }
      return out.empty() ? std::string("-") : out;
    };
    table.add_row({std::to_string(id), names(containers::Level::kOs),
                   names(containers::Level::kLanguage),
                   names(containers::Level::kRuntime), fn.description,
                   util::Table::num(fn.image.total_size_mb(bench.catalog), 0),
                   util::Table::num(fn.mean_exec_s, 2)});
  }
  std::cout << "=== Table II: FStartBench functions ===\n";
  table.print(std::cout);

  util::Table metrics({"workload", "paper FuncIDs", "avg pairwise Jaccard",
                       "package size variance"});
  struct Set {
    const char* name;
    std::initializer_list<int> ids;
  };
  for (const Set& s : {Set{"HI-Sim / LO-Var", {1, 2, 3, 4, 11}},
                       Set{"LO-Sim / HI-Var", {1, 2, 5, 9, 13}},
                       Set{"Arrival (Fig 11c)", {1, 2, 5, 6, 13}}}) {
    const auto types = bench.paper_ids(s.ids);
    std::string ids;
    for (int id : s.ids) ids += (ids.empty() ? "" : ",") + std::to_string(id);
    metrics.add_row(
        {s.name, ids,
         util::Table::num(
             fstartbench::average_pairwise_similarity(bench, types), 2),
         util::Table::num(fstartbench::package_size_variance(bench, types),
                          0)});
  }
  std::cout << "\n=== Sec. V workload metrics (paper: similarity 0.52 vs "
               "0.29; variance 54 vs 769) ===\n";
  metrics.print(std::cout);
  return 0;
}
