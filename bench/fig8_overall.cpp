// Fig. 8 reproduction: total startup latency (8a) and cold-start counts (8b)
// of the five systems under Tight / Moderate / Loose warm-pool sizes, on the
// overall workload (400 invocations of all 13 functions, Poisson arrivals).
// Results are means over --reps independently generated traces (default 7;
// the paper uses 50 — pass --reps 50 to match).
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mlcr;
  const auto options = benchtools::BenchOptions::parse(argc, argv);
  const benchtools::Suite suite;
  benchtools::ObsSession obs_session(options);

  const benchtools::TraceFactory factory = [&](util::Rng& rng) {
    return fstartbench::make_overall_workload(suite.bench, 400, rng);
  };

  // Pool sizes are derived from a reference trace (Sec. VI-A: Loose = peak
  // memory with nothing evicted; Tight = Loose/5, Moderate = Loose/2).
  util::Rng ref_rng(1000);
  const sim::Trace reference = factory(ref_rng);
  const double loose =
      fstartbench::estimate_loose_capacity_mb(suite.bench, reference);
  const auto pools = fstartbench::paper_pool_sizes(loose);
  std::cout << "Loose pool = " << util::Table::num(pools.loose_mb, 0)
            << " MB, Moderate = " << util::Table::num(pools.moderate_mb, 0)
            << " MB, Tight = " << util::Table::num(pools.tight_mb, 0)
            << " MB; " << options.reps << " reps\n";

  const core::MlcrConfig cfg = core::make_default_mlcr_config();
  const auto agent = benchtools::trained_agent(
      suite, "bench_overall", factory,
      {pools.tight_mb, pools.moderate_mb, pools.loose_mb}, cfg, options);

  const struct {
    const char* name;
    double mb;
  } sizes[] = {{"Tight", pools.tight_mb},
               {"Moderate", pools.moderate_mb},
               {"Loose", pools.loose_mb}};

  util::Table latency({"system", "Tight (s)", "Moderate (s)", "Loose (s)"});
  util::Table colds({"system", "Tight", "Moderate", "Loose"});
  struct Cell {
    double latency = 0.0, cold = 0.0;
  };
  std::vector<std::vector<Cell>> grid;

  const auto systems = benchtools::paper_systems(agent, &cfg.encoder);
  for (const auto& system : systems) {
    // Wall-time self-profiling of each system's replication sweep.
    benchtools::BenchSpan sweep(obs_session, "stats:" + system.name);
    std::vector<Cell> row;
    std::vector<std::string> lat_cells = {system.name};
    std::vector<std::string> cold_cells = {system.name};
    for (const auto& size : sizes) {
      const auto stats = benchtools::run_replications(
          suite, system.make, factory, size.mb, options.reps,
          options.threads);
      row.push_back({stats.total_latency_s.mean(), stats.cold_starts.mean()});
      lat_cells.push_back(util::Table::num(stats.total_latency_s.mean(), 1));
      cold_cells.push_back(util::Table::num(stats.cold_starts.mean(), 1));
    }
    grid.push_back(std::move(row));
    latency.add_row(std::move(lat_cells));
    colds.add_row(std::move(cold_cells));
  }

  // One fully-traced episode per system at the Moderate pool: lifecycle
  // spans (match / repack / startup / exec), pool events, DQN inference
  // profiling, and the per-system latency histograms behind --metrics.
  if (obs_session.tracing() || !options.metrics_path.empty()) {
    std::uint32_t track = 0;
    for (const auto& system : systems)
      (void)benchtools::trace_episode(obs_session, suite, system, factory,
                                      pools.moderate_mb, track++);
  }

  std::cout << "\n=== Fig. 8a: total startup latency of 400 invocations ===\n";
  latency.print(std::cout);
  std::cout << "\n=== Fig. 8b: number of cold starts ===\n";
  colds.print(std::cout);

  // Paper-reported reductions of MLCR vs each baseline, per pool size.
  util::Table reductions({"vs", "Tight", "Moderate", "Loose"});
  const auto& mlcr_row = grid.back();
  for (std::size_t sys = 0; sys + 1 < systems.size(); ++sys) {
    std::vector<std::string> cells = {systems[sys].name};
    for (std::size_t p = 0; p < 3; ++p)
      cells.push_back(util::Table::num(
          100.0 * (1.0 - mlcr_row[p].latency / grid[sys][p].latency), 0) +
          "%");
    reductions.add_row(std::move(cells));
  }
  std::cout << "\n=== MLCR latency reduction (paper: 38-57% vs LRU, 47-53% vs "
               "FaasCache, 48-52% vs KeepAlive, 22-48% vs Greedy-Match) ===\n";
  reductions.print(std::cout);

  obs_session.finish();
  if (!options.trace_path.empty())
    std::cout << "\ntrace written to " << options.trace_path
              << " (load in Perfetto / chrome://tracing)\n";
  if (!options.metrics_path.empty())
    std::cout << "metrics written to " << options.metrics_path << "\n";
  return 0;
}
