#include "core/state_encoder.hpp"

#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "testing/fixtures.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mlcr::core {
namespace {

using mlcr::testing::TinyWorld;

class EncoderTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  StateEncoderConfig config_ = [] {
    StateEncoderConfig c;
    c.num_slots = 4;
    return c;
  }();
  StateEncoder encoder_{config_};
};

TEST_F(EncoderTest, ShapesFollowConfig) {
  EXPECT_EQ(encoder_.num_tokens(), 6U);
  EXPECT_EQ(encoder_.num_actions(), 5U);

  auto env = world_.make_env();
  const sim::Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world_.fn_py_flask, 0.0)});
  env.reset(trace);
  const EncodedState s = encoder_.encode(env, env.current(), 0.0);
  EXPECT_EQ(s.tokens.rows(), 6U);
  EXPECT_EQ(s.tokens.cols(), config_.feature_dim);
  EXPECT_EQ(s.mask.size(), 5U);
  EXPECT_EQ(s.slot_ids.size(), 4U);
}

TEST_F(EncoderTest, EmptyPoolMasksEverythingButCold) {
  auto env = world_.make_env();
  const sim::Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world_.fn_py_flask, 0.0)});
  env.reset(trace);
  const EncodedState s = encoder_.encode(env, env.current(), 0.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(s.mask[i], 0);
  EXPECT_EQ(s.mask[4], 1) << "cold start always allowed";
}

TEST_F(EncoderTest, ReusableContainerIsUnmaskedAndMapped) {
  auto env = world_.make_env();
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 100.0)});
  env.reset(trace);
  (void)env.step(sim::Action::cold());
  const EncodedState s = encoder_.encode(env, env.current(), 0.0);
  EXPECT_EQ(s.mask[0], 1) << "L2 match must be actionable";
  EXPECT_NE(s.slot_ids[0], containers::kInvalidContainer);
  EXPECT_EQ(s.mask[1], 0);

  const sim::Action a = encoder_.to_sim_action(s, 0);
  EXPECT_EQ(a.kind, sim::Action::Kind::kReuse);
  EXPECT_EQ(a.container, s.slot_ids[0]);
}

TEST_F(EncoderTest, NoMatchContainerStaysMaskedButVisible) {
  auto env = world_.make_env();
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_other_os, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 100.0)});
  env.reset(trace);
  (void)env.step(sim::Action::cold());
  const EncodedState s = encoder_.encode(env, env.current(), 0.0);
  EXPECT_EQ(s.mask[0], 0) << "no-match container must be masked (Sec. IV-C)";
  // But its token is populated (is_slot flag set).
  EXPECT_FLOAT_EQ(s.tokens(rl::kFirstSlotTokenRow, 2), 1.0F);
}

TEST_F(EncoderTest, MatchingContainersSortBeforeOthers) {
  auto env = world_.make_env();
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_js, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 50.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 200.0)});
  env.reset(trace);
  (void)env.step(sim::Action::cold());
  (void)env.step(sim::Action::cold());
  // Pool now: a js container (L1 for py-numpy) and a py-numpy container
  // (L3). The L3 container must occupy slot 0.
  const EncodedState s = encoder_.encode(env, env.current(), 0.0);
  EXPECT_EQ(env.match_for(s.slot_ids[0], world_.fn_py_numpy),
            containers::MatchLevel::kL3);
  EXPECT_EQ(env.match_for(s.slot_ids[1], world_.fn_py_numpy),
            containers::MatchLevel::kL1);
  EXPECT_EQ(s.mask[0], 1);
  EXPECT_EQ(s.mask[1], 1);
}

TEST_F(EncoderTest, ToSimActionMapsColdAndEmptySlots) {
  auto env = world_.make_env();
  const sim::Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world_.fn_py_flask, 0.0)});
  env.reset(trace);
  const EncodedState s = encoder_.encode(env, env.current(), 0.0);
  EXPECT_EQ(encoder_.to_sim_action(s, 4).kind, sim::Action::Kind::kColdStart);
  // Slot 2 is empty -> degrades to cold.
  EXPECT_EQ(encoder_.to_sim_action(s, 2).kind, sim::Action::Kind::kColdStart);
  EXPECT_THROW((void)encoder_.to_sim_action(s, 5), util::CheckError);
}

TEST_F(EncoderTest, TokenTypeFlagsAreOneHot) {
  auto env = world_.make_env();
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 100.0)});
  env.reset(trace);
  (void)env.step(sim::Action::cold());
  const EncodedState s = encoder_.encode(env, env.current(), 0.0);
  EXPECT_FLOAT_EQ(s.tokens(0, 0), 1.0F);  // cluster
  EXPECT_FLOAT_EQ(s.tokens(0, 1), 0.0F);
  EXPECT_FLOAT_EQ(s.tokens(1, 1), 1.0F);  // function
  EXPECT_FLOAT_EQ(s.tokens(2, 2), 1.0F);  // occupied slot
  EXPECT_FLOAT_EQ(s.tokens(3, 2), 0.0F);  // empty slot
}

TEST_F(EncoderTest, ArrivalIntervalFeatureUsesPrevArrival) {
  auto env = world_.make_env();
  const sim::Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world_.fn_py_flask, 10.0)});
  env.reset(trace);
  const EncodedState a = encoder_.encode(env, env.current(), 10.0);
  const EncodedState b = encoder_.encode(env, env.current(), 5.0);
  EXPECT_FLOAT_EQ(a.tokens(1, 11), 0.0F);
  EXPECT_FLOAT_EQ(b.tokens(1, 11),
                  static_cast<float>(5.0 / config_.interval_scale_s));
}

TEST_F(EncoderTest, RejectsTooSmallFeatureDim) {
  StateEncoderConfig bad;
  bad.feature_dim = 8;
  EXPECT_THROW(StateEncoder{bad}, util::CheckError);
}

// --- Node-health features (DESIGN.md §14). Cluster-token columns 8..11
// carry down-state, failed fraction, retry pressure and crash count — but
// only when StateEncoderConfig::encode_health is set, so existing trained
// agents keep a bit-identical observation.

TEST_F(EncoderTest, HealthColumnsStayZeroUnlessOptedIn) {
  auto env = world_.make_env();
  const sim::Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5)});
  env.reset(trace);
  (void)env.step(sim::Action::cold());
  ASSERT_TRUE(env.done());

  // A healthy env encodes bit-identically with and without the flag.
  StateEncoderConfig hcfg = config_;
  hcfg.encode_health = true;
  const StateEncoder health(hcfg);
  const auto probe = TinyWorld::inv(world_.fn_py_flask, 10.0);
  const EncodedState plain = encoder_.encode(env, probe, 0.0);
  const EncodedState aware = health.encode(env, probe, 0.0);
  for (std::size_t r = 0; r < encoder_.num_tokens(); ++r)
    for (std::size_t c = 0; c < config_.feature_dim; ++c)
      EXPECT_FLOAT_EQ(plain.tokens(r, c), aware.tokens(r, c))
          << "row " << r << " col " << c;

  // Even on a crashed node the legacy encoder writes nothing there.
  env.crash(env.now());
  const EncodedState down = encoder_.encode(env, probe, 0.0);
  for (std::size_t c = 8; c <= 11; ++c)
    EXPECT_FLOAT_EQ(down.tokens(0, c), 0.0F) << "col " << c;
}

TEST_F(EncoderTest, HealthBlockEncodesCrashPartialAndInjectorPressure) {
  StateEncoderConfig hcfg = config_;
  hcfg.encode_health = true;
  const StateEncoder health(hcfg);

  auto env = world_.make_env();
  faults::FaultPlan plan;
  plan.retry.max_attempts = 3;
  faults::FaultInjector injector(plan, util::Rng(42));
  env.set_fault_injector(&injector);

  const sim::Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5)});
  env.reset(trace);
  (void)env.step(sim::Action::cold());
  ASSERT_TRUE(env.done());
  const auto probe = TinyWorld::inv(world_.fn_py_flask, 10.0);

  // Healthy, no faults seen yet: the whole block is zero.
  const EncodedState clean = health.encode(env, probe, 0.0);
  for (std::size_t c = 8; c <= 11; ++c)
    EXPECT_FLOAT_EQ(clean.tokens(0, c), 0.0F) << "col " << c;

  // A full crash reads 1.0, a partial crash 0.5, and the crash counter
  // scales by 1/4; retry pressure is retries over invocations served.
  env.crash(env.now());
  (void)injector.draw_backoff(1);  // one retry observed
  const EncodedState full = health.encode(env, probe, 0.0);
  EXPECT_FLOAT_EQ(full.tokens(0, 8), 1.0F);
  EXPECT_FLOAT_EQ(full.tokens(0, 9), 0.0F);  // nothing failed
  EXPECT_FLOAT_EQ(full.tokens(0, 10), 1.0F);  // 1 retry / 1 invocation
  EXPECT_FLOAT_EQ(full.tokens(0, 11), 0.25F);  // 1 crash / 4

  env.recover(env.now());
  env.crash(env.now(), /*partial=*/true);
  const EncodedState partial = health.encode(env, probe, 0.0);
  EXPECT_FLOAT_EQ(partial.tokens(0, 8), 0.5F);
  EXPECT_FLOAT_EQ(partial.tokens(0, 11), 0.5F);  // 2 crashes / 4
}

}  // namespace
}  // namespace mlcr::core
