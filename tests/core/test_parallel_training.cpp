// Determinism pinning for round-based parallel episode collection: within
// round mode (collect_round > 1) the worker-thread count is a pure
// throughput knob — every transition, every gradient step and the final
// weights must be bit-identical for 1 worker and N workers. Each episode
// rolls out on a cloned environment against frozen weights with its own RNG
// stream split in global episode order, and the merge back into the replay
// buffer is sequential, so the schedule the learner sees never depends on
// thread interleaving.
#include <gtest/gtest.h>

#include <vector>

#include "core/mlcr.hpp"
#include "core/trainer.hpp"
#include "rl/dqn.hpp"
#include "testing/fixtures.hpp"

namespace mlcr::core {
namespace {

using mlcr::testing::TinyWorld;

MlcrConfig tiny_mlcr() {
  MlcrConfig cfg = make_default_mlcr_config(/*num_slots=*/4,
                                            /*embed_dim=*/16);
  cfg.dqn.network.ffn_dim = 32;
  cfg.dqn.batch_size = 8;
  cfg.dqn.min_replay = 32;
  return cfg;
}

sim::Trace cycle_trace(const TinyWorld& world, int rounds) {
  std::vector<sim::Invocation> invs;
  double t = 0.0;
  for (int r = 0; r < rounds; ++r) {
    invs.push_back(TinyWorld::inv(world.fn_py_flask, t, 0.5));
    invs.push_back(TinyWorld::inv(world.fn_py_numpy, t + 30.0, 0.5));
    invs.push_back(TinyWorld::inv(world.fn_js, t + 60.0, 0.5));
    t += 90.0;
  }
  return sim::Trace(std::move(invs));
}

struct TrainOutcome {
  TrainerReport report;
  std::vector<std::vector<float>> weights;
};

TrainOutcome train_with(const TinyWorld& world, std::size_t collect_round,
                        std::size_t collect_workers) {
  const MlcrConfig cfg = tiny_mlcr();
  rl::DqnAgent agent(cfg.dqn, util::Rng(2));
  const StateEncoder encoder(cfg.encoder);
  auto env = world.make_env();
  const sim::Trace trace = cycle_trace(world, 8);

  TrainerConfig tc;
  tc.episodes = 8;
  tc.seed = 11;
  tc.train_every = 2;
  tc.validate_every = 3;
  tc.collect_round = collect_round;
  tc.collect_workers = collect_workers;

  TrainOutcome out;
  out.report = train_agent(agent, encoder, cfg.reward_scale_s, {&env},
                           {&trace}, tc);
  for (const nn::Parameter* p : agent.online_network().parameters()) {
    std::vector<float> flat;
    for (std::size_t r = 0; r < p->value.rows(); ++r)
      for (std::size_t c = 0; c < p->value.cols(); ++c)
        flat.push_back(p->value(r, c));
    out.weights.push_back(std::move(flat));
  }
  return out;
}

void expect_outcomes_identical(const TrainOutcome& a, const TrainOutcome& b) {
  EXPECT_EQ(a.report.env_steps, b.report.env_steps);
  EXPECT_EQ(a.report.train_steps, b.report.train_steps);
  EXPECT_EQ(a.report.late_loss, b.report.late_loss);
  EXPECT_EQ(a.report.best_validation, b.report.best_validation);
  ASSERT_EQ(a.report.episode_total_latency_s.size(),
            b.report.episode_total_latency_s.size());
  for (std::size_t i = 0; i < a.report.episode_total_latency_s.size(); ++i)
    EXPECT_EQ(a.report.episode_total_latency_s[i],
              b.report.episode_total_latency_s[i])
        << "episode " << i;
  ASSERT_EQ(a.report.validation_latency_s.size(),
            b.report.validation_latency_s.size());
  for (std::size_t i = 0; i < a.report.validation_latency_s.size(); ++i)
    EXPECT_EQ(a.report.validation_latency_s[i],
              b.report.validation_latency_s[i]);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t p = 0; p < a.weights.size(); ++p) {
    ASSERT_EQ(a.weights[p].size(), b.weights[p].size());
    for (std::size_t i = 0; i < a.weights[p].size(); ++i)
      EXPECT_EQ(a.weights[p][i], b.weights[p][i])
          << "parameter " << p << " element " << i;
  }
}

TEST(ParallelTraining, RoundModeIsWorkerCountInvariant) {
  TinyWorld world;
  const TrainOutcome serial =
      train_with(world, /*collect_round=*/3, /*collect_workers=*/1);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE(workers);
    const TrainOutcome threaded =
        train_with(world, /*collect_round=*/3, workers);
    expect_outcomes_identical(serial, threaded);
  }
}

/// Round size 1 must dispatch to the original interleaved loop — same
/// report and weights as a default-config run, regardless of workers.
TEST(ParallelTraining, RoundSizeOneIsLegacyPath) {
  TinyWorld world;
  const TrainOutcome legacy =
      train_with(world, /*collect_round=*/1, /*collect_workers=*/0);
  const TrainOutcome explicit_workers =
      train_with(world, /*collect_round=*/1, /*collect_workers=*/4);
  expect_outcomes_identical(legacy, explicit_workers);
}

/// Repeated round-mode runs with one fixed seed are reproducible — the
/// thread pool never leaks scheduling nondeterminism into the results.
TEST(ParallelTraining, RoundModeIsRepeatable) {
  TinyWorld world;
  const TrainOutcome first =
      train_with(world, /*collect_round=*/2, /*collect_workers=*/3);
  const TrainOutcome second =
      train_with(world, /*collect_round=*/2, /*collect_workers=*/3);
  expect_outcomes_identical(first, second);
}

}  // namespace
}  // namespace mlcr::core
