#include "core/online.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/trainer.hpp"
#include "policies/runner.hpp"
#include "testing/fixtures.hpp"

namespace mlcr::core {
namespace {

using mlcr::testing::TinyWorld;

MlcrConfig tiny_cfg() {
  MlcrConfig cfg = make_default_mlcr_config(/*num_slots=*/4,
                                            /*embed_dim=*/16);
  cfg.dqn.network.ffn_dim = 32;
  cfg.dqn.batch_size = 8;
  cfg.dqn.min_replay = 16;
  return cfg;
}

sim::Trace repeated_trace(const TinyWorld& world, int rounds) {
  std::vector<sim::Invocation> invs;
  double t = 0.0;
  for (int r = 0; r < rounds; ++r) {
    invs.push_back(TinyWorld::inv(world.fn_py_flask, t, 0.4));
    invs.push_back(TinyWorld::inv(world.fn_py_numpy, t + 25.0, 0.4));
    t += 50.0;
  }
  return sim::Trace(std::move(invs));
}

TEST(OnlineMlcr, RunsValidEpisodesAndCollectsExperience) {
  TinyWorld world;
  const MlcrConfig cfg = tiny_cfg();
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(1));
  OnlineConfig online;
  online.train_every = 2;
  OnlineMlcrScheduler scheduler(agent, StateEncoder(cfg.encoder),
                                cfg.reward_scale_s, online);
  auto env = world.make_env();
  const sim::Trace trace = repeated_trace(world, 12);
  const auto s = policies::run_episode(env, scheduler, trace);
  EXPECT_EQ(s.invocations, trace.size());
  // One transition per decision except the last (flushed at next episode).
  EXPECT_GE(agent->replay().size(), trace.size() - 1);
  EXPECT_GT(scheduler.online_train_steps(), 0U);
}

TEST(OnlineMlcr, EpisodeBoundaryFlushesTerminalTransition) {
  TinyWorld world;
  const MlcrConfig cfg = tiny_cfg();
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(2));
  OnlineConfig online;
  online.train_every = 0;  // pure experience collection
  OnlineMlcrScheduler scheduler(agent, StateEncoder(cfg.encoder),
                                cfg.reward_scale_s, online);
  auto env = world.make_env();
  const sim::Trace trace = repeated_trace(world, 3);
  (void)policies::run_episode(env, scheduler, trace);
  const std::size_t after_first = agent->replay().size();
  EXPECT_EQ(after_first, trace.size() - 1);
  // Starting the next episode flushes the held-back final transition.
  (void)policies::run_episode(env, scheduler, trace);
  EXPECT_EQ(agent->replay().size(), 2 * trace.size() - 1);
}

TEST(OnlineMlcr, ZeroEpsilonMatchesOfflineSchedulerDecisions) {
  TinyWorld world;
  const MlcrConfig cfg = tiny_cfg();
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(3));
  OnlineConfig online;
  online.epsilon = 0.0F;
  online.train_every = 0;  // no learning: must track the offline scheduler

  auto env1 = world.make_env();
  auto env2 = world.make_env();
  const sim::Trace trace = repeated_trace(world, 8);
  OnlineMlcrScheduler online_sched(agent, StateEncoder(cfg.encoder),
                                   cfg.reward_scale_s, online);
  MlcrScheduler offline_sched(agent, StateEncoder(cfg.encoder));
  const auto a = policies::run_episode(env1, online_sched, trace);
  const auto b = policies::run_episode(env2, offline_sched, trace);
  EXPECT_DOUBLE_EQ(a.total_latency_s, b.total_latency_s);
  EXPECT_EQ(a.cold_starts, b.cold_starts);
}

TEST(OnlineMlcr, FineTuningUpdatesWeightsAndLearnsWarmStartValue) {
  TinyWorld world;
  const MlcrConfig cfg = tiny_cfg();
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(4));
  OnlineConfig online;
  online.epsilon = 0.05F;
  online.train_every = 1;
  online.seed = 99;
  OnlineMlcrScheduler scheduler(agent, StateEncoder(cfg.encoder),
                                cfg.reward_scale_s, online);
  auto env = world.make_env();
  const sim::Trace trace = repeated_trace(world, 10);

  const auto before = agent->snapshot_weights();
  double first = 0.0, last = 0.0;
  for (int episode = 0; episode < 10; ++episode) {
    const auto s = policies::run_episode(env, scheduler, trace);
    if (episode == 0) first = s.total_latency_s;
    last = s.total_latency_s;
  }
  // Weights must have moved.
  const auto after = agent->snapshot_weights();
  bool changed = false;
  for (std::size_t i = 0; i < before.size(); ++i)
    changed |= !(before[i] == after[i]);
  EXPECT_TRUE(changed);
  // ... without the serving quality regressing on a stationary workload.
  EXPECT_LE(last, first + 1e-9);

  // The unambiguous repeated signal (warm L3 ≈ 0.1 s vs cold ≈ 7 s) must be
  // reflected in the learned Q-values: with a full-match container parked,
  // the greedy action is reuse, not cold start.
  env.reset(trace);
  (void)env.step(sim::Action::cold());  // park a py-flask container
  const StateEncoder encoder(cfg.encoder);
  const EncodedState state = encoder.encode(env, env.current(), 0.0);
  ASSERT_EQ(state.mask[0], 1);
  const std::size_t action = agent->greedy_action(state.tokens, state.mask);
  EXPECT_NE(action, cfg.encoder.num_slots)
      << "fine-tuned policy must prefer reuse over cold start here";
}

TEST(OnlineMlcr, SystemSpecFactory) {
  const MlcrConfig cfg = tiny_cfg();
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(5));
  const auto spec =
      make_online_mlcr_system(agent, cfg.encoder, cfg.reward_scale_s);
  EXPECT_EQ(spec.name, "MLCR-online");
  EXPECT_NE(spec.scheduler, nullptr);
}

TEST(MlcrFallback, MissingModelDegradesToGreedyMatch) {
  const MlcrConfig cfg = tiny_cfg();
  std::size_t fallbacks = 0;
  const auto spec = make_mlcr_system_or_fallback(
      ::testing::TempDir() + "no_such_model.bin", cfg, &fallbacks);
  EXPECT_EQ(spec.name, "Greedy-Match(MLCR-fallback)");
  EXPECT_EQ(spec.scheduler->name(), "Greedy-Match");
  EXPECT_EQ(fallbacks, 1U);

  // The fallback system must still run a full episode.
  TinyWorld world;
  auto env = world.make_env();
  const sim::Trace trace = repeated_trace(world, 4);
  const auto s = policies::run_episode(env, *spec.scheduler, trace);
  EXPECT_EQ(s.invocations, trace.size());
}

TEST(MlcrFallback, CorruptModelDegradesToGreedyMatch) {
  const std::string path = ::testing::TempDir() + "corrupt_model.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a model";
  }
  const MlcrConfig cfg = tiny_cfg();
  std::size_t fallbacks = 0;
  const auto spec = make_mlcr_system_or_fallback(path, cfg, &fallbacks);
  EXPECT_EQ(spec.name, "Greedy-Match(MLCR-fallback)");
  EXPECT_EQ(fallbacks, 1U);
  std::filesystem::remove(path);
}

TEST(MlcrFallback, IntactModelLoadsTheRealScheduler) {
  const std::string path = ::testing::TempDir() + "intact_model.bin";
  const MlcrConfig cfg = tiny_cfg();
  {
    rl::DqnAgent agent(cfg.dqn, util::Rng(6));
    agent.save(path);
  }
  std::size_t fallbacks = 0;
  const auto spec = make_mlcr_system_or_fallback(path, cfg, &fallbacks);
  EXPECT_EQ(spec.name, "MLCR");
  EXPECT_EQ(spec.scheduler->name(), "MLCR");
  EXPECT_EQ(fallbacks, 0U);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mlcr::core
