#include "core/mlcr.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/trainer.hpp"
#include "policies/runner.hpp"
#include "testing/fixtures.hpp"
#include "util/check.hpp"

namespace mlcr::core {
namespace {

using mlcr::testing::TinyWorld;

MlcrConfig tiny_mlcr() {
  MlcrConfig cfg = make_default_mlcr_config(/*num_slots=*/4,
                                            /*embed_dim=*/16);
  cfg.dqn.network.ffn_dim = 32;
  cfg.dqn.batch_size = 8;
  cfg.dqn.min_replay = 32;
  return cfg;
}

sim::Trace cycle_trace(const TinyWorld& world, int rounds) {
  std::vector<sim::Invocation> invs;
  double t = 0.0;
  for (int r = 0; r < rounds; ++r) {
    invs.push_back(TinyWorld::inv(world.fn_py_flask, t, 0.5));
    invs.push_back(TinyWorld::inv(world.fn_py_numpy, t + 30.0, 0.5));
    invs.push_back(TinyWorld::inv(world.fn_js, t + 60.0, 0.5));
    t += 90.0;
  }
  return sim::Trace(std::move(invs));
}

TEST(MlcrConfig, DefaultWiresDimensions) {
  const MlcrConfig cfg = make_default_mlcr_config(12, 32);
  EXPECT_EQ(cfg.encoder.num_slots, 12U);
  EXPECT_EQ(cfg.dqn.network.num_slots, 12U);
  EXPECT_EQ(cfg.dqn.network.feature_dim, cfg.encoder.feature_dim);
  EXPECT_EQ(cfg.dqn.network.embed_dim, 32U);
}

TEST(MlcrScheduler, RejectsMismatchedAgent) {
  const MlcrConfig cfg = tiny_mlcr();
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(1));
  StateEncoderConfig other = cfg.encoder;
  other.num_slots = 7;
  EXPECT_THROW(MlcrScheduler(agent, StateEncoder(other)), util::CheckError);
}

TEST(MlcrScheduler, UntrainedAgentProducesValidEpisodes) {
  TinyWorld world;
  const MlcrConfig cfg = tiny_mlcr();
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(2));
  auto spec = make_mlcr_system(agent, cfg.encoder);
  const sim::Trace trace = cycle_trace(world, 6);
  const auto s = policies::run_system(spec, world.functions, world.catalog,
                                      world.cost_model(), 4096.0, trace);
  EXPECT_EQ(s.invocations, trace.size());
  EXPECT_EQ(s.cold_starts + s.warm_l1 + s.warm_l2 + s.warm_l3, trace.size());
}

TEST(MlcrTrainer, ImprovesOverEpisodesOnTinyWorld) {
  TinyWorld world;
  const MlcrConfig cfg = tiny_mlcr();
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(3));
  const StateEncoder encoder(cfg.encoder);
  auto env = world.make_env();
  const sim::Trace trace = cycle_trace(world, 8);

  TrainerConfig tc;
  tc.episodes = 10;
  tc.seed = 11;
  tc.train_every = 2;
  const TrainerReport report = train_agent(
      *agent, encoder, cfg.reward_scale_s, {&env}, {&trace}, tc);
  ASSERT_EQ(report.episode_total_latency_s.size(), 10U);
  EXPECT_GT(report.train_steps, 0U);
  // With epsilon annealed, the trained policy must beat the first
  // (near-random) episode.
  EXPECT_LT(report.episode_total_latency_s.back(),
            report.episode_total_latency_s.front());
}

TEST(MlcrTrainer, TrainedPolicyBeatsNaiveColdStartPolicy) {
  TinyWorld world;
  const MlcrConfig cfg = tiny_mlcr();
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(4));
  const StateEncoder encoder(cfg.encoder);
  auto env = world.make_env();
  const sim::Trace trace = cycle_trace(world, 8);
  TrainerConfig tc;
  tc.episodes = 10;
  tc.train_every = 2;
  (void)train_agent(*agent, encoder, cfg.reward_scale_s, {&env}, {&trace}, tc);

  auto spec = make_mlcr_system(agent, cfg.encoder);
  const auto mlcr = policies::run_system(spec, world.functions, world.catalog,
                                         world.cost_model(), 4096.0, trace);
  // All-cold baseline.
  double all_cold = 0.0;
  for (const auto& inv : trace.invocations())
    all_cold +=
        world.cost_model().cold_start(world.functions.get(inv.function))
            .total();
  EXPECT_LT(mlcr.total_latency_s, all_cold);
  EXPECT_LT(mlcr.cold_starts, trace.size());
}

TEST(LoadOrTrain, CachesModelAcrossCalls) {
  const MlcrConfig cfg = tiny_mlcr();
  rl::DqnAgent a(cfg.dqn, util::Rng(5));
  rl::DqnAgent b(cfg.dqn, util::Rng(6));
  const std::string path = ::testing::TempDir() + "/mlcr_cache_test.bin";
  std::filesystem::remove(path);

  int trained = 0;
  EXPECT_FALSE(load_or_train(a, path, [&] { ++trained; }));
  EXPECT_EQ(trained, 1);
  EXPECT_TRUE(load_or_train(b, path, [&] { ++trained; }));
  EXPECT_EQ(trained, 1) << "second call must hit the cache";

  const nn::Tensor state(6, cfg.encoder.feature_dim, 0.3F);
  EXPECT_TRUE(a.q_values(state) == b.q_values(state));
  std::filesystem::remove(path);
}

TEST(LoadOrTrain, RetrainsOnIncompatibleCache) {
  const MlcrConfig small = tiny_mlcr();
  MlcrConfig big = small;
  big.dqn.network.embed_dim = 24;
  const std::string path = ::testing::TempDir() + "/mlcr_cache_mismatch.bin";
  std::filesystem::remove(path);

  rl::DqnAgent a(small.dqn, util::Rng(7));
  (void)load_or_train(a, path, [] {});
  rl::DqnAgent b(big.dqn, util::Rng(8));
  int retrained = 0;
  EXPECT_FALSE(load_or_train(b, path, [&] { ++retrained; }));
  EXPECT_EQ(retrained, 1);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mlcr::core
