#include "policies/baselines.hpp"

#include <gtest/gtest.h>

#include "containers/matching.hpp"
#include "policies/runner.hpp"
#include "testing/fixtures.hpp"

namespace mlcr::policies {
namespace {

using containers::MatchLevel;
using mlcr::testing::TinyWorld;

class BaselinesTest : public ::testing::Test {
 protected:
  TinyWorld world_;
};

TEST_F(BaselinesTest, SameConfigOnlyReusesFullMatch) {
  auto env = world_.make_env();
  // A py-flask container becomes warm; then a py-numpy (L2 match only)
  // invocation arrives: SameConfig must cold-start it.
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 100.0),
                             TinyWorld::inv(world_.fn_py_flask, 200.0)});
  SameConfigScheduler sched("LRU");
  const EpisodeSummary s = run_episode(env, sched, trace);
  EXPECT_EQ(s.cold_starts, 2U);
  EXPECT_EQ(s.warm_l3, 1U);
  EXPECT_EQ(s.warm_l1 + s.warm_l2, 0U);
}

TEST_F(BaselinesTest, GreedyMatchUsesPartialMatches) {
  auto env = world_.make_env();
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 100.0)});
  GreedyMatchScheduler sched;
  const EpisodeSummary s = run_episode(env, sched, trace);
  EXPECT_EQ(s.cold_starts, 1U);
  EXPECT_EQ(s.warm_l2, 1U);
}

TEST_F(BaselinesTest, GreedyMatchPrefersHigherLevel) {
  auto env = world_.make_env();
  // Warm containers: one L2 match (py-flask) and one L3 match (py-numpy)
  // for an incoming py-numpy invocation. Greedy must pick the L3 one.
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 50.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 200.0)});
  GreedyMatchScheduler sched;
  const EpisodeSummary s = run_episode(env, sched, trace);
  EXPECT_EQ(s.warm_l3, 1U) << "third invocation should take the L3 container";
  EXPECT_EQ(s.warm_l2, 1U) << "second invocation repacks the first container";
}

TEST_F(BaselinesTest, GreedyMatchColdStartsWhenNothingMatches) {
  auto env = world_.make_env();
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_other_os, 100.0)});
  GreedyMatchScheduler sched;
  const EpisodeSummary s = run_episode(env, sched, trace);
  EXPECT_EQ(s.cold_starts, 2U);
}

TEST_F(BaselinesTest, RandomSchedulerOnlyPicksValidActions) {
  auto env = world_.make_env();
  std::vector<sim::Invocation> invs;
  for (int i = 0; i < 40; ++i)
    invs.push_back(TinyWorld::inv(
        i % 2 ? world_.fn_py_flask : world_.fn_js, i * 10.0, 0.5));
  const sim::Trace trace{std::move(invs)};
  RandomScheduler sched(123);
  const EpisodeSummary s = run_episode(env, sched, trace);
  // Every start must be either cold or a reusable warm start; the episode
  // completing without CheckError plus consistent totals verifies this.
  EXPECT_EQ(s.cold_starts + s.warm_l1 + s.warm_l2 + s.warm_l3, 40U);
}

TEST_F(BaselinesTest, SystemSpecsCarryExpectedPolicies) {
  EXPECT_EQ(make_lru_system().name, "LRU");
  EXPECT_FALSE(make_lru_system().keep_alive_ttl_s.has_value());
  EXPECT_EQ(make_faascache_system().name, "FaasCache");
  const auto keepalive = make_keepalive_system(300.0);
  ASSERT_TRUE(keepalive.keep_alive_ttl_s.has_value());
  EXPECT_DOUBLE_EQ(*keepalive.keep_alive_ttl_s, 300.0);
  EXPECT_TRUE(keepalive.eviction_factory()->reject_when_full());
  EXPECT_EQ(make_greedy_match_system().name, "Greedy-Match");
}

TEST_F(BaselinesTest, KeepAliveSystemRejectsWhenFull) {
  const auto spec = make_keepalive_system();
  const auto cost = world_.cost_model();
  // Pool fits one container; the second finished container is rejected.
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_js, 1.0, 0.5),
                             TinyWorld::inv(world_.fn_js, 100.0)});
  const EpisodeSummary s = run_system(spec, world_.functions, world_.catalog,
                                      cost, 200.0, trace);
  EXPECT_GE(s.rejections, 1U);
  EXPECT_EQ(s.evictions, 0U);
}

}  // namespace
}  // namespace mlcr::policies
