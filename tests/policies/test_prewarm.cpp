#include "policies/prewarm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "policies/runner.hpp"
#include "testing/fixtures.hpp"

namespace mlcr::policies {
namespace {

using mlcr::testing::TinyWorld;

TEST(InterArrivalEstimator, NeedsTwoObservations) {
  InterArrivalEstimator est;
  EXPECT_TRUE(std::isinf(est.predicted_next_arrival(0, 10.0)));
  est.observe(0, 1.0);
  EXPECT_TRUE(std::isinf(est.predicted_next_arrival(0, 10.0)));
  est.observe(0, 5.0);
  EXPECT_DOUBLE_EQ(est.predicted_next_arrival(0, 5.0), 9.0);  // gap 4
}

TEST(InterArrivalEstimator, EmaSmoothsGaps) {
  InterArrivalEstimator est(0.5);
  est.observe(0, 0.0);
  est.observe(0, 10.0);  // ema = 10
  est.observe(0, 14.0);  // ema = 0.5*10 + 0.5*4 = 7
  EXPECT_DOUBLE_EQ(est.predicted_next_arrival(0, 14.0), 21.0);
}

TEST(InterArrivalEstimator, ClampsOverduePredictionsToNow) {
  InterArrivalEstimator est;
  est.observe(0, 0.0);
  est.observe(0, 2.0);
  // Predicted next = 4.0, but it is already t=50: imminent.
  EXPECT_DOUBLE_EQ(est.predicted_next_arrival(0, 50.0), 50.0);
}

TEST(PredictiveEviction, EvictsFunctionNeededFurthestInFuture) {
  using containers::Container;
  using containers::ContainerState;
  auto policy = std::make_unique<PredictiveEviction>();
  PredictiveEviction* raw = policy.get();
  containers::WarmPool pool(250.0, std::move(policy));

  auto admit = [&](containers::ContainerId id, containers::FunctionTypeId fn,
                   double arrival, double idle_at) {
    Container c;
    c.id = id;
    c.state = ContainerState::kIdle;
    c.memory_mb = 100.0;
    c.last_function = fn;
    c.last_used_at = arrival;
    c.last_idle_at = idle_at;
    return pool.admit(std::move(c), idle_at);
  };

  // Function 0 arrives every ~2 s (hot); function 1 every ~100 s (cold).
  (void)admit(1, 0, 0.0, 0.5);
  (void)pool.take(1, 1.0);
  (void)admit(1, 0, 2.0, 2.5);
  (void)admit(2, 1, 0.0, 3.0);
  (void)pool.take(2, 50.0);
  (void)admit(2, 1, 100.0, 103.0);
  EXPECT_EQ(raw->estimator().tracked_functions(), 2U);

  // Admitting a third container forces an eviction: the rarely-used
  // function 1's container must go, even though function 0's is older.
  (void)admit(3, 0, 104.0, 104.5);
  EXPECT_EQ(pool.find(2), nullptr);
  EXPECT_NE(pool.find(1), nullptr);
}

TEST(Prewarm, SystemBeatsPlainLruOnSkewedPeriodicWorkload) {
  TinyWorld world;
  // Three function types; the pool fits two containers (400 MB). A is hot
  // (every 10 s, pausing over the eviction moment), B is slow-periodic
  // (every 30 s), C runs once. When C's container is admitted the pool must
  // evict A or B: LRU evicts A (idle longest) although A resumes at t=50;
  // the predictive policy knows A's 10-second cadence and evicts B instead.
  std::vector<sim::Invocation> invs;
  for (const double t : {0.0, 10.0, 20.0, 50.0, 60.0, 70.0})
    invs.push_back(TinyWorld::inv(world.fn_py_flask, t, 0.2));   // A
  for (const double t : {12.0, 42.0, 72.0})
    invs.push_back(TinyWorld::inv(world.fn_js, t, 0.2));         // B
  invs.push_back(TinyWorld::inv(world.fn_py_numpy, 35.0, 0.2));  // C
  const sim::Trace trace{std::move(invs)};

  const double pool_mb = 400.0;  // two TinyWorld containers
  const auto prewarm =
      run_system(make_prewarm_system(), world.functions, world.catalog,
                 world.cost_model(), pool_mb, trace);
  const auto lru = run_system(make_lru_system(), world.functions,
                              world.catalog, world.cost_model(), pool_mb,
                              trace);
  EXPECT_LE(prewarm.cold_starts, lru.cold_starts);
  EXPECT_LT(prewarm.total_latency_s, lru.total_latency_s);
}

TEST(Prewarm, SystemSpecShape) {
  const auto spec = make_prewarm_system();
  EXPECT_EQ(spec.name, "Prewarm");
  EXPECT_FALSE(spec.keep_alive_ttl_s.has_value());
  EXPECT_FALSE(spec.eviction_factory()->reject_when_full());
}

}  // namespace
}  // namespace mlcr::policies
