#include "policies/zygote.hpp"

#include <gtest/gtest.h>

#include "policies/runner.hpp"
#include "util/check.hpp"
#include "testing/fixtures.hpp"

namespace mlcr::policies {
namespace {

using mlcr::testing::TinyWorld;

sim::ClusterEnv make_union_env(const TinyWorld& world,
                               double pool_mb = 4096.0) {
  sim::EnvConfig cfg;
  cfg.pool_capacity_mb = pool_mb;
  cfg.reuse_semantics = sim::ReuseSemantics::kUnion;
  return sim::ClusterEnv(
      world.functions, world.catalog, world.cost_model(), cfg,
      [] { return std::make_unique<containers::LruEviction>(); });
}

TEST(Zygote, ContainerGrowsToServeBothFunctions) {
  TinyWorld world;
  auto env = make_union_env(world);
  // flask -> numpy -> flask: the single container absorbs both runtimes and
  // the third invocation is a free full warm start.
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world.fn_py_numpy, 100.0, 0.5),
                             TinyWorld::inv(world.fn_py_flask, 200.0, 0.5)});
  ZygoteScheduler sched;
  const auto s = run_episode(env, sched, trace);
  EXPECT_EQ(s.cold_starts, 1U);
  EXPECT_EQ(s.warm_l2, 1U) << "numpy was missing on first reuse";
  EXPECT_EQ(s.warm_l3, 1U) << "flask still present after absorbing numpy";
}

TEST(Zygote, UnionReuseKeepsOldPackages) {
  TinyWorld world;
  auto env = make_union_env(world);
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world.fn_py_numpy, 100.0, 0.5),
                             TinyWorld::inv(world.fn_py_numpy, 200.0, 0.5)});
  env.reset(trace);
  (void)env.step(sim::Action::cold());
  const auto idle = env.pool().idle_containers();
  ASSERT_EQ(idle.size(), 1U);
  const containers::ContainerId id = idle[0]->id;
  (void)env.step(sim::Action::reuse(id));
  (void)env.step(sim::Action::reuse(id));
  // After the union reuses the container holds flask AND numpy.
  const containers::Container* c = env.pool().find(id);
  ASSERT_NE(c, nullptr);
  const auto rt = c->image.level(containers::Level::kRuntime);
  EXPECT_EQ(rt.size(), 2U);
}

TEST(Zygote, FullContainmentCostsOnlyInit) {
  TinyWorld world;
  const auto cost = world.cost_model();
  const auto& flask = world.functions.get(world.fn_py_flask);
  // A container that already holds flask + numpy.
  containers::ImageSpec zygote({world.os_a}, {world.lang_py},
                               {world.rt_flask, world.rt_numpy});
  const auto b = cost.union_warm_start(flask, zygote);
  EXPECT_DOUBLE_EQ(b.pull_s, 0.0);
  EXPECT_DOUBLE_EQ(b.install_s, 0.0);
  EXPECT_DOUBLE_EQ(b.runtime_init_s, 0.0);
  EXPECT_GT(b.function_init_s, 0.0);
}

TEST(Zygote, UnionCostPaysOnlyMissingPackages) {
  TinyWorld world;
  const auto cost = world.cost_model();
  const auto& numpy_fn = world.functions.get(world.fn_py_numpy);
  const containers::ImageSpec flask_only({world.os_a}, {world.lang_py},
                                         {world.rt_flask});
  const auto b = cost.union_warm_start(numpy_fn, flask_only);
  const auto& cfg = cost.config();
  // Only numpy (30 MB, 1 package) is missing.
  EXPECT_DOUBLE_EQ(b.pull_s, 30.0 / cfg.pull_bandwidth_mb_s + cfg.pull_rtt_s);
  EXPECT_DOUBLE_EQ(b.install_s, 0.5);
  EXPECT_DOUBLE_EQ(b.runtime_init_s, numpy_fn.runtime_init_s);
}

TEST(Zygote, UnionRequiresMatchingOs) {
  TinyWorld world;
  const auto cost = world.cost_model();
  const auto& other = world.functions.get(world.fn_other_os);
  const containers::ImageSpec os_a_img({world.os_a}, {world.lang_py},
                                       {world.rt_flask});
  EXPECT_THROW((void)cost.union_warm_start(other, os_a_img),
               util::CheckError);
}

TEST(Zygote, SchedulerColdStartsAcrossOsBoundaries) {
  TinyWorld world;
  auto env = make_union_env(world);
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world.fn_other_os, 100.0, 0.5)});
  ZygoteScheduler sched;
  const auto s = run_episode(env, sched, trace);
  EXPECT_EQ(s.cold_starts, 2U);
}

TEST(Zygote, GrowingFootprintPressuresTheWarmPool) {
  TinyWorld world;
  // Tight pool: the growing zygote footprint must stay within capacity.
  auto env = make_union_env(world, 230.0);
  std::vector<sim::Invocation> invs;
  double t = 0.0;
  for (int i = 0; i < 12; ++i) {
    invs.push_back(TinyWorld::inv(
        i % 2 ? world.fn_py_flask : world.fn_py_numpy, t, 0.3));
    t += 40.0;
  }
  const sim::Trace trace{std::move(invs)};
  ZygoteScheduler sched;
  const auto s = run_episode(env, sched, trace);
  EXPECT_LE(s.peak_pool_mb, 230.0 + 1e-9);
  EXPECT_EQ(s.invocations, 12U);
}

TEST(Zygote, SystemSpecUsesUnionSemantics) {
  const auto spec = make_zygote_system();
  EXPECT_EQ(spec.name, "Zygote");
  EXPECT_EQ(spec.reuse_semantics, sim::ReuseSemantics::kUnion);
}

TEST(Zygote, BeatsSameConfigOnNonRepeatingFamilies) {
  TinyWorld world;
  // Alternating flask/numpy with a huge pool: same-config reuse warms only
  // same-type repeats; the zygote serves both types from one container.
  std::vector<sim::Invocation> invs;
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    invs.push_back(TinyWorld::inv(
        i % 2 ? world.fn_py_flask : world.fn_py_numpy, t, 0.3));
    t += 50.0;
  }
  const sim::Trace trace{std::move(invs)};
  const auto zygote = run_system(make_zygote_system(), world.functions,
                                 world.catalog, world.cost_model(), 4096.0,
                                 trace);
  const auto lru = run_system(make_lru_system(), world.functions,
                              world.catalog, world.cost_model(), 4096.0,
                              trace);
  EXPECT_LT(zygote.total_latency_s, lru.total_latency_s);
  EXPECT_LT(zygote.cold_starts, lru.cold_starts);
}

}  // namespace
}  // namespace mlcr::policies
