#include "policies/oracle.hpp"

#include <gtest/gtest.h>

#include "policies/runner.hpp"
#include "testing/fixtures.hpp"
#include "util/check.hpp"

namespace mlcr::policies {
namespace {

using mlcr::testing::TinyWorld;

class OracleTest : public ::testing::Test {
 protected:
  TinyWorld world_;

  sim::EnvConfig env_config(double pool_mb = 4096.0) const {
    sim::EnvConfig cfg;
    cfg.pool_capacity_mb = pool_mb;
    return cfg;
  }

  static sim::EvictionPolicyFactory lru() {
    return [] { return std::make_unique<containers::LruEviction>(); };
  }
};

TEST_F(OracleTest, OptimalIsNoWorseThanAnyBaseline) {
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 50.0, 0.5),
                             TinyWorld::inv(world_.fn_js, 100.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 150.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 200.0, 0.5)});
  const auto oracle = exhaustive_best_plan(
      world_.functions, world_.catalog, world_.cost_model(), env_config(),
      lru(), trace);

  for (const auto& make :
       {make_lru_system, make_faascache_system, make_greedy_match_system}) {
    const auto spec = make();
    const auto summary =
        run_system(spec, world_.functions, world_.catalog,
                   world_.cost_model(), 4096.0, trace);
    EXPECT_LE(oracle.total_latency_s, summary.total_latency_s + 1e-9)
        << "oracle beaten by " << spec.name;
  }
}

TEST_F(OracleTest, PlanReplayReproducesOracleCost) {
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_numpy, 50.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 100.0, 0.5)});
  const auto oracle = exhaustive_best_plan(
      world_.functions, world_.catalog, world_.cost_model(), env_config(),
      lru(), trace);

  auto env = world_.make_env();
  PlanScheduler plan(oracle.actions);
  const auto summary = run_episode(env, plan, trace);
  EXPECT_NEAR(summary.total_latency_s, oracle.total_latency_s, 1e-9);
}

TEST_F(OracleTest, AllColdWhenNothingCanMatch) {
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 1000.0),
                             TinyWorld::inv(world_.fn_py_flask, 1.0, 1000.0)});
  // Both overlap, so the second cannot reuse; optimal = both cold.
  const auto oracle = exhaustive_best_plan(
      world_.functions, world_.catalog, world_.cost_model(), env_config(),
      lru(), trace);
  const auto& fn = world_.functions.get(world_.fn_py_flask);
  const double cold = world_.cost_model().cold_start(fn).total();
  EXPECT_NEAR(oracle.total_latency_s, 2.0 * cold, 1e-9);
}

TEST_F(OracleTest, PrefersWarmStartWhenAvailable) {
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 100.0, 0.5)});
  const auto oracle = exhaustive_best_plan(
      world_.functions, world_.catalog, world_.cost_model(), env_config(),
      lru(), trace);
  ASSERT_EQ(oracle.actions.size(), 2U);
  EXPECT_EQ(oracle.actions[0].kind, sim::Action::Kind::kColdStart);
  EXPECT_EQ(oracle.actions[1].kind, sim::Action::Kind::kReuse);
}

TEST_F(OracleTest, GreedyCanBeSuboptimal) {
  // Paper Fig. 2 in miniature: greedy repacks the only warm container for a
  // partial match, destroying the full match a later invocation needed.
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_numpy, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 50.0, 200.0),
                             TinyWorld::inv(world_.fn_py_numpy, 100.0, 0.5)});
  const auto oracle = exhaustive_best_plan(
      world_.functions, world_.catalog, world_.cost_model(), env_config(),
      lru(), trace);
  const auto greedy =
      run_system(make_greedy_match_system(), world_.functions, world_.catalog,
                 world_.cost_model(), 4096.0, trace);
  EXPECT_LT(oracle.total_latency_s, greedy.total_latency_s - 1e-9)
      << "this instance is constructed so greedy is strictly suboptimal";
}

TEST_F(OracleTest, RefusesOversizedTraces) {
  std::vector<sim::Invocation> invs;
  for (int i = 0; i < 12; ++i)
    invs.push_back(TinyWorld::inv(world_.fn_py_flask, i * 10.0, 0.5));
  const sim::Trace trace{std::move(invs)};
  EXPECT_THROW((void)exhaustive_best_plan(world_.functions, world_.catalog,
                                          world_.cost_model(), env_config(),
                                          lru(), trace, 10),
               util::CheckError);
}

TEST_F(OracleTest, PlanSchedulerThrowsWhenExhausted) {
  PlanScheduler plan({sim::Action::cold()});
  auto env = world_.make_env();
  const sim::Trace trace =
      TinyWorld::make_trace({TinyWorld::inv(world_.fn_py_flask, 0.0, 0.5),
                             TinyWorld::inv(world_.fn_py_flask, 1.0, 0.5)});
  EXPECT_THROW((void)run_episode(env, plan, trace), util::CheckError);
}

}  // namespace
}  // namespace mlcr::policies
