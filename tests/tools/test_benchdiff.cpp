// Fixture tests for benchdiff: the checked-in baseline/candidate pairs
// under tools/benchdiff/fixtures/ pin the comparator's verdicts — an
// improved candidate passes, a slowed-down candidate trips the regression
// gate (and only the gated metrics trip it), schema violations are
// reported per input, and the threshold is honored.
#include "tools/benchdiff/diff.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#ifndef BENCHDIFF_FIXTURE_DIR
#error "BENCHDIFF_FIXTURE_DIR must point at tools/benchdiff/fixtures"
#endif

namespace mlcr::benchdiff {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(BENCHDIFF_FIXTURE_DIR) + "/" + name;
  std::ifstream is(path);
  EXPECT_TRUE(is.is_open()) << "cannot open fixture " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

const MetricDelta* find_delta(const DiffReport& report,
                              const std::string& name) {
  for (const MetricDelta& d : report.deltas)
    if (d.name == name) return &d;
  return nullptr;
}

TEST(BenchDiff, ImprovedCandidatePasses) {
  const auto report = diff_bench_json(read_fixture("baseline.json"),
                                      read_fixture("candidate_ok.json"), {});
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.errors.empty());
  EXPECT_FALSE(report.regression);
  EXPECT_EQ(report.bench, "fleet_throughput");

  const MetricDelta* eps = find_delta(report, "events_per_sec");
  ASSERT_NE(eps, nullptr);
  EXPECT_GT(eps->change, 0.0);
  EXPECT_FALSE(eps->regressed);
  const MetricDelta* wall = find_delta(report, "wall_ms");
  ASSERT_NE(wall, nullptr);
  EXPECT_GT(wall->change, 0.0);  // lower wall_ms is an improvement
}

TEST(BenchDiff, RegressedCandidateTripsGate) {
  const auto report =
      diff_bench_json(read_fixture("baseline.json"),
                      read_fixture("candidate_regressed.json"), {});
  EXPECT_TRUE(report.ok());  // the comparison itself ran fine
  EXPECT_TRUE(report.regression);

  const MetricDelta* eps = find_delta(report, "events_per_sec");
  ASSERT_NE(eps, nullptr);
  EXPECT_LT(eps->change, 0.0);
  EXPECT_TRUE(eps->regressed);
  // Informational metrics never trip the gate, even when they collapse.
  const MetricDelta* speedup =
      find_delta(report, "metrics.speedup_vs_lockstep");
  ASSERT_NE(speedup, nullptr);
  EXPECT_LT(speedup->change, 0.0);
  EXPECT_FALSE(speedup->regressed);
}

TEST(BenchDiff, ThresholdIsHonored) {
  DiffOptions loose;
  // The regressed fixture is ~54% down on throughput and ~116% up on wall
  // time; a gate looser than both must pass it.
  loose.threshold = 1.5;
  const auto report =
      diff_bench_json(read_fixture("baseline.json"),
                      read_fixture("candidate_regressed.json"), loose);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.regression);
}

TEST(BenchDiff, SchemaViolationsAreReportedPerInput) {
  const auto report = diff_bench_json("{\"bench\": \"x\"}",
                                      read_fixture("baseline.json"), {});
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
  EXPECT_EQ(report.errors.front().rfind("baseline: ", 0), 0U)
      << report.errors.front();
}

TEST(BenchDiff, BenchNameMismatchIsAnError) {
  std::string other = read_fixture("baseline.json");
  const auto pos = other.find("fleet_throughput");
  ASSERT_NE(pos, std::string::npos);
  other.replace(pos, std::string("fleet_throughput").size(), "other_bench");
  const auto report =
      diff_bench_json(read_fixture("baseline.json"), other, {});
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.errors.empty());
}

TEST(BenchDiff, IdenticalInputsAreAWash) {
  const std::string base = read_fixture("baseline.json");
  const auto report = diff_bench_json(base, base, {});
  EXPECT_TRUE(report.ok());
  for (const MetricDelta& d : report.deltas) {
    EXPECT_EQ(d.change, 0.0) << d.name;
    EXPECT_FALSE(d.regressed) << d.name;
  }
  EXPECT_NE(format_report(report).find("RESULT: ok"), std::string::npos);
}

}  // namespace
}  // namespace mlcr::benchdiff
