// Lock-discipline checker tests: the declared table, the fact extractor's
// blind spots (macros, raw strings, defer_lock), and the cross-check that
// the static table orders ranks exactly like the runtime validator
// (util::lock_ranks). The fixture files pin the rule firings themselves;
// these tests pin the analysis machinery.
#include "tools/simlint/locks.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "tools/simlint/lint.hpp"
#include "tools/simlint/token.hpp"
#include "util/lock_audit.hpp"

namespace mlcr::simlint {
namespace {

std::vector<Violation> run(const std::string& source) {
  return check_lock_discipline(tokenize(source), "src/serve/unit.cpp");
}

std::set<std::string> rule_set(const std::vector<Violation>& violations) {
  std::set<std::string> out;
  for (const Violation& v : violations) out.insert(v.rule);
  return out;
}

TEST(SimlintLocks, DeclaredTableMatchesTheRuntimeRankOrder) {
  const std::vector<MutexRankInfo>& table = lock_order_table();
  ASSERT_EQ(table.size(), 5U);
  EXPECT_EQ(table[0].key, "shard_mutexes_");
  EXPECT_TRUE(table[0].indexed);
  EXPECT_FALSE(table[0].leaf);
  EXPECT_EQ(table[1].key, "inference_mutex_");
  EXPECT_FALSE(table[1].indexed);
  EXPECT_EQ(table[2].key, "Shard::mutex");
  EXPECT_TRUE(table[2].leaf);
  EXPECT_EQ(table[3].key, "telemetry_mutex_");
  EXPECT_FALSE(table[3].indexed);
  EXPECT_FALSE(table[3].leaf);
  EXPECT_EQ(table[4].key, "slot_mutex_");
  EXPECT_FALSE(table[4].indexed);
  EXPECT_TRUE(table[4].leaf);
  // Static ranks ascend in the same order as the runtime rank bands
  // (service shards < inference < index shards < telemetry < registry
  // slots) — the two halves of the concurrency contract must never drift
  // apart.
  for (std::size_t i = 1; i < table.size(); ++i)
    EXPECT_LT(table[i - 1].rank, table[i].rank) << table[i].key;
  EXPECT_LT(util::lock_ranks::service_shard(1'000),
            util::lock_ranks::kInference);
  EXPECT_LT(util::lock_ranks::kInference, util::lock_ranks::index_shard(0));
  EXPECT_LT(util::lock_ranks::index_shard(999'999),
            util::lock_ranks::kTelemetry);
  EXPECT_LT(util::lock_ranks::kTelemetry, util::lock_ranks::registry_slot(0));
}

TEST(SimlintLocks, MacroBodiesCarryNoAcquisitionFacts) {
  const auto violations = run(
      "#define BAD(i)                                   \\\n"
      "  std::lock_guard a(inference_mutex_);           \\\n"
      "  std::lock_guard b(*shard_mutexes_[i])\n"
      "void fine() { std::lock_guard only(inference_mutex_); }\n");
  EXPECT_TRUE(violations.empty());
}

TEST(SimlintLocks, RawStringsAndCommentsCarryNoAcquisitionFacts) {
  const auto violations = run(
      "const char* doc = R\"(\n"
      "  std::lock_guard a(inference_mutex_);\n"
      "  std::lock_guard b(*shard_mutexes_[0]);\n"
      ")\";\n"
      "// inference_mutex_.lock();\n");
  EXPECT_TRUE(violations.empty());
}

TEST(SimlintLocks, DeferLockAcquiresNothing) {
  const auto violations = run(
      "void f() {\n"
      "  std::unique_lock a(inference_mutex_, std::defer_lock);\n"
      "  std::lock_guard b(*shard_mutexes_[0]);\n"
      "}\n");
  EXPECT_TRUE(violations.empty());
}

TEST(SimlintLocks, ScopedLockArgumentsAreSequentialAcquisitions) {
  const auto doubled = run(
      "void f() { std::scoped_lock l(inference_mutex_, inference_mutex_); }\n");
  EXPECT_EQ(rule_set(doubled), std::set<std::string>{"lock-double"});
  const auto ordered = run(
      "void f() {\n"
      "  std::scoped_lock l(*shard_mutexes_[0], inference_mutex_);\n"
      "}\n");
  EXPECT_TRUE(ordered.empty());
}

TEST(SimlintLocks, GuardsReleaseAtScopeExitAcrossFunctions) {
  // The same mutex in two sibling scopes / functions is not a double.
  const auto violations = run(
      "void f() {\n"
      "  { std::lock_guard a(inference_mutex_); }\n"
      "  { std::lock_guard b(inference_mutex_); }\n"
      "}\n"
      "void g() { std::lock_guard c(inference_mutex_); }\n");
  EXPECT_TRUE(violations.empty());
}

TEST(SimlintLocks, SortUniqueEvidenceIsPerFunction) {
  // sort+unique in an earlier function must not excuse a later loop.
  const auto violations = run(
      "void good(std::vector<std::size_t> shards) {\n"
      "  std::sort(shards.begin(), shards.end());\n"
      "  shards.erase(std::unique(shards.begin(), shards.end()),\n"
      "               shards.end());\n"
      "  std::vector<std::unique_lock<std::mutex>> locks;\n"
      "  for (const std::size_t s : shards)\n"
      "    locks.emplace_back(*shard_mutexes_[s]);\n"
      "}\n"
      "void bad(const std::vector<std::size_t>& shards) {\n"
      "  std::vector<std::unique_lock<std::mutex>> locks;\n"
      "  for (const std::size_t s : shards)\n"
      "    locks.emplace_back(*shard_mutexes_[s]);\n"
      "}\n");
  ASSERT_EQ(violations.size(), 1U);
  EXPECT_EQ(violations[0].rule, "lock-loop");
  EXPECT_EQ(violations[0].line, 12U);
}

TEST(SimlintLocks, UnrankedMutexesGetDoubleAndBareChecksOnly) {
  const auto doubled = run(
      "void f() {\n"
      "  std::lock_guard a(queue_mutex_);\n"
      "  std::lock_guard b(queue_mutex_);\n"
      "}\n");
  EXPECT_EQ(rule_set(doubled), std::set<std::string>{"lock-double"});
  const auto bare = run("void f() { queue_mutex_.try_lock(); }\n");
  EXPECT_EQ(rule_set(bare), std::set<std::string>{"bare-lock"});
  // Two different unranked mutexes carry no order relation.
  const auto unordered = run(
      "void f() {\n"
      "  std::lock_guard a(queue_mutex_);\n"
      "  std::lock_guard b(stats_mutex_);\n"
      "}\n");
  EXPECT_TRUE(unordered.empty());
}

TEST(SimlintLocks, LockRuleSuppressionsFlowThroughLintSource) {
  const std::string source =
      "void f() {\n"
      "  // justified: rollback path re-enters — simlint:allow(lock-double)\n"
      "  std::lock_guard a(queue_mutex_);\n"
      "  std::lock_guard b(queue_mutex_);\n"
      "}\n";
  // The suppression sits on the line above the flagged acquisition... but
  // the violation is reported on line 4, two below it: still a violation.
  EXPECT_EQ(lint_source(source, "src/serve/unit.cpp").size(), 2U);
  const std::string on_line =
      "void f() {\n"
      "  std::lock_guard a(queue_mutex_);\n"
      "  std::lock_guard b(queue_mutex_);  // simlint:allow(lock-double)\n"
      "}\n";
  EXPECT_TRUE(lint_source(on_line, "src/serve/unit.cpp").empty());
}

}  // namespace
}  // namespace mlcr::simlint
