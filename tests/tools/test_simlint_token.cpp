// Tokenizer tests: the lexical hazards that defeat line-regex scanning —
// raw strings, line continuations, block comments, directives — must not
// confuse the token stream the lock-fact extractor consumes.
#include "tools/simlint/token.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mlcr::simlint {
namespace {

std::vector<std::string> idents(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  for (const Token& t : toks)
    if (t.kind == Token::Kind::kIdent) out.push_back(t.text);
  return out;
}

bool has_ident(const std::vector<Token>& toks, const std::string& name) {
  for (const Token& t : toks)
    if (t.kind == Token::Kind::kIdent && t.text == name) return true;
  return false;
}

TEST(SimlintToken, BasicStreamWithLinesAndCompoundPunct) {
  const auto toks = tokenize("int x = 1;\nstd::mutex* m = obj->mu;\n");
  ASSERT_GE(toks.size(), 10U);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].kind, Token::Kind::kIdent);
  EXPECT_EQ(toks[0].line, 1U);
  EXPECT_EQ(toks[3].text, "1");
  EXPECT_EQ(toks[3].kind, Token::Kind::kNumber);
  // `::` and `->` stay whole so member chains are readable.
  bool saw_scope = false;
  bool saw_arrow = false;
  for (const Token& t : toks) {
    if (t.text == "::") saw_scope = true;
    if (t.text == "->") saw_arrow = true;
    if (t.line == 2U) {
      EXPECT_NE(t.text, "int");
    }
  }
  EXPECT_TRUE(saw_scope);
  EXPECT_TRUE(saw_arrow);
}

TEST(SimlintToken, CommentsAreDroppedAndDoNotNest) {
  const auto toks = tokenize("// lock_guard in a line comment\n"
                             "/* lock_guard /* inner */ int after;\n");
  EXPECT_FALSE(has_ident(toks, "lock_guard"));
  // Block comments end at the FIRST */ (C++ semantics, no nesting): the
  // code after it is live again.
  EXPECT_TRUE(has_ident(toks, "after"));
  EXPECT_FALSE(has_ident(toks, "inner"));
}

TEST(SimlintToken, StringAndCharLiteralsBecomeOpaqueTokens) {
  const auto toks = tokenize("const char* s = \"lock_guard \\\" still\";\n"
                             "char c = '{';\n");
  EXPECT_FALSE(has_ident(toks, "lock_guard"));
  EXPECT_FALSE(has_ident(toks, "still"));
  std::size_t strings = 0;
  std::size_t chars = 0;
  std::size_t braces = 0;
  for (const Token& t : toks) {
    if (t.kind == Token::Kind::kString) ++strings;
    if (t.kind == Token::Kind::kChar) ++chars;
    if (t.kind == Token::Kind::kPunct && t.text == "{") ++braces;
  }
  EXPECT_EQ(strings, 1U);
  EXPECT_EQ(chars, 1U);
  // The '{' inside the char literal must not look like a scope.
  EXPECT_EQ(braces, 0U);
}

TEST(SimlintToken, RawStringsMatchByDelimiterAndTrackLines) {
  const std::string src =
      "auto s = R\"x(std::lock_guard lock(mu_); )\" )x\";\n"
      "int next_line = 0;\n";
  const auto toks = tokenize(src);
  EXPECT_FALSE(has_ident(toks, "lock_guard"));
  std::size_t raws = 0;
  for (const Token& t : toks)
    if (t.kind == Token::Kind::kRawString) ++raws;
  EXPECT_EQ(raws, 1U);
  // A plain )" inside the delimited raw string does not end it.
  for (const Token& t : toks) {
    if (t.kind == Token::Kind::kIdent && t.text == "next_line") {
      EXPECT_EQ(t.line, 2U);
    }
  }
}

TEST(SimlintToken, MultiLineRawStringKeepsLineNumbers) {
  const auto toks = tokenize("auto s = R\"(line one\nline two\n)\";\n"
                             "int after = 0;\n");
  EXPECT_FALSE(has_ident(toks, "line"));
  for (const Token& t : toks) {
    if (t.kind == Token::Kind::kIdent && t.text == "after") {
      EXPECT_EQ(t.line, 4U);
    }
  }
}

TEST(SimlintToken, LineContinuationsSpliceEverywhereButRawStrings) {
  // Spliced identifier: "loc\<newline>k_guard" is one identifier.
  const auto spliced = tokenize("loc\\\nk_guard x;\n");
  EXPECT_TRUE(has_ident(spliced, "lock_guard"));
  // A spliced // comment swallows the next physical line entirely.
  const auto comment = tokenize("// swallowed \\\nint hidden = 1;\nint live;\n");
  EXPECT_FALSE(has_ident(comment, "hidden"));
  EXPECT_TRUE(has_ident(comment, "live"));
  // Tokens after a splice still carry physical line numbers.
  for (const Token& t : comment) {
    if (t.kind == Token::Kind::kIdent && t.text == "live") {
      EXPECT_EQ(t.line, 3U);
    }
  }
}

TEST(SimlintToken, DirectiveTokensAreFlagged) {
  const auto toks = tokenize("#define LOCK(m) std::lock_guard g(m)\n"
                             "int code = 0;\n"
                             "#include \"serve/service.hpp\"\n");
  bool directive_guard = false;
  for (const Token& t : toks) {
    if (t.text == "lock_guard") {
      EXPECT_TRUE(t.in_directive);
      directive_guard = true;
    }
    if (t.text == "code") {
      EXPECT_FALSE(t.in_directive);
    }
    if (t.kind == Token::Kind::kString) {
      EXPECT_TRUE(t.in_directive);  // the include target
    }
  }
  EXPECT_TRUE(directive_guard);
  // A multi-line macro (spliced) keeps the directive flag across the splice.
  const auto multi = tokenize("#define TWO(m) \\\n  std::lock_guard g(m)\n"
                              "int outside;\n");
  for (const Token& t : multi) {
    if (t.text == "lock_guard") {
      EXPECT_TRUE(t.in_directive);
    }
    if (t.text == "outside") {
      EXPECT_FALSE(t.in_directive);
    }
  }
}

TEST(SimlintToken, NumbersWithSeparatorsAndUnterminatedLiteralsRecover) {
  const auto toks = tokenize("auto r = 1'000'000 + 0x1F;\n"
                             "const char* broken = \"no closing quote\n"
                             "int survivor = 2;\n");
  bool saw_big = false;
  for (const Token& t : toks)
    if (t.kind == Token::Kind::kNumber && t.text == "1'000'000") saw_big = true;
  EXPECT_TRUE(saw_big);
  // Unterminated string recovers at end of line; later code still lexes.
  EXPECT_TRUE(has_ident(toks, "survivor"));
  EXPECT_EQ(idents(toks).back(), "survivor");
}

}  // namespace
}  // namespace mlcr::simlint
