// Fixture tests for simlint: every rule is pinned by a fixture under
// tools/simlint/fixtures/, where each expected firing is marked with
// `// VIOLATION <rule-id>` on the exact line the checker must report.
// The tests parse those markers and require the lint output to match the
// marker set exactly — no missed firings, no extras.
#include "tools/simlint/lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/schema_check.hpp"

#ifndef SIMLINT_FIXTURE_DIR
#error "SIMLINT_FIXTURE_DIR must point at tools/simlint/fixtures"
#endif

namespace mlcr::simlint {
namespace {

using Marker = std::pair<std::size_t, std::string>;  // (line, rule id)

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(SIMLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream is(path);
  EXPECT_TRUE(is.is_open()) << "cannot open fixture " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Parse `// VIOLATION <rule-id>` markers; the marker's line number is the
/// line the checker must report.
std::set<Marker> expected_markers(const std::string& source) {
  static const std::regex kMarker(R"(//\s*VIOLATION\s+([A-Za-z0-9-]+))");
  std::set<Marker> out;
  std::istringstream is(source);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::smatch m;
    if (std::regex_search(line, m, kMarker)) out.insert({lineno, m[1].str()});
  }
  return out;
}

std::set<Marker> as_markers(const std::vector<Violation>& violations) {
  std::set<Marker> out;
  for (const Violation& v : violations) out.insert({v.line, v.rule});
  return out;
}

std::string describe(const std::set<Marker>& markers) {
  std::ostringstream ss;
  for (const auto& [line, rule] : markers) ss << "  " << line << ": " << rule
                                              << "\n";
  return ss.str();
}

struct FixtureCase {
  const char* file;     ///< file name under tools/simlint/fixtures/
  const char* pretend;  ///< repo-relative path the fixture is linted as
};

const FixtureCase kFixtureCases[] = {
    {"banned_random.cpp", "src/sim/banned_random.cpp"},
    {"banned_clock.cpp", "src/sim/banned_clock.cpp"},
    {"banned_getenv.cpp", "src/sim/banned_getenv.cpp"},
    {"pointer_key.cpp", "src/sim/pointer_key.cpp"},
    {"unordered_iteration.cpp", "src/sim/unordered_iteration.cpp"},
    {"uninit_member.cpp", "src/containers/uninit_member.cpp"},
    {"missing_transition_check.cpp", "src/sim/env.cpp"},
    {"obs_wall_time.cpp", "src/obs/obs_wall_time.cpp"},
    {"serve_clock_injection.cpp", "src/serve/service_like.cpp"},
    {"obs_concurrent_registry.cpp", "src/serve/metrics_misuse.cpp"},
    {"router_route_check.cpp", "src/fleet/router.cpp"},
    {"fault_rng_stream.cpp", "src/faults/fault_rng_stream.cpp"},
    {"fault_domain_stream.cpp", "src/faults/fault_domain_stream.cpp"},
    {"lock_discipline.cpp", "src/serve/lock_discipline.cpp"},
    {"lock_clean.cpp", "src/serve/lock_clean.cpp"},
    {"unused_suppression.cpp", "src/serve/unused_suppression.cpp"},
    {"clean.cpp", "src/sim/clean.cpp"},
};

TEST(Simlint, EveryFixtureMarkerFiresExactlyOnItsLine) {
  for (const FixtureCase& fc : kFixtureCases) {
    const std::string source = read_fixture(fc.file);
    ASSERT_FALSE(source.empty()) << fc.file;
    const auto expected = expected_markers(source);
    const auto actual = as_markers(lint_source(source, fc.pretend));
    EXPECT_EQ(expected, actual)
        << fc.file << " linted as " << fc.pretend << "\nexpected:\n"
        << describe(expected) << "actual:\n"
        << describe(actual);
  }
}

TEST(Simlint, PathScopedRulesAreQuietOutsideTheirScope) {
  // Wall-clock reads are legal inside src/util (that is where a timing
  // interface would live) and getenv is legal outside simulator code.
  const std::string clock_src = read_fixture("banned_clock.cpp");
  EXPECT_TRUE(lint_source(clock_src, "src/util/wallclock.cpp").empty());
  const std::string getenv_src = read_fixture("banned_getenv.cpp");
  EXPECT_TRUE(lint_source(getenv_src, "bench/banned_getenv.cpp").empty());
  // Wall-time stamping is legal in bench self-profiling code (common.hpp
  // calls util::wall_now_us); the obs rule is scoped to src/obs only.
  const std::string obs_src = read_fixture("obs_wall_time.cpp");
  EXPECT_TRUE(lint_source(obs_src, "bench/obs_wall_time.cpp").empty());
  // route() definitions outside fleet/router.cpp are someone else's
  // interface; the router rule keys on the file, not the method name.
  const std::string router_src = read_fixture("router_route_check.cpp");
  EXPECT_TRUE(lint_source(router_src, "src/policies/router_like.cpp").empty());
  // Wall-time reads are legal in the two serve allowed zones — the WallClock
  // implementation itself and src/util — and outside src/ entirely (bench
  // code stamps wall time for its own tables).
  const std::string serve_src = read_fixture("serve_clock_injection.cpp");
  EXPECT_TRUE(lint_source(serve_src, "src/serve/clock.cpp").empty());
  EXPECT_TRUE(lint_source(serve_src, "src/util/wall_clock.cpp").empty());
  EXPECT_TRUE(lint_source(serve_src, "bench/serve_throughput.cpp").empty());
  // ...and the rule covers all service/simulation logic, not just src/serve.
  EXPECT_FALSE(lint_source(serve_src, "src/fleet/serve_like.cpp").empty());
  // The raw obs types are legal inside the telemetry facade itself (the
  // one place that serialises them) and everywhere outside src/serve.
  const std::string obs_reg_src = read_fixture("obs_concurrent_registry.cpp");
  EXPECT_TRUE(lint_source(obs_reg_src, "src/serve/telemetry.cpp").empty());
  EXPECT_TRUE(lint_source(obs_reg_src, "src/fleet/metrics_misuse.cpp").empty());
  // Literal-seed Rng construction is legal outside fault-handling code
  // (benches and tests seed their own streams); the rule is scoped to
  // src/faults and src/fleet.
  const std::string fault_src = read_fixture("fault_rng_stream.cpp");
  EXPECT_TRUE(lint_source(fault_src, "src/core/fault_rng_stream.cpp").empty());
  // And also fires under src/fleet, the other half of its scope.
  EXPECT_FALSE(
      lint_source(fault_src, "src/fleet/fault_rng_stream.cpp").empty());
  // Same scoping for the ad-hoc-generator rule: tests and benches may
  // default-construct an Rng, fault-handling code may not.
  const std::string domain_src = read_fixture("fault_domain_stream.cpp");
  EXPECT_TRUE(
      lint_source(domain_src, "src/core/fault_domain_stream.cpp").empty());
  EXPECT_TRUE(
      lint_source(domain_src, "tests/faults/fault_domain_stream.cpp").empty());
  EXPECT_FALSE(
      lint_source(domain_src, "src/fleet/fault_domain_stream.cpp").empty());
}

TEST(Simlint, CleanFixtureIsQuietUnderEveryScope) {
  const std::string source = read_fixture("clean.cpp");
  for (const char* pretend :
       {"src/sim/clean.cpp", "src/containers/clean.cpp", "src/util/clean.cpp",
        "src/serve/clean.cpp",
        "bench/clean.cpp", "tests/sim/clean.cpp"}) {
    const auto violations = lint_source(source, pretend);
    EXPECT_TRUE(violations.empty())
        << "clean.cpp fired under " << pretend << ":\n"
        << describe(as_markers(violations));
  }
}

TEST(Simlint, EveryRegisteredRuleIsPinnedByAFixture) {
  std::set<std::string> pinned;
  for (const FixtureCase& fc : kFixtureCases)
    for (const auto& [line, rule] : expected_markers(read_fixture(fc.file)))
      pinned.insert(rule);
  for (const RuleInfo& rule : rules())
    EXPECT_TRUE(pinned.count(rule.id) == 1)
        << "rule '" << rule.id << "' has no fixture marker pinning it";
  // And no fixture pins a rule that does not exist (marker typo guard).
  std::set<std::string> registered;
  for (const RuleInfo& rule : rules()) registered.insert(rule.id);
  for (const std::string& rule : pinned)
    EXPECT_TRUE(registered.count(rule) == 1)
        << "fixture marker names unknown rule '" << rule << "'";
}

TEST(Simlint, LineAndFileSuppressionsSilenceARule) {
  const std::string bare = "int f() { return rand() % 3; }\n";
  EXPECT_EQ(lint_source(bare, "src/sim/x.cpp").size(), 1U);

  const std::string line_allow =
      "int f() { return rand() % 3; }  // simlint:allow(banned-random)\n";
  EXPECT_TRUE(lint_source(line_allow, "src/sim/x.cpp").empty());

  const std::string prev_line_allow =
      "// simlint:allow(banned-random) justified: fixture\n"
      "int f() { return rand() % 3; }\n";
  EXPECT_TRUE(lint_source(prev_line_allow, "src/sim/x.cpp").empty());

  const std::string file_allow =
      "// simlint:allow-file(banned-random)\n"
      "int f() { return rand() % 3; }\n"
      "int g() { return rand() % 5; }\n";
  EXPECT_TRUE(lint_source(file_allow, "src/sim/x.cpp").empty());

  // A suppression for one rule must not silence another — and the mismatch
  // is itself an error: the banned-clock allow suppresses nothing here.
  const std::string wrong_allow =
      "int f() { return rand() % 3; }  // simlint:allow(banned-clock)\n";
  const auto wrong = lint_source(wrong_allow, "src/sim/x.cpp");
  ASSERT_EQ(wrong.size(), 2U);
  EXPECT_EQ(wrong[0].rule, "banned-random");
  EXPECT_EQ(wrong[1].rule, "unused-suppression");

  // Unused-suppression violations cannot themselves be suppressed.
  const std::string meta_allow =
      "// simlint:allow(banned-clock)  // simlint:allow(unused-suppression)\n";
  EXPECT_FALSE(lint_source(meta_allow, "src/sim/x.cpp").empty());

  // An allow spelled inside a string literal (e.g. a lint test's own source
  // text) is not a suppression: it neither silences the rule on the next
  // line nor counts as unused.
  const std::string in_string =
      "const char* kDoc = \"x  // simlint:allow(banned-random)\";\n"
      "int f() { return rand() % 3; }\n";
  const auto stringy = lint_source(in_string, "src/sim/x.cpp");
  ASSERT_EQ(stringy.size(), 1U);
  EXPECT_EQ(stringy[0].rule, "banned-random");
}

TEST(Simlint, PairedHeaderMembersFeedUnorderedIterationRule) {
  const std::string header =
      "#include <unordered_map>\n"
      "class Stats {\n"
      " public:\n"
      "  double sum() const;\n"
      " private:\n"
      "  std::unordered_map<int, double> totals_;\n"
      "};\n";
  const std::string source =
      "double Stats::sum() const {\n"
      "  double s = 0.0;\n"
      "  for (const auto& [k, v] : totals_) s += v;\n"
      "  return s;\n"
      "}\n";
  // Without the header the member's type is unknown -> silent.
  EXPECT_TRUE(lint_source(source, "src/sim/stats.cpp").empty());
  // With the paired header the iteration is recognised as unordered.
  const auto violations = lint_source(source, "src/sim/stats.cpp", header);
  ASSERT_EQ(violations.size(), 1U);
  EXPECT_EQ(violations[0].rule, "unordered-iteration");
  EXPECT_EQ(violations[0].line, 3U);
}

TEST(Simlint, JsonOutputSatisfiesTheSimlintSchema) {
  // The exact JSON --json writes (main.cpp self-validates the same way
  // before writing) — pin it against the obs schema checker here so a
  // serializer change that breaks the schema fails in unit tests, not CI.
  const std::string empty_doc = violations_to_json({});
  EXPECT_TRUE(obs::check_simlint_json(empty_doc).empty()) << empty_doc;

  const std::string source =
      "int f() { return rand() % 3; }  // path: \"quoted\\here\"\n";
  const std::string doc =
      violations_to_json(lint_source(source, "src/sim/x.cpp"));
  const auto errors = obs::check_simlint_json(doc);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? doc : errors[0]);
  EXPECT_NE(doc.find("\"rule\":\"banned-random\""), std::string::npos) << doc;
}

TEST(Simlint, CommentsAndStringsNeverFire) {
  const std::string source =
      "// rand() and std::random_device in a comment\n"
      "/* system_clock::now() in a block comment */\n"
      "const char* kDoc = \"call getenv(\\\"X\\\") and rand()\";\n"
      "const char* kRaw = R\"(std::random_device)\";\n";
  EXPECT_TRUE(lint_source(source, "src/sim/docs.cpp").empty());
}

}  // namespace
}  // namespace mlcr::simlint
