// Layering checker tests: the fixture trees under fixtures/layers_bad and
// fixtures/layers_clean pin the upward-include and cycle rules against
// `// VIOLATION <rule-id>` markers, exactly like the per-file fixtures; the
// inline cases pin resolution, suppression, and the layer table itself.
#include "tools/simlint/layers.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#ifndef SIMLINT_FIXTURE_DIR
#error "SIMLINT_FIXTURE_DIR must point at tools/simlint/fixtures"
#endif

namespace mlcr::simlint {
namespace {

// (file, line, rule) — layer markers span multiple files, so the file is
// part of the marker identity.
using Marker = std::pair<std::string, std::pair<std::size_t, std::string>>;

std::set<Marker> tree_markers(const std::string& tree_root) {
  static const std::regex kMarker(R"(//\s*VIOLATION\s+([A-Za-z0-9-]+))");
  namespace fs = std::filesystem;
  std::set<Marker> out;
  for (const auto& entry : fs::recursive_directory_iterator(tree_root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream is(entry.path());
    std::string line;
    std::size_t lineno = 0;
    const std::string rel =
        entry.path().lexically_relative(tree_root).generic_string();
    while (std::getline(is, line)) {
      ++lineno;
      std::smatch m;
      if (std::regex_search(line, m, kMarker))
        out.insert({rel, {lineno, m[1].str()}});
    }
  }
  return out;
}

std::set<Marker> as_markers(const std::vector<Violation>& violations) {
  std::set<Marker> out;
  for (const Violation& v : violations)
    out.insert({v.file, {v.line, v.rule}});
  return out;
}

TEST(SimlintLayers, BadTreeFiresExactlyOnItsMarkers) {
  const std::string root = std::string(SIMLINT_FIXTURE_DIR) + "/layers_bad";
  const auto actual = as_markers(lint_layers(root, {"src"}));
  EXPECT_EQ(tree_markers(root), actual);
}

TEST(SimlintLayers, CleanTreeIsQuiet) {
  const std::string root = std::string(SIMLINT_FIXTURE_DIR) + "/layers_clean";
  EXPECT_TRUE(lint_layers(root, {"src"}).empty());
}

TEST(SimlintLayers, EveryLayerRuleIsPinnedByTheBadTree) {
  const std::string root = std::string(SIMLINT_FIXTURE_DIR) + "/layers_bad";
  std::set<std::string> pinned;
  for (const auto& [file, at] : tree_markers(root)) {
    (void)file;
    pinned.insert(at.second);
  }
  for (const RuleInfo& rule : layer_rules())
    EXPECT_TRUE(pinned.count(rule.id) == 1)
        << "layer rule '" << rule.id << "' has no fixture marker pinning it";
  for (const std::string& rule : pinned)
    EXPECT_TRUE(rule == "layer-cycle" || rule == "layer-upward")
        << "bad tree pins unknown layer rule '" << rule << "'";
}

TEST(SimlintLayers, LayerTableOrdersTheArchitecture) {
  EXPECT_EQ(layer_of("src/util/rng.hpp"), 0);
  EXPECT_LT(layer_of("src/obs/tracer.hpp"), layer_of("src/sim/env.hpp"));
  EXPECT_LT(layer_of("src/faults/plan.hpp"), layer_of("src/fleet/router.hpp"));
  EXPECT_LT(layer_of("src/containers/pool.hpp"), layer_of("src/sim/env.hpp"));
  EXPECT_LT(layer_of("src/nn/tensor.hpp"), layer_of("src/rl/dqn.hpp"));
  EXPECT_LT(layer_of("src/sim/env.hpp"), layer_of("src/policies/keep.hpp"));
  EXPECT_LT(layer_of("src/policies/keep.hpp"), layer_of("src/core/mlcr.hpp"));
  EXPECT_LT(layer_of("src/core/mlcr.hpp"), layer_of("src/serve/service.hpp"));
  EXPECT_LT(layer_of("src/serve/service.hpp"), layer_of("bench/serve.cpp"));
  EXPECT_EQ(layer_of("tests/sim/test_env.cpp"), layer_of("tools/x/main.cpp"));
  // Unknown paths rank above everything: free to include anything.
  EXPECT_GT(layer_of("scripts/gen.cpp"), layer_of("tests/sim/test_env.cpp"));
}

TEST(SimlintLayers, SuppressionsSilenceUpwardIncludes) {
  const std::vector<LayerFile> files = {
      {"src/util/low.hpp",
       "#pragma once\n"
       "// transitional: scheduler split pending — simlint:allow(layer-upward)\n"
       "#include \"serve/high.hpp\"\n"},
      {"src/serve/high.hpp", "#pragma once\n"},
  };
  EXPECT_TRUE(check_layers(files).empty());

  const std::vector<LayerFile> unsuppressed = {
      {"src/util/low.hpp", "#pragma once\n#include \"serve/high.hpp\"\n"},
      {"src/serve/high.hpp", "#pragma once\n"},
  };
  const auto violations = check_layers(unsuppressed);
  ASSERT_EQ(violations.size(), 1U);
  EXPECT_EQ(violations[0].rule, "layer-upward");
  EXPECT_EQ(violations[0].file, "src/util/low.hpp");
  EXPECT_EQ(violations[0].line, 2U);
}

TEST(SimlintLayers, IncludesInCommentsStringsOrOutsideTheSetAreIgnored) {
  const std::vector<LayerFile> files = {
      {"src/util/doc.hpp",
       "#pragma once\n"
       "// #include \"serve/high.hpp\"\n"
       "const char* kDoc = \"#include \\\"serve/high.hpp\\\"\";\n"
       "#include \"serve/not_in_this_set.hpp\"\n"
       "#include <vector>\n"},
      {"src/serve/high.hpp", "#pragma once\n"},
  };
  EXPECT_TRUE(check_layers(files).empty());
}

TEST(SimlintLayers, SameDirectoryIncludesResolveRelative) {
  // "detail.hpp" from src/serve/front.hpp resolves to src/serve/detail.hpp
  // (the includer's own directory), which is the same layer: no violation.
  // From src/util it resolves nowhere and is ignored.
  const std::vector<LayerFile> files = {
      {"src/serve/front.hpp", "#include \"detail.hpp\"\n"},
      {"src/serve/detail.hpp", "#pragma once\n"},
      {"src/util/lone.hpp", "#include \"detail.hpp\"\n"},
  };
  EXPECT_TRUE(check_layers(files).empty());
}

TEST(SimlintLayers, SelfIncludeIsACycle) {
  const std::vector<LayerFile> files = {
      {"src/sim/loop.hpp", "#include \"sim/loop.hpp\"\n"},
  };
  const auto violations = check_layers(files);
  ASSERT_EQ(violations.size(), 1U);
  EXPECT_EQ(violations[0].rule, "layer-cycle");
}

}  // namespace
}  // namespace mlcr::simlint
