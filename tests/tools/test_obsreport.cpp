// obsreport gating logic: schema errors invalidate the file, recorded
// breaches fail the gate (unless gate_recorded is off), offline thresholds
// re-evaluate every snapshot's SLO block, and the rendered table is
// deterministic. This is the library behind the CLI CI runs over real
// snapshot artifacts.
#include "tools/obsreport/report.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mlcr::obsreport {
namespace {

const char* kCleanSnapshots =
    R"({"t":1,"seq":0,"counters":{"serve.routed":10},"gauges":{},)"
    R"("histograms":{},"slo":{"window_s":60,"submitted":10,"routed":10,)"
    R"("rejected":0,"lost":0,"e2e_p99_s":0.4,"goodput":1,)"
    R"("rejection_rate":0,"queue_depth_max":3,"breaches":[]}}
{"t":2,"seq":1,"counters":{"serve.routed":20},"gauges":{},)"
    R"("histograms":{},"slo":{"window_s":60,"submitted":12,"routed":11,)"
    R"("rejected":1,"lost":0,"e2e_p99_s":0.5,"goodput":0.9166,)"
    R"("rejection_rate":0.0833,"queue_depth_max":5,"breaches":[]}}
)";

TEST(Obsreport, CleanSnapshotsPassThePermissiveGate) {
  const Report report = analyze_snapshots(kCleanSnapshots, ReportOptions{});
  EXPECT_TRUE(report.ok()) << render_report(report);
  ASSERT_EQ(report.rows.size(), 2U);
  EXPECT_DOUBLE_EQ(report.rows[0].t, 1.0);
  EXPECT_DOUBLE_EQ(report.rows[1].slo.e2e_p99_s, 0.5);
  EXPECT_EQ(report.rows[1].slo.rejected, 1U);
}

TEST(Obsreport, SchemaErrorsInvalidateTheFile) {
  const Report report =
      analyze_snapshots(R"({"t":1})", ReportOptions{});
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.schema_errors.empty());
  EXPECT_TRUE(report.rows.empty());
}

TEST(Obsreport, RecordedBreachesFailTheGateUnlessDisabled) {
  const std::string with_breach =
      R"({"t":1,"seq":0,"counters":{},"gauges":{},"histograms":{},)"
      R"("slo":{"e2e_p99_s":0.5,"breaches":["e2e_p99_s 0.5 > max 0.1"]}})";
  ReportOptions options;
  Report report = analyze_snapshots(with_breach, options);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.breaches.size(), 1U);
  EXPECT_NE(report.breaches[0].find("recorded:"), std::string::npos);
  EXPECT_NE(report.breaches[0].find("e2e_p99_s 0.5 > max 0.1"),
            std::string::npos);

  options.gate_recorded = false;
  report = analyze_snapshots(with_breach, options);
  EXPECT_TRUE(report.ok()) << render_report(report);
}

TEST(Obsreport, OfflineThresholdsReEvaluateEverySnapshot) {
  ReportOptions options;
  // Second snapshot (0.5) breaches, first (0.4) does not; rows are 0-based.
  options.slo.max_e2e_p99_s = 0.45;
  const Report report = analyze_snapshots(kCleanSnapshots, options);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.breaches.size(), 1U);
  EXPECT_NE(report.breaches[0].find("snapshot 1"), std::string::npos);
  EXPECT_NE(report.breaches[0].find("e2e_p99_s"), std::string::npos);
}

TEST(Obsreport, RenderedReportListsEverySnapshotAndBreach) {
  ReportOptions options;
  options.slo.min_goodput = 0.95;
  const Report report = analyze_snapshots(kCleanSnapshots, options);
  const std::string text = render_report(report);
  EXPECT_NE(text.find("snapshots: 2"), std::string::npos);
  EXPECT_NE(text.find("BREACH"), std::string::npos);
  // Deterministic: rendering twice gives the same text.
  EXPECT_EQ(text, render_report(report));
}

}  // namespace
}  // namespace mlcr::obsreport
