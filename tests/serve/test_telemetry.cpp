// serve::Telemetry under deterministic replay: two identical SimClock
// episodes must produce byte-identical Chrome traces AND byte-identical
// flight-recorder snapshot JSONL (the DESIGN.md §6 determinism contract
// extended to the telemetry plane), every accepted request's flow must pair
// start-to-end, the merged registry must agree with the service's own
// accounting, and a tight SLO config must surface breaches both online
// (breach_count) and in the recorded snapshots.
#include "serve/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/fleet_env.hpp"
#include "obs/schema_check.hpp"
#include "obs/sink.hpp"
#include "obs/tracer.hpp"
#include "policies/baselines.hpp"
#include "serve/service.hpp"
#include "testing/fixtures.hpp"

namespace mlcr::serve {
namespace {

using mlcr::testing::TinyWorld;

fleet::FleetEnv make_fleet(const TinyWorld& world,
                           const sim::StartupCostModel& cost,
                           std::size_t nodes) {
  fleet::FleetConfig cfg;
  cfg.nodes = nodes;
  cfg.node_env.pool_capacity_mb = 2048.0;
  return fleet::FleetEnv(world.functions, world.catalog, cost, cfg,
                         fleet::uniform_system(
                             policies::make_greedy_match_system));
}

sim::Trace make_trace(const TinyWorld& world, std::size_t n) {
  const sim::FunctionTypeId fns[] = {world.fn_py_flask, world.fn_py_numpy,
                                     world.fn_js, world.fn_other_os};
  std::vector<sim::Invocation> invs;
  invs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    invs.push_back(TinyWorld::inv(fns[i % 4], 0.25 * static_cast<double>(i),
                                  0.4));
  return sim::Trace{std::move(invs)};
}

struct ReplayArtifacts {
  ServeSummary summary;
  std::string trace_json;
  std::string snapshots;
  obs::MetricsRegistry metrics;
  std::uint64_t breaches = 0;
  std::uint64_t snapshot_count = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// One full traced replay episode over a fresh fleet/service/telemetry.
ReplayArtifacts run_traced_replay(const TinyWorld& world,
                                  const sim::StartupCostModel& cost,
                                  const sim::Trace& trace,
                                  const std::string& snapshot_path,
                                  const obs::SloConfig& slo = {}) {
  fleet::FleetEnv fleet = make_fleet(world, cost, 4);
  SimClock clock;
  std::ostringstream trace_out;
  obs::Tracer tracer;
  tracer.add_sink(std::make_shared<obs::ChromeTraceSink>(trace_out));

  TelemetryConfig tcfg;
  tcfg.slo = slo;
  tcfg.snapshot_period_s = 1.0;
  tcfg.snapshot_path = snapshot_path;
  tcfg.registry_slots = 2;
  Telemetry telemetry(tcfg, &tracer);

  ServeConfig serve_cfg;
  serve_cfg.workers = 2;
  serve_cfg.shards = 3;
  SchedulerService service(fleet, clock,
                           std::make_unique<LeastOutstandingPolicy>(),
                           serve_cfg);
  service.set_telemetry(&telemetry);

  ReplayArtifacts art;
  art.summary = service.run_replay(trace);
  tracer.close();
  art.trace_json = trace_out.str();
  art.metrics = telemetry.metrics();
  art.breaches = telemetry.breach_count();
  art.snapshot_count = telemetry.snapshot_count();
  art.snapshots = slurp(snapshot_path);
  return art;
}

std::uint64_t counter_or_zero(const obs::MetricsRegistry& metrics,
                              const std::string& name) {
  const auto it = metrics.counters().find(name);
  return it == metrics.counters().end() ? 0 : it->second.value();
}

TEST(ServeTelemetry, TwoReplayRunsAreByteIdentical) {
  const TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  const sim::Trace trace = make_trace(world, 64);

  const std::string dir = ::testing::TempDir();
  const ReplayArtifacts a =
      run_traced_replay(world, cost, trace, dir + "telemetry_run_a.jsonl");
  const ReplayArtifacts b =
      run_traced_replay(world, cost, trace, dir + "telemetry_run_b.jsonl");

  ASSERT_FALSE(a.trace_json.empty());
  ASSERT_FALSE(a.snapshots.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.snapshots, b.snapshots);
  EXPECT_EQ(a.snapshot_count, b.snapshot_count);
  EXPECT_GT(a.snapshot_count, 0U);

  const auto problems = obs::check_snapshot_jsonl(a.snapshots);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems[0]);
}

TEST(ServeTelemetry, EveryAcceptedRequestsFlowPairsStartToEnd) {
  const TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  const sim::Trace trace = make_trace(world, 48);
  const ReplayArtifacts art = run_traced_replay(
      world, cost, trace, ::testing::TempDir() + "telemetry_flows.jsonl");

  const auto report = obs::check_trace_json(art.trace_json);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.flows_ok())
      << (report.flow_errors.empty() ? "" : report.flow_errors[0]);

  // Replay rejects nothing, so every submit starts a flow — and every flow
  // ends, on the dispatching node's track or on the lost track.
  const ServeStats& stats = art.summary.stats;
  EXPECT_EQ(stats.rejected, 0U);
  EXPECT_EQ(report.flow_start_counts.at("request"), stats.submitted);
  EXPECT_EQ(report.flow_end_counts.at("request"),
            stats.routed + stats.lost);
}

TEST(ServeTelemetry, RegistryCountersMatchTheServiceAccounting) {
  const TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  const sim::Trace trace = make_trace(world, 48);
  const ReplayArtifacts art = run_traced_replay(
      world, cost, trace, ::testing::TempDir() + "telemetry_counters.jsonl");

  const ServeStats& stats = art.summary.stats;
  EXPECT_EQ(counter_or_zero(art.metrics, "serve.submitted"),
            stats.submitted);
  EXPECT_EQ(counter_or_zero(art.metrics, "serve.routed"), stats.routed);
  EXPECT_EQ(counter_or_zero(art.metrics, "serve.rejected"), stats.rejected);
  EXPECT_EQ(counter_or_zero(art.metrics, "serve.lost"), stats.lost);
  EXPECT_EQ(counter_or_zero(art.metrics, "serve.rerouted"), stats.rerouted);
  EXPECT_EQ(counter_or_zero(art.metrics, "serve.cold_starts"),
            art.summary.fleet.total.cold_starts);
  EXPECT_DOUBLE_EQ(art.metrics.gauges().at("serve.nodes").value(), 4.0);
  EXPECT_DOUBLE_EQ(art.metrics.gauges().at("serve.workers").value(), 2.0);
  EXPECT_EQ(art.metrics.histograms().at("serve.e2e_latency_s").count(),
            stats.routed);
  // Nothing breaches under the default (fully permissive) SLO config.
  EXPECT_EQ(art.breaches, 0U);
}

TEST(ServeTelemetry, TightSloConfigRecordsBreachesInSnapshots) {
  const TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  const sim::Trace trace = make_trace(world, 48);
  obs::SloConfig slo;
  slo.max_e2e_p99_s = 1e-9;  // every dispatch breaches
  const ReplayArtifacts art = run_traced_replay(
      world, cost, trace, ::testing::TempDir() + "telemetry_breach.jsonl",
      slo);

  EXPECT_GT(art.breaches, 0U);
  EXPECT_EQ(counter_or_zero(art.metrics, "serve.slo_breach"), art.breaches);
  EXPECT_NE(art.snapshots.find("e2e_p99_s"), std::string::npos);
  // Breach-bearing snapshots still satisfy the schema.
  EXPECT_TRUE(obs::check_snapshot_jsonl(art.snapshots).empty());
}

TEST(ServeTelemetry, MetricsOnlyModeNeedsNoTracerOrRecorder) {
  const TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  fleet::FleetEnv fleet = make_fleet(world, cost, 2);
  SimClock clock;
  Telemetry telemetry;  // no tracer, no snapshot path
  SchedulerService service(fleet, clock,
                           std::make_unique<RoundRobinPolicy>(),
                           ServeConfig{});
  service.set_telemetry(&telemetry);
  const ServeSummary summary = service.run_replay(make_trace(world, 16));
  EXPECT_EQ(counter_or_zero(telemetry.metrics(), "serve.submitted"),
            summary.stats.submitted);
  EXPECT_EQ(telemetry.snapshot_count(), 0U);
}

}  // namespace
}  // namespace mlcr::serve
