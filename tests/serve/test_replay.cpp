// Deterministic replay: a SimClock-driven SchedulerService episode over a
// fixed trace — routing via the sharded index, dispatch via the service's
// shard-locked path — must reproduce FleetEnv::run's summary exactly, for
// every standard routing policy and for an MLCR fleet. This is the pin that
// says the serving subsystem adds concurrency machinery without changing a
// single scheduling decision.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/mlcr.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "fstartbench/workloads.hpp"
#include "policies/baselines.hpp"
#include "serve/service.hpp"
#include "testing/fixtures.hpp"
#include "util/check.hpp"

namespace mlcr::serve {
namespace {

using mlcr::testing::TinyWorld;

void expect_summaries_equal(const fleet::FleetSummary& replay,
                            const fleet::FleetSummary& reference) {
  EXPECT_EQ(replay.router, reference.router);
  EXPECT_EQ(replay.system, reference.system);
  EXPECT_EQ(replay.nodes, reference.nodes);
  EXPECT_EQ(replay.total.invocations, reference.total.invocations);
  EXPECT_DOUBLE_EQ(replay.total.total_latency_s,
                   reference.total.total_latency_s);
  EXPECT_DOUBLE_EQ(replay.total.average_latency_s,
                   reference.total.average_latency_s);
  EXPECT_EQ(replay.total.cold_starts, reference.total.cold_starts);
  EXPECT_EQ(replay.total.warm_l1, reference.total.warm_l1);
  EXPECT_EQ(replay.total.warm_l2, reference.total.warm_l2);
  EXPECT_EQ(replay.total.warm_l3, reference.total.warm_l3);
  EXPECT_DOUBLE_EQ(replay.total.peak_pool_mb, reference.total.peak_pool_mb);
  EXPECT_EQ(replay.total.evictions, reference.total.evictions);
  EXPECT_EQ(replay.total.rejections, reference.total.rejections);
  EXPECT_EQ(replay.lost, reference.lost);
  EXPECT_EQ(replay.rerouted, reference.rerouted);
  EXPECT_DOUBLE_EQ(replay.routing_imbalance, reference.routing_imbalance);
  ASSERT_EQ(replay.per_node.size(), reference.per_node.size());
  for (std::size_t n = 0; n < replay.per_node.size(); ++n) {
    EXPECT_EQ(replay.per_node[n].invocations,
              reference.per_node[n].invocations)
        << "node " << n;
    EXPECT_DOUBLE_EQ(replay.per_node[n].total_latency_s,
                     reference.per_node[n].total_latency_s)
        << "node " << n;
    EXPECT_EQ(replay.per_node[n].cold_starts, reference.per_node[n].cold_starts)
        << "node " << n;
  }
}

TEST(ServeReplay, MatchesFleetRunForEveryStandardPolicy) {
  const auto bench = fstartbench::make_benchmark();
  const sim::StartupCostModel cost(bench.catalog,
                                   fstartbench::default_cost_config());
  util::Rng trace_rng(99);
  const sim::Trace trace =
      fstartbench::make_overall_workload(bench, 200, trace_rng);

  const auto routers = fleet::standard_routers();
  for (const PolicySpec& policy_spec : standard_policies()) {
    SCOPED_TRACE(policy_spec.name);
    const auto router_spec =
        std::find_if(routers.begin(), routers.end(),
                     [&](const fleet::RouterSpec& r) {
                       return r.name == policy_spec.name;
                     });
    ASSERT_NE(router_spec, routers.end());

    fleet::FleetConfig cfg;
    cfg.nodes = 4;
    cfg.node_env.pool_capacity_mb = 1500.0;
    fleet::FleetEnv fleet(
        bench.functions, bench.catalog, cost, cfg,
        fleet::uniform_system(policies::make_greedy_match_system));

    const auto router = router_spec->make();
    const fleet::FleetSummary reference = fleet.run(trace, *router);

    // Same FleetEnv, fresh episode: the service resets every node itself.
    SimClock clock;
    ServeConfig serve_cfg;
    serve_cfg.workers = 2;  // irrelevant: replay is strictly sequential
    serve_cfg.shards = 3;
    SchedulerService service(fleet, clock, policy_spec.make(), serve_cfg);
    const ServeSummary replay = service.run_replay(trace);

    expect_summaries_equal(replay.fleet, reference);
    EXPECT_EQ(replay.stats.submitted, trace.size());
    EXPECT_EQ(replay.stats.routed + replay.stats.lost, trace.size());
    EXPECT_EQ(replay.stats.rejected, 0U);
    EXPECT_DOUBLE_EQ(clock.now_s(),
                     trace.invocations().back().arrival_s);
  }
}

TEST(ServeReplay, MatchesFleetRunOnAnMlcrFleet) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  core::MlcrConfig mlcr_cfg = core::make_default_mlcr_config(/*num_slots=*/4,
                                                             /*embed_dim=*/16);
  mlcr_cfg.dqn.network.ffn_dim = 32;
  auto agent = std::make_shared<rl::DqnAgent>(mlcr_cfg.dqn, util::Rng(11));

  std::vector<sim::Invocation> invs;
  const sim::FunctionTypeId fns[] = {world.fn_py_flask, world.fn_py_numpy,
                                     world.fn_js, world.fn_other_os};
  for (std::size_t i = 0; i < 40; ++i)
    invs.push_back(TinyWorld::inv(fns[i % 4], 0.5 * static_cast<double>(i),
                                  0.4));
  const sim::Trace trace{std::move(invs)};

  const auto make_fleet = [&] {
    fleet::FleetConfig cfg;
    cfg.nodes = 3;
    cfg.node_env.pool_capacity_mb = 2048.0;
    return fleet::FleetEnv(world.functions, world.catalog, cost, cfg,
                           fleet::uniform_system([&] {
                             return core::make_mlcr_system(agent,
                                                           mlcr_cfg.encoder);
                           }));
  };

  fleet::FleetEnv fleet = make_fleet();
  fleet::LeastOutstandingRouter router;
  const fleet::FleetSummary reference = fleet.run(trace, router);

  SimClock clock;
  ServeConfig serve_cfg;
  serve_cfg.shards = 2;
  SchedulerService service(fleet, clock,
                           std::make_unique<LeastOutstandingPolicy>(),
                           serve_cfg);
  const ServeSummary replay = service.run_replay(trace);
  expect_summaries_equal(replay.fleet, reference);
  EXPECT_EQ(replay.fleet.system, "MLCR");
}

TEST(ServeReplay, RequiresASimulatedClock) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  fleet::FleetConfig cfg;
  cfg.nodes = 2;
  cfg.node_env.pool_capacity_mb = 2048.0;
  fleet::FleetEnv fleet(world.functions, world.catalog, cost, cfg,
                        fleet::uniform_system(
                            policies::make_greedy_match_system));
  WallClock clock;
  SchedulerService service(fleet, clock, std::make_unique<RoundRobinPolicy>(),
                           ServeConfig{});
  const sim::Trace trace = TinyWorld::make_trace(
      {TinyWorld::inv(world.fn_py_flask, 0.0, 0.1)});
  EXPECT_THROW((void)service.run_replay(trace), util::CheckError);
}

}  // namespace
}  // namespace mlcr::serve
