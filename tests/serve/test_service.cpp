// SchedulerService: deterministic reject/degrade backpressure on the
// single-threaded pump path, request conservation under concurrent
// ingestion (runs under TSan in CI), and batched MLCR wave dispatch.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/mlcr.hpp"
#include "fleet/fleet_env.hpp"
#include "policies/baselines.hpp"
#include "testing/fixtures.hpp"

namespace mlcr::serve {
namespace {

using mlcr::testing::TinyWorld;

fleet::FleetEnv make_fleet(const TinyWorld& world,
                           const sim::StartupCostModel& cost,
                           std::size_t nodes) {
  fleet::FleetConfig cfg;
  cfg.nodes = nodes;
  cfg.node_env.pool_capacity_mb = 2048.0;
  return fleet::FleetEnv(world.functions, world.catalog, cost, cfg,
                         fleet::uniform_system(
                             policies::make_greedy_match_system));
}

TEST(ServeService, DeterministicBackpressureAccounting) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  fleet::FleetEnv fleet = make_fleet(world, cost, 4);
  SimClock clock;
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.shards = 2;
  cfg.queue_capacity = 8;
  cfg.degrade_depth = 4;
  cfg.batch = 8;
  SchedulerService service(fleet, clock,
                           std::make_unique<LeastOutstandingPolicy>(), cfg);
  service.begin_episode();

  // 12 submissions into a queue of 8 with degradation from depth 4: the
  // first 4 are accepted normally, the next 4 accepted degraded, the last
  // 4 rejected — each count is exact because nothing drains in between.
  for (std::size_t i = 0; i < 12; ++i) {
    sim::Invocation inv = TinyWorld::inv(world.fn_py_flask,
                                         0.1 * static_cast<double>(i), 0.3);
    inv.seq = i;
    const bool accepted = service.submit(inv);
    EXPECT_EQ(accepted, i < 8) << "submission " << i;
  }
  EXPECT_EQ(service.pump_once(), 8U);

  const ServeSummary summary = service.finish_episode();
  EXPECT_EQ(summary.stats.submitted, 12U);
  EXPECT_EQ(summary.stats.routed, 8U);
  EXPECT_EQ(summary.stats.rejected, 4U);
  EXPECT_EQ(summary.stats.degraded, 4U);
  EXPECT_EQ(summary.stats.lost, 0U);
  EXPECT_EQ(summary.fleet.total.invocations, 8U);
  // Degraded requests are forced cold starts; with one function and warm
  // reuse available, only the degraded tail plus first-touch starts stay
  // cold.
  EXPECT_GE(summary.fleet.total.cold_starts, 4U);
  EXPECT_EQ(summary.fleet.system, "Greedy-Match");
  EXPECT_EQ(summary.fleet.router, "Least-Outstanding");
}

TEST(ServeService, PumpIsDeterministicAcrossRuns) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  const auto run_once = [&]() -> ServeSummary {
    fleet::FleetEnv fleet = make_fleet(world, cost, 3);
    SimClock clock;
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.shards = 3;
    cfg.queue_capacity = 64;
    cfg.batch = 4;
    SchedulerService service(fleet, clock,
                             std::make_unique<WarmAwarePolicy>(), cfg);
    service.begin_episode();
    const sim::FunctionTypeId fns[] = {world.fn_py_flask, world.fn_py_numpy,
                                       world.fn_js};
    for (std::size_t i = 0; i < 30; ++i) {
      sim::Invocation inv = TinyWorld::inv(
          fns[i % 3], 0.2 * static_cast<double>(i), 0.4);
      inv.seq = i;
      EXPECT_TRUE(service.submit(inv));
    }
    (void)service.pump_once();
    return service.finish_episode();
  };
  const ServeSummary a = run_once();
  const ServeSummary b = run_once();
  EXPECT_EQ(a.fleet.total.invocations, b.fleet.total.invocations);
  EXPECT_EQ(a.fleet.total.cold_starts, b.fleet.total.cold_starts);
  EXPECT_EQ(a.fleet.total.warm_l2, b.fleet.total.warm_l2);
  EXPECT_EQ(a.fleet.total.warm_l3, b.fleet.total.warm_l3);
  EXPECT_DOUBLE_EQ(a.fleet.total.total_latency_s,
                   b.fleet.total.total_latency_s);
  EXPECT_EQ(a.stats.routed, b.stats.routed);
}

/// Four producer threads against four workers: whatever interleaving the
/// scheduler picks, every submission must land in exactly one of
/// routed/rejected/lost, and the node metrics must account for every routed
/// request (finish_episode() checks both invariants internally too).
TEST(ServeService, ConcurrentIngestConservesRequests) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  fleet::FleetEnv fleet = make_fleet(world, cost, 8);
  WallClock clock;
  ServeConfig cfg;
  cfg.workers = 4;
  cfg.shards = 4;
  cfg.queue_capacity = 4096;
  cfg.batch = 16;
  SchedulerService service(fleet, clock, std::make_unique<WarmAwarePolicy>(),
                           cfg);
  service.begin_episode();
  service.start();

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 500;
  const sim::FunctionTypeId fns[] = {world.fn_py_flask, world.fn_py_numpy,
                                     world.fn_js, world.fn_other_os};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        sim::Invocation inv = TinyWorld::inv(
            fns[(p + i) % 4], 0.001 * static_cast<double>(i), 0.02);
        inv.seq = p * kPerProducer + i;
        (void)service.submit(inv);
      }
    });
  }
  for (auto& producer : producers) producer.join();

  const ServeSummary summary = service.finish_episode();
  EXPECT_EQ(summary.stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(summary.stats.submitted,
            summary.stats.routed + summary.stats.rejected + summary.stats.lost);
  EXPECT_EQ(summary.stats.lost, 0U);  // faultless fleet: no node ever down
  EXPECT_EQ(summary.fleet.total.invocations, summary.stats.routed);
  EXPECT_GT(summary.stats.batches, 0U);
}

TEST(ServeService, MlcrFleetBatchesWavesThroughOneForwardPass) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  core::MlcrConfig mlcr_cfg = core::make_default_mlcr_config(/*num_slots=*/4,
                                                             /*embed_dim=*/16);
  mlcr_cfg.dqn.network.ffn_dim = 32;
  auto agent = std::make_shared<rl::DqnAgent>(mlcr_cfg.dqn, util::Rng(5));
  fleet::FleetConfig fleet_cfg;
  fleet_cfg.nodes = 4;
  fleet_cfg.node_env.pool_capacity_mb = 2048.0;
  fleet::FleetEnv fleet(
      world.functions, world.catalog, cost, fleet_cfg,
      fleet::uniform_system([&] {
        return core::make_mlcr_system(agent, mlcr_cfg.encoder);
      }));

  SimClock clock;
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.shards = 2;
  cfg.queue_capacity = 64;
  cfg.batch = 4;
  SchedulerService service(fleet, clock, std::make_unique<RoundRobinPolicy>(),
                           cfg);
  service.begin_episode();
  EXPECT_TRUE(service.mlcr_mode());

  // Round-robin over 4 nodes with batch 4: every drained batch is one wave
  // of 4 distinct nodes, so 12 requests take exactly 3 forward passes.
  for (std::size_t i = 0; i < 12; ++i) {
    sim::Invocation inv = TinyWorld::inv(world.fn_py_flask,
                                         0.1 * static_cast<double>(i), 0.3);
    inv.seq = i;
    ASSERT_TRUE(service.submit(inv));
  }
  EXPECT_EQ(service.pump_once(), 12U);

  const ServeSummary summary = service.finish_episode();
  EXPECT_EQ(summary.stats.routed, 12U);
  EXPECT_EQ(summary.stats.inference_calls, 3U);
  EXPECT_EQ(summary.stats.max_wave, 4U);
  EXPECT_EQ(summary.fleet.total.invocations, 12U);
  EXPECT_EQ(summary.fleet.system, "MLCR");
}

TEST(ServeService, RejectsFleetsMixingMlcrAndHeuristicNodes) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  core::MlcrConfig mlcr_cfg = core::make_default_mlcr_config(4, 16);
  mlcr_cfg.dqn.network.ffn_dim = 32;
  auto agent = std::make_shared<rl::DqnAgent>(mlcr_cfg.dqn, util::Rng(6));
  fleet::FleetConfig fleet_cfg;
  fleet_cfg.nodes = 2;
  fleet_cfg.node_env.pool_capacity_mb = 2048.0;
  fleet::FleetEnv fleet(
      world.functions, world.catalog, cost, fleet_cfg,
      [&](std::size_t node, util::Rng rng) {
        (void)rng;
        if (node == 0) return core::make_mlcr_system(agent, mlcr_cfg.encoder);
        return policies::make_greedy_match_system();
      });
  SimClock clock;
  SchedulerService service(fleet, clock, std::make_unique<RoundRobinPolicy>(),
                           ServeConfig{});
  EXPECT_THROW(service.begin_episode(), util::CheckError);
}

}  // namespace
}  // namespace mlcr::serve
