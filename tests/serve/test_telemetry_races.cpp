// TSan targets for the telemetry plane (the suite runs under the sanitizer
// job in CI): BoundedQueue's close() racing producers and draining
// consumers must conserve every accepted item; ConcurrentMetricsRegistry
// snapshots must merge safely while writers record; and a live
// SchedulerService with telemetry attached — producers hammering submit(),
// a reader merging the registry mid-episode — must keep the service's own
// accounting and the telemetry counters in perfect agreement.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "fleet/fleet_env.hpp"
#include "obs/concurrent.hpp"
#include "obs/schema_check.hpp"
#include "obs/sink.hpp"
#include "obs/tracer.hpp"
#include "policies/baselines.hpp"
#include "serve/queue.hpp"
#include "serve/service.hpp"
#include "serve/telemetry.hpp"
#include "testing/fixtures.hpp"

namespace mlcr::serve {
namespace {

using mlcr::testing::TinyWorld;

TEST(ServeTelemetryRaces, QueueCloseRacingProducersAndConsumersLosesNothing) {
  BoundedQueue<int> queue(256);
  constexpr std::size_t kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> consumed{0};

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i)
        if (queue.try_push(i)) accepted.fetch_add(1);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      std::vector<int> out;
      for (;;) {
        out.clear();
        const std::size_t n = queue.pop_batch(out, 64);
        if (n == 0) return;  // closed and fully drained
        consumed.fetch_add(n);
      }
    });
  }
  // Close mid-flight: pushes past this point fail, consumers drain the
  // remainder and then see the shutdown signal.
  queue.close();
  for (auto& thread : threads) thread.join();

  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(consumed.load(), accepted.load());
  EXPECT_EQ(queue.size(), 0U);
}

TEST(ServeTelemetryRaces, RegistrySnapshotMergesWhileWritersRecord) {
  obs::ConcurrentMetricsRegistry registry(4);
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 3000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        registry.add("events");
        registry.record("latency_s", 0.001 * static_cast<double>(i % 100));
        registry.set_gauge("depth", static_cast<double>(i));
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load()) {
      const obs::MetricsRegistry cut = registry.snapshot();
      const auto it = cut.counters().find("events");
      if (it != cut.counters().end()) {
        EXPECT_LE(it->second.value(), kWriters * kPerWriter);
      }
    }
  });
  for (auto& writer : writers) writer.join();
  stop.store(true);
  reader.join();

  const obs::MetricsRegistry final_cut = registry.snapshot();
  EXPECT_EQ(final_cut.counters().at("events").value(),
            kWriters * kPerWriter);
  EXPECT_EQ(final_cut.histograms().at("latency_s").count(),
            kWriters * kPerWriter);
}

TEST(ServeTelemetryRaces, LiveServiceWithTelemetryConservesAccounting) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  fleet::FleetConfig fleet_cfg;
  fleet_cfg.nodes = 8;
  fleet_cfg.node_env.pool_capacity_mb = 2048.0;
  fleet::FleetEnv fleet(world.functions, world.catalog, cost, fleet_cfg,
                        fleet::uniform_system(
                            policies::make_greedy_match_system));
  WallClock clock;

  constexpr std::size_t kProducers = 4;
  std::ostringstream trace_out;
  obs::Tracer tracer;
  tracer.add_sink(std::make_shared<obs::ChromeTraceSink>(trace_out));
  TelemetryConfig tcfg;
  tcfg.registry_slots = 4 + kProducers;
  Telemetry telemetry(tcfg, &tracer);

  ServeConfig cfg;
  cfg.workers = 4;
  cfg.shards = 4;
  cfg.queue_capacity = 4096;
  cfg.batch = 16;
  SchedulerService service(fleet, clock, std::make_unique<WarmAwarePolicy>(),
                           cfg);
  service.set_telemetry(&telemetry);
  service.begin_episode();
  service.start();

  constexpr std::size_t kPerProducer = 400;
  const sim::FunctionTypeId fns[] = {world.fn_py_flask, world.fn_py_numpy,
                                     world.fn_js, world.fn_other_os};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        sim::Invocation inv = TinyWorld::inv(
            fns[(p + i) % 4], 0.001 * static_cast<double>(i), 0.02);
        inv.seq = p * kPerProducer + i;
        (void)service.submit(inv);
      }
    });
  }
  // The merge-under-writer case: snapshot the concurrent registry while
  // the workers and producers are recording into it.
  std::atomic<bool> stop{false};
  std::thread merger([&] {
    while (!stop.load()) (void)telemetry.metrics();
  });
  for (auto& producer : producers) producer.join();
  stop.store(true);
  merger.join();

  const ServeSummary summary = service.finish_episode();
  tracer.close();

  EXPECT_EQ(summary.stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(summary.stats.submitted,
            summary.stats.routed + summary.stats.rejected +
                summary.stats.lost);

  const obs::MetricsRegistry merged = telemetry.metrics();
  EXPECT_EQ(merged.counters().at("serve.submitted").value(),
            summary.stats.submitted);
  EXPECT_EQ(merged.counters().at("serve.routed").value(),
            summary.stats.routed);
  // Every started flow ended (the trace was emitted under real contention).
  const auto report = obs::check_trace_json(trace_out.str());
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.flows_ok())
      << (report.flow_errors.empty() ? "" : report.flow_errors[0]);
}

}  // namespace
}  // namespace mlcr::serve
