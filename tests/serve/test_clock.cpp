// serve::Clock: SimClock is an explicitly advanced, monotone time source;
// WallClock is monotone relative to its construction epoch. Both are the
// only time the serving layer ever sees (DESIGN.md §11).
#include "serve/clock.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "util/check.hpp"

namespace mlcr::serve {
namespace {

TEST(ServeClock, SimClockAdvancesOnlyExplicitly) {
  SimClock clock(2.5);
  EXPECT_TRUE(clock.is_simulated());
  EXPECT_DOUBLE_EQ(clock.now_s(), 2.5);
  clock.advance_to(2.5);  // same time is allowed
  clock.advance_to(7.0);
  EXPECT_DOUBLE_EQ(clock.now_s(), 7.0);
}

TEST(ServeClock, SimClockRejectsBackwardTime) {
  SimClock clock(10.0);
  EXPECT_THROW(clock.advance_to(9.0), util::CheckError);
}

TEST(ServeClock, SimClockIsReadableFromOtherThreads) {
  SimClock clock(0.0);
  double seen = -1.0;
  std::thread reader([&] { seen = clock.now_s(); });
  reader.join();
  EXPECT_GE(seen, 0.0);
}

TEST(ServeClock, WallClockStartsNearZeroAndIsMonotone) {
  const WallClock clock;
  EXPECT_FALSE(clock.is_simulated());
  const double a = clock.now_s();
  const double b = clock.now_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_LT(a, 60.0);  // the epoch is the clock's own construction
}

}  // namespace
}  // namespace mlcr::serve
