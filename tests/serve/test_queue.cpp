// BoundedQueue: FIFO batch draining, rejection at capacity, close()
// semantics, and an MPMC stress run (the suite runs under TSan in CI).
#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mlcr::serve {
namespace {

TEST(ServeQueue, TryPushRejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  EXPECT_EQ(queue.size(), 2U);
}

TEST(ServeQueue, PopBatchDrainsFifoUpToMax) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(queue.pop_batch(out, 3), 3U);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.pop_batch(out, 8), 2U);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ServeQueue, CloseDrainsRemainderThenSignalsShutdown) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.try_push(7));
  queue.close();
  EXPECT_FALSE(queue.try_push(8));  // closed queues accept nothing
  std::vector<int> out;
  EXPECT_EQ(queue.pop_batch(out, 4), 1U);  // the remainder drains first
  EXPECT_EQ(queue.pop_batch(out, 4), 0U);  // then 0 = closed-and-empty
}

TEST(ServeQueue, CloseUnblocksAWaitingConsumer) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    std::vector<int> out;
    const std::size_t n = queue.pop_batch(out, 4);
    EXPECT_EQ(n, 0U);
    returned.store(true);
  });
  queue.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(ServeQueue, DrainNowaitNeverBlocks) {
  BoundedQueue<int> queue(4);
  std::vector<int> out;
  EXPECT_EQ(queue.drain_nowait(out, 4), 0U);
}

TEST(ServeQueue, MpmcStressConservesEveryItem) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 2;
  constexpr std::size_t kPerProducer = 2000;
  BoundedQueue<int> queue(64);
  std::atomic<std::size_t> popped{0};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        while (!queue.try_push(static_cast<int>(i))) std::this_thread::yield();
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::vector<int> out;
      for (;;) {
        out.clear();
        const std::size_t n = queue.pop_batch(out, 16);
        if (n == 0) return;
        popped.fetch_add(n);
      }
    });
  }
  for (std::size_t p = 0; p < kProducers; ++p) threads[p].join();
  queue.close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace mlcr::serve
