// MlcrScheduler::decide_batch: one forward_batch pass over B distinct
// environments must be bit-identical, entry by entry, to each scheduler's
// own sequential decide() — including the per-scheduler prev-arrival state
// it advances. This is the contract that lets the serving layer batch waves
// of requests without changing any routing decision.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/mlcr.hpp"
#include "testing/fixtures.hpp"
#include "util/check.hpp"

namespace mlcr::core {
namespace {

using mlcr::testing::TinyWorld;

MlcrConfig tiny_mlcr() {
  MlcrConfig cfg = make_default_mlcr_config(/*num_slots=*/4,
                                            /*embed_dim=*/16);
  cfg.dqn.network.ffn_dim = 32;
  return cfg;
}

std::unique_ptr<sim::ClusterEnv> make_env(const TinyWorld& world,
                                          const sim::StartupCostModel& cost) {
  sim::EnvConfig cfg;
  cfg.pool_capacity_mb = 2048.0;
  auto env = std::make_unique<sim::ClusterEnv>(
      world.functions, world.catalog, cost, cfg,
      [] { return std::make_unique<containers::LruEviction>(); });
  env->reset_streaming();
  return env;
}

TEST(ServeMlcrBatch, DecideBatchMatchesSequentialDecideBitForBit) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  const MlcrConfig cfg = tiny_mlcr();
  auto agent = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(21));

  // Two mirrored 3-node worlds driven identically: `seq` decides one env at
  // a time, `bat` decides all three per round in one forward_batch.
  constexpr std::size_t kNodes = 3;
  std::vector<std::unique_ptr<sim::ClusterEnv>> seq_envs;
  std::vector<std::unique_ptr<sim::ClusterEnv>> bat_envs;
  std::vector<std::unique_ptr<MlcrScheduler>> seq_scheds;
  std::vector<std::unique_ptr<MlcrScheduler>> bat_scheds;
  for (std::size_t i = 0; i < kNodes; ++i) {
    seq_envs.push_back(make_env(world, cost));
    bat_envs.push_back(make_env(world, cost));
    seq_scheds.push_back(
        std::make_unique<MlcrScheduler>(agent, StateEncoder(cfg.encoder)));
    bat_scheds.push_back(
        std::make_unique<MlcrScheduler>(agent, StateEncoder(cfg.encoder)));
    seq_scheds.back()->on_episode_start(*seq_envs[i]);
    bat_scheds.back()->on_episode_start(*bat_envs[i]);
  }

  const sim::FunctionTypeId fns[] = {world.fn_py_flask, world.fn_py_numpy,
                                     world.fn_js};
  double t = 0.0;
  // Several rounds so the per-scheduler prev-arrival state matters.
  for (std::size_t round = 0; round < 4; ++round) {
    std::vector<sim::Invocation> offered;
    offered.reserve(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) {
      const sim::Invocation inv =
          TinyWorld::inv(fns[(round + i) % 3], t + 0.3 * static_cast<double>(i),
                         0.4);
      offered.push_back(inv);
      seq_envs[i]->offer(inv);
      bat_envs[i]->offer(inv);
    }
    // Sequential reference decisions, one env at a time.
    std::vector<sim::Action> expected;
    expected.reserve(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i)
      expected.push_back(seq_scheds[i]->decide(*seq_envs[i], offered[i]));
    // One batched pass over the mirrored world.
    std::vector<MlcrScheduler*> schedulers;
    std::vector<const sim::ClusterEnv*> envs;
    std::vector<const sim::Invocation*> invs;
    for (std::size_t i = 0; i < kNodes; ++i) {
      schedulers.push_back(bat_scheds[i].get());
      envs.push_back(bat_envs[i].get());
      invs.push_back(&offered[i]);
    }
    const std::vector<sim::Action> actions =
        MlcrScheduler::decide_batch(schedulers, envs, invs);
    ASSERT_EQ(actions.size(), kNodes);

    for (std::size_t i = 0; i < kNodes; ++i) {
      SCOPED_TRACE("round " + std::to_string(round) + " env " +
                   std::to_string(i));
      EXPECT_EQ(actions[i].kind, expected[i].kind);
      EXPECT_EQ(actions[i].container, expected[i].container);
      const sim::StepResult a = seq_envs[i]->step(expected[i]);
      const sim::StepResult b = bat_envs[i]->step(actions[i]);
      // Bit-exact doubles: the two worlds must stay identical forever.
      EXPECT_EQ(a.latency_s, b.latency_s);
      EXPECT_EQ(a.cold, b.cold);
      EXPECT_EQ(a.match, b.match);
    }
    t += 5.0;
  }
}

TEST(ServeMlcrBatch, EmptyBatchIsANoOp) {
  EXPECT_TRUE(MlcrScheduler::decide_batch({}, {}, {}).empty());
}

TEST(ServeMlcrBatch, RejectsSchedulersWithDifferentAgents) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  const MlcrConfig cfg = tiny_mlcr();
  auto agent_a = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(1));
  auto agent_b = std::make_shared<rl::DqnAgent>(cfg.dqn, util::Rng(2));
  MlcrScheduler sched_a(agent_a, StateEncoder(cfg.encoder));
  MlcrScheduler sched_b(agent_b, StateEncoder(cfg.encoder));
  auto env_a = make_env(world, cost);
  auto env_b = make_env(world, cost);
  const sim::Invocation inv = TinyWorld::inv(world.fn_py_flask, 0.0, 0.1);
  env_a->offer(inv);
  env_b->offer(inv);
  EXPECT_THROW((void)MlcrScheduler::decide_batch(
                   {&sched_a, &sched_b}, {env_a.get(), env_b.get()},
                   {&inv, &inv}),
               util::CheckError);
}

TEST(ServeMlcrBatch, RejectsMismatchedSpanLengths) {
  EXPECT_THROW(
      (void)MlcrScheduler::decide_batch({nullptr}, {}, {}),
      util::CheckError);
}

}  // namespace
}  // namespace mlcr::core
