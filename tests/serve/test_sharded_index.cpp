// ShardedFleetIndex: every query must be an exact merge of per-shard
// answers — pinned against a single FleetIndex oracle fed the same
// updates — and the shard locking must hold up under concurrent readers
// and writers
// (the suite runs under TSan in CI).
#include "serve/sharded_index.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "fleet/fleet_index.hpp"
#include "policies/baselines.hpp"
#include "testing/fixtures.hpp"
#include "util/check.hpp"

namespace mlcr::serve {
namespace {

using mlcr::testing::TinyWorld;

TEST(ServeShardedIndex, ClampsShardsToNodeCount) {
  const ShardedFleetIndex index(3, 16, false);
  EXPECT_EQ(index.node_count(), 3U);
  EXPECT_EQ(index.shard_count(), 3U);
  EXPECT_EQ(index.shard_of(0), 0U);
  EXPECT_EQ(index.shard_of(2), 2U);
}

TEST(ServeShardedIndex, RejectsWarmLookupWhenNotTracking) {
  TinyWorld world;
  const ShardedFleetIndex index(2, 2, false);
  EXPECT_THROW((void)index.nodes_matching(
                   world.functions.get(world.fn_py_flask).image,
                   containers::MatchLevel::kL1),
               util::CheckError);
}

/// Drive four nodes through offers/steps/advances and assert, after every
/// update, that the sharded index answers exactly like one plain FleetIndex
/// fed the same updates.
TEST(ServeShardedIndex, MatchesPlainFleetIndexOracle) {
  TinyWorld world;
  constexpr std::size_t kNodes = 4;
  const sim::StartupCostModel cost = world.cost_model();
  std::vector<std::unique_ptr<sim::ClusterEnv>> envs;
  sim::EnvConfig env_cfg;
  env_cfg.pool_capacity_mb = 2048.0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    envs.push_back(std::make_unique<sim::ClusterEnv>(
        world.functions, world.catalog, cost, env_cfg,
        [] { return std::make_unique<containers::LruEviction>(); }));
    envs.back()->reset_streaming();
  }

  fleet::FleetIndex oracle(kNodes, /*track_warm=*/true);
  ShardedFleetIndex sharded(kNodes, /*shards=*/3, /*track_warm=*/true);
  policies::GreedyMatchScheduler scheduler;

  const auto check_agreement = [&] {
    EXPECT_EQ(sharded.least_outstanding(), oracle.least_outstanding());
    EXPECT_EQ(sharded.least_outstanding_healthy(),
              oracle.least_outstanding_healthy());
    for (std::size_t n = 0; n < kNodes; ++n) {
      const auto a = sharded.node_load(n);
      const auto b = oracle.node_load(n);
      EXPECT_EQ(a.busy, b.busy);
      EXPECT_EQ(a.up, b.up);
      EXPECT_DOUBLE_EQ(a.free_mb, b.free_mb);
    }
    for (const auto level :
         {containers::MatchLevel::kL1, containers::MatchLevel::kL2,
          containers::MatchLevel::kL3}) {
      for (const auto fn : {world.fn_py_flask, world.fn_py_numpy, world.fn_js,
                            world.fn_other_os}) {
        const auto& image = world.functions.get(fn).image;
        std::vector<std::size_t> expected;
        if (const auto* matches = oracle.nodes_matching(image, level)) {
          for (const auto& [node, count] : *matches) {
            (void)count;
            expected.push_back(node);
          }
        }
        EXPECT_EQ(sharded.nodes_matching(image, level), expected);
      }
    }
  };

  const auto touch = [&](std::size_t n) {
    oracle.update(n, *envs[n]);
    sharded.update(n, *envs[n]);
  };
  for (std::size_t n = 0; n < kNodes; ++n) touch(n);
  check_agreement();

  // Scatter invocations over the nodes, then let the work complete.
  const sim::FunctionTypeId fns[] = {world.fn_py_flask, world.fn_py_numpy,
                                     world.fn_js, world.fn_other_os};
  double t = 0.0;
  for (std::size_t step = 0; step < 12; ++step) {
    const std::size_t n = step % kNodes;
    sim::ClusterEnv& env = *envs[n];
    const sim::Invocation inv = TinyWorld::inv(fns[step % 4], t, 0.4);
    env.offer(inv);
    (void)env.step(scheduler.decide(env, inv));
    touch(n);
    check_agreement();
    t += 0.1;
  }
  for (std::size_t n = 0; n < kNodes; ++n) {
    envs[n]->advance_idle(t + 30.0);
    touch(n);
  }
  check_agreement();
}

/// Writers mutate their own nodes' envs and update the index while readers
/// hammer every query path — the shard locks must keep this race-free.
TEST(ServeShardedIndex, ConcurrentReadersAndWritersAreRaceFree) {
  TinyWorld world;
  constexpr std::size_t kNodes = 8;
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kStepsPerNode = 120;
  const sim::StartupCostModel cost = world.cost_model();
  std::vector<std::unique_ptr<sim::ClusterEnv>> envs;
  sim::EnvConfig env_cfg;
  env_cfg.pool_capacity_mb = 2048.0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    envs.push_back(std::make_unique<sim::ClusterEnv>(
        world.functions, world.catalog, cost, env_cfg,
        [] { return std::make_unique<containers::LruEviction>(); }));
    envs.back()->reset_streaming();
  }
  ShardedFleetIndex index(kNodes, /*shards=*/3, /*track_warm=*/true);
  for (std::size_t n = 0; n < kNodes; ++n) index.update(n, *envs[n]);

  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      policies::GreedyMatchScheduler scheduler;
      // Each writer owns nodes w, w + kWriters, ... — env mutation is
      // single-owner; only the index is contended.
      for (std::size_t step = 0; step < kStepsPerNode; ++step) {
        for (std::size_t n = w; n < kNodes; n += kWriters) {
          sim::ClusterEnv& env = *envs[n];
          const sim::Invocation inv = TinyWorld::inv(
              world.fn_py_flask, env.now() + 0.01, 0.05);
          env.offer(inv);
          (void)env.step(scheduler.decide(env, inv));
          index.update(n, env);
        }
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    const auto& image = world.functions.get(world.fn_py_flask).image;
    while (!stop.load()) {
      const std::size_t best = index.least_outstanding();
      EXPECT_LT(best, kNodes);
      (void)index.least_outstanding_healthy();
      (void)index.node_load(best);
      (void)index.nodes_matching(image, containers::MatchLevel::kL3);
    }
  });
  for (std::size_t w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  reader.join();
  EXPECT_LT(index.least_outstanding(), kNodes);
}

}  // namespace
}  // namespace mlcr::serve
