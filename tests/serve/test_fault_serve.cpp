// The serving plane under faults (DESIGN.md §14): deterministic replay of a
// correlated-domain fault schedule must match FleetEnv::run decision for
// decision, two replays must be byte-identical through the whole telemetry
// plane, the live chaos admin APIs must keep the service accounting exact,
// and a domain crash racing concurrent dispatch must stay data-race-free
// (the TSan CI job runs this suite).
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "faults/fault_plan.hpp"
#include "fleet/fleet_env.hpp"
#include "fleet/router.hpp"
#include "obs/sink.hpp"
#include "obs/tracer.hpp"
#include "policies/baselines.hpp"
#include "serve/service.hpp"
#include "serve/telemetry.hpp"
#include "testing/fixtures.hpp"

namespace mlcr::serve {
namespace {

using mlcr::testing::TinyWorld;

/// 6 primaries in two racks + 1 cold spare, correlated windows sampled from
/// the plan's stream plus one hand-placed partial window, SLO deadline on
/// one function — every §14 fault path in one fixture.
fleet::FleetConfig domain_fleet_config() {
  faults::FaultPlan plan;
  plan.startup_failure_prob = 0.2;
  plan.retry.max_attempts = 3;
  plan.domains = {{0, {0, 1, 2}}, {1, {3, 4, 5}}};
  plan.crashes.push_back({0, 2.0, 5.0, false, 0});
  plan.crashes.push_back({1, 2.0, 4.5, false, 0});
  plan.crashes.push_back({2, 2.0, 4.0, true, 0});
  plan.crashes.push_back({4, 7.0, 9.0, true, faults::kNoDomain});
  plan.function_timeouts_s.push_back({0, 30.0});

  fleet::FleetConfig cfg;
  cfg.nodes = 6;
  cfg.spare_nodes = 1;
  cfg.seed = 77;
  cfg.node_env.pool_capacity_mb = 1024.0;
  cfg.faults = plan;
  return cfg;
}

fleet::FleetEnv make_fleet(const TinyWorld& world,
                           const sim::StartupCostModel& cost) {
  return fleet::FleetEnv(world.functions, world.catalog, cost,
                         domain_fleet_config(),
                         fleet::uniform_system(
                             policies::make_greedy_match_system));
}

sim::Trace make_trace(const TinyWorld& world, std::size_t n, double step_s) {
  const sim::FunctionTypeId fns[] = {world.fn_py_flask, world.fn_py_numpy,
                                     world.fn_js, world.fn_other_os};
  std::vector<sim::Invocation> invs;
  invs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    invs.push_back(TinyWorld::inv(fns[i % 4],
                                  step_s * static_cast<double>(i), 0.4));
  return sim::Trace{std::move(invs)};
}

TEST(ServeFaults, CorrelatedReplayMatchesFleetRun) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  const sim::Trace trace = make_trace(world, 60, 0.2);

  fleet::FleetEnv reference_fleet = make_fleet(world, cost);
  fleet::FailoverRouter router(std::make_unique<fleet::WarmAwareRouter>());
  const fleet::FleetSummary reference = reference_fleet.run(trace, router);
  // The schedule must actually exercise the §14 paths.
  ASSERT_GE(reference.node_crashes, 4U);
  ASSERT_EQ(reference.domain_crashes, 1U);
  ASSERT_GE(reference.partial_crashes, 2U);
  ASSERT_EQ(reference.spares_activated, 1U);

  fleet::FleetEnv replay_fleet = make_fleet(world, cost);
  SimClock clock;
  ServeConfig serve_cfg;
  serve_cfg.shards = 3;
  SchedulerService service(replay_fleet, clock,
                           std::make_unique<WarmAwarePolicy>(), serve_cfg);
  const ServeSummary replay = service.run_replay(trace);

  // WarmAwarePolicy is the serving twin of the Warm-Aware router; the
  // service's own reroute path mirrors FailoverRouter. Fault accounting
  // and every scheduling outcome must agree.
  EXPECT_EQ(replay.fleet.total.invocations, reference.total.invocations);
  EXPECT_EQ(replay.fleet.total.cold_starts, reference.total.cold_starts);
  EXPECT_EQ(replay.fleet.total.warm_l1, reference.total.warm_l1);
  EXPECT_EQ(replay.fleet.total.warm_l2, reference.total.warm_l2);
  EXPECT_EQ(replay.fleet.total.warm_l3, reference.total.warm_l3);
  EXPECT_EQ(replay.fleet.total.failed, reference.total.failed);
  EXPECT_EQ(replay.fleet.total.retries, reference.total.retries);
  EXPECT_DOUBLE_EQ(replay.fleet.total.total_latency_s,
                   reference.total.total_latency_s);
  EXPECT_EQ(replay.fleet.lost, reference.lost);
  EXPECT_EQ(replay.fleet.node_crashes, reference.node_crashes);
  EXPECT_EQ(replay.fleet.node_recoveries, reference.node_recoveries);
  EXPECT_EQ(replay.fleet.domain_crashes, reference.domain_crashes);
  EXPECT_EQ(replay.fleet.partial_crashes, reference.partial_crashes);
  EXPECT_EQ(replay.fleet.spares_activated, reference.spares_activated);
  EXPECT_EQ(replay.stats.node_crashes, reference.node_crashes);
  EXPECT_EQ(replay.stats.domain_crashes, reference.domain_crashes);
  EXPECT_EQ(replay.stats.spares_activated, reference.spares_activated);
  EXPECT_EQ(replay.stats.submitted,
            replay.stats.routed + replay.stats.rejected + replay.stats.lost);
}

TEST(ServeFaults, TwoCorrelatedReplaysAreByteIdentical) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  const sim::Trace trace = make_trace(world, 60, 0.2);

  const auto run_once = [&](std::string* trace_json, std::string* snapshots) {
    std::ostringstream trace_out;
    obs::Tracer tracer;
    tracer.add_sink(std::make_shared<obs::ChromeTraceSink>(trace_out));
    fleet::FleetEnv fleet = make_fleet(world, cost);
    SimClock clock;
    TelemetryConfig tcfg;
    tcfg.snapshot_path = ::testing::TempDir() + "fault_replay_snap.jsonl";
    tcfg.snapshot_period_s = 1.0;
    tcfg.registry_slots = 2;
    Telemetry telemetry(tcfg, &tracer);
    ServeConfig serve_cfg;
    serve_cfg.shards = 2;
    SchedulerService service(fleet, clock,
                             std::make_unique<WarmAwarePolicy>(), serve_cfg);
    service.set_telemetry(&telemetry);
    const ServeSummary summary = service.run_replay(trace);
    tracer.close();
    *trace_json = trace_out.str();
    std::ifstream in(tcfg.snapshot_path);
    std::ostringstream snap;
    snap << in.rdbuf();
    *snapshots = snap.str();
    return summary;
  };

  std::string trace_a, snap_a, trace_b, snap_b;
  const ServeSummary a = run_once(&trace_a, &snap_a);
  const ServeSummary b = run_once(&trace_b, &snap_b);
  EXPECT_EQ(a.stats.routed, b.stats.routed);
  EXPECT_EQ(a.fleet.node_crashes, b.fleet.node_crashes);
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_FALSE(snap_a.empty());
  EXPECT_EQ(snap_a, snap_b);
}

TEST(ServeFaults, AdminApisKeepAccountingAndAdmitSpares) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  fleet::FleetConfig cfg = domain_fleet_config();
  cfg.faults.crashes.clear();  // live chaos only: no scheduled windows
  fleet::FleetEnv fleet(world.functions, world.catalog, cost, cfg,
                        fleet::uniform_system(
                            policies::make_greedy_match_system));
  SimClock clock;
  ServeConfig serve_cfg;
  serve_cfg.shards = 2;
  SchedulerService service(fleet, clock,
                           std::make_unique<LeastOutstandingPolicy>(),
                           serve_cfg);
  service.begin_episode();
  EXPECT_EQ(fleet.routable_count(), 6U);

  // Crash a whole rack: 3 member crashes, one domain event, the single
  // spare admitted, double-crash refused.
  EXPECT_EQ(service.apply_domain_crash(0, /*partial=*/true), 3U);
  EXPECT_FALSE(service.apply_crash(0));
  EXPECT_EQ(fleet.routable_count(), 7U);
  ServeStats stats = service.stats();
  EXPECT_EQ(stats.node_crashes, 3U);
  EXPECT_EQ(stats.partial_crashes, 3U);
  EXPECT_EQ(stats.domain_crashes, 1U);
  EXPECT_EQ(stats.spares_activated, 1U);

  // Unknown domains are rejected loudly.
  EXPECT_THROW((void)service.apply_domain_crash(9), util::CheckError);

  // Recover one member; the others are still down and recover in
  // finish_episode so the summary sees a healthy fleet.
  EXPECT_TRUE(service.apply_recover(1));
  EXPECT_FALSE(service.apply_recover(1));
  stats = service.stats();
  EXPECT_EQ(stats.node_recoveries, 1U);

  const ServeSummary summary = service.finish_episode();
  EXPECT_EQ(summary.stats.node_recoveries, 3U);
  EXPECT_EQ(summary.fleet.node_crashes, 3U);
  EXPECT_EQ(summary.fleet.spares_activated, 1U);
}

TEST(ServeFaults, DomainCrashRacesDispatchWithoutCorruption) {
  TinyWorld world;
  const sim::StartupCostModel cost = world.cost_model();
  fleet::FleetConfig cfg = domain_fleet_config();
  cfg.faults.crashes.clear();
  fleet::FleetEnv fleet(world.functions, world.catalog, cost, cfg,
                        fleet::uniform_system(
                            policies::make_greedy_match_system));
  WallClock clock;
  ServeConfig serve_cfg;
  serve_cfg.workers = 3;
  serve_cfg.shards = 3;
  serve_cfg.queue_capacity = 4096;
  SchedulerService service(fleet, clock,
                           std::make_unique<WarmAwarePolicy>(), serve_cfg);
  service.begin_episode();
  service.start();

  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kPerProducer = 300;
  const sim::FunctionTypeId fns[] = {world.fn_py_flask, world.fn_py_numpy,
                                     world.fn_js, world.fn_other_os};
  std::atomic<bool> stop{false};
  // ONE admin thread drives crash/recover cycles over both racks while the
  // workers dispatch — the documented concurrency contract of the apply_*
  // APIs. Every iteration crashes a domain (admitting the spare on the
  // first), recovers its members, and alternates partial crashes.
  std::thread admin([&] {
    std::size_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t domain = round % 2;
      (void)service.apply_domain_crash(domain, /*partial=*/(round % 3) == 0);
      std::this_thread::yield();
      for (std::size_t n = 3 * domain; n < 3 * domain + 3; ++n)
        (void)service.apply_recover(n);
      ++round;
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        sim::Invocation inv = TinyWorld::inv(
            fns[(p + i) % 4], 0.001 * static_cast<double>(i), 0.02);
        inv.seq = p * kPerProducer + i;
        (void)service.submit(inv);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  stop.store(true);
  admin.join();
  const ServeSummary summary = service.finish_episode();

  EXPECT_EQ(summary.stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(summary.stats.submitted,
            summary.stats.routed + summary.stats.rejected +
                summary.stats.lost);
  EXPECT_GT(summary.stats.node_crashes, 0U);
  EXPECT_EQ(summary.fleet.spares_activated, 1U);
}

}  // namespace
}  // namespace mlcr::serve
