#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"

namespace mlcr::nn {
namespace {

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Parameter p("w", Tensor{{1.0F, 2.0F}});
  p.grad = Tensor{{0.5F, -0.5F}};
  Sgd opt({&p}, /*lr=*/0.1F);
  opt.step();
  EXPECT_FLOAT_EQ(p.value(0, 0), 0.95F);
  EXPECT_FLOAT_EQ(p.value(0, 1), 2.05F);
  EXPECT_FLOAT_EQ(p.grad.max_abs(), 0.0F) << "step must clear gradients";
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p("w", Tensor{{0.0F}});
  Sgd opt({&p}, 0.1F, /*momentum=*/0.9F);
  p.grad = Tensor{{1.0F}};
  opt.step();  // v = 1, w = -0.1
  EXPECT_FLOAT_EQ(p.value(0, 0), -0.1F);
  p.grad = Tensor{{1.0F}};
  opt.step();  // v = 1.9, w = -0.1 - 0.19
  EXPECT_NEAR(p.value(0, 0), -0.29F, 1e-6F);
}

TEST(Adam, FirstStepHasLearningRateMagnitude) {
  Parameter p("w", Tensor{{1.0F}});
  p.grad = Tensor{{123.0F}};  // magnitude irrelevant on step 1
  Adam opt({&p}, /*lr=*/0.01F);
  opt.step();
  EXPECT_NEAR(p.value(0, 0), 1.0F - 0.01F, 1e-4F);
}

TEST(Adam, MinimizesQuadratic) {
  // f(w) = (w - 3)^2, df/dw = 2(w - 3).
  Parameter p("w", Tensor{{-5.0F}});
  Adam opt({&p}, 0.1F);
  for (int i = 0; i < 500; ++i) {
    p.grad = Tensor{{2.0F * (p.value(0, 0) - 3.0F)}};
    opt.step();
  }
  EXPECT_NEAR(p.value(0, 0), 3.0F, 1e-2F);
}

TEST(Adam, TrainsLinearRegression) {
  // Fit y = 2x + 1 with a 1->1 linear layer.
  util::Rng rng(1);
  Linear lin(1, 1, rng);
  Adam opt(lin.parameters(), 0.05F);
  for (int epoch = 0; epoch < 400; ++epoch) {
    for (float x : {-1.0F, 0.0F, 1.0F, 2.0F}) {
      const float target = 2.0F * x + 1.0F;
      const Tensor y = lin.forward(Tensor{{x}});
      const float err = y(0, 0) - target;
      (void)lin.backward(Tensor{{err}});
    }
    opt.step();
  }
  EXPECT_NEAR(lin.weight().value(0, 0), 2.0F, 0.05F);
  EXPECT_NEAR(lin.bias()->value(0, 0), 1.0F, 0.05F);
}

TEST(Optimizer, ClipGradNormScalesDown) {
  Parameter p("w", Tensor{{0.0F, 0.0F}});
  p.grad = Tensor{{3.0F, 4.0F}};  // norm 5
  Sgd opt({&p}, 0.1F);
  opt.clip_grad_norm(1.0F);
  EXPECT_NEAR(std::sqrt(p.grad.squared_norm()), 1.0F, 1e-5F);
  EXPECT_NEAR(p.grad(0, 0) / p.grad(0, 1), 0.75F, 1e-5F)
      << "direction preserved";
}

TEST(Optimizer, ClipGradNormNoOpBelowThreshold) {
  Parameter p("w", Tensor{{0.3F}});
  p.grad = Tensor{{0.5F}};
  Sgd opt({&p}, 0.1F);
  opt.clip_grad_norm(1.0F);
  EXPECT_FLOAT_EQ(p.grad(0, 0), 0.5F);
}

}  // namespace
}  // namespace mlcr::nn
