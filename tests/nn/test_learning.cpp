// End-to-end learning capability tests for the nn stack: small synthetic
// tasks that the policy network must be able to solve for MLCR to work.
#include <gtest/gtest.h>

#include "nn/attention.hpp"
#include "nn/optimizer.hpp"

namespace mlcr::nn {
namespace {

/// A tiny attention regressor: tokens (T x F) -> per-token score (T x 1).
struct TokenScorer {
  Linear proj;
  TransformerBlock block;
  Linear head;

  TokenScorer(std::size_t features, std::size_t dim, util::Rng& rng)
      : proj(features, dim, rng), block(dim, 2, dim * 2, rng),
        head(dim, 1, rng) {}

  Tensor forward(const Tensor& tokens) {
    return head.forward(block.forward(proj.forward(tokens)));
  }
  void backward(const Tensor& grad) {
    (void)proj.backward(block.backward(head.backward(grad)));
  }
  std::vector<Parameter*> parameters() {
    std::vector<Parameter*> out;
    proj.collect_parameters(out);
    block.collect_parameters(out);
    head.collect_parameters(out);
    return out;
  }
};

TEST(Learning, AttentionNetworkLearnsRelativeTokenScoring) {
  // Task: each token carries a scalar "cost" in feature 0 plus noise
  // features; the target score of a token is the *negated* cost relative to
  // the batch mean — a relational task that requires attending across
  // tokens, exactly like comparing warm containers.
  util::Rng rng(3);
  TokenScorer net(4, 16, rng);
  Adam opt(net.parameters(), 5e-3F);

  constexpr std::size_t kTokens = 6;
  auto sample = [&](Tensor& x, Tensor& target) {
    x = Tensor(kTokens, 4);
    target = Tensor(kTokens, 1);
    float mean = 0.0F;
    for (std::size_t t = 0; t < kTokens; ++t) {
      x(t, 0) = static_cast<float>(rng.uniform(-1.0, 1.0));
      x(t, 1) = static_cast<float>(rng.uniform(-1.0, 1.0));  // noise
      x(t, 2) = static_cast<float>(rng.uniform(-1.0, 1.0));  // noise
      x(t, 3) = 1.0F;
      mean += x(t, 0);
    }
    mean /= static_cast<float>(kTokens);
    for (std::size_t t = 0; t < kTokens; ++t)
      target(t, 0) = -(x(t, 0) - mean);
  };

  auto evaluate = [&](int samples) {
    double mse = 0.0;
    for (int s = 0; s < samples; ++s) {
      Tensor x, target;
      sample(x, target);
      const Tensor y = net.forward(x);
      for (std::size_t t = 0; t < kTokens; ++t)
        mse += (y(t, 0) - target(t, 0)) * (y(t, 0) - target(t, 0));
    }
    return mse / (samples * kTokens);
  };

  const double before = evaluate(50);
  for (int step = 0; step < 600; ++step) {
    Tensor x, target;
    sample(x, target);
    const Tensor y = net.forward(x);
    Tensor grad(kTokens, 1);
    for (std::size_t t = 0; t < kTokens; ++t)
      grad(t, 0) = 2.0F * (y(t, 0) - target(t, 0)) /
                   static_cast<float>(kTokens);
    net.backward(grad);
    if (step % 4 == 3) opt.step();
  }
  const double after = evaluate(50);
  EXPECT_LT(after, before * 0.2)
      << "attention net must reduce relational regression error 5x+";
  EXPECT_LT(after, 0.05);
}

TEST(Learning, GreedyOrderingEmergesFromScores) {
  // After training on the relational task above, the argmax over predicted
  // scores must pick the cheapest token most of the time.
  util::Rng rng(4);
  TokenScorer net(4, 16, rng);
  Adam opt(net.parameters(), 5e-3F);
  constexpr std::size_t kTokens = 5;

  auto make_x = [&] {
    Tensor x(kTokens, 4);
    for (std::size_t t = 0; t < kTokens; ++t) {
      x(t, 0) = static_cast<float>(rng.uniform(-1.0, 1.0));
      x(t, 3) = 1.0F;
    }
    return x;
  };
  for (int step = 0; step < 800; ++step) {
    const Tensor x = make_x();
    const Tensor y = net.forward(x);
    Tensor grad(kTokens, 1);
    for (std::size_t t = 0; t < kTokens; ++t)
      grad(t, 0) = 2.0F * (y(t, 0) + x(t, 0)) / static_cast<float>(kTokens);
    net.backward(grad);
    if (step % 4 == 3) opt.step();
  }

  int correct = 0;
  constexpr int kTrials = 100;
  for (int s = 0; s < kTrials; ++s) {
    const Tensor x = make_x();
    const Tensor y = net.forward(x);
    std::size_t best_pred = 0, best_true = 0;
    for (std::size_t t = 1; t < kTokens; ++t) {
      if (y(t, 0) > y(best_pred, 0)) best_pred = t;
      if (x(t, 0) < x(best_true, 0)) best_true = t;
    }
    correct += best_pred == best_true;
  }
  EXPECT_GT(correct, 85) << "argmax of learned scores must find the min-cost "
                            "token in >85% of trials";
}

}  // namespace
}  // namespace mlcr::nn
