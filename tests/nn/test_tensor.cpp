#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace mlcr::nn {
namespace {

TEST(Tensor, ConstructionAndIndexing) {
  Tensor t(2, 3, 1.5F);
  EXPECT_EQ(t.rows(), 2U);
  EXPECT_EQ(t.cols(), 3U);
  EXPECT_EQ(t.size(), 6U);
  EXPECT_FLOAT_EQ(t(1, 2), 1.5F);
  t(0, 1) = -2.0F;
  EXPECT_FLOAT_EQ(t.at(0, 1), -2.0F);
  EXPECT_THROW((void)t.at(2, 0), util::CheckError);
  EXPECT_THROW((void)t.at(0, 3), util::CheckError);
}

TEST(Tensor, InitializerList) {
  const Tensor t = {{1.0F, 2.0F}, {3.0F, 4.0F}};
  EXPECT_EQ(t.rows(), 2U);
  EXPECT_FLOAT_EQ(t(1, 0), 3.0F);
  EXPECT_THROW((Tensor{{1.0F}, {2.0F, 3.0F}}), util::CheckError);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a = {{1.0F, 2.0F}};
  const Tensor b = {{10.0F, 20.0F}};
  a.add_(b);
  EXPECT_FLOAT_EQ(a(0, 0), 11.0F);
  a.axpy_(0.5F, b);
  EXPECT_FLOAT_EQ(a(0, 1), 32.0F);
  a.scale_(2.0F);
  EXPECT_FLOAT_EQ(a(0, 0), 32.0F);
  a.fill(0.0F);
  EXPECT_FLOAT_EQ(a.sum(), 0.0F);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(2, 2);
  const Tensor b(2, 3);
  EXPECT_THROW(a.add_(b), util::CheckError);
}

TEST(Tensor, RowBroadcast) {
  Tensor a = {{1.0F, 2.0F}, {3.0F, 4.0F}};
  a.add_row_broadcast_(Tensor{{10.0F, 20.0F}});
  EXPECT_FLOAT_EQ(a(0, 0), 11.0F);
  EXPECT_FLOAT_EQ(a(1, 1), 24.0F);
  EXPECT_THROW(a.add_row_broadcast_(Tensor{{1.0F}}), util::CheckError);
}

TEST(Tensor, Transpose) {
  const Tensor a = {{1.0F, 2.0F, 3.0F}, {4.0F, 5.0F, 6.0F}};
  const Tensor t = a.transposed();
  EXPECT_EQ(t.rows(), 3U);
  EXPECT_EQ(t.cols(), 2U);
  EXPECT_FLOAT_EQ(t(2, 1), 6.0F);
}

TEST(Tensor, Reductions) {
  const Tensor a = {{-3.0F, 2.0F}};
  EXPECT_FLOAT_EQ(a.sum(), -1.0F);
  EXPECT_FLOAT_EQ(a.max_abs(), 3.0F);
  EXPECT_FLOAT_EQ(a.squared_norm(), 13.0F);
  EXPECT_FLOAT_EQ(Tensor().max_abs(), 0.0F);
}

TEST(Matmul, KnownProduct) {
  const Tensor a = {{1.0F, 2.0F}, {3.0F, 4.0F}};
  const Tensor b = {{5.0F, 6.0F}, {7.0F, 8.0F}};
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0F);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0F);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0F);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0F);
}

TEST(Matmul, ShapeMismatchThrows) {
  EXPECT_THROW((void)matmul(Tensor(2, 3), Tensor(2, 3)), util::CheckError);
}

TEST(Matmul, VariantsAgreeWithExplicitTranspose) {
  util::Rng rng(3);
  const Tensor a = Tensor::he_uniform(4, 6, rng);
  const Tensor b = Tensor::he_uniform(4, 5, rng);
  const Tensor c = Tensor::he_uniform(5, 6, rng);

  const Tensor tn = matmul_tn(a, b);           // a^T b: (6x5)
  const Tensor tn_ref = matmul(a.transposed(), b);
  ASSERT_TRUE(tn.same_shape(tn_ref));
  for (std::size_t i = 0; i < tn.size(); ++i)
    EXPECT_NEAR(tn.data()[i], tn_ref.data()[i], 1e-5F);

  const Tensor nt = matmul_nt(a, c);           // a c^T: (4x5)
  const Tensor nt_ref = matmul(a, c.transposed());
  ASSERT_TRUE(nt.same_shape(nt_ref));
  for (std::size_t i = 0; i < nt.size(); ++i)
    EXPECT_NEAR(nt.data()[i], nt_ref.data()[i], 1e-5F);
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  const Tensor logits = {{1.0F, 2.0F, 3.0F}, {-1.0F, -1.0F, -1.0F}};
  const Tensor y = softmax_rows(logits);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    float sum = 0.0F;
    for (std::size_t c = 0; c < y.cols(); ++c) sum += y(r, c);
    EXPECT_NEAR(sum, 1.0F, 1e-6F);
  }
  EXPECT_LT(y(0, 0), y(0, 2));
  EXPECT_NEAR(y(1, 0), 1.0F / 3.0F, 1e-6F);
}

TEST(Softmax, StableForLargeLogits) {
  const Tensor logits = {{1000.0F, 1001.0F}};
  const Tensor y = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(y(0, 0)));
  EXPECT_NEAR(y(0, 0) + y(0, 1), 1.0F, 1e-6F);
}

TEST(Softmax, BackwardMatchesFiniteDifference) {
  util::Rng rng(11);
  Tensor x = Tensor::he_uniform(2, 4, rng);
  const Tensor seed = Tensor::he_uniform(2, 4, rng);
  const Tensor y = softmax_rows(x);
  const Tensor grad = softmax_rows_backward(y, seed);

  const float eps = 1e-3F;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const float orig = x(r, c);
      auto loss = [&] {
        const Tensor yy = softmax_rows(x);
        float l = 0.0F;
        for (std::size_t i = 0; i < yy.rows(); ++i)
          for (std::size_t j = 0; j < yy.cols(); ++j)
            l += yy(i, j) * seed(i, j);
        return l;
      };
      x(r, c) = orig + eps;
      const float up = loss();
      x(r, c) = orig - eps;
      const float down = loss();
      x(r, c) = orig;
      EXPECT_NEAR(grad(r, c), (up - down) / (2 * eps), 5e-3F);
    }
  }
}

TEST(Init, HeUniformWithinLimit) {
  util::Rng rng(5);
  const Tensor t = Tensor::he_uniform(64, 32, rng);
  const float limit = std::sqrt(6.0F / 64.0F);
  EXPECT_LE(t.max_abs(), limit);
  EXPECT_GT(t.max_abs(), 0.0F);
}

TEST(Init, DeterministicGivenSeed) {
  util::Rng a(9), b(9);
  EXPECT_TRUE(Tensor::xavier_uniform(8, 8, a) ==
              Tensor::xavier_uniform(8, 8, b));
}

}  // namespace
}  // namespace mlcr::nn
