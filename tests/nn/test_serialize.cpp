#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nn/attention.hpp"
#include "util/check.hpp"

namespace mlcr::nn {
namespace {

Sequential make_net(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential seq;
  seq.add(std::make_unique<Linear>(4, 8, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(8, 2, rng));
  return seq;
}

TEST(Serialize, RoundTripPreservesOutputs) {
  Sequential src = make_net(1);
  Sequential dst = make_net(2);
  util::Rng rng(3);
  const Tensor x = Tensor::he_uniform(3, 4, rng);
  const Tensor before = src.forward(x);

  std::stringstream buffer;
  save_parameters(src, buffer);
  load_parameters(dst, buffer);
  const Tensor after = dst.forward(x);
  EXPECT_TRUE(before == after);
}

TEST(Serialize, RejectsGarbageMagic) {
  Sequential net = make_net(1);
  std::stringstream buffer("definitely not a model file");
  EXPECT_THROW(load_parameters(net, buffer), util::CheckError);
}

TEST(Serialize, RejectsStructureMismatch) {
  Sequential src = make_net(1);
  std::stringstream buffer;
  save_parameters(src, buffer);

  util::Rng rng(9);
  Linear different(4, 8, rng);
  EXPECT_THROW(load_parameters(different, buffer), util::CheckError);
}

TEST(Serialize, RejectsTruncatedFile) {
  Sequential src = make_net(1);
  std::stringstream buffer;
  save_parameters(src, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  Sequential dst = make_net(2);
  EXPECT_THROW(load_parameters(dst, truncated), util::CheckError);
}

TEST(Serialize, FileRoundTrip) {
  Sequential src = make_net(1);
  Sequential dst = make_net(2);
  const std::string path = ::testing::TempDir() + "/mlcr_net.bin";
  save_parameters(src, path);
  load_parameters(dst, path);
  util::Rng rng(5);
  const Tensor x = Tensor::he_uniform(2, 4, rng);
  EXPECT_TRUE(src.forward(x) == dst.forward(x));
}

TEST(Serialize, CopyParametersMakesNetworksIdentical) {
  Sequential a = make_net(1);
  Sequential b = make_net(2);
  copy_parameters(a, b);
  util::Rng rng(4);
  const Tensor x = Tensor::he_uniform(2, 4, rng);
  EXPECT_TRUE(a.forward(x) == b.forward(x));
}

TEST(Serialize, SoftUpdateInterpolates) {
  Sequential a = make_net(1);
  Sequential b = make_net(2);
  const float b0 = b.parameters()[0]->value(0, 0);
  const float a0 = a.parameters()[0]->value(0, 0);
  soft_update_parameters(a, b, 0.25F);
  EXPECT_NEAR(b.parameters()[0]->value(0, 0), 0.75F * b0 + 0.25F * a0, 1e-6F);
  // tau = 1 -> full copy.
  soft_update_parameters(a, b, 1.0F);
  EXPECT_FLOAT_EQ(b.parameters()[0]->value(0, 0), a0);
}

TEST(Serialize, AttentionModuleRoundTrips) {
  util::Rng rng1(1), rng2(2), rngx(3);
  MultiHeadAttention a(8, 2, rng1), b(8, 2, rng2);
  std::stringstream buffer;
  save_parameters(a, buffer);
  load_parameters(b, buffer);
  const Tensor x = Tensor::he_uniform(3, 8, rngx);
  EXPECT_TRUE(a.forward(x) == b.forward(x));
}

}  // namespace
}  // namespace mlcr::nn
