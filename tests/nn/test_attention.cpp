#include "nn/attention.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "util/check.hpp"

namespace mlcr::nn {
namespace {

TEST(MultiHeadAttention, OutputShapeMatchesInput) {
  util::Rng rng(1);
  MultiHeadAttention mha(8, 2, rng);
  const Tensor x = Tensor::he_uniform(5, 8, rng);
  const Tensor y = mha.forward(x);
  EXPECT_EQ(y.rows(), 5U);
  EXPECT_EQ(y.cols(), 8U);
}

TEST(MultiHeadAttention, RequiresDivisibleHeads) {
  util::Rng rng(1);
  EXPECT_THROW(MultiHeadAttention(10, 3, rng), util::CheckError);
}

TEST(MultiHeadAttention, AttentionRowsAreDistributions) {
  util::Rng rng(2);
  MultiHeadAttention mha(8, 2, rng);
  (void)mha.forward(Tensor::he_uniform(4, 8, rng));
  ASSERT_EQ(mha.last_attention().size(), 2U);
  for (const Tensor& attn : mha.last_attention()) {
    ASSERT_EQ(attn.rows(), 4U);
    ASSERT_EQ(attn.cols(), 4U);
    for (std::size_t r = 0; r < 4; ++r) {
      float sum = 0.0F;
      for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_GE(attn(r, c), 0.0F);
        sum += attn(r, c);
      }
      EXPECT_NEAR(sum, 1.0F, 1e-5F);
    }
  }
}

TEST(MultiHeadAttention, MixesInformationAcrossTokens) {
  util::Rng rng(3);
  MultiHeadAttention mha(8, 2, rng);
  Tensor x = Tensor::he_uniform(3, 8, rng);
  const Tensor y1 = mha.forward(x);
  x(2, 0) += 1.0F;  // perturb a *different* token
  const Tensor y2 = mha.forward(x);
  float delta_row0 = 0.0F;
  for (std::size_t c = 0; c < 8; ++c)
    delta_row0 += std::abs(y1(0, c) - y2(0, c));
  EXPECT_GT(delta_row0, 0.0F)
      << "self-attention must propagate token 2's change into token 0";
}

TEST(MultiHeadAttention, GradCheck) {
  util::Rng rng(4);
  MultiHeadAttention mha(6, 2, rng);
  const Tensor x = Tensor::he_uniform(4, 6, rng);
  const Tensor seed = Tensor::he_uniform(4, 6, rng);
  EXPECT_LT(check_input_gradient(mha, x, seed).max_rel_error, 4e-2F);
  EXPECT_LT(check_parameter_gradients(mha, x, seed).max_rel_error, 4e-2F);
}

TEST(MultiHeadAttention, ParameterCount) {
  util::Rng rng(1);
  MultiHeadAttention mha(8, 2, rng);
  // Four projections, each 8x8 weight + 1x8 bias.
  EXPECT_EQ(mha.parameter_count(), 4U * (64U + 8U));
}

TEST(MultiHeadAttention, KeyBiasGradientIsZero) {
  // Softmax over scores is invariant to adding a constant to every key, so
  // the K-projection bias must receive an (analytically) zero gradient.
  util::Rng rng(8);
  MultiHeadAttention mha(6, 2, rng);
  const Tensor x = Tensor::he_uniform(4, 6, rng);
  const Tensor seed = Tensor::he_uniform(4, 6, rng);
  mha.zero_grad();
  (void)mha.forward(x);
  (void)mha.backward(seed);
  // Parameter order: q (w, b), k (w, b), v, out.
  const auto params = mha.parameters();
  ASSERT_EQ(params[3]->name, "bias");
  EXPECT_LT(params[3]->grad.max_abs(), 1e-5F);
}

TEST(TransformerBlock, PreservesShape) {
  util::Rng rng(5);
  TransformerBlock block(8, 2, 16, rng);
  const Tensor x = Tensor::he_uniform(6, 8, rng);
  const Tensor y = block.forward(x);
  EXPECT_TRUE(y.same_shape(x));
}

TEST(TransformerBlock, GradCheck) {
  util::Rng rng(6);
  TransformerBlock block(6, 2, 12, rng);
  const Tensor x = Tensor::he_uniform(3, 6, rng);
  const Tensor seed = Tensor::he_uniform(3, 6, rng);
  EXPECT_LT(check_input_gradient(block, x, seed).max_rel_error, 5e-2F);
  // Parameter perturbations can push an FFN ReLU pre-activation across its
  // kink, where central differences are off by O(0.1) even for a correct
  // gradient — hence the looser bound (the kink-free layers are checked at
  // 2-5% individually).
  EXPECT_LT(check_parameter_gradients(block, x, seed).max_rel_error, 0.15F);
}

TEST(TransformerBlock, ResidualPathDominatesAtInit) {
  // With freshly initialized (small) weights the block output should stay
  // in the neighbourhood of its input — the residual connections work.
  util::Rng rng(7);
  TransformerBlock block(8, 2, 16, rng);
  const Tensor x = Tensor::he_uniform(4, 8, rng);
  const Tensor y = block.forward(x);
  Tensor diff = y;
  diff.axpy_(-1.0F, x);
  EXPECT_LT(diff.squared_norm(), 25.0F * x.squared_norm() + 1.0F);
}

}  // namespace
}  // namespace mlcr::nn
