#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "util/check.hpp"

namespace mlcr::nn {
namespace {

TEST(Linear, ForwardKnownValues) {
  util::Rng rng(1);
  Linear lin(2, 2, rng);
  lin.weight().value = Tensor{{1.0F, 2.0F}, {3.0F, 4.0F}};
  lin.bias()->value = Tensor{{0.5F, -0.5F}};
  const Tensor y = lin.forward(Tensor{{1.0F, 1.0F}});
  EXPECT_FLOAT_EQ(y(0, 0), 4.5F);   // 1*1 + 1*3 + 0.5
  EXPECT_FLOAT_EQ(y(0, 1), 5.5F);   // 1*2 + 1*4 - 0.5
}

TEST(Linear, ForwardShapeCheck) {
  util::Rng rng(1);
  Linear lin(3, 2, rng);
  EXPECT_THROW((void)lin.forward(Tensor(1, 4)), util::CheckError);
}

TEST(Linear, NoBiasVariantHasOneParameter) {
  util::Rng rng(1);
  Linear lin(3, 2, rng, /*bias=*/false);
  EXPECT_EQ(lin.parameters().size(), 1U);
  EXPECT_EQ(lin.bias(), nullptr);
}

TEST(Linear, GradCheck) {
  util::Rng rng(2);
  Linear lin(5, 3, rng);
  const Tensor x = Tensor::he_uniform(4, 5, rng);
  const Tensor seed = Tensor::he_uniform(4, 3, rng);
  EXPECT_LT(check_input_gradient(lin, x, seed).max_rel_error, 2e-2F);
  EXPECT_LT(check_parameter_gradients(lin, x, seed).max_rel_error, 2e-2F);
}

TEST(Linear, GradientsAccumulateAcrossBackwardCalls) {
  util::Rng rng(2);
  Linear lin(2, 2, rng);
  const Tensor x = Tensor::he_uniform(1, 2, rng);
  const Tensor seed(1, 2, 1.0F);
  (void)lin.forward(x);
  (void)lin.backward(seed);
  const Tensor once = lin.weight().grad;
  (void)lin.forward(x);
  (void)lin.backward(seed);
  for (std::size_t i = 0; i < once.size(); ++i)
    EXPECT_NEAR(lin.weight().grad.data()[i], 2.0F * once.data()[i], 1e-6F);
  lin.zero_grad();
  EXPECT_FLOAT_EQ(lin.weight().grad.max_abs(), 0.0F);
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm ln(4);
  const Tensor x = {{1.0F, 2.0F, 3.0F, 4.0F}};
  const Tensor y = ln.forward(x);
  float mean = 0.0F, var = 0.0F;
  for (std::size_t c = 0; c < 4; ++c) mean += y(0, c);
  mean /= 4.0F;
  for (std::size_t c = 0; c < 4; ++c)
    var += (y(0, c) - mean) * (y(0, c) - mean);
  EXPECT_NEAR(mean, 0.0F, 1e-5F);
  EXPECT_NEAR(var / 4.0F, 1.0F, 1e-3F);
}

TEST(LayerNorm, GradCheck) {
  util::Rng rng(3);
  LayerNorm ln(6);
  // Non-trivial gain/bias so their gradients are exercised.
  auto params = ln.parameters();
  params[0]->value = Tensor::he_uniform(1, 6, rng);
  params[1]->value = Tensor::he_uniform(1, 6, rng);
  const Tensor x = Tensor::he_uniform(3, 6, rng);
  const Tensor seed = Tensor::he_uniform(3, 6, rng);
  EXPECT_LT(check_input_gradient(ln, x, seed).max_rel_error, 3e-2F);
  EXPECT_LT(check_parameter_gradients(ln, x, seed).max_rel_error, 3e-2F);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  const Tensor y = relu.forward(Tensor{{-1.0F, 0.0F, 2.0F}});
  EXPECT_FLOAT_EQ(y(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(y(0, 1), 0.0F);
  EXPECT_FLOAT_EQ(y(0, 2), 2.0F);
}

TEST(ReLU, BackwardMasksNegatives) {
  ReLU relu;
  (void)relu.forward(Tensor{{-1.0F, 2.0F}});
  const Tensor g = relu.backward(Tensor{{5.0F, 5.0F}});
  EXPECT_FLOAT_EQ(g(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(g(0, 1), 5.0F);
}

TEST(Sequential, ComposesAndGradChecks) {
  util::Rng rng(4);
  Sequential seq;
  seq.add(std::make_unique<Linear>(4, 8, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(8, 2, rng));
  EXPECT_EQ(seq.size(), 3U);
  EXPECT_EQ(seq.parameters().size(), 4U);

  const Tensor x = Tensor::he_uniform(3, 4, rng);
  const Tensor seed = Tensor::he_uniform(3, 2, rng);
  EXPECT_LT(check_input_gradient(seq, x, seed).max_rel_error, 3e-2F);
  EXPECT_LT(check_parameter_gradients(seq, x, seed).max_rel_error, 3e-2F);
}

TEST(Module, ParameterCount) {
  util::Rng rng(1);
  Linear lin(10, 4, rng);
  EXPECT_EQ(lin.parameter_count(), 10U * 4U + 4U);
}

}  // namespace
}  // namespace mlcr::nn
